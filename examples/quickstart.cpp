// Quickstart: the ImageProof happy path in one page.
//
//   owner  — builds the ADSs over an image corpus and publishes the
//            public key + signed ADS digest
//   SP     — answers a top-k query with results + verification object
//   client — verifies soundness & completeness before trusting anything
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

using namespace imageproof;

int main() {
  // ----- Owner: assemble a small deployment -------------------------------
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;  // demo-sized signing key

  workload::CorpusParams corpus_params;
  corpus_params.num_images = 1000;
  corpus_params.num_clusters = 256;
  auto corpus = workload::GenerateCorpus(corpus_params);

  std::unordered_map<bovw::ImageId, Bytes> images;
  for (const auto& [id, v] : corpus) {
    images[id] = workload::GenerateImageBlob(id);
  }

  workload::CodebookParams codebook_params;
  codebook_params.num_clusters = 256;
  codebook_params.dims = 32;

  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(codebook_params), std::move(corpus),
      std::move(images));
  std::printf("owner: built ADS over %zu images, %zu clusters (%zu ADS bytes)\n",
              owner.package->corpus.size(), owner.package->codebook.size(),
              owner.package->AdsBytes());

  // ----- SP: answer an authenticated query --------------------------------
  core::ServiceProvider sp(owner.package.get());
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 50, 1.0, 42);
  core::QueryResponse resp = sp.Query(features, /*k=*/5);
  std::printf("sp: top-%zu computed, VO = %zu bytes (proof %zu B)\n",
              resp.topk.size(), resp.vo.TotalBytes(), resp.vo.ProofBytes());

  // ----- Client: verify before trusting ------------------------------------
  core::Client client(owner.public_params);
  auto verified = client.Verify(features, 5, resp.vo);
  if (!verified.ok()) {
    std::printf("client: REJECTED — %s\n", verified.status().message().c_str());
    return 1;
  }
  std::printf("client: verified %zu results:\n", verified->topk.size());
  for (const auto& si : verified->topk) {
    std::printf("  image %-6llu  similarity >= %.4f\n",
                static_cast<unsigned long long>(si.id), si.score);
  }
  std::printf("quickstart OK\n");
  return 0;
}
