// Threat-model demo: a malicious service provider tries every attack class
// from the paper's security analysis (Theorem 1); the client catches each
// one and names the violated check.
//
// Build & run:  ./build/examples/tamper_detection

#include <cstdio>

#include "core/adversary.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

using namespace imageproof;

int main() {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;

  workload::CorpusParams corpus_params;
  corpus_params.num_images = 800;
  corpus_params.num_clusters = 256;
  auto corpus = workload::GenerateCorpus(corpus_params);
  std::unordered_map<bovw::ImageId, Bytes> images;
  for (const auto& [id, v] : corpus) {
    images[id] = workload::GenerateImageBlob(id);
  }
  workload::CodebookParams codebook_params;
  codebook_params.num_clusters = 256;
  codebook_params.dims = 32;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(codebook_params), std::move(corpus),
      std::move(images));

  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 40, 1.0, 7);

  core::QueryResponse honest = sp.Query(features, 10);
  auto ok = client.Verify(features, 10, honest.vo);
  std::printf("honest response:            %s\n",
              ok.ok() ? "ACCEPTED (as it should be)" : "rejected?!");
  if (!ok.ok()) return 1;

  struct Attack {
    const char* name;
    core::QueryResponse tampered;
  };
  bovw::ImageId low_ranked = honest.topk.back().id + 1;
  std::vector<Attack> attacks;
  attacks.push_back({"fake image data (case 3)", core::TamperImageData(honest)});
  attacks.push_back({"forged signature (case 3)", core::TamperSignature(honest)});
  attacks.push_back(
      {"swapped top-k result (case 2)", core::TamperSwapResult(honest, low_ranked)});
  attacks.push_back({"dropped best result (case 2)", core::TamperDropResult(honest)});
  attacks.push_back({"tampered posting data (case 2)", core::TamperInvVo(honest, 37)});
  attacks.push_back(
      {"forged BoVW candidates (case 1)", core::TamperRevealSection(honest, 11)});
  attacks.push_back({"tampered MRKD-tree VO (case 1)", core::TamperTreeVo(honest, 2, 5)});
  attacks.push_back(
      {"manipulated threshold (case 1)", core::TamperThreshold(honest, 0, 1e8)});

  int caught = 0;
  for (const Attack& attack : attacks) {
    auto r = client.Verify(features, 10, attack.tampered.vo);
    if (r.ok()) {
      std::printf("%-34s NOT DETECTED — security failure!\n", attack.name);
    } else {
      std::printf("%-34s detected: %s\n", attack.name,
                  r.status().message().c_str());
      ++caught;
    }
  }
  std::printf("\n%d/%zu attacks detected\n", caught, attacks.size());
  return caught == static_cast<int>(attacks.size()) ? 0 : 1;
}
