// Command-line deployment tool: the owner/SP/client lifecycle as separate
// process invocations with on-disk state — what an operational rollout of
// ImageProof looks like.
//
//   deployment_cli build <dir>    owner: build ADSs over a synthetic corpus,
//                                 write package.bin + params.bin (+ key)
//   deployment_cli insert <dir>   owner: add one image, re-sign, rewrite
//   deployment_cli query <dir>    SP+client: answer a query from the stored
//                                 package and verify it with stored params
//
// Disk-store modes (storage/package_store.h — the mmap serving format):
//
//   deployment_cli build-disk <dir>   owner: build the same deployment but
//                                     publish it as an epoch directory
//                                     (pkg-<epoch>.ipk + CURRENT), verified
//                                     before the CURRENT flip
//   deployment_cli query-disk <dir>   SP+client: mmap the CURRENT epoch
//                                     (root signature checked against the
//                                     mapped bytes), query, verify
//   deployment_cli inspect <file>     print the on-disk layout of one
//                                     .ipk file (header/TOC facts)
//
// Sharded modes (src/shard — scatter-gather serving):
//
//   deployment_cli build-shards <dir> [n]   owner: partition the corpus
//                                     into n shards (default 4), each its
//                                     own epoch directory, plus the signed
//                                     shard manifest
//   deployment_cli query-shards <dir>       coordinator+client: fan a query
//                                     across all shards, assemble the
//                                     composite VO, verify the merge
//
// Exit codes follow the wire error taxonomy (net::ExitCodeForStatus), so a
// wrapper script can tell operational failure modes apart: 0 OK, 11
// rejected/bad input, 14 unavailable, 15 corrupted on-disk state, 16
// internal; 2 is usage error. A verification REJECT is 11 (kError: the
// check failed, the bytes were well-formed), a package that fails to parse
// is 15 (kCorrupted).
//
// Run without arguments for a self-contained demo of all three steps.
// Pass --metrics (any position) to dump the process metrics registry as
// JSON to stdout after the command finishes — SP stage timings, client
// verify timings, and VO size histograms for whatever the invocation ran.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/update.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "shard/composite_client.h"
#include "shard/coordinator.h"
#include "shard/planner.h"
#include "storage/package_store.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

using namespace imageproof;

namespace {

// Prints the taxonomy code alongside the message and converts to the shared
// exit-code mapping, so `deployment_cli query corrupt_dir; echo $?` is
// distinguishable from a verification reject.
int FailWith(const char* step, const Status& status) {
  std::printf("%s: [%s] %s\n", step, StatusCodeToString(status.code()),
              status.message().c_str());
  return net::ExitCodeForStatus(status);
}

std::string PackagePath(const std::string& dir) { return dir + "/package.bin"; }
std::string ParamsPath(const std::string& dir) { return dir + "/params.bin"; }
std::string KeyPath(const std::string& dir) { return dir + "/owner.key"; }

// The synthetic deployment both build modes publish: 500 images over a
// 256-word codebook, 512-bit RSA (toy-sized for demo speed).
core::OwnerOutput BuildOwner() {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 500;
  cp.num_clusters = 256;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 256;
  cbp.dims = 32;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs));
}

Status SaveKey(const std::string& dir, const crypto::RsaPrivateKey& key) {
  ByteWriter w;
  w.PutBlob(key.n.ToBytes());
  w.PutBlob(key.d.ToBytes());
  FILE* f = std::fopen(KeyPath(dir).c_str(), "wb");
  if (!f) return Status::Error("cannot open key file");
  std::fwrite(w.bytes().data(), 1, w.size(), f);
  std::fclose(f);
  return Status::Ok();
}

int Build(const std::string& dir) {
  (void)system(("mkdir -p " + dir).c_str());
  core::OwnerOutput owner = BuildOwner();

  if (Status st = storage::SaveSpPackage(PackagePath(dir), *owner.package);
      !st.ok()) {
    return FailWith("build: write package", st);
  }
  if (Status st = storage::SavePublicParams(ParamsPath(dir),
                                            owner.public_params);
      !st.ok()) {
    return FailWith("build: write params", st);
  }
  // The private key stays with the owner (toy storage for the demo; a real
  // deployment would keep it in an HSM).
  if (Status st = SaveKey(dir, owner.private_key); !st.ok()) {
    return FailWith("build: write key", st);
  }
  std::printf("build: %zu images, %zu words -> %s\n",
              owner.package->corpus.size(), owner.package->codebook.size(),
              dir.c_str());
  return 0;
}

Result<crypto::RsaPrivateKey> LoadKey(const std::string& dir) {
  FILE* f = std::fopen(KeyPath(dir).c_str(), "rb");
  if (!f) return Result<crypto::RsaPrivateKey>::Error("missing owner.key");
  Bytes data;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  ByteReader r(data);
  Bytes nb, db;
  if (!r.GetBlob(&nb).ok() || !r.GetBlob(&db).ok()) {
    return Result<crypto::RsaPrivateKey>::Error("corrupt owner.key");
  }
  crypto::RsaPrivateKey key;
  key.n = crypto::BigInt::FromBytes(nb);
  key.d = crypto::BigInt::FromBytes(db);
  return key;
}

int Insert(const std::string& dir) {
  auto pkg = storage::LoadSpPackage(PackagePath(dir));
  if (!pkg.ok()) return FailWith("insert: load package", pkg.status());
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) return FailWith("insert: load params", params.status());
  auto key = LoadKey(dir);
  if (!key.ok()) return FailWith("insert: load key", key.status());
  bovw::ImageId new_id = 1000000 + (*pkg)->corpus.size();
  bovw::BovwVector v = (*pkg)->corpus[3].second;  // near-duplicate of image 3
  auto stats = core::InsertImage(pkg->get(), *key, &*params, new_id, v,
                                 workload::GenerateImageBlob(new_id));
  if (!stats.ok()) return FailWith("insert", stats.status());
  if (Status st = storage::SaveSpPackage(PackagePath(dir), **pkg); !st.ok()) {
    return FailWith("insert: rewrite package", st);
  }
  if (Status st = storage::SavePublicParams(ParamsPath(dir), *params);
      !st.ok()) {
    return FailWith("insert: rewrite params", st);
  }
  std::printf("insert: image %llu added (%zu lists updated, %zu MRKD nodes "
              "rehashed), root re-signed\n",
              static_cast<unsigned long long>(new_id), stats->lists_updated,
              stats->mrkd_nodes_rehashed);
  return 0;
}

// The SP+client round shared by both storage backends: query image 3's
// neighborhood, verify the VO against the published params.
int RunQuery(const core::SpPackage* pkg, const core::PublicParams& params,
             const char* tag) {
  core::ServiceProvider sp(pkg);
  core::Client client(params);
  const auto& source = pkg->corpus[3].second;
  auto features =
      workload::FeaturesFromBovw(pkg->codebook, source, 40, 0.2, 0.1, 99);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  if (!verified.ok()) {
    std::string step = std::string(tag) + ": REJECTED";
    return FailWith(step.c_str(), verified.status());
  }
  std::printf("%s: verified top-%zu (VO %zu bytes):\n", tag,
              verified->topk.size(), resp.vo.TotalBytes());
  for (const auto& si : verified->topk) {
    std::printf("  image %-8llu similarity >= %.4f\n",
                static_cast<unsigned long long>(si.id), si.score);
  }
  return 0;
}

int Query(const std::string& dir) {
  auto pkg = storage::LoadSpPackage(PackagePath(dir));
  if (!pkg.ok()) return FailWith("query: load package", pkg.status());
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) return FailWith("query: load params", params.status());
  return RunQuery(pkg->get(), *params, "query");
}

// --- disk-store modes (storage/package_store.h) -------------------------

int BuildDisk(const std::string& dir) {
  (void)system(("mkdir -p " + dir).c_str());
  core::OwnerOutput owner = BuildOwner();

  // Clone/verify/swap, on disk: write epoch 1 crash-safely, reopen it from
  // the mapping with the root signature checked against the mapped bytes,
  // and only then flip CURRENT to publish it.
  constexpr uint64_t kEpoch = 1;
  auto path = storage::PackageStore::WriteEpoch(dir, kEpoch, *owner.package);
  if (!path.ok()) return FailWith("build-disk: write epoch", path.status());
  storage::OpenOptions open_opts;
  open_opts.params = &owner.public_params;
  auto reopened = storage::PackageStore::Open(*path, open_opts);
  if (!reopened.ok()) {
    return FailWith("build-disk: verify epoch", reopened.status());
  }
  if (Status st = storage::PackageStore::SetCurrentEpoch(dir, kEpoch);
      !st.ok()) {
    return FailWith("build-disk: flip CURRENT", st);
  }
  if (Status st = storage::SavePublicParams(ParamsPath(dir),
                                            owner.public_params);
      !st.ok()) {
    return FailWith("build-disk: write params", st);
  }
  if (Status st = SaveKey(dir, owner.private_key); !st.ok()) {
    return FailWith("build-disk: write key", st);
  }
  std::printf("build-disk: %zu images, %zu words -> %s (epoch %llu)\n",
              owner.package->corpus.size(), owner.package->codebook.size(),
              dir.c_str(), static_cast<unsigned long long>(kEpoch));
  return 0;
}

int QueryDisk(const std::string& dir) {
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) return FailWith("query-disk: load params", params.status());
  storage::OpenOptions open_opts;
  open_opts.params = &*params;
  uint64_t epoch = 0;
  auto pkg = storage::PackageStore::OpenCurrent(dir, open_opts, &epoch);
  if (!pkg.ok()) return FailWith("query-disk: open epoch", pkg.status());
  std::printf("query-disk: serving epoch %llu from mmap\n",
              static_cast<unsigned long long>(epoch));
  return RunQuery(pkg->get(), *params, "query-disk");
}

int Inspect(const std::string& file) {
  auto layout = storage::PackageStore::Inspect(file);
  if (!layout.ok()) return FailWith("inspect", layout.status());
  std::printf("inspect: %s\n", file.c_str());
  std::printf("  page_size   %u\n", layout->page_size);
  std::printf("  file_size   %llu\n",
              static_cast<unsigned long long>(layout->file_size));
  std::printf("  toc         offset %llu, %llu bytes, %zu sections\n",
              static_cast<unsigned long long>(layout->toc_offset),
              static_cast<unsigned long long>(layout->toc_size),
              layout->sections.size());
  static const char* kNames[] = {"?",        "config",   "codebook",
                                 "corpus",   "weights",  "filter_geo",
                                 "trees",    "postings", "image_index",
                                 "image_blobs"};
  for (const auto& s : layout->sections) {
    const char* name = s.id < sizeof(kNames) / sizeof(kNames[0])
                           ? kNames[s.id]
                           : "?";
    std::printf("  section %-12s offset %-10llu size %llu\n", name,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size));
  }
  return 0;
}

// --- sharded modes (src/shard) ------------------------------------------

int BuildShards(const std::string& dir, uint32_t num_shards) {
  (void)system(("mkdir -p " + dir).c_str());
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 500;
  cp.num_clusters = 256;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 256;
  cbp.dims = 32;
  shard::ShardedDeployment deployment = shard::ShardPlanner::Build(
      config, workload::GenerateCodebook(cbp), corpus, blobs, num_shards);

  if (Status st = shard::WriteShardedDeployment(dir, deployment); !st.ok()) {
    return FailWith("build-shards: write deployment", st);
  }
  if (Status st = storage::SavePublicParams(
          ParamsPath(dir), deployment.shards[0].public_params);
      !st.ok()) {
    return FailWith("build-shards: write params", st);
  }
  if (Status st = SaveKey(dir, deployment.keys.private_key); !st.ok()) {
    return FailWith("build-shards: write key", st);
  }
  std::printf("build-shards: %zu images across %u shards -> %s "
              "(manifest epoch %llu)\n",
              corpus.size(), deployment.manifest.num_shards, dir.c_str(),
              static_cast<unsigned long long>(deployment.manifest.epoch));
  for (uint32_t sid = 0; sid < deployment.manifest.num_shards; ++sid) {
    std::printf("  %s: %zu images\n", shard::ShardDirName(sid).c_str(),
                deployment.shards[sid].package->corpus.size());
  }
  return 0;
}

int QueryShards(const std::string& dir) {
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) {
    return FailWith("query-shards: load params", params.status());
  }
  auto key = LoadKey(dir);
  if (!key.ok()) return FailWith("query-shards: load key", key.status());
  auto opened = shard::OpenShardedDeployment(dir, *params);
  if (!opened.ok()) {
    return FailWith("query-shards: open deployment", opened.status());
  }

  // Pick the query target before the packages move into their backends.
  const uint32_t home =
      shard::ShardManifest::ShardOf(3, opened->manifest.num_shards);
  const core::SpPackage& home_pkg = *opened->shards[home].package;
  std::vector<std::vector<float>> features;
  for (const auto& [id, v] : home_pkg.corpus) {
    if (id == 3) {
      features =
          workload::FeaturesFromBovw(home_pkg.codebook, v, 40, 0.2, 0.1, 99);
      break;
    }
  }
  if (features.empty()) {
    return FailWith("query-shards", Status::Error("image 3 not found"));
  }

  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  for (auto& s : opened->shards) {
    backends.push_back(std::make_unique<shard::LocalShardBackend>(
        std::move(s.package), s.params, *key));
  }
  shard::Coordinator coordinator(std::move(backends),
                                 opened->manifest, *key);
  auto composite = coordinator.Query(features, 5);
  if (!composite.ok()) {
    return FailWith("query-shards: fan-out", composite.status());
  }
  shard::CompositeClient client(*params);
  auto verified = client.VerifyComposite(features, 5, *composite);
  if (!verified.ok()) {
    return FailWith("query-shards: REJECTED", verified.status());
  }
  std::printf("query-shards: verified global top-%zu over %u shards "
              "(manifest epoch %llu, composite %zu bytes):\n",
              verified->topk.size(), verified->num_shards,
              static_cast<unsigned long long>(verified->manifest_epoch),
              composite->size());
  for (const auto& si : verified->topk) {
    std::printf("  image %-8llu similarity = %.4f (shard %u)\n",
                static_cast<unsigned long long>(si.id), si.score,
                shard::ShardManifest::ShardOf(si.id, verified->num_shards));
  }
  return 0;
}

}  // namespace

namespace {

int DumpMetricsAndReturn(int code, bool metrics) {
  if (metrics) {
    std::string json = obs::Registry::Global().ToJson();
    std::printf("%s\n", json.c_str());
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() >= 2) {
    std::string cmd = args[0], dir = args[1];
    if (cmd == "build") return DumpMetricsAndReturn(Build(dir), metrics);
    if (cmd == "insert") return DumpMetricsAndReturn(Insert(dir), metrics);
    if (cmd == "query") return DumpMetricsAndReturn(Query(dir), metrics);
    if (cmd == "build-disk") {
      return DumpMetricsAndReturn(BuildDisk(dir), metrics);
    }
    if (cmd == "query-disk") {
      return DumpMetricsAndReturn(QueryDisk(dir), metrics);
    }
    if (cmd == "inspect") return DumpMetricsAndReturn(Inspect(dir), metrics);
    if (cmd == "build-shards") {
      uint32_t n = 4;
      if (args.size() >= 3) {
        long parsed = std::strtol(args[2], nullptr, 10);
        if (parsed <= 0 || parsed > 1024) {
          std::printf("build-shards: shard count must be in [1, 1024]\n");
          return 2;
        }
        n = static_cast<uint32_t>(parsed);
      }
      return DumpMetricsAndReturn(BuildShards(dir, n), metrics);
    }
    if (cmd == "query-shards") {
      return DumpMetricsAndReturn(QueryShards(dir), metrics);
    }
    std::printf(
        "usage: %s {build|insert|query|build-disk|query-disk} <dir> "
        "[--metrics]\n"
        "       %s build-shards <dir> [num_shards] | query-shards <dir>\n"
        "       %s inspect <file.ipk> [--metrics]\n",
        argv[0], argv[0], argv[0]);
    return 2;
  }
  // Demo: full lifecycle in a temp directory.
  std::string dir = "/tmp/imageproof_deployment";
  (void)system(("mkdir -p " + dir).c_str());
  std::printf("--- build ---\n");
  if (int rc = Build(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- query (initial) ---\n");
  if (int rc = Query(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- insert (near-duplicate of image 3) ---\n");
  if (int rc = Insert(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- query (after update; new image should appear) ---\n");
  if (int rc = Query(dir)) return DumpMetricsAndReturn(rc, metrics);
  // Same lifecycle on the mmap serving format.
  std::string disk_dir = "/tmp/imageproof_deployment_disk";
  std::printf("--- build-disk ---\n");
  if (int rc = BuildDisk(disk_dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- query-disk (served from the mapped epoch) ---\n");
  return DumpMetricsAndReturn(QueryDisk(disk_dir), metrics);
}
