// Command-line deployment tool: the owner/SP/client lifecycle as separate
// process invocations with on-disk state — what an operational rollout of
// ImageProof looks like.
//
//   deployment_cli build <dir>    owner: build ADSs over a synthetic corpus,
//                                 write package.bin + params.bin (+ key)
//   deployment_cli insert <dir>   owner: add one image, re-sign, rewrite
//   deployment_cli query <dir>    SP+client: answer a query from the stored
//                                 package and verify it with stored params
//
// Exit codes follow the wire error taxonomy (net::ExitCodeForStatus), so a
// wrapper script can tell operational failure modes apart: 0 OK, 11
// rejected/bad input, 14 unavailable, 15 corrupted on-disk state, 16
// internal; 2 is usage error. A verification REJECT is 11 (kError: the
// check failed, the bytes were well-formed), a package that fails to parse
// is 15 (kCorrupted).
//
// Run without arguments for a self-contained demo of all three steps.
// Pass --metrics (any position) to dump the process metrics registry as
// JSON to stdout after the command finishes — SP stage timings, client
// verify timings, and VO size histograms for whatever the invocation ran.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/update.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

using namespace imageproof;

namespace {

// Prints the taxonomy code alongside the message and converts to the shared
// exit-code mapping, so `deployment_cli query corrupt_dir; echo $?` is
// distinguishable from a verification reject.
int FailWith(const char* step, const Status& status) {
  std::printf("%s: [%s] %s\n", step, StatusCodeToString(status.code()),
              status.message().c_str());
  return net::ExitCodeForStatus(status);
}

std::string PackagePath(const std::string& dir) { return dir + "/package.bin"; }
std::string ParamsPath(const std::string& dir) { return dir + "/params.bin"; }
std::string KeyPath(const std::string& dir) { return dir + "/owner.key"; }

int Build(const std::string& dir) {
  (void)system(("mkdir -p " + dir).c_str());
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 500;
  cp.num_clusters = 256;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 256;
  cbp.dims = 32;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));

  if (Status st = storage::SaveSpPackage(PackagePath(dir), *owner.package);
      !st.ok()) {
    return FailWith("build: write package", st);
  }
  if (Status st = storage::SavePublicParams(ParamsPath(dir),
                                            owner.public_params);
      !st.ok()) {
    return FailWith("build: write params", st);
  }
  // The private key stays with the owner (toy storage for the demo; a real
  // deployment would keep it in an HSM).
  ByteWriter w;
  w.PutBlob(owner.private_key.n.ToBytes());
  w.PutBlob(owner.private_key.d.ToBytes());
  FILE* f = std::fopen(KeyPath(dir).c_str(), "wb");
  if (!f) return FailWith("build: write key", Status::Error("cannot open"));
  std::fwrite(w.bytes().data(), 1, w.size(), f);
  std::fclose(f);
  std::printf("build: %zu images, %zu words -> %s\n",
              owner.package->corpus.size(), owner.package->codebook.size(),
              dir.c_str());
  return 0;
}

Result<crypto::RsaPrivateKey> LoadKey(const std::string& dir) {
  FILE* f = std::fopen(KeyPath(dir).c_str(), "rb");
  if (!f) return Result<crypto::RsaPrivateKey>::Error("missing owner.key");
  Bytes data;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  ByteReader r(data);
  Bytes nb, db;
  if (!r.GetBlob(&nb).ok() || !r.GetBlob(&db).ok()) {
    return Result<crypto::RsaPrivateKey>::Error("corrupt owner.key");
  }
  crypto::RsaPrivateKey key;
  key.n = crypto::BigInt::FromBytes(nb);
  key.d = crypto::BigInt::FromBytes(db);
  return key;
}

int Insert(const std::string& dir) {
  auto pkg = storage::LoadSpPackage(PackagePath(dir));
  if (!pkg.ok()) return FailWith("insert: load package", pkg.status());
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) return FailWith("insert: load params", params.status());
  auto key = LoadKey(dir);
  if (!key.ok()) return FailWith("insert: load key", key.status());
  bovw::ImageId new_id = 1000000 + (*pkg)->corpus.size();
  bovw::BovwVector v = (*pkg)->corpus[3].second;  // near-duplicate of image 3
  auto stats = core::InsertImage(pkg->get(), *key, &*params, new_id, v,
                                 workload::GenerateImageBlob(new_id));
  if (!stats.ok()) return FailWith("insert", stats.status());
  if (Status st = storage::SaveSpPackage(PackagePath(dir), **pkg); !st.ok()) {
    return FailWith("insert: rewrite package", st);
  }
  if (Status st = storage::SavePublicParams(ParamsPath(dir), *params);
      !st.ok()) {
    return FailWith("insert: rewrite params", st);
  }
  std::printf("insert: image %llu added (%zu lists updated, %zu MRKD nodes "
              "rehashed), root re-signed\n",
              static_cast<unsigned long long>(new_id), stats->lists_updated,
              stats->mrkd_nodes_rehashed);
  return 0;
}

int Query(const std::string& dir) {
  auto pkg = storage::LoadSpPackage(PackagePath(dir));
  if (!pkg.ok()) return FailWith("query: load package", pkg.status());
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) return FailWith("query: load params", params.status());
  core::ServiceProvider sp(pkg->get());
  core::Client client(*params);
  const auto& source = (*pkg)->corpus[3].second;
  auto features =
      workload::FeaturesFromBovw((*pkg)->codebook, source, 40, 0.2, 0.1, 99);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  if (!verified.ok()) return FailWith("query: REJECTED", verified.status());
  std::printf("query: verified top-%zu (VO %zu bytes):\n",
              verified->topk.size(), resp.vo.TotalBytes());
  for (const auto& si : verified->topk) {
    std::printf("  image %-8llu similarity >= %.4f\n",
                static_cast<unsigned long long>(si.id), si.score);
  }
  return 0;
}

}  // namespace

namespace {

int DumpMetricsAndReturn(int code, bool metrics) {
  if (metrics) {
    std::string json = obs::Registry::Global().ToJson();
    std::printf("%s\n", json.c_str());
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() >= 2) {
    std::string cmd = args[0], dir = args[1];
    if (cmd == "build") return DumpMetricsAndReturn(Build(dir), metrics);
    if (cmd == "insert") return DumpMetricsAndReturn(Insert(dir), metrics);
    if (cmd == "query") return DumpMetricsAndReturn(Query(dir), metrics);
    std::printf("usage: %s {build|insert|query} <dir> [--metrics]\n", argv[0]);
    return 2;
  }
  // Demo: full lifecycle in a temp directory.
  std::string dir = "/tmp/imageproof_deployment";
  (void)system(("mkdir -p " + dir).c_str());
  std::printf("--- build ---\n");
  if (int rc = Build(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- query (initial) ---\n");
  if (int rc = Query(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- insert (near-duplicate of image 3) ---\n");
  if (int rc = Insert(dir)) return DumpMetricsAndReturn(rc, metrics);
  std::printf("--- query (after update; new image should appear) ---\n");
  return DumpMetricsAndReturn(Query(dir), metrics);
}
