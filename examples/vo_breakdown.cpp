// Prints a per-component verification-object breakdown for the same query
// under all four schemes the paper evaluates — a compact view of where each
// optimization saves bytes and time.
//
// Build & run:  ./build/examples/vo_breakdown

#include <cstdio>

#include "common/stopwatch.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

using namespace imageproof;

int main() {
  workload::CorpusParams corpus_params;
  corpus_params.num_images = 2000;
  corpus_params.num_clusters = 512;
  workload::CodebookParams codebook_params;
  codebook_params.num_clusters = 512;
  codebook_params.dims = 64;

  std::printf("%-16s %10s %10s %10s %10s %9s %9s\n", "scheme", "bovw_vo_B",
              "inv_vo_B", "sigs_B", "total_B", "sp_ms", "client_ms");

  for (core::Config config :
       {core::Config::Baseline(), core::Config::ImageProof(),
        core::Config::OptimizedBovw(), core::Config::OptimizedBoth()}) {
    config.rsa_bits = 512;
    auto corpus = workload::GenerateCorpus(corpus_params);
    std::unordered_map<bovw::ImageId, Bytes> images;
    for (const auto& [id, v] : corpus) {
      images[id] = workload::GenerateImageBlob(id);
    }
    core::OwnerOutput owner = core::BuildDeployment(
        config, workload::GenerateCodebook(codebook_params), std::move(corpus),
        std::move(images));
    core::ServiceProvider sp(owner.package.get());
    core::Client client(owner.public_params);
    auto features =
        workload::GenerateQueryFeatures(owner.package->codebook, 100, 1.0, 13);

    Stopwatch sp_timer;
    core::QueryResponse resp = sp.Query(features, 10);
    double sp_ms = sp_timer.ElapsedMillis();

    Stopwatch client_timer;
    auto verified = client.Verify(features, 10, resp.vo);
    double client_ms = client_timer.ElapsedMillis();
    if (!verified.ok()) {
      std::printf("%-16s verification failed: %s\n", config.Name().c_str(),
                  verified.status().message().c_str());
      return 1;
    }
    size_t sig_bytes = 0;
    for (const auto& r : resp.vo.results) sig_bytes += r.signature.size();
    std::printf("%-16s %10zu %10zu %10zu %10zu %9.2f %9.2f\n",
                config.Name().c_str(), resp.stats.bovw_vo_bytes,
                resp.stats.inv_vo_bytes, sig_bytes, resp.vo.ProofBytes(),
                sp_ms, client_ms);
  }
  return 0;
}
