// Network serving demo: core::QueryEngine behind the src/net wire protocol.
//
//   net_server <dir> [port]   serve a deployment_cli-built deployment dir
//                             over TCP (port 0/omitted = ephemeral, printed
//                             on stdout); runs until stdin closes. If the
//                             dir contains owner.key, kInsert/kDelete frames
//                             are accepted.
//
// Run without arguments for a self-contained loopback demo: build a tiny
// deployment in memory, serve it on an ephemeral port, then act as a remote
// client against ourselves — query + verify, status, an owner insert over
// the wire, and a re-query that must verify under the re-signed root. Exits
// nonzero if any step (above all Client::Verify) fails.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/owner.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

using namespace imageproof;

namespace {

int Fail(const char* step, const Status& status) {
  std::printf("net_server: %s failed: [%s] %s\n", step,
              StatusCodeToString(status.code()), status.message().c_str());
  return net::ExitCodeForStatus(status);
}

// Self-pipe for SIGTERM/SIGINT: the handler only writes a byte; the serve
// loop polls the read end alongside stdin and turns it into a graceful
// Drain() — in-flight queries finish and flush, new frames get a clean
// kUnavailable error, then the listener closes.
int g_signal_pipe[2] = {-1, -1};

extern "C" void OnShutdownSignal(int) {
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

int ServeDir(const std::string& dir, uint16_t port) {
  auto pkg = storage::LoadSpPackage(dir + "/package.bin");
  if (!pkg.ok()) return Fail("load package", pkg.status());
  auto params = storage::LoadPublicParams(dir + "/params.bin");
  if (!params.ok()) return Fail("load params", params.status());

  core::QueryEngine engine(
      std::shared_ptr<const core::SpPackage>(std::move(pkg).value()),
      std::move(params).value());
  net::ServerOptions opts;
  opts.port = port;
  net::NetServer server(&engine, opts);

  // Owner key on disk => this instance also accepts update frames.
  crypto::RsaPrivateKey owner_key;
  bool updates = false;
  if (FILE* f = std::fopen((dir + "/owner.key").c_str(), "rb")) {
    Bytes data;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.insert(data.end(), buf, buf + n);
    }
    std::fclose(f);
    ByteReader r(data);
    Bytes nb, db;
    if (r.GetBlob(&nb).ok() && r.GetBlob(&db).ok()) {
      owner_key.n = crypto::BigInt::FromBytes(nb);
      owner_key.d = crypto::BigInt::FromBytes(db);
      server.EnableUpdates(&owner_key);
      updates = true;
    }
  }

  Status st = server.Start();
  if (!st.ok()) return Fail("start", st);
  std::printf("net_server: serving %s on 127.0.0.1:%u (updates %s)\n",
              dir.c_str(), server.port(), updates ? "enabled" : "disabled");
  std::fflush(stdout);
  // Park until stdin closes (lets a shell script stop us with `echo | ...`
  // or ctrl-D) or SIGTERM/SIGINT arrives via the self-pipe. EOF stops hard;
  // a signal drains first so connected clients see a graceful goodbye.
  if (::pipe(g_signal_pipe) == 0) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = OnShutdownSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  }
  bool drain = false;
  for (;;) {
    struct pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    const int nfds = g_signal_pipe[0] >= 0 ? 2 : 1;
    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      drain = true;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP)) != 0) {
      char buf[256];
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
      if (n <= 0) break;  // EOF: stop without drain (old behaviour)
    }
  }
  if (drain) {
    std::printf("net_server: draining...\n");
    std::fflush(stdout);
    server.Drain();
    std::printf("net_server: drained, %llu frames rejected while draining\n",
                static_cast<unsigned long long>(
                    server.counters().frames_rejected_draining));
  } else {
    server.Stop();
  }
  return 0;
}

int Demo() {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 300;
  cp.num_clusters = 128;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 16;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));
  // Keep a handle on package internals for query synthesis before handing
  // ownership to the engine.
  const core::SpPackage* pkg = owner.package.get();

  core::QueryEngine engine(
      std::shared_ptr<const core::SpPackage>(std::move(owner.package)),
      owner.public_params);
  net::NetServer server(&engine);
  server.EnableUpdates(&owner.private_key);
  Status st = server.Start();
  if (!st.ok()) return Fail("start", st);
  std::printf("--- serving on 127.0.0.1:%u ---\n", server.port());

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        owner.public_params);
  if (!client.ok()) return Fail("connect", client.status());

  auto features =
      workload::FeaturesFromBovw(pkg->codebook, pkg->corpus[3].second, 30,
                                 0.2, 0.1, 7);
  auto result = client->Query(features, 5, /*deadline_ms=*/5000);
  if (!result.ok()) return Fail("query", result.status());
  std::printf("--- query: verified top-%zu over the wire "
              "(frame %zu bytes, VO %zu bytes, snapshot v%llu) ---\n",
              result->verified.topk.size(), result->response_frame_bytes,
              result->vo_bytes.size(),
              static_cast<unsigned long long>(result->snapshot_version));
  for (const auto& si : result->verified.topk) {
    std::printf("  image %-8llu similarity >= %.4f\n",
                static_cast<unsigned long long>(si.id), si.score);
  }

  auto status = client->ServerStatus();
  if (!status.ok()) return Fail("status", status.status());
  std::printf("--- status: v%llu, %llu served, %llu shed ---\n",
              static_cast<unsigned long long>(status->snapshot_version),
              static_cast<unsigned long long>(status->queries_served),
              static_cast<unsigned long long>(status->queries_shed));

  // Owner insert over the wire: near-duplicate of image 3, then re-query —
  // the response now verifies under the NEW root signature the frame
  // carries, and the inserted image should rank.
  auto ack = client->Insert(1000000, pkg->corpus[3].second,
                            workload::GenerateImageBlob(1000000));
  if (!ack.ok()) return Fail("insert", ack.status());
  std::printf("--- insert: snapshot v%llu (%llu lists, %llu nodes) ---\n",
              static_cast<unsigned long long>(ack->new_version),
              static_cast<unsigned long long>(ack->lists_updated),
              static_cast<unsigned long long>(ack->nodes_rehashed));

  auto after = client->Query(features, 5, /*deadline_ms=*/5000);
  if (!after.ok()) return Fail("re-query", after.status());
  bool found = false;
  for (const auto& si : after->verified.topk) found |= (si.id == 1000000);
  std::printf("--- re-query: verified under snapshot v%llu, inserted image "
              "%s ---\n",
              static_cast<unsigned long long>(after->snapshot_version),
              found ? "ranked in top-k" : "not in top-k");
  if (after->snapshot_version != ack->new_version) {
    std::printf("net_server: re-query served from stale snapshot\n");
    return 1;
  }

  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    uint16_t port = 0;
    if (argc >= 3) port = static_cast<uint16_t>(std::atoi(argv[2]));
    return ServeDir(argv[1], port);
  }
  return Demo();
}
