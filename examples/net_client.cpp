// Remote verifying client for a running net_server.
//
//   net_client <dir> <host> <port> query    send a query, verify the VO
//   net_client <dir> <host> <port> status   print server counters
//   net_client <dir> <host> <port> insert   owner: insert one image remotely
//
// <dir> is a deployment_cli-built directory: params.bin supplies the
// TRUSTED public parameters (config + owner RSA public key) the client
// verifies against — obtained out of band, never from the server. The
// package is loaded only to synthesize query features from the codebook
// (standing in for running SIFT on a real query image).
//
// Exit codes follow the wire taxonomy (net::ExitCodeForStatus): 0 verified
// OK, 11 rejected/bad request, 12 shed, 13 deadline, 14 unavailable, 15
// corrupted bytes, 16 server internal error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

using namespace imageproof;

namespace {

int Fail(const char* step, const Status& status) {
  std::printf("net_client: %s failed: [%s] %s\n", step,
              StatusCodeToString(status.code()), status.message().c_str());
  return net::ExitCodeForStatus(status);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::printf("usage: %s <dir> <host> <port> {query|status|insert}\n",
                argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  const std::string host = argv[2];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[3]));
  const std::string cmd = argv[4];

  auto params = storage::LoadPublicParams(dir + "/params.bin");
  if (!params.ok()) return Fail("load trusted params", params.status());

  auto client = net::NetClient::Connect(host, port, std::move(params).value());
  if (!client.ok()) return Fail("connect", client.status());

  if (cmd == "status") {
    auto status = client->ServerStatus();
    if (!status.ok()) return Fail("status", status.status());
    std::printf("snapshot v%llu  served %llu  shed %llu  deadline %llu  "
                "unavailable %llu  queue %llu  in-flight %llu  updates %llu  "
                "stopped %d\n",
                static_cast<unsigned long long>(status->snapshot_version),
                static_cast<unsigned long long>(status->queries_served),
                static_cast<unsigned long long>(status->queries_shed),
                static_cast<unsigned long long>(status->deadline_exceeded),
                static_cast<unsigned long long>(status->rejected_unavailable),
                static_cast<unsigned long long>(status->queue_depth),
                static_cast<unsigned long long>(status->in_flight),
                static_cast<unsigned long long>(status->updates_applied),
                static_cast<int>(status->stopped));
    return 0;
  }

  // query/insert need the codebook (and a source image) to synthesize
  // features; a real client would extract SIFT from its own query image.
  auto pkg = storage::LoadSpPackage(dir + "/package.bin");
  if (!pkg.ok()) return Fail("load package (feature synthesis)", pkg.status());

  if (cmd == "query") {
    auto features = workload::FeaturesFromBovw(
        (*pkg)->codebook, (*pkg)->corpus[3].second, 40, 0.2, 0.1, 99);
    auto result = client->Query(features, 5, /*deadline_ms=*/10000);
    if (!result.ok()) return Fail("query", result.status());
    std::printf("verified top-%zu (frame %zu bytes, VO %zu bytes, snapshot "
                "v%llu):\n",
                result->verified.topk.size(), result->response_frame_bytes,
                result->vo_bytes.size(),
                static_cast<unsigned long long>(result->snapshot_version));
    for (const auto& si : result->verified.topk) {
      std::printf("  image %-8llu similarity >= %.4f\n",
                  static_cast<unsigned long long>(si.id), si.score);
    }
    return 0;
  }

  if (cmd == "insert") {
    bovw::ImageId new_id = 2000000 + (*pkg)->corpus.size();
    auto ack = client->Insert(new_id, (*pkg)->corpus[3].second,
                              workload::GenerateImageBlob(new_id));
    if (!ack.ok()) return Fail("insert", ack.status());
    std::printf("inserted image %llu: snapshot v%llu (%llu lists updated, "
                "%llu nodes rehashed)\n",
                static_cast<unsigned long long>(new_id),
                static_cast<unsigned long long>(ack->new_version),
                static_cast<unsigned long long>(ack->lists_updated),
                static_cast<unsigned long long>(ack->nodes_rehashed));
    return 0;
  }

  std::printf("net_client: unknown command '%s'\n", cmd.c_str());
  return 2;
}
