// Full image-domain demo: everything from raw pixels to a verified top-k.
//
//   1. synthesize a database of textured grayscale images (and write a few
//      PGMs you can open with any viewer),
//   2. extract SIFT-style descriptors from every image,
//   3. train an AKM codebook over the pooled descriptors,
//   4. encode each image's BoVW vector, build the ImageProof deployment,
//   5. query with a *transformed* variant (noise + brightness shift) of a
//      database image and verify the authenticated answer — the source
//      image should rank at or near the top.
//
// Build & run:  ./build/examples/image_pipeline

#include <cstdio>

#include "ann/kmeans.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "image/pgm_io.h"
#include "image/synth.h"
#include "sift/extractor.h"

using namespace imageproof;

namespace {

std::vector<std::vector<float>> Descriptors(const image::Image& img,
                                            const sift::SiftExtractor& ex) {
  std::vector<std::vector<float>> out;
  for (auto& f : ex.Extract(img)) out.push_back(std::move(f.descriptor));
  return out;
}

}  // namespace

int main() {
  constexpr int kNumImages = 60;
  constexpr int kCodebookSize = 400;

  // ----- 1. synthesize the image database ---------------------------------
  std::vector<image::Image> db_images;
  for (int i = 0; i < kNumImages; ++i) {
    db_images.push_back(image::SynthesizeImage(1000 + i, 128, 128));
  }
  (void)image::WritePgmFile("/tmp/imageproof_db0.pgm", db_images[0]);
  std::printf("1. synthesized %d images (sample at /tmp/imageproof_db0.pgm)\n",
              kNumImages);

  // ----- 2. SIFT-style features --------------------------------------------
  sift::SiftParams sift_params;
  sift_params.max_features = 80;
  sift::SiftExtractor extractor(sift_params);
  std::vector<std::vector<std::vector<float>>> db_features;
  ann::PointSet pool(sift_params.DescriptorDims(), 0);
  pool.set_dims(sift_params.DescriptorDims());
  size_t total = 0;
  for (const auto& img : db_images) {
    db_features.push_back(Descriptors(img, extractor));
    for (const auto& d : db_features.back()) pool.AppendRow(d);
    total += db_features.back().size();
  }
  std::printf("2. extracted %zu descriptors (%.1f per image)\n", total,
              static_cast<double>(total) / kNumImages);

  // ----- 3. AKM codebook ----------------------------------------------------
  ann::AkmParams akm;
  akm.num_clusters = kCodebookSize;
  akm.iterations = 5;
  ann::AkmResult trained = TrainCodebook(pool, akm);
  std::printf("3. trained %d-word codebook (quantization err %.4f)\n",
              kCodebookSize, trained.quantization_error);

  // ----- 4. encode + build the deployment ----------------------------------
  ann::ForestParams encode_forest;
  ann::RkdForest forest(trained.centers, encode_forest);
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  std::unordered_map<bovw::ImageId, Bytes> payloads;
  for (int i = 0; i < kNumImages; ++i) {
    corpus.emplace_back(i, bovw::EncodeWithForest(forest, db_features[i]));
    payloads[i] = db_images[i].Serialize();
  }
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  core::OwnerOutput owner = core::BuildDeployment(
      config, trained.centers, std::move(corpus), std::move(payloads));
  std::printf("4. ImageProof deployment built (ADS %zu bytes)\n",
              owner.package->AdsBytes());

  // ----- 5. query with a transformed variant -------------------------------
  constexpr int kTarget = 17;
  image::Image query_img = image::AddNoise(
      image::AdjustBrightness(db_images[kTarget], 1.08, -6), 3.0, 99);
  (void)image::WritePgmFile("/tmp/imageproof_query.pgm", query_img);
  auto query_features = Descriptors(query_img, extractor);
  std::printf("5. querying with a noisy/brightened variant of image %d "
              "(%zu features)\n",
              kTarget, query_features.size());

  core::ServiceProvider sp(owner.package.get());
  core::QueryResponse resp = sp.Query(query_features, 5);

  core::Client client(owner.public_params);
  auto verified = client.Verify(query_features, 5, resp.vo);
  if (!verified.ok()) {
    std::printf("client REJECTED the answer: %s\n",
                verified.status().message().c_str());
    return 1;
  }
  std::printf("   verified top-%zu:\n", verified->topk.size());
  bool found = false;
  for (size_t i = 0; i < verified->topk.size(); ++i) {
    const auto& si = verified->topk[i];
    std::printf("   #%zu  image %-4llu  similarity >= %.4f%s\n", i + 1,
                static_cast<unsigned long long>(si.id), si.score,
                si.id == kTarget ? "   <-- source image" : "");
    if (si.id == kTarget) found = true;
    // The verified payload decodes back to a real image.
    image::Image check;
    if (!image::Image::Deserialize(verified->images[i], &check)) {
      std::printf("   payload for %llu failed to decode!\n",
                  static_cast<unsigned long long>(si.id));
      return 1;
    }
  }
  std::printf(found ? "source image retrieved and authenticated — OK\n"
                    : "note: source image not in top-5 (retrieval, not "
                      "integrity, is approximate)\n");
  return 0;
}
