#!/usr/bin/env bash
# Full local check: configure, build, run the test suite with
# --output-on-failure, smoke-run every example, and optionally run the
# figure/ablation/micro benchmarks or a sanitizer pass.
#
#   scripts/check.sh            # build + ctest + examples (build/)
#   scripts/check.sh --bench    # additionally run every benchmark binary
#   scripts/check.sh --asan     # AddressSanitizer+UBSan build (build-asan/)
#   scripts/check.sh --tsan     # ThreadSanitizer build (build-tsan/), runs
#                               # the concurrency suite under TSan
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
BUILD_DIR=build
CMAKE_ARGS=()
GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

case "$MODE" in
  --asan)
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(-DIMAGEPROOF_ASAN=ON)
    ;;
  --tsan)
    BUILD_DIR=build-tsan
    CMAKE_ARGS+=(-DIMAGEPROOF_TSAN=ON)
    ;;
esac

cmake -B "$BUILD_DIR" "${GENERATOR[@]}" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$MODE" == "--tsan" ]]; then
  # The concurrency, determinism, and adversary suites are the ones that
  # exercise threads; running the whole suite under TSan adds time but no
  # extra thread coverage.
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'concurrency_test|golden_test|security_test'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure
fi

if [[ "$MODE" == "" || "$MODE" == "--bench" ]]; then
  echo "--- examples ---"
  "./$BUILD_DIR/examples/quickstart"
  "./$BUILD_DIR/examples/tamper_detection"
  "./$BUILD_DIR/examples/vo_breakdown"
  "./$BUILD_DIR/examples/image_pipeline"
  "./$BUILD_DIR/examples/deployment_cli"
fi

if [[ "$MODE" == "--bench" ]]; then
  echo "--- benchmarks ---"
  for b in "$BUILD_DIR"/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "===== $b ====="
    "$b"
  done
fi
echo "ALL CHECKS PASSED"
