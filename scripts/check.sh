#!/usr/bin/env bash
# Full local check: configure, build, run the test suite with
# --output-on-failure, smoke-run every example, and optionally run the
# figure/ablation/micro benchmarks, a metrics smoke pass, or a sanitizer
# build.
#
#   scripts/check.sh            # build + ctest + examples (build/)
#   scripts/check.sh --bench    # additionally run every benchmark binary
#                               # (fig*/abl_* also write BENCH_<name>.json
#                               # reports under build/bench-reports/)
#   scripts/check.sh --metrics  # fast metrics smoke: one smoke bench with
#                               # --json + deployment_cli --metrics, JSON
#                               # validated with python3
#   scripts/check.sh --asan     # AddressSanitizer+UBSan build (build-asan/)
#   scripts/check.sh --tsan     # ThreadSanitizer build (build-tsan/), runs
#                               # the concurrency + obs suites under TSan
#   scripts/check.sh --soak     # additionally run the chaos soak smoke
#                               # (bench/soak --smoke, ~20 s; SOAK_SECONDS=N
#                               # overrides the duration)
#   scripts/check.sh --lint     # clang-format --dry-run --Werror over all
#                               # first-party sources (no build)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
BUILD_DIR=build
CMAKE_ARGS=()
GENERATOR=()

# Format gate: no configure/build, just the committed .clang-format against
# every first-party source. CI's lint job runs exactly this; locally it
# skips (with a notice) when clang-format is not installed rather than
# failing a machine that cannot reproduce the check.
if [[ "$MODE" == "--lint" ]]; then
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "lint: clang-format not found; skipping (CI enforces this gate)"
    exit 0
  fi
  mapfile -t FILES < <(find src tests bench examples \
    -name '*.h' -o -name '*.cc' -o -name '*.cpp' | sort)
  clang-format --dry-run --Werror "${FILES[@]}"
  echo "lint: ${#FILES[@]} files clean"
  exit 0
fi

case "$MODE" in
  --asan)
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(-DIMAGEPROOF_ASAN=ON)
    ;;
  --tsan)
    BUILD_DIR=build-tsan
    CMAKE_ARGS+=(-DIMAGEPROOF_TSAN=ON)
    ;;
esac

fail() {
  echo "CHECK FAILED: $*" >&2
  exit 1
}

# Prefer Ninja, but never fight an existing cache configured with another
# generator — cmake hard-errors on the mismatch.
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)
fi

cmake -B "$BUILD_DIR" "${GENERATOR[@]}" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$MODE" == "--tsan" ]]; then
  # The concurrency, determinism, adversary, obs, parallel-Merkle, and
  # network-serving suites are the ones that exercise threads; running the
  # whole suite under TSan adds time but no extra thread coverage.
  # --no-tests=error: an empty selection is a broken regex, not a pass.
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
    -R 'concurrency_test|golden_test|security_test|obs_test|merkle_test|kernels_test|net_test|query_cache_test|shard_test'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error
fi

if [[ "$MODE" == "--soak" ]]; then
  echo "--- chaos soak ---"
  REPORT_DIR="$BUILD_DIR/bench-reports"
  mkdir -p "$REPORT_DIR"
  SOAK_ARGS=(--smoke)
  [[ -n "${SOAK_SECONDS:-}" ]] && SOAK_ARGS+=(--seconds "$SOAK_SECONDS")
  "./$BUILD_DIR/bench/soak" "${SOAK_ARGS[@]}" \
    --json "$REPORT_DIR/BENCH_soak.json" || fail "soak exited $?"
  python3 scripts/bench_delta.py \
    "$REPORT_DIR/BENCH_soak.json" BENCH_soak.json || true
fi

if [[ "$MODE" == "" || "$MODE" == "--soak" || "$MODE" == "--bench" || "$MODE" == "--metrics" ]]; then
  echo "--- examples ---"
  for ex in quickstart tamper_detection vo_breakdown image_pipeline \
            deployment_cli net_server; do
    "./$BUILD_DIR/examples/$ex" || fail "example $ex exited $?"
  done
fi

if [[ "$MODE" == "--metrics" ]]; then
  echo "--- metrics smoke ---"
  REPORT_DIR="$BUILD_DIR/bench-reports"
  mkdir -p "$REPORT_DIR"
  "./$BUILD_DIR/bench/fig06_bovw_sift" --smoke \
    --json "$REPORT_DIR/BENCH_fig06_bovw_sift.json" \
    || fail "fig06_bovw_sift --smoke exited $?"
  "./$BUILD_DIR/bench/abl_engine" --smoke \
    --json "$REPORT_DIR/BENCH_abl_engine.json" \
    || fail "abl_engine --smoke exited $?"
  "./$BUILD_DIR/examples/deployment_cli" query /tmp/imageproof_deployment \
    --metrics > "$REPORT_DIR/cli_metrics.txt" \
    || fail "deployment_cli --metrics exited $?"
  # The dumps must be well-formed JSON (an empty registry is {} under
  # -DIMAGEPROOF_NO_METRICS=ON, which still parses).
  python3 - "$REPORT_DIR" <<'EOF' || fail "metrics JSON did not parse"
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
for f in sorted(d.glob("BENCH_*.json")):
    json.load(open(f))
    print(f"ok: {f}")
last = open(d / "cli_metrics.txt").read().strip().splitlines()[-1]
json.loads(last)
print("ok: deployment_cli --metrics")
EOF
fi

if [[ "$MODE" == "--bench" ]]; then
  echo "--- benchmarks ---"
  REPORT_DIR="$BUILD_DIR/bench-reports"
  mkdir -p "$REPORT_DIR"
  for b in "$BUILD_DIR"/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    name="$(basename "$b")"
    echo "===== $name ====="
    case "$name" in
      fig*|abl_*)
        "$b" --json "$REPORT_DIR/BENCH_$name.json" \
          || fail "bench $name exited $?"
        ;;
      micro_*)
        # google-benchmark binaries wrapped by bench/micro_util.h: same
        # --json report, --smoke keeps the full sweep short.
        "$b" --smoke --json "$REPORT_DIR/BENCH_$name.json" \
          || fail "bench $name exited $?"
        ;;
      *)
        "$b" || fail "bench $name exited $?"
        ;;
    esac
  done
fi
echo "ALL CHECKS PASSED"
