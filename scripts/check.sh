#!/usr/bin/env bash
# Full local check: configure, build, run the test suite, smoke-run every
# example, and run the figure/ablation/micro benchmarks.
#
#   scripts/check.sh          # build + tests + examples
#   scripts/check.sh --bench  # additionally run every benchmark binary
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "--- examples ---"
./build/examples/quickstart
./build/examples/tamper_detection
./build/examples/vo_breakdown
./build/examples/image_pipeline
./build/examples/deployment_cli

if [[ "${1:-}" == "--bench" ]]; then
  echo "--- benchmarks ---"
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "===== $b ====="
    "$b"
  done
fi
echo "ALL CHECKS PASSED"
