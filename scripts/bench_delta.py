#!/usr/bin/env python3
"""One-line performance delta between a fresh bench report and a committed
baseline.

    scripts/bench_delta.py <fresh.json> <baseline.json>

Compares every numeric metric the two reports share: entries of "values"
by key, and "rows" matched on (figure, scheme, x_name, x). Prints a single
summary line — median and worst relative delta plus the metric behind the
worst — so CI logs carry a scannable drift signal next to the uploaded
artifacts. A smoke-mode report typically shares only part of a full-run
baseline's keys; the comparable count makes that visible instead of
silently comparing nothing.

Informational by default: exits 0 regardless of drift (smoke runs on shared
CI runners are too noisy to gate on), exits 2 only when a report is
missing/unreadable.
"""

import json
import statistics
import sys

ROW_KEY = ("figure", "scheme", "x_name", "x")
ROW_METRICS = (
    "sp_bovw_ms", "sp_inv_ms", "client_bovw_ms", "client_inv_ms",
    "bovw_vo_kb", "inv_vo_kb",
)


def metrics(report):
    out = {}
    for key, value in report.get("values", {}).items():
        if isinstance(value, (int, float)):
            out[f"values.{key}"] = float(value)
    for row in report.get("rows", []):
        tag = "/".join(str(row.get(k, "?")) for k in ROW_KEY)
        for m in ROW_METRICS:
            value = row.get(m)
            if isinstance(value, (int, float)):
                out[f"rows.{tag}.{m}"] = float(value)
    return out


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            fresh = json.load(f)
        with open(argv[2]) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: {e}", file=sys.stderr)
        return 2

    name = fresh.get("bench", argv[1])
    fresh_m, base_m = metrics(fresh), metrics(base)
    deltas = {}
    for key, fv in fresh_m.items():
        bv = base_m.get(key)
        if bv is None or bv == 0:
            continue
        deltas[key] = (fv - bv) / abs(bv)
    if not deltas:
        print(f"bench_delta [{name}]: no comparable metrics "
              f"({len(fresh_m)} fresh vs {len(base_m)} baseline)")
        return 0

    worst_key = max(deltas, key=lambda k: abs(deltas[k]))
    med = statistics.median(deltas.values())
    mode = "smoke-vs-baseline" if fresh.get("smoke") and not base.get("smoke") \
        else "like-for-like"
    print(f"bench_delta [{name}]: {len(deltas)} comparable metrics "
          f"({mode}), median {med:+.1%}, worst {deltas[worst_key]:+.1%} "
          f"({worst_key})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
