# Empty dependencies file for abl_check_batch.
# This may be replaced when dependencies are built.
