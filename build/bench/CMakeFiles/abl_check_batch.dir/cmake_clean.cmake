file(REMOVE_RECURSE
  "CMakeFiles/abl_check_batch.dir/abl_check_batch.cc.o"
  "CMakeFiles/abl_check_batch.dir/abl_check_batch.cc.o.d"
  "abl_check_batch"
  "abl_check_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_check_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
