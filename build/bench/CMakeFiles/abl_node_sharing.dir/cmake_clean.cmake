file(REMOVE_RECURSE
  "CMakeFiles/abl_node_sharing.dir/abl_node_sharing.cc.o"
  "CMakeFiles/abl_node_sharing.dir/abl_node_sharing.cc.o.d"
  "abl_node_sharing"
  "abl_node_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_node_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
