# Empty dependencies file for abl_node_sharing.
# This may be replaced when dependencies are built.
