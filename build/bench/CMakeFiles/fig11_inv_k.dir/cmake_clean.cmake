file(REMOVE_RECURSE
  "CMakeFiles/fig11_inv_k.dir/fig11_inv_k.cc.o"
  "CMakeFiles/fig11_inv_k.dir/fig11_inv_k.cc.o.d"
  "fig11_inv_k"
  "fig11_inv_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_inv_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
