# Empty compiler generated dependencies file for fig11_inv_k.
# This may be replaced when dependencies are built.
