file(REMOVE_RECURSE
  "CMakeFiles/fig08_bovw_codebook.dir/fig08_bovw_codebook.cc.o"
  "CMakeFiles/fig08_bovw_codebook.dir/fig08_bovw_codebook.cc.o.d"
  "fig08_bovw_codebook"
  "fig08_bovw_codebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_bovw_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
