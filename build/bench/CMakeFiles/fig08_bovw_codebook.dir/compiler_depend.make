# Empty compiler generated dependencies file for fig08_bovw_codebook.
# This may be replaced when dependencies are built.
