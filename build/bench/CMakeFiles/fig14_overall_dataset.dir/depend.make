# Empty dependencies file for fig14_overall_dataset.
# This may be replaced when dependencies are built.
