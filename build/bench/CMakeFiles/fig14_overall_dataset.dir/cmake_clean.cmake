file(REMOVE_RECURSE
  "CMakeFiles/fig14_overall_dataset.dir/fig14_overall_dataset.cc.o"
  "CMakeFiles/fig14_overall_dataset.dir/fig14_overall_dataset.cc.o.d"
  "fig14_overall_dataset"
  "fig14_overall_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overall_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
