# Empty dependencies file for fig07_bovw_surf.
# This may be replaced when dependencies are built.
