file(REMOVE_RECURSE
  "CMakeFiles/fig07_bovw_surf.dir/fig07_bovw_surf.cc.o"
  "CMakeFiles/fig07_bovw_surf.dir/fig07_bovw_surf.cc.o.d"
  "fig07_bovw_surf"
  "fig07_bovw_surf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bovw_surf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
