# Empty dependencies file for micro_merkle.
# This may be replaced when dependencies are built.
