file(REMOVE_RECURSE
  "CMakeFiles/micro_merkle.dir/micro_merkle.cc.o"
  "CMakeFiles/micro_merkle.dir/micro_merkle.cc.o.d"
  "micro_merkle"
  "micro_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
