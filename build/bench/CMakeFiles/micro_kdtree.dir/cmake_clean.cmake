file(REMOVE_RECURSE
  "CMakeFiles/micro_kdtree.dir/micro_kdtree.cc.o"
  "CMakeFiles/micro_kdtree.dir/micro_kdtree.cc.o.d"
  "micro_kdtree"
  "micro_kdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
