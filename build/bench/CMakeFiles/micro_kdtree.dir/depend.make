# Empty dependencies file for micro_kdtree.
# This may be replaced when dependencies are built.
