file(REMOVE_RECURSE
  "CMakeFiles/abl_lazy_topk.dir/abl_lazy_topk.cc.o"
  "CMakeFiles/abl_lazy_topk.dir/abl_lazy_topk.cc.o.d"
  "abl_lazy_topk"
  "abl_lazy_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lazy_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
