# Empty compiler generated dependencies file for abl_lazy_topk.
# This may be replaced when dependencies are built.
