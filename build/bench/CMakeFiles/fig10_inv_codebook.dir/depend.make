# Empty dependencies file for fig10_inv_codebook.
# This may be replaced when dependencies are built.
