file(REMOVE_RECURSE
  "CMakeFiles/fig10_inv_codebook.dir/fig10_inv_codebook.cc.o"
  "CMakeFiles/fig10_inv_codebook.dir/fig10_inv_codebook.cc.o.d"
  "fig10_inv_codebook"
  "fig10_inv_codebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_inv_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
