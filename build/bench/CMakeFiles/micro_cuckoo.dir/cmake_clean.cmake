file(REMOVE_RECURSE
  "CMakeFiles/micro_cuckoo.dir/micro_cuckoo.cc.o"
  "CMakeFiles/micro_cuckoo.dir/micro_cuckoo.cc.o.d"
  "micro_cuckoo"
  "micro_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
