# Empty compiler generated dependencies file for micro_cuckoo.
# This may be replaced when dependencies are built.
