# Empty compiler generated dependencies file for fig09_inv_features.
# This may be replaced when dependencies are built.
