file(REMOVE_RECURSE
  "CMakeFiles/fig09_inv_features.dir/fig09_inv_features.cc.o"
  "CMakeFiles/fig09_inv_features.dir/fig09_inv_features.cc.o.d"
  "fig09_inv_features"
  "fig09_inv_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_inv_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
