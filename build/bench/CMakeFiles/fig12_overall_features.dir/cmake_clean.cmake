file(REMOVE_RECURSE
  "CMakeFiles/fig12_overall_features.dir/fig12_overall_features.cc.o"
  "CMakeFiles/fig12_overall_features.dir/fig12_overall_features.cc.o.d"
  "fig12_overall_features"
  "fig12_overall_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overall_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
