# Empty dependencies file for fig12_overall_features.
# This may be replaced when dependencies are built.
