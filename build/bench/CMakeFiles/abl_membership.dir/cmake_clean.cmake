file(REMOVE_RECURSE
  "CMakeFiles/abl_membership.dir/abl_membership.cc.o"
  "CMakeFiles/abl_membership.dir/abl_membership.cc.o.d"
  "abl_membership"
  "abl_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
