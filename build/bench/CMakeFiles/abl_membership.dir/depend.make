# Empty dependencies file for abl_membership.
# This may be replaced when dependencies are built.
