# Empty dependencies file for abl_updates.
# This may be replaced when dependencies are built.
