file(REMOVE_RECURSE
  "CMakeFiles/abl_updates.dir/abl_updates.cc.o"
  "CMakeFiles/abl_updates.dir/abl_updates.cc.o.d"
  "abl_updates"
  "abl_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
