file(REMOVE_RECURSE
  "CMakeFiles/fig13_overall_codebook.dir/fig13_overall_codebook.cc.o"
  "CMakeFiles/fig13_overall_codebook.dir/fig13_overall_codebook.cc.o.d"
  "fig13_overall_codebook"
  "fig13_overall_codebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overall_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
