# Empty dependencies file for fig13_overall_codebook.
# This may be replaced when dependencies are built.
