file(REMOVE_RECURSE
  "CMakeFiles/abl_filter_bounds.dir/abl_filter_bounds.cc.o"
  "CMakeFiles/abl_filter_bounds.dir/abl_filter_bounds.cc.o.d"
  "abl_filter_bounds"
  "abl_filter_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_filter_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
