# Empty dependencies file for abl_filter_bounds.
# This may be replaced when dependencies are built.
