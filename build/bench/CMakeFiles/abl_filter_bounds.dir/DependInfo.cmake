
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_filter_bounds.cc" "bench/CMakeFiles/abl_filter_bounds.dir/abl_filter_bounds.cc.o" "gcc" "bench/CMakeFiles/abl_filter_bounds.dir/abl_filter_bounds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ip_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mrkd/CMakeFiles/ip_mrkd.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/ip_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/freqgroup/CMakeFiles/ip_freqgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/invindex/CMakeFiles/ip_invindex.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/ip_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ip_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bovw/CMakeFiles/ip_bovw.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/ip_ann.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
