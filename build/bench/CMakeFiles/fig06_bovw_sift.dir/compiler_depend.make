# Empty compiler generated dependencies file for fig06_bovw_sift.
# This may be replaced when dependencies are built.
