file(REMOVE_RECURSE
  "CMakeFiles/fig06_bovw_sift.dir/fig06_bovw_sift.cc.o"
  "CMakeFiles/fig06_bovw_sift.dir/fig06_bovw_sift.cc.o.d"
  "fig06_bovw_sift"
  "fig06_bovw_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bovw_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
