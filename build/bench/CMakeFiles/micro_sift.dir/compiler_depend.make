# Empty compiler generated dependencies file for micro_sift.
# This may be replaced when dependencies are built.
