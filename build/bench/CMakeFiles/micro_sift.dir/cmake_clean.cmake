file(REMOVE_RECURSE
  "CMakeFiles/micro_sift.dir/micro_sift.cc.o"
  "CMakeFiles/micro_sift.dir/micro_sift.cc.o.d"
  "micro_sift"
  "micro_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
