# Empty dependencies file for ip_mrkd.
# This may be replaced when dependencies are built.
