file(REMOVE_RECURSE
  "CMakeFiles/ip_mrkd.dir/commit.cc.o"
  "CMakeFiles/ip_mrkd.dir/commit.cc.o.d"
  "CMakeFiles/ip_mrkd.dir/mrkd_tree.cc.o"
  "CMakeFiles/ip_mrkd.dir/mrkd_tree.cc.o.d"
  "CMakeFiles/ip_mrkd.dir/search.cc.o"
  "CMakeFiles/ip_mrkd.dir/search.cc.o.d"
  "CMakeFiles/ip_mrkd.dir/verify.cc.o"
  "CMakeFiles/ip_mrkd.dir/verify.cc.o.d"
  "libip_mrkd.a"
  "libip_mrkd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_mrkd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
