
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrkd/commit.cc" "src/mrkd/CMakeFiles/ip_mrkd.dir/commit.cc.o" "gcc" "src/mrkd/CMakeFiles/ip_mrkd.dir/commit.cc.o.d"
  "/root/repo/src/mrkd/mrkd_tree.cc" "src/mrkd/CMakeFiles/ip_mrkd.dir/mrkd_tree.cc.o" "gcc" "src/mrkd/CMakeFiles/ip_mrkd.dir/mrkd_tree.cc.o.d"
  "/root/repo/src/mrkd/search.cc" "src/mrkd/CMakeFiles/ip_mrkd.dir/search.cc.o" "gcc" "src/mrkd/CMakeFiles/ip_mrkd.dir/search.cc.o.d"
  "/root/repo/src/mrkd/verify.cc" "src/mrkd/CMakeFiles/ip_mrkd.dir/verify.cc.o" "gcc" "src/mrkd/CMakeFiles/ip_mrkd.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ann/CMakeFiles/ip_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/ip_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ip_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
