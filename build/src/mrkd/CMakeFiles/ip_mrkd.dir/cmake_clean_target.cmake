file(REMOVE_RECURSE
  "libip_mrkd.a"
)
