# Empty dependencies file for ip_invindex.
# This may be replaced when dependencies are built.
