file(REMOVE_RECURSE
  "CMakeFiles/ip_invindex.dir/bounds.cc.o"
  "CMakeFiles/ip_invindex.dir/bounds.cc.o.d"
  "CMakeFiles/ip_invindex.dir/merkle_inv_index.cc.o"
  "CMakeFiles/ip_invindex.dir/merkle_inv_index.cc.o.d"
  "CMakeFiles/ip_invindex.dir/search.cc.o"
  "CMakeFiles/ip_invindex.dir/search.cc.o.d"
  "CMakeFiles/ip_invindex.dir/verify.cc.o"
  "CMakeFiles/ip_invindex.dir/verify.cc.o.d"
  "libip_invindex.a"
  "libip_invindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_invindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
