file(REMOVE_RECURSE
  "libip_invindex.a"
)
