file(REMOVE_RECURSE
  "libip_merkle.a"
)
