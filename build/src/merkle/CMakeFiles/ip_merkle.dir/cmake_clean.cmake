file(REMOVE_RECURSE
  "CMakeFiles/ip_merkle.dir/merkle_tree.cc.o"
  "CMakeFiles/ip_merkle.dir/merkle_tree.cc.o.d"
  "libip_merkle.a"
  "libip_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
