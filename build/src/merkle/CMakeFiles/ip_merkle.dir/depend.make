# Empty dependencies file for ip_merkle.
# This may be replaced when dependencies are built.
