file(REMOVE_RECURSE
  "libip_storage.a"
)
