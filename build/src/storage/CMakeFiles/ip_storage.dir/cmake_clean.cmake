file(REMOVE_RECURSE
  "CMakeFiles/ip_storage.dir/serializer.cc.o"
  "CMakeFiles/ip_storage.dir/serializer.cc.o.d"
  "libip_storage.a"
  "libip_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
