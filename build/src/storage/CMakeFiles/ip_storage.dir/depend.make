# Empty dependencies file for ip_storage.
# This may be replaced when dependencies are built.
