file(REMOVE_RECURSE
  "libip_sift.a"
)
