file(REMOVE_RECURSE
  "CMakeFiles/ip_sift.dir/extractor.cc.o"
  "CMakeFiles/ip_sift.dir/extractor.cc.o.d"
  "CMakeFiles/ip_sift.dir/gaussian.cc.o"
  "CMakeFiles/ip_sift.dir/gaussian.cc.o.d"
  "libip_sift.a"
  "libip_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
