
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sift/extractor.cc" "src/sift/CMakeFiles/ip_sift.dir/extractor.cc.o" "gcc" "src/sift/CMakeFiles/ip_sift.dir/extractor.cc.o.d"
  "/root/repo/src/sift/gaussian.cc" "src/sift/CMakeFiles/ip_sift.dir/gaussian.cc.o" "gcc" "src/sift/CMakeFiles/ip_sift.dir/gaussian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/ip_image.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ip_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
