# Empty compiler generated dependencies file for ip_sift.
# This may be replaced when dependencies are built.
