
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/freqgroup/fg_index.cc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_index.cc.o" "gcc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_index.cc.o.d"
  "/root/repo/src/freqgroup/fg_search.cc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_search.cc.o" "gcc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_search.cc.o.d"
  "/root/repo/src/freqgroup/fg_verify.cc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_verify.cc.o" "gcc" "src/freqgroup/CMakeFiles/ip_freqgroup.dir/fg_verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/invindex/CMakeFiles/ip_invindex.dir/DependInfo.cmake"
  "/root/repo/build/src/bovw/CMakeFiles/ip_bovw.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/ip_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/ip_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ip_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
