file(REMOVE_RECURSE
  "libip_freqgroup.a"
)
