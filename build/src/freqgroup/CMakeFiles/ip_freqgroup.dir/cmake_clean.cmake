file(REMOVE_RECURSE
  "CMakeFiles/ip_freqgroup.dir/fg_index.cc.o"
  "CMakeFiles/ip_freqgroup.dir/fg_index.cc.o.d"
  "CMakeFiles/ip_freqgroup.dir/fg_search.cc.o"
  "CMakeFiles/ip_freqgroup.dir/fg_search.cc.o.d"
  "CMakeFiles/ip_freqgroup.dir/fg_verify.cc.o"
  "CMakeFiles/ip_freqgroup.dir/fg_verify.cc.o.d"
  "libip_freqgroup.a"
  "libip_freqgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_freqgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
