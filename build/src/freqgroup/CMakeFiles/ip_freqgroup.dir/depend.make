# Empty dependencies file for ip_freqgroup.
# This may be replaced when dependencies are built.
