file(REMOVE_RECURSE
  "libip_ann.a"
)
