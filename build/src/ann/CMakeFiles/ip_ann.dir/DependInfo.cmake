
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/kmeans.cc" "src/ann/CMakeFiles/ip_ann.dir/kmeans.cc.o" "gcc" "src/ann/CMakeFiles/ip_ann.dir/kmeans.cc.o.d"
  "/root/repo/src/ann/rkd_forest.cc" "src/ann/CMakeFiles/ip_ann.dir/rkd_forest.cc.o" "gcc" "src/ann/CMakeFiles/ip_ann.dir/rkd_forest.cc.o.d"
  "/root/repo/src/ann/rkd_tree.cc" "src/ann/CMakeFiles/ip_ann.dir/rkd_tree.cc.o" "gcc" "src/ann/CMakeFiles/ip_ann.dir/rkd_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
