# Empty compiler generated dependencies file for ip_ann.
# This may be replaced when dependencies are built.
