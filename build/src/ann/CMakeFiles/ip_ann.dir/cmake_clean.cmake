file(REMOVE_RECURSE
  "CMakeFiles/ip_ann.dir/kmeans.cc.o"
  "CMakeFiles/ip_ann.dir/kmeans.cc.o.d"
  "CMakeFiles/ip_ann.dir/rkd_forest.cc.o"
  "CMakeFiles/ip_ann.dir/rkd_forest.cc.o.d"
  "CMakeFiles/ip_ann.dir/rkd_tree.cc.o"
  "CMakeFiles/ip_ann.dir/rkd_tree.cc.o.d"
  "libip_ann.a"
  "libip_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
