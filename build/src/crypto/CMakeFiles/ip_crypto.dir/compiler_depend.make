# Empty compiler generated dependencies file for ip_crypto.
# This may be replaced when dependencies are built.
