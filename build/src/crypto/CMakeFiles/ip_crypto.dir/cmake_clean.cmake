file(REMOVE_RECURSE
  "CMakeFiles/ip_crypto.dir/bignum.cc.o"
  "CMakeFiles/ip_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/ip_crypto.dir/rsa.cc.o"
  "CMakeFiles/ip_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/ip_crypto.dir/sha256.cc.o"
  "CMakeFiles/ip_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/ip_crypto.dir/sha3.cc.o"
  "CMakeFiles/ip_crypto.dir/sha3.cc.o.d"
  "libip_crypto.a"
  "libip_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
