file(REMOVE_RECURSE
  "libip_crypto.a"
)
