file(REMOVE_RECURSE
  "libip_cuckoo.a"
)
