# Empty compiler generated dependencies file for ip_cuckoo.
# This may be replaced when dependencies are built.
