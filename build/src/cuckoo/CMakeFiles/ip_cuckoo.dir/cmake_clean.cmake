file(REMOVE_RECURSE
  "CMakeFiles/ip_cuckoo.dir/counting_bloom.cc.o"
  "CMakeFiles/ip_cuckoo.dir/counting_bloom.cc.o.d"
  "CMakeFiles/ip_cuckoo.dir/cuckoo_filter.cc.o"
  "CMakeFiles/ip_cuckoo.dir/cuckoo_filter.cc.o.d"
  "libip_cuckoo.a"
  "libip_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
