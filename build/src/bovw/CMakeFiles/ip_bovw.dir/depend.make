# Empty dependencies file for ip_bovw.
# This may be replaced when dependencies are built.
