file(REMOVE_RECURSE
  "CMakeFiles/ip_bovw.dir/bovw.cc.o"
  "CMakeFiles/ip_bovw.dir/bovw.cc.o.d"
  "libip_bovw.a"
  "libip_bovw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_bovw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
