file(REMOVE_RECURSE
  "libip_bovw.a"
)
