# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("image")
subdirs("sift")
subdirs("ann")
subdirs("merkle")
subdirs("cuckoo")
subdirs("bovw")
subdirs("mrkd")
subdirs("invindex")
subdirs("freqgroup")
subdirs("core")
subdirs("workload")
subdirs("storage")
