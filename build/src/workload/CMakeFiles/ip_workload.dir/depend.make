# Empty dependencies file for ip_workload.
# This may be replaced when dependencies are built.
