file(REMOVE_RECURSE
  "libip_workload.a"
)
