file(REMOVE_RECURSE
  "CMakeFiles/ip_workload.dir/synthetic.cc.o"
  "CMakeFiles/ip_workload.dir/synthetic.cc.o.d"
  "libip_workload.a"
  "libip_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
