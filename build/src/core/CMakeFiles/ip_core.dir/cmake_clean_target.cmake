file(REMOVE_RECURSE
  "libip_core.a"
)
