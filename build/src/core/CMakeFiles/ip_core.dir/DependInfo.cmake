
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cc" "src/core/CMakeFiles/ip_core.dir/adversary.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/adversary.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/ip_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/client.cc.o.d"
  "/root/repo/src/core/owner.cc" "src/core/CMakeFiles/ip_core.dir/owner.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/owner.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/ip_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/server.cc.o.d"
  "/root/repo/src/core/update.cc" "src/core/CMakeFiles/ip_core.dir/update.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/update.cc.o.d"
  "/root/repo/src/core/vo.cc" "src/core/CMakeFiles/ip_core.dir/vo.cc.o" "gcc" "src/core/CMakeFiles/ip_core.dir/vo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mrkd/CMakeFiles/ip_mrkd.dir/DependInfo.cmake"
  "/root/repo/build/src/invindex/CMakeFiles/ip_invindex.dir/DependInfo.cmake"
  "/root/repo/build/src/freqgroup/CMakeFiles/ip_freqgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ip_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/ip_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/bovw/CMakeFiles/ip_bovw.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/ip_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/ip_cuckoo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
