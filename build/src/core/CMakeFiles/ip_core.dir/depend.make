# Empty dependencies file for ip_core.
# This may be replaced when dependencies are built.
