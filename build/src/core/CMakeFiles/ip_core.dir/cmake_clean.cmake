file(REMOVE_RECURSE
  "CMakeFiles/ip_core.dir/adversary.cc.o"
  "CMakeFiles/ip_core.dir/adversary.cc.o.d"
  "CMakeFiles/ip_core.dir/client.cc.o"
  "CMakeFiles/ip_core.dir/client.cc.o.d"
  "CMakeFiles/ip_core.dir/owner.cc.o"
  "CMakeFiles/ip_core.dir/owner.cc.o.d"
  "CMakeFiles/ip_core.dir/server.cc.o"
  "CMakeFiles/ip_core.dir/server.cc.o.d"
  "CMakeFiles/ip_core.dir/update.cc.o"
  "CMakeFiles/ip_core.dir/update.cc.o.d"
  "CMakeFiles/ip_core.dir/vo.cc.o"
  "CMakeFiles/ip_core.dir/vo.cc.o.d"
  "libip_core.a"
  "libip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
