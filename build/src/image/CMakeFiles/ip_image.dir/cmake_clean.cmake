file(REMOVE_RECURSE
  "CMakeFiles/ip_image.dir/image.cc.o"
  "CMakeFiles/ip_image.dir/image.cc.o.d"
  "CMakeFiles/ip_image.dir/pgm_io.cc.o"
  "CMakeFiles/ip_image.dir/pgm_io.cc.o.d"
  "CMakeFiles/ip_image.dir/synth.cc.o"
  "CMakeFiles/ip_image.dir/synth.cc.o.d"
  "libip_image.a"
  "libip_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
