# Empty compiler generated dependencies file for ip_image.
# This may be replaced when dependencies are built.
