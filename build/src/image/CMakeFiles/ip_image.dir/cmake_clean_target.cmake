file(REMOVE_RECURSE
  "libip_image.a"
)
