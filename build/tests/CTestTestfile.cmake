# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/sift_test[1]_include.cmake")
include("/root/repo/build/tests/ann_test[1]_include.cmake")
include("/root/repo/build/tests/merkle_test[1]_include.cmake")
include("/root/repo/build/tests/cuckoo_test[1]_include.cmake")
include("/root/repo/build/tests/bovw_test[1]_include.cmake")
include("/root/repo/build/tests/mrkd_test[1]_include.cmake")
include("/root/repo/build/tests/invindex_test[1]_include.cmake")
include("/root/repo/build/tests/freqgroup_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
