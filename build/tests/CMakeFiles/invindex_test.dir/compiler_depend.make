# Empty compiler generated dependencies file for invindex_test.
# This may be replaced when dependencies are built.
