file(REMOVE_RECURSE
  "CMakeFiles/invindex_test.dir/invindex_test.cc.o"
  "CMakeFiles/invindex_test.dir/invindex_test.cc.o.d"
  "invindex_test"
  "invindex_test.pdb"
  "invindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
