file(REMOVE_RECURSE
  "CMakeFiles/bovw_test.dir/bovw_test.cc.o"
  "CMakeFiles/bovw_test.dir/bovw_test.cc.o.d"
  "bovw_test"
  "bovw_test.pdb"
  "bovw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bovw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
