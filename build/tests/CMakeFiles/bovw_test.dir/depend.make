# Empty dependencies file for bovw_test.
# This may be replaced when dependencies are built.
