file(REMOVE_RECURSE
  "CMakeFiles/freqgroup_test.dir/freqgroup_test.cc.o"
  "CMakeFiles/freqgroup_test.dir/freqgroup_test.cc.o.d"
  "freqgroup_test"
  "freqgroup_test.pdb"
  "freqgroup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freqgroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
