# Empty compiler generated dependencies file for freqgroup_test.
# This may be replaced when dependencies are built.
