file(REMOVE_RECURSE
  "CMakeFiles/mrkd_test.dir/mrkd_test.cc.o"
  "CMakeFiles/mrkd_test.dir/mrkd_test.cc.o.d"
  "mrkd_test"
  "mrkd_test.pdb"
  "mrkd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrkd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
