# Empty dependencies file for mrkd_test.
# This may be replaced when dependencies are built.
