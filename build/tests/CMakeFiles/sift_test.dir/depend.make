# Empty dependencies file for sift_test.
# This may be replaced when dependencies are built.
