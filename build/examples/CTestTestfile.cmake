# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/image_pipeline")
set_tests_properties(example_image_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tamper_detection "/root/repo/build/examples/tamper_detection")
set_tests_properties(example_tamper_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vo_breakdown "/root/repo/build/examples/vo_breakdown")
set_tests_properties(example_vo_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deployment_cli "/root/repo/build/examples/deployment_cli")
set_tests_properties(example_deployment_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
