file(REMOVE_RECURSE
  "CMakeFiles/deployment_cli.dir/deployment_cli.cpp.o"
  "CMakeFiles/deployment_cli.dir/deployment_cli.cpp.o.d"
  "deployment_cli"
  "deployment_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
