# Empty compiler generated dependencies file for deployment_cli.
# This may be replaced when dependencies are built.
