file(REMOVE_RECURSE
  "CMakeFiles/vo_breakdown.dir/vo_breakdown.cpp.o"
  "CMakeFiles/vo_breakdown.dir/vo_breakdown.cpp.o.d"
  "vo_breakdown"
  "vo_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vo_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
