# Empty compiler generated dependencies file for vo_breakdown.
# This may be replaced when dependencies are built.
