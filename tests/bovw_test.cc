// Tests for BoVW encoding, the tf-idf impact/similarity math of Section
// II-A, and the brute-force top-k oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "bovw/bovw.h"
#include "common/random.h"

namespace imageproof::bovw {
namespace {

TEST(BovwVectorTest, L2NormAndLookup) {
  BovwVector v;
  v.entries = {{1, 3}, {4, 4}};
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_EQ(v.FrequencyOf(1), 3u);
  EXPECT_EQ(v.FrequencyOf(4), 4u);
  EXPECT_EQ(v.FrequencyOf(2), 0u);
  EXPECT_DOUBLE_EQ(BovwVector{}.L2Norm(), 0.0);
}

TEST(BovwVectorTest, CountAssignments) {
  BovwVector v = CountAssignments({5, 2, 5, 5, 2, 9});
  ASSERT_EQ(v.entries.size(), 3u);
  EXPECT_EQ(v.entries[0], (std::pair<ClusterId, uint32_t>{2, 2}));
  EXPECT_EQ(v.entries[1], (std::pair<ClusterId, uint32_t>{5, 3}));
  EXPECT_EQ(v.entries[2], (std::pair<ClusterId, uint32_t>{9, 1}));
}

TEST(ClusterWeightsTest, IdfFormula) {
  // w_c = ln(n_D / n_{D,c}).
  ClusterWeights w(100, {100, 50, 1, 0});
  EXPECT_DOUBLE_EQ(w.WeightOf(0), 0.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(1), std::log(2.0));
  EXPECT_DOUBLE_EQ(w.WeightOf(2), std::log(100.0));
  EXPECT_DOUBLE_EQ(w.WeightOf(3), 0.0);   // unseen cluster
  EXPECT_DOUBLE_EQ(w.WeightOf(99), 0.0);  // out of range
}

TEST(ClusterWeightsTest, FromCorpus) {
  std::vector<BovwVector> corpus(4);
  corpus[0].entries = {{0, 2}, {1, 1}};
  corpus[1].entries = {{0, 5}};
  corpus[2].entries = {{1, 1}, {2, 3}};
  corpus[3].entries = {{2, 1}};
  ClusterWeights w = ClusterWeights::FromCorpus(3, corpus);
  EXPECT_DOUBLE_EQ(w.WeightOf(0), std::log(4.0 / 2.0));
  EXPECT_DOUBLE_EQ(w.WeightOf(1), std::log(4.0 / 2.0));
  EXPECT_DOUBLE_EQ(w.WeightOf(2), std::log(4.0 / 2.0));
}

TEST(SimilarityTest, PaperExampleStructure) {
  // Two sparse impact vectors overlapping on one cluster.
  std::vector<std::pair<ClusterId, double>> a = {{1, 0.5}, {3, 0.2}};
  std::vector<std::pair<ClusterId, double>> b = {{2, 0.9}, {3, 0.4}};
  EXPECT_DOUBLE_EQ(Similarity(a, b), 0.2 * 0.4);
  EXPECT_DOUBLE_EQ(Similarity(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(Similarity(a, a), 0.25 + 0.04);
}

TEST(ImpactTest, MatchesDefinition) {
  // p_{I,c} = w_c * f / ||B_I||.
  BovwVector v;
  v.entries = {{0, 3}, {1, 4}};  // norm 5
  ClusterWeights w(10, {5, 2});
  auto impact = ImpactVector(v, w);
  ASSERT_EQ(impact.size(), 2u);
  EXPECT_DOUBLE_EQ(impact[0].second, std::log(2.0) * 3 / 5.0);
  EXPECT_DOUBLE_EQ(impact[1].second, std::log(5.0) * 4 / 5.0);
}

TEST(ImpactTest, ZeroNormYieldsZeroImpacts) {
  EXPECT_DOUBLE_EQ(ImpactValue(1.0, 1, 0.0), 0.0);
}

TEST(BruteForceTest, SelfIsMostSimilar) {
  Rng rng(3);
  std::vector<std::pair<ImageId, BovwVector>> corpus;
  for (ImageId id = 0; id < 50; ++id) {
    BovwVector v;
    for (ClusterId c = 0; c < 30; ++c) {
      if (rng.NextDouble() < 0.2) {
        v.entries.emplace_back(c, 1 + static_cast<uint32_t>(rng.NextBounded(5)));
      }
    }
    if (v.entries.empty()) v.entries.emplace_back(0, 1);
    corpus.emplace_back(id, v);
  }
  ClusterWeights weights = [&] {
    std::vector<BovwVector> vecs;
    for (auto& [id, v] : corpus) vecs.push_back(v);
    return ClusterWeights::FromCorpus(30, vecs);
  }();
  // Querying with an image's own vector should put that image first
  // (cosine similarity with itself is maximal for normalized vectors).
  for (ImageId probe : {ImageId{0}, ImageId{17}, ImageId{49}}) {
    auto top = BruteForceTopK(corpus, corpus[probe].second, weights, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].id, probe);
  }
}

TEST(BruteForceTest, ScoresDescendAndTieBreakOnId) {
  std::vector<std::pair<ImageId, BovwVector>> corpus;
  BovwVector same;
  same.entries = {{0, 1}};
  for (ImageId id = 0; id < 5; ++id) corpus.emplace_back(id, same);
  ClusterWeights weights(5, {2});
  BovwVector q;
  q.entries = {{0, 2}};
  auto top = BruteForceTopK(corpus, q, weights, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
    EXPECT_LT(top[i - 1].id, top[i].id) << "tie-break by ascending id";
  }
}

TEST(BruteForceTest, KLargerThanCorpus) {
  std::vector<std::pair<ImageId, BovwVector>> corpus;
  BovwVector v;
  v.entries = {{0, 1}};
  corpus.emplace_back(9, v);
  ClusterWeights weights(1, {1});
  auto top = BruteForceTopK(corpus, v, weights, 10);
  EXPECT_EQ(top.size(), 1u);
}

}  // namespace
}  // namespace imageproof::bovw
