// End-to-end resilience: the PR-9 failure-handling stack exercised as a
// system. Drain keeps every admitted query's response intact while new
// work gets a clean kUnavailable; RetryingClient turns a drain/restart
// cycle into latency instead of an error; the epoch janitor GC never
// deletes anything CURRENT could name; and the scrubber detects bytes
// rotting under a live engine and rolls it back onto the newest verifiable
// epoch — with the served VO bytes identical to a cold open of the
// original content. The common thread: no failure mode may weaken
// authentication, so every recovery path ends in Client::Verify.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/fault.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "net/client.h"
#include "net/retry.h"
#include "net/server.h"
#include "net/wire.h"
#include "storage/epoch_janitor.h"
#include "storage/file_io.h"
#include "storage/package_store.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

using std::chrono::milliseconds;

core::OwnerOutput BuildSmallDeployment(uint64_t seed = 7,
                                       size_t num_images = 150) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = 64;
  cp.seed = seed;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) {
    blobs[id] = workload::GenerateImageBlob(id);
  }
  workload::CodebookParams cbp;
  cbp.num_clusters = 64;
  cbp.dims = 8;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs));
}

std::string TempDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  (void)system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  return dir;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Drain + retry
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, DrainFlushesInFlightRejectsNewAndRetryRecovers) {
  core::OwnerOutput owner = BuildSmallDeployment();
  auto package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
  auto features = workload::GenerateQueryFeatures(package->codebook, 8, 0.3, 3);

  core::EngineOptions eo;
  eo.num_workers = 2;
  core::QueryEngine engine(package, owner.public_params, eo);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Slow queries down so the drain demonstrably overlaps an in-flight one.
  fault::FaultInjector::Global().ArmLatencyMs("engine.query.latency", 300);

  net::RetryPolicy policy;
  policy.base_backoff = milliseconds(20);
  policy.max_backoff = milliseconds(100);
  net::RetryingClient retrier("127.0.0.1", port, owner.public_params, policy);
  auto warm = retrier.Query(features, 5, /*deadline_ms=*/30000);
  ASSERT_TRUE(warm.ok()) << warm.status().message();

  // A second plain client, connected before the drain begins, to probe the
  // rejection path while the first query is still in flight.
  auto probe =
      net::NetClient::Connect("127.0.0.1", port, owner.public_params);
  ASSERT_TRUE(probe.ok());

  Result<net::NetQueryResult> in_flight(Status::Error("not run"));
  std::thread querier([&] {
    auto c = net::NetClient::Connect("127.0.0.1", port, owner.public_params);
    ASSERT_TRUE(c.ok());
    in_flight = c->Query(features, 5, /*deadline_ms=*/30000);
  });
  std::this_thread::sleep_for(milliseconds(80));  // let the query admit

  Status probe_status = Status::Ok();
  std::thread prober([&] {
    // Sent after draining starts, on a pre-drain connection: must get the
    // explicit kUnavailable error frame, not a hang or a reset.
    std::this_thread::sleep_for(milliseconds(60));
    probe_status = probe->Query(features, 5, /*deadline_ms=*/30000).status();
  });

  server.Drain(std::chrono::seconds(10));
  querier.join();
  prober.join();

  // The admitted query rode out the drain and verified.
  ASSERT_TRUE(in_flight.ok()) << in_flight.status().message();
  EXPECT_EQ(in_flight->verified.topk.size(), 5u);
  // The post-drain query was refused with the draining taxonomy.
  EXPECT_EQ(probe_status.code(), StatusCode::kUnavailable);
  EXPECT_NE(probe_status.message().find("draining"), std::string::npos);
  EXPECT_EQ(server.counters().drains, 1u);
  EXPECT_GE(server.counters().frames_rejected_draining, 1u);

  // Restart on the same port; the retrying client's dead connection heals
  // transparently.
  fault::FaultInjector::Global().DisarmAll();
  net::ServerOptions so;
  so.port = port;
  net::NetServer server2(&engine, so);
  ASSERT_TRUE(server2.Start().ok());
  auto after = retrier.Query(features, 5, /*deadline_ms=*/30000);
  ASSERT_TRUE(after.ok()) << after.status().message();
  EXPECT_EQ(after->verified.topk.size(), 5u);
  EXPECT_GE(retrier.stats().reconnects, 1u);
  engine.Shutdown();
}

// ---------------------------------------------------------------------------
// EOF taxonomy (satellite 1): clean close at a frame boundary is transient,
// a mid-frame close is evidence.
// ---------------------------------------------------------------------------

// A one-shot fake server: accepts one connection, reads the request, sends
// `reply_bytes` bytes of the client's own request back (a valid frame
// prefix when nonzero), then closes.
uint16_t OneShotServer(std::thread* out, size_t reply_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  EXPECT_EQ(::listen(fd, 1), 0);
  *out = std::thread([fd, reply_bytes] {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      uint8_t buf[256];
      ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (reply_bytes > 0 && n > 0) {
        (void)!::send(conn, buf,
                      std::min(reply_bytes, static_cast<size_t>(n)),
                      MSG_NOSIGNAL);
      }
      ::close(conn);
    }
    ::close(fd);
  });
  return ntohs(addr.sin_port);
}

TEST_F(ResilienceTest, EofAtFrameBoundaryIsUnavailable) {
  std::thread server;
  uint16_t port = OneShotServer(&server, /*reply_bytes=*/0);
  auto client =
      net::NetClient::Connect("127.0.0.1", port, core::PublicParams{});
  ASSERT_TRUE(client.ok());
  auto reply = client->ServerStatus();
  server.join();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net::IsRetryableStatus(reply.status()));
}

TEST_F(ResilienceTest, EofMidFrameIsCorrupted) {
  std::thread server;
  // 5 bytes of the client's own request = valid magic + version + one more
  // byte, i.e. an incomplete frame, not a parse error.
  uint16_t port = OneShotServer(&server, /*reply_bytes=*/5);
  auto client =
      net::NetClient::Connect("127.0.0.1", port, core::PublicParams{});
  ASSERT_TRUE(client.ok());
  auto reply = client->ServerStatus();
  server.join();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCorrupted);
  EXPECT_FALSE(net::IsRetryableStatus(reply.status()));
}

// ---------------------------------------------------------------------------
// Epoch GC
// ---------------------------------------------------------------------------

class JanitorGcTest : public ResilienceTest {
 protected:
  // Publishes the same small package as epochs 1..n.
  std::string WriteEpochs(const char* name, size_t n) {
    std::string dir = TempDir(name);
    owner_ = BuildSmallDeployment(11, 60);
    for (size_t e = 1; e <= n; ++e) {
      auto w = storage::PackageStore::WriteEpoch(dir, e, *owner_.package);
      EXPECT_TRUE(w.ok()) << w.status().message();
    }
    return dir;
  }

  bool EpochExists(const std::string& dir, uint64_t e) {
    return ::access(
               (dir + "/" + storage::PackageStore::EpochFileName(e)).c_str(),
               F_OK) == 0;
  }

  core::OwnerOutput owner_;
};

TEST_F(JanitorGcTest, RetainsNewestAndDeletesTheRest) {
  std::string dir = WriteEpochs("gc_retain", 6);
  ASSERT_TRUE(storage::PackageStore::SetCurrentEpoch(dir, 6).ok());
  // A quarantine marker on an aged-out epoch travels with its file.
  ASSERT_TRUE(storage::AtomicWriteFile(
                  storage::EpochJanitor::QuarantineMarkerPath(dir, 1),
                  Bytes{'x', '\n'})
                  .ok());

  storage::JanitorOptions jo;
  jo.dir = dir;
  jo.retain_epochs = 3;
  jo.scrub = false;
  storage::EpochJanitor janitor(jo, nullptr);
  auto deleted = janitor.GcOnce();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 3u);
  for (uint64_t e : {1u, 2u, 3u}) EXPECT_FALSE(EpochExists(dir, e));
  for (uint64_t e : {4u, 5u, 6u}) EXPECT_TRUE(EpochExists(dir, e));
  EXPECT_FALSE(storage::EpochJanitor::IsQuarantined(dir, 1));
  EXPECT_EQ(janitor.stats().epochs_deleted, 3u);
}

TEST_F(JanitorGcTest, NeverDeletesCurrentOrAnythingAbove) {
  std::string dir = WriteEpochs("gc_current", 6);
  // CURRENT points BELOW the retain window (operator rollback): the GC
  // must keep epoch 2 and everything above it, whatever retain says.
  ASSERT_TRUE(storage::PackageStore::SetCurrentEpoch(dir, 2).ok());
  storage::JanitorOptions jo;
  jo.dir = dir;
  jo.retain_epochs = 3;
  jo.scrub = false;
  storage::EpochJanitor janitor(jo, nullptr);
  auto deleted = janitor.GcOnce();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);  // only epoch 1 is both aged out and below CURRENT
  EXPECT_FALSE(EpochExists(dir, 1));
  for (uint64_t e : {2u, 3u, 4u, 5u, 6u}) EXPECT_TRUE(EpochExists(dir, e));
}

TEST_F(JanitorGcTest, DeclinesThePassWhenCurrentIsUnreadable) {
  std::string dir = WriteEpochs("gc_nocurrent", 5);  // no CURRENT at all
  storage::JanitorOptions jo;
  jo.dir = dir;
  jo.retain_epochs = 2;
  jo.scrub = false;
  storage::EpochJanitor janitor(jo, nullptr);
  auto deleted = janitor.GcOnce();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 0u);
  for (uint64_t e = 1; e <= 5; ++e) EXPECT_TRUE(EpochExists(dir, e));
}

TEST_F(JanitorGcTest, GcRacesCurrentFlipWithoutBreakingThePointer) {
  std::string dir = WriteEpochs("gc_race", 8);
  ASSERT_TRUE(storage::PackageStore::SetCurrentEpoch(dir, 8).ok());
  storage::JanitorOptions jo;
  jo.dir = dir;
  jo.retain_epochs = 2;
  jo.scrub = false;
  storage::EpochJanitor janitor(jo, nullptr);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    // Flip CURRENT between the two epochs the retain window protects.
    uint64_t e = 7;
    while (!stop.load()) {
      ASSERT_TRUE(storage::PackageStore::SetCurrentEpoch(dir, e).ok());
      e = (e == 7) ? 8 : 7;
    }
  });
  for (int i = 0; i < 50; ++i) {
    auto r = janitor.GcOnce();
    ASSERT_TRUE(r.ok());
  }
  stop.store(true);
  flipper.join();

  // Invariant: CURRENT still names a file that exists and verifies.
  auto cur = storage::PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_TRUE(EpochExists(dir, *cur));
  storage::OpenOptions opts;
  opts.params = &owner_.public_params;
  auto reopened = storage::PackageStore::OpenCurrent(dir, opts);
  EXPECT_TRUE(reopened.ok()) << reopened.status().message();
}

// ---------------------------------------------------------------------------
// Scrub + rollback
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, ScrubDetectsFlippedByteInSectionData) {
  std::string dir = TempDir("scrub_detect");
  core::OwnerOutput owner = BuildSmallDeployment(13, 60);
  auto path = storage::PackageStore::WriteEpoch(dir, 1, *owner.package);
  ASSERT_TRUE(path.ok());

  storage::ScrubReport report;
  ASSERT_TRUE(storage::PackageStore::Scrub(*path, {}, &report).ok());
  EXPECT_GT(report.sections_checked, 0u);
  EXPECT_GT(report.bytes_hashed, 0u);

  // Flip one byte in the middle of the file — deep inside section data,
  // far past the header/TOC region open-time verification covers.
  FILE* f = std::fopen(path->c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long mid = std::ftell(f) / 2;
  ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  Status s = storage::PackageStore::Scrub(*path);
  EXPECT_EQ(s.code(), StatusCode::kCorrupted) << s.message();
}

TEST_F(JanitorGcTest, ScrubCoversRetainedEpochsWithoutRollback) {
  // Bit rot in a RETAINED (non-CURRENT) epoch must be found by the scrub
  // pass — a rollback candidate that rots silently is discovered at the
  // worst possible moment otherwise — but it endangers nothing live, so
  // the only consequence is its quarantine marker: no rollback callback.
  std::string dir = WriteEpochs("scrub_retained", 3);
  ASSERT_TRUE(storage::PackageStore::SetCurrentEpoch(dir, 3).ok());

  const std::string p1 = dir + "/" + storage::PackageStore::EpochFileName(1);
  {
    FILE* f = std::fopen(p1.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long mid = std::ftell(f) / 2;
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }

  storage::JanitorOptions jo;
  jo.dir = dir;
  jo.retain_epochs = 3;
  std::atomic<int> rollbacks{0};
  storage::EpochJanitor janitor(jo, [&](uint64_t) {
    rollbacks.fetch_add(1);
    return Status::Ok();
  });

  auto found = janitor.ScrubOnce();
  ASSERT_TRUE(found.ok()) << found.status().message();
  EXPECT_EQ(*found, 1u);
  EXPECT_TRUE(storage::EpochJanitor::IsQuarantined(dir, 1));
  EXPECT_FALSE(storage::EpochJanitor::IsQuarantined(dir, 2));
  EXPECT_FALSE(storage::EpochJanitor::IsQuarantined(dir, 3));
  EXPECT_EQ(rollbacks.load(), 0);  // CURRENT is healthy; nothing to roll back
  auto cur = storage::PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 3u);

  // A second pass skips the quarantined epoch instead of re-counting it.
  auto again = janitor.ScrubOnce();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(janitor.stats().scrub_corruptions, 1u);
  EXPECT_EQ(janitor.stats().epochs_quarantined, 1u);
}

TEST_F(ResilienceTest, ScrubberQuarantinesAndEngineRollsForward) {
  std::string dir = TempDir("scrub_rollback");
  core::OwnerOutput owner = BuildSmallDeployment(17, 80);
  auto package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
  auto features = workload::GenerateQueryFeatures(package->codebook, 8, 0.3, 5);
  bovw::BovwVector insert_vec = package->corpus[0].second;

  core::EngineOptions eo;
  eo.num_workers = 1;
  eo.persist_dir = dir;
  eo.retain_epochs = 4;
  eo.scrub_interval = milliseconds(25);
  core::QueryEngine engine(package, owner.public_params, eo);

  // Publish epoch 1, then epoch 2; epoch 2 is CURRENT and being scrubbed.
  auto ins = engine.InsertImage(owner.private_key, 500000, insert_vec,
                                workload::GenerateImageBlob(500000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();
  auto del = engine.DeleteImage(owner.private_key, 500000);
  ASSERT_TRUE(del.ok()) << del.status().message();
  ASSERT_EQ(engine.CurrentSnapshot()->version, 2u);

  // Rot one byte of epoch 2 on disk, mid-file (section data).
  const std::string p2 = dir + "/" + storage::PackageStore::EpochFileName(2);
  {
    FILE* f = std::fopen(p2.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long mid = std::ftell(f) / 2;
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  // The background scrubber must detect it and the engine must re-publish.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.Stats().epoch_rollbacks == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "scrubber never rolled back";
    std::this_thread::sleep_for(milliseconds(10));
  }

  core::EngineStats stats = engine.Stats();
  EXPECT_GE(stats.scrub_corruptions, 1u);
  EXPECT_GE(stats.epochs_quarantined, 1u);
  EXPECT_EQ(stats.epoch_rollbacks, 1u);
  EXPECT_TRUE(storage::EpochJanitor::IsQuarantined(dir, 2));

  // Rollback is roll-FORWARD: epoch-1 content republished as epoch 3, so
  // versions stay monotonic and the epoch-keyed cache stays coherent.
  auto cur = storage::PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 3u);
  auto snap = engine.CurrentSnapshot();
  EXPECT_EQ(snap->version, 3u);

  // Queries keep serving and verifying after the rollback...
  auto fut = engine.Submit(features, 5);
  auto resp = fut.get();
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  core::Client client(resp.snapshot->params);
  ASSERT_TRUE(client.Verify(features, 5, resp.response.vo).ok());

  // ...and serve byte-identical VOs to a cold open of the republished
  // epoch: recovery restored content, not something content-like.
  storage::OpenOptions opts;
  opts.params = &snap->params;
  auto cold = storage::PackageStore::OpenCurrent(dir, opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  core::ServiceProvider sp(cold->get());
  EXPECT_EQ(resp.response.vo.Serialize(), sp.Query(features, 5).vo.Serialize());

  engine.Shutdown();
}

// ---------------------------------------------------------------------------
// Fault-site vocabulary (satellite 2)
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, ArmingUnknownFaultSiteAbortsLoudly) {
  EXPECT_DEATH(
      fault::FaultInjector::Global().ArmAlways("engine.query.latencyy"),
      "fault: unknown site");
}

}  // namespace
}  // namespace imageproof
