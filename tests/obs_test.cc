// Tests for the observability layer (src/obs): concurrent-exactness of the
// primitives, the log-bucket quantile error bound, deterministic JSON
// output, and — the invariant everything else rests on — that metric
// recording never perturbs query output.
//
// The value assertions gate on obs::kMetricsEnabled so the same suite runs
// (and still exercises the API surface) under -DIMAGEPROOF_NO_METRICS=ON,
// where every read legitimately returns zero. The concurrency tests also
// run under the TSan preset, which is what actually checks the relaxed
// atomics are race-free as claimed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

// ---------------------------------------------------------------------------
// Primitives under concurrency.
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(c.Value(), kThreads * kPerThread);
  } else {
    EXPECT_EQ(c.Value(), 0u);
  }
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGaugeTest, TracksLevelThroughConcurrentUpDown) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(3);
        g.Sub(2);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(g.Value(), int64_t{kThreads} * kPerThread);
  } else {
    EXPECT_EQ(g.Value(), 0);
  }
  g.Set(-5);
  EXPECT_EQ(g.Value(), obs::kMetricsEnabled ? -5 : 0);
}

TEST(ObsHistogramTest, ConcurrentRecordsAreExact) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(1 + (i * kThreads + t) % 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!obs::kMetricsEnabled) {
    EXPECT_EQ(h.Count(), 0u);
    return;
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_EQ(s.sum, h.Sum());
}

// ---------------------------------------------------------------------------
// Bucket mapping and quantile error bound.
// ---------------------------------------------------------------------------

// BucketOf's bit-trick fast path must agree with the bucket definition
// [edges[b], edges[b+1]) everywhere, including octave boundaries and the
// integer-rounded low buckets. (BucketOf is live in both build modes.)
TEST(ObsHistogramTest, BucketOfMatchesEdgesExhaustivelyLow) {
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  for (uint64_t v = 1; v <= 1u << 20; ++v) {
    size_t b = obs::Histogram::BucketOf(v);
    ASSERT_LT(b, obs::Histogram::kBuckets);
    ASSERT_GE(v, obs::Histogram::BucketLowerEdgeInt(b)) << "v=" << v;
    if (b + 1 < obs::Histogram::kBuckets) {
      ASSERT_LT(v, obs::Histogram::BucketLowerEdgeInt(b + 1)) << "v=" << v;
    }
  }
}

TEST(ObsHistogramTest, BucketOfMatchesEdgesAtHighOctaveBoundaries) {
  for (int msb = 20; msb < 32; ++msb) {
    for (int64_t delta = -2; delta <= 2; ++delta) {
      uint64_t v = (uint64_t{1} << msb) + delta;
      size_t b = obs::Histogram::BucketOf(v);
      ASSERT_GE(v, obs::Histogram::BucketLowerEdgeInt(b)) << "v=" << v;
      if (b + 1 < obs::Histogram::kBuckets) {
        ASSERT_LT(v, obs::Histogram::BucketLowerEdgeInt(b + 1)) << "v=" << v;
      }
    }
  }
  // Values past the last bucket edge saturate instead of indexing out.
  EXPECT_EQ(obs::Histogram::BucketOf(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
}

// The documented guarantee: true quantile q <= estimate <= q * 2^(1/4).
TEST(ObsHistogramTest, QuantilesWithinLogBucketBound) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Histogram h;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> log_u(0.0, std::log(1e7));
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = static_cast<uint64_t>(std::exp(log_u(rng))) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const double kBound = std::pow(2.0, 0.25);
  for (double p : {0.50, 0.90, 0.95, 0.99}) {
    auto rank = static_cast<size_t>(std::ceil(p * values.size()));
    double true_q = static_cast<double>(values[rank - 1]);
    double est = h.Percentile(p);
    EXPECT_GE(est, true_q) << "p=" << p;
    EXPECT_LE(est, true_q * kBound * (1 + 1e-9)) << "p=" << p;
  }
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, values.size());
  EXPECT_EQ(s.min, values.front());
  EXPECT_EQ(s.max, values.back());
  EXPECT_DOUBLE_EQ(s.p50, h.Percentile(0.50));
  EXPECT_DOUBLE_EQ(s.p99, h.Percentile(0.99));
}

TEST(ObsScopedTimerTest, RecordsOnceStopDetaches) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Histogram h;
  {
    obs::ScopedTimer t(h);
    (void)t.Stop();  // records and detaches
  }                  // destructor must not record a second sample
  EXPECT_EQ(h.Count(), 1u);
  {
    obs::ScopedTimer t(h);
  }
  EXPECT_EQ(h.Count(), 2u);
}

// ---------------------------------------------------------------------------
// JSON output: deterministic, stable key order, correct escaping.
// ---------------------------------------------------------------------------

TEST(ObsJsonTest, WriterGolden) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("str").String("a\"b\\c\n");
  w.Key("int").U64(42);
  w.Key("neg").I64(-7);
  w.Key("frac").Double(3.5);
  w.Key("whole").Double(2.0);
  w.Key("nan").Double(std::nan(""));
  w.Key("arr").BeginArray();
  w.U64(1);
  w.U64(2);
  w.EndArray();
  w.Key("obj").BeginObject();
  w.Key("t").Bool(true);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"str\":\"a\\\"b\\\\c\\n\",\"int\":42,\"neg\":-7,"
            "\"frac\":3.500,\"whole\":2,\"nan\":null,"
            "\"arr\":[1,2],\"obj\":{\"t\":true}}");
}

TEST(ObsRegistryTest, ToJsonGolden) {
  obs::Registry r;
  r.GetCounter("a.count").Add(3);
  r.GetGauge("g.level").Set(-2);
  obs::Histogram& h = r.GetHistogram("h.us");
  h.Record(1);
  h.Record(100);
  if (!obs::kMetricsEnabled) {
    // Disabled builds report an honest empty document, not zero-filled data.
    EXPECT_EQ(r.ToJson(), "{}");
    return;
  }
  EXPECT_EQ(r.ToJson(),
            "{\"counters\":{\"a.count\":3},"
            "\"gauges\":{\"g.level\":-2},"
            "\"histograms\":{\"h.us\":{\"count\":2,\"sum\":101,\"min\":1,"
            "\"max\":100,\"p50\":1.189,\"p95\":107.635,\"p99\":107.635}}}");
  // Two snapshots of unchanged state are byte-identical (diff-friendliness).
  EXPECT_EQ(r.ToJson(), r.ToJson());
  r.Reset();
  EXPECT_EQ(r.GetCounter("a.count").Value(), 0u);
  EXPECT_EQ(r.GetHistogram("h.us").Count(), 0u);
}

TEST(ObsRegistryTest, ReferencesAreStableAcrossLookups) {
  obs::Registry r;
  obs::Counter& c1 = r.GetCounter("same.name");
  obs::Counter& c2 = r.GetCounter("same.name");
  EXPECT_EQ(&c1, &c2);
}

// ---------------------------------------------------------------------------
// The load-bearing invariant: instrumentation only observes. Running the
// full authenticated query path with metrics recording (twice, with a
// registry reset in between) must produce byte-identical VOs.
// ---------------------------------------------------------------------------

TEST(ObsDeterminismTest, MetricRecordingDoesNotPerturbQueryOutput) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 120;
  cp.num_clusters = 64;
  cp.seed = 7;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 64;
  cbp.dims = 16;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));
  core::ServiceProvider sp(owner.package.get());

  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 10, 0.3, 99);
  core::QueryResponse first = sp.Query(features, 5);
  obs::Registry::Global().Reset();
  core::QueryResponse second = sp.Query(features, 5);
  EXPECT_EQ(first.vo.Serialize(), second.vo.Serialize());
  ASSERT_EQ(first.topk.size(), second.topk.size());
  for (size_t i = 0; i < first.topk.size(); ++i) {
    EXPECT_EQ(first.topk[i].id, second.topk[i].id);
    EXPECT_EQ(first.topk[i].score, second.topk[i].score);
  }
  // And the instrumented path still verifies.
  core::Client client(owner.public_params);
  EXPECT_TRUE(client.Verify(features, 5, second.vo).ok());
  if (obs::kMetricsEnabled) {
    // The reset isolated the second query: exactly one query since Reset().
    EXPECT_EQ(obs::Registry::Global().GetCounter("sp.queries").Value(), 1u);
  }
}

}  // namespace
}  // namespace imageproof
