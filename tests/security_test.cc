// Security-focused tests beyond random bit flips: semantically coherent VO
// mutations (a rational cheating SP edits *fields*, not random bytes) and
// parser-robustness fuzzing of every untrusted-input surface.

#include <gtest/gtest.h>

#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "cuckoo/cuckoo_filter.h"
#include "freqgroup/fg_index.h"
#include "freqgroup/fg_search.h"
#include "freqgroup/fg_verify.h"
#include "invindex/search.h"
#include "invindex/verify.h"
#include "mrkd/commit.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

// ---------------------------------------------------------------------------
// Semantic attacks on the inverted-index VO
// ---------------------------------------------------------------------------

class SemanticAttackTest : public ::testing::Test {
 public:
  SemanticAttackTest() {
    workload::CorpusParams cp;
    cp.num_images = 600;
    cp.num_clusters = 128;
    cp.seed = 77;
    corpus_ = workload::GenerateCorpus(cp);
    std::vector<bovw::BovwVector> vecs;
    for (auto& [id, v] : corpus_) vecs.push_back(v);
    auto weights = bovw::ClusterWeights::FromCorpus(128, vecs);
    index_ = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(128, corpus_, weights, true));
    query_ = workload::QueryFromImage(cp, corpus_[33].second, 60, 0.2, 5);
    invindex::InvSearchParams params;
    params.k = 5;
    honest_ = invindex::InvSearch(*index_, query_, params);
    for (const auto& si : honest_.topk) claimed_.push_back(si.id);
  }

  bool Accepts(const Bytes& vo, const std::vector<bovw::ImageId>& claimed) {
    invindex::InvVerifyResult verified;
    if (!invindex::VerifyInvVo(vo, query_, claimed, 5, true, &verified).ok()) {
      return false;
    }
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index_->list(c).digest) return false;
    }
    return true;
  }

  // Re-serializes the honest VO with a field-level mutation applied by
  // `mutate(list_index, writer_state...)`. The VO layout is re-emitted
  // faithfully except for the requested change.
  struct Posting {
    uint64_t id;
    double impact;
  };
  struct List {
    uint64_t cluster;
    double weight;
    std::vector<Posting> popped;
    uint8_t flags;
    crypto::Digest first_remaining;
    Bytes filter;
    crypto::Digest theta;
  };

  Bytes Reserialize(const std::vector<List>& lists) {
    ByteWriter w;
    w.PutU8(1);
    w.PutVarint(lists.size());
    for (const List& l : lists) {
      w.PutVarint(l.cluster);
      w.PutF64(l.weight);
      w.PutVarint(l.popped.size());
      for (const Posting& p : l.popped) {
        w.PutVarint(p.id);
        w.PutF64(p.impact);
      }
      w.PutU8(l.flags);
      if (l.flags & 1) crypto::PutDigest(w, l.first_remaining);
      if (l.flags & 2) {
        w.PutBlob(l.filter);
      } else {
        crypto::PutDigest(w, l.theta);
      }
    }
    return w.Take();
  }

  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus_;
  std::unique_ptr<invindex::MerkleInvertedIndex> index_;
  bovw::BovwVector query_;
  invindex::InvSearchResult honest_;
  std::vector<bovw::ImageId> claimed_;
};

// Field-level parse of an InvSearch VO (mirrors the documented layout).
std::vector<SemanticAttackTest::List> ParseVo(const Bytes& vo) {
  std::vector<SemanticAttackTest::List> lists;
  ByteReader r(vo);
  uint8_t use_filters;
  if (!r.GetU8(&use_filters).ok()) return lists;
  uint64_t n;
  if (!r.GetVarint(&n).ok()) return lists;
  for (uint64_t i = 0; i < n; ++i) {
    SemanticAttackTest::List l;
    if (!r.GetVarint(&l.cluster).ok()) return {};
    if (!r.GetF64(&l.weight).ok()) return {};
    uint64_t popped;
    if (!r.GetVarint(&popped).ok()) return {};
    for (uint64_t j = 0; j < popped; ++j) {
      SemanticAttackTest::Posting p;
      if (!r.GetVarint(&p.id).ok()) return {};
      if (!r.GetF64(&p.impact).ok()) return {};
      l.popped.push_back(p);
    }
    if (!r.GetU8(&l.flags).ok()) return {};
    if (l.flags & 1) {
      if (!crypto::GetDigest(r, &l.first_remaining).ok()) return {};
    }
    if (l.flags & 2) {
      if (!r.GetBlob(&l.filter).ok()) return {};
    } else {
      if (!crypto::GetDigest(r, &l.theta).ok()) return {};
    }
    lists.push_back(std::move(l));
  }
  return lists;
}

TEST_F(SemanticAttackTest, HonestReserializationAccepted) {
  auto lists = ParseVo(honest_.vo);
  ASSERT_FALSE(lists.empty());
  EXPECT_EQ(Reserialize(lists), honest_.vo) << "parser/serializer mismatch";
  EXPECT_TRUE(Accepts(honest_.vo, claimed_));
}

TEST_F(SemanticAttackTest, InflatedImpactRejected) {
  // Inflate a popped competitor's impact so it *looks* consistent; the
  // digest chain must expose it.
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      l.popped[1].impact *= 2.0;
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, HiddenPostingRejected) {
  // Drop the deepest popped posting of some list (hide a competitor).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      l.popped.pop_back();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ReducedWeightRejected) {
  // Shrink a list's weight to depress a competitor's score.
  auto lists = ParseVo(honest_.vo);
  lists[0].weight *= 0.5;
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, SubstitutedFilterRejected) {
  // Replace a shipped filter with an emptier one (making competitors look
  // absent from remaining lists).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.flags & 2) {
      cuckoo::CuckooFilter empty(
          cuckoo::CuckooParams::ForMaxItems(64));
      l.filter = empty.Serialize();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ForgedRemainingDigestRejected) {
  // Pretend a list is exhausted (hide all remaining postings) by flipping
  // has_remaining and providing h(Theta) instead.
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if ((l.flags & 1) && (l.flags & 2)) {
      l.flags = 0;  // exhausted, no filter
      auto restored = cuckoo::CuckooFilter::Deserialize(l.filter);
      ASSERT_TRUE(restored.ok());
      l.theta = restored->StateDigest();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ReorderedPostingsRejected) {
  // Swap two adjacent popped postings (breaks either the chain digest or
  // the impact-order invariant).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      std::swap(l.popped[0], l.popped[1]);
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

// ---------------------------------------------------------------------------
// Semantic attacks on the frequency-grouped VO
// ---------------------------------------------------------------------------

class FgSemanticAttackTest : public ::testing::Test {
 public:
  FgSemanticAttackTest() {
    workload::CorpusParams cp;
    cp.num_images = 400;
    cp.num_clusters = 96;
    cp.seed = 99;
    corpus_ = workload::GenerateCorpus(cp);
    std::vector<bovw::BovwVector> vecs;
    for (auto& [id, v] : corpus_) vecs.push_back(v);
    auto weights = bovw::ClusterWeights::FromCorpus(96, vecs);
    index_ = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(96, corpus_, weights, true));
    query_ = workload::QueryFromImage(cp, corpus_[21].second, 50, 0.2, 3);
    invindex::InvSearchParams params;
    params.k = 5;
    honest_ = freqgroup::FgSearch(*index_, query_, params);
    for (const auto& si : honest_.topk) claimed_.push_back(si.id);
  }

  bool Accepts(const Bytes& vo) {
    invindex::InvVerifyResult verified;
    if (!freqgroup::FgVerifyVo(vo, query_, claimed_, 5, true, &verified).ok()) {
      return false;
    }
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index_->list(c).digest) return false;
    }
    return true;
  }

  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus_;
  std::unique_ptr<freqgroup::FgInvertedIndex> index_;
  bovw::BovwVector query_;
  freqgroup::FgSearchResult honest_;
  std::vector<bovw::ImageId> claimed_;
};

TEST_F(FgSemanticAttackTest, HonestAccepted) { EXPECT_TRUE(Accepts(honest_.vo)); }

TEST_F(FgSemanticAttackTest, NormAndFreqBitsAreCovered) {
  // Flip bits across the whole VO; every accepted variant must be byte-
  // identical in effect (none is, since every field is committed).
  Rng rng(7);
  for (int t = 0; t < 60; ++t) {
    Bytes tampered = honest_.vo;
    tampered[rng.NextBounded(tampered.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    EXPECT_FALSE(Accepts(tampered)) << t;
  }
}

// ---------------------------------------------------------------------------
// Parser fuzzing: untrusted bytes must never crash, only fail.
// ---------------------------------------------------------------------------

Bytes RandomBytes(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBounded(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

TEST(ParserFuzzTest, QueryVoDeserializeNeverCrashes) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    core::QueryVO vo;
    (void)core::QueryVO::Deserialize(data, &vo);
  }
}

TEST(ParserFuzzTest, InvVoVerifyNeverCrashes) {
  Rng rng(2);
  bovw::BovwVector query;
  query.entries = {{1, 2}, {5, 1}};
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    invindex::InvVerifyResult out;
    (void)invindex::VerifyInvVo(data, query, {1, 2}, 2, true, &out);
    (void)invindex::VerifyInvVo(data, query, {}, 2, false, &out);
  }
}

TEST(ParserFuzzTest, CuckooDeserializeNeverCrashes) {
  Rng rng(3);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 256);
    (void)cuckoo::CuckooFilter::Deserialize(data);
  }
}

TEST(ParserFuzzTest, RevealDeserializeNeverCrashes) {
  Rng rng(4);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    ByteReader r(data);
    std::vector<mrkd::ClusterReveal> out;
    (void)mrkd::DeserializeReveals(r, 64, &out);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidVoNeverCrash) {
  // Every prefix of a real VO must fail cleanly, not crash.
  workload::CorpusParams cp;
  cp.num_images = 100;
  cp.num_clusters = 64;
  auto corpus = workload::GenerateCorpus(cp);
  std::vector<bovw::BovwVector> vecs;
  for (auto& [id, v] : corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(64, vecs);
  auto index = invindex::MerkleInvertedIndex::Build(64, corpus, weights, true);
  auto query = workload::QueryFromImage(cp, corpus[7].second, 30, 0.2, 9);
  invindex::InvSearchParams params;
  params.k = 3;
  auto honest = invindex::InvSearch(index, query, params);
  std::vector<bovw::ImageId> claimed;
  for (auto& si : honest.topk) claimed.push_back(si.id);

  size_t step = std::max<size_t>(1, honest.vo.size() / 200);
  int accepted = 0;
  for (size_t len = 0; len < honest.vo.size(); len += step) {
    Bytes prefix(honest.vo.begin(), honest.vo.begin() + len);
    invindex::InvVerifyResult out;
    if (invindex::VerifyInvVo(prefix, query, claimed, 3, true, &out).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0) << "no strict prefix may verify";
}

}  // namespace
}  // namespace imageproof
