// Security-focused tests beyond random bit flips: semantically coherent VO
// mutations (a rational cheating SP edits *fields*, not random bytes) and
// parser-robustness fuzzing of every untrusted-input surface.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "cuckoo/cuckoo_filter.h"
#include "freqgroup/fg_index.h"
#include "freqgroup/fg_search.h"
#include "freqgroup/fg_verify.h"
#include "invindex/search.h"
#include "invindex/verify.h"
#include "mrkd/commit.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "shard/composite.h"
#include "shard/composite_client.h"
#include "shard/coordinator.h"
#include "shard/manifest.h"
#include "shard/planner.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

// ---------------------------------------------------------------------------
// Semantic attacks on the inverted-index VO
// ---------------------------------------------------------------------------

class SemanticAttackTest : public ::testing::Test {
 public:
  SemanticAttackTest() {
    workload::CorpusParams cp;
    cp.num_images = 600;
    cp.num_clusters = 128;
    cp.seed = 77;
    corpus_ = workload::GenerateCorpus(cp);
    std::vector<bovw::BovwVector> vecs;
    for (auto& [id, v] : corpus_) vecs.push_back(v);
    auto weights = bovw::ClusterWeights::FromCorpus(128, vecs);
    index_ = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(128, corpus_, weights, true));
    query_ = workload::QueryFromImage(cp, corpus_[33].second, 60, 0.2, 5);
    invindex::InvSearchParams params;
    params.k = 5;
    honest_ = invindex::InvSearch(*index_, query_, params);
    for (const auto& si : honest_.topk) claimed_.push_back(si.id);
  }

  bool Accepts(const Bytes& vo, const std::vector<bovw::ImageId>& claimed) {
    invindex::InvVerifyResult verified;
    if (!invindex::VerifyInvVo(vo, query_, claimed, 5, true, &verified).ok()) {
      return false;
    }
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index_->list(c).digest) return false;
    }
    return true;
  }

  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus_;
  std::unique_ptr<invindex::MerkleInvertedIndex> index_;
  bovw::BovwVector query_;
  invindex::InvSearchResult honest_;
  std::vector<bovw::ImageId> claimed_;
};

// Field-level model of an InvSearch VO (mirrors the documented layout),
// shared by the semantic attacks here and the engine-path tamper matrix.
struct Posting {
  uint64_t id;
  double impact;
};
struct List {
  uint64_t cluster;
  double weight;
  std::vector<Posting> popped;
  uint8_t flags;
  crypto::Digest first_remaining;
  Bytes filter;
  crypto::Digest theta;
};

// Re-serializes a parsed VO faithfully, so a single-field mutation yields a
// VO that differs only in that field.
Bytes Reserialize(const std::vector<List>& lists) {
  ByteWriter w;
  w.PutU8(1);
  w.PutVarint(lists.size());
  for (const List& l : lists) {
    w.PutVarint(l.cluster);
    w.PutF64(l.weight);
    w.PutVarint(l.popped.size());
    for (const Posting& p : l.popped) {
      w.PutVarint(p.id);
      w.PutF64(p.impact);
    }
    w.PutU8(l.flags);
    if (l.flags & 1) crypto::PutDigest(w, l.first_remaining);
    if (l.flags & 2) {
      w.PutBlob(l.filter);
    } else {
      crypto::PutDigest(w, l.theta);
    }
  }
  return w.Take();
}

std::vector<List> ParseVo(const Bytes& vo) {
  std::vector<List> lists;
  ByteReader r(vo);
  uint8_t use_filters;
  if (!r.GetU8(&use_filters).ok()) return lists;
  uint64_t n;
  if (!r.GetVarint(&n).ok()) return lists;
  for (uint64_t i = 0; i < n; ++i) {
    List l;
    if (!r.GetVarint(&l.cluster).ok()) return {};
    if (!r.GetF64(&l.weight).ok()) return {};
    uint64_t popped;
    if (!r.GetVarint(&popped).ok()) return {};
    for (uint64_t j = 0; j < popped; ++j) {
      Posting p;
      if (!r.GetVarint(&p.id).ok()) return {};
      if (!r.GetF64(&p.impact).ok()) return {};
      l.popped.push_back(p);
    }
    if (!r.GetU8(&l.flags).ok()) return {};
    if (l.flags & 1) {
      if (!crypto::GetDigest(r, &l.first_remaining).ok()) return {};
    }
    if (l.flags & 2) {
      if (!r.GetBlob(&l.filter).ok()) return {};
    } else {
      if (!crypto::GetDigest(r, &l.theta).ok()) return {};
    }
    lists.push_back(std::move(l));
  }
  return lists;
}

TEST_F(SemanticAttackTest, HonestReserializationAccepted) {
  auto lists = ParseVo(honest_.vo);
  ASSERT_FALSE(lists.empty());
  EXPECT_EQ(Reserialize(lists), honest_.vo) << "parser/serializer mismatch";
  EXPECT_TRUE(Accepts(honest_.vo, claimed_));
}

TEST_F(SemanticAttackTest, InflatedImpactRejected) {
  // Inflate a popped competitor's impact so it *looks* consistent; the
  // digest chain must expose it.
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      l.popped[1].impact *= 2.0;
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, HiddenPostingRejected) {
  // Drop the deepest popped posting of some list (hide a competitor).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      l.popped.pop_back();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ReducedWeightRejected) {
  // Shrink a list's weight to depress a competitor's score.
  auto lists = ParseVo(honest_.vo);
  lists[0].weight *= 0.5;
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, SubstitutedFilterRejected) {
  // Replace a shipped filter with an emptier one (making competitors look
  // absent from remaining lists).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.flags & 2) {
      cuckoo::CuckooFilter empty(
          cuckoo::CuckooParams::ForMaxItems(64));
      l.filter = empty.Serialize();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ForgedRemainingDigestRejected) {
  // Pretend a list is exhausted (hide all remaining postings) by flipping
  // has_remaining and providing h(Theta) instead.
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if ((l.flags & 1) && (l.flags & 2)) {
      l.flags = 0;  // exhausted, no filter
      auto restored = cuckoo::CuckooFilter::Deserialize(l.filter);
      ASSERT_TRUE(restored.ok());
      l.theta = restored->StateDigest();
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

TEST_F(SemanticAttackTest, ReorderedPostingsRejected) {
  // Swap two adjacent popped postings (breaks either the chain digest or
  // the impact-order invariant).
  auto lists = ParseVo(honest_.vo);
  for (auto& l : lists) {
    if (l.popped.size() >= 2) {
      std::swap(l.popped[0], l.popped[1]);
      break;
    }
  }
  EXPECT_FALSE(Accepts(Reserialize(lists), claimed_));
}

// ---------------------------------------------------------------------------
// Semantic attacks on the frequency-grouped VO
// ---------------------------------------------------------------------------

class FgSemanticAttackTest : public ::testing::Test {
 public:
  FgSemanticAttackTest() {
    workload::CorpusParams cp;
    cp.num_images = 400;
    cp.num_clusters = 96;
    cp.seed = 99;
    corpus_ = workload::GenerateCorpus(cp);
    std::vector<bovw::BovwVector> vecs;
    for (auto& [id, v] : corpus_) vecs.push_back(v);
    auto weights = bovw::ClusterWeights::FromCorpus(96, vecs);
    index_ = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(96, corpus_, weights, true));
    query_ = workload::QueryFromImage(cp, corpus_[21].second, 50, 0.2, 3);
    invindex::InvSearchParams params;
    params.k = 5;
    honest_ = freqgroup::FgSearch(*index_, query_, params);
    for (const auto& si : honest_.topk) claimed_.push_back(si.id);
  }

  bool Accepts(const Bytes& vo) {
    invindex::InvVerifyResult verified;
    if (!freqgroup::FgVerifyVo(vo, query_, claimed_, 5, true, &verified).ok()) {
      return false;
    }
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index_->list(c).digest) return false;
    }
    return true;
  }

  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus_;
  std::unique_ptr<freqgroup::FgInvertedIndex> index_;
  bovw::BovwVector query_;
  freqgroup::FgSearchResult honest_;
  std::vector<bovw::ImageId> claimed_;
};

TEST_F(FgSemanticAttackTest, HonestAccepted) { EXPECT_TRUE(Accepts(honest_.vo)); }

TEST_F(FgSemanticAttackTest, NormAndFreqBitsAreCovered) {
  // Flip bits across the whole VO; every accepted variant must be byte-
  // identical in effect (none is, since every field is committed).
  Rng rng(7);
  for (int t = 0; t < 60; ++t) {
    Bytes tampered = honest_.vo;
    tampered[rng.NextBounded(tampered.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    EXPECT_FALSE(Accepts(tampered)) << t;
  }
}

// ---------------------------------------------------------------------------
// Parser fuzzing: untrusted bytes must never crash, only fail.
// ---------------------------------------------------------------------------

Bytes RandomBytes(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBounded(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

TEST(ParserFuzzTest, QueryVoDeserializeNeverCrashes) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    core::QueryVO vo;
    (void)core::QueryVO::Deserialize(data, &vo);
  }
}

TEST(ParserFuzzTest, InvVoVerifyNeverCrashes) {
  Rng rng(2);
  bovw::BovwVector query;
  query.entries = {{1, 2}, {5, 1}};
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    invindex::InvVerifyResult out;
    (void)invindex::VerifyInvVo(data, query, {1, 2}, 2, true, &out);
    (void)invindex::VerifyInvVo(data, query, {}, 2, false, &out);
  }
}

TEST(ParserFuzzTest, CuckooDeserializeNeverCrashes) {
  Rng rng(3);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 256);
    (void)cuckoo::CuckooFilter::Deserialize(data);
  }
}

TEST(ParserFuzzTest, RevealDeserializeNeverCrashes) {
  Rng rng(4);
  for (int t = 0; t < 2000; ++t) {
    Bytes data = RandomBytes(rng, 512);
    ByteReader r(data);
    std::vector<mrkd::ClusterReveal> out;
    (void)mrkd::DeserializeReveals(r, 64, &out);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidVoNeverCrash) {
  // Every prefix of a real VO must fail cleanly, not crash.
  workload::CorpusParams cp;
  cp.num_images = 100;
  cp.num_clusters = 64;
  auto corpus = workload::GenerateCorpus(cp);
  std::vector<bovw::BovwVector> vecs;
  for (auto& [id, v] : corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(64, vecs);
  auto index = invindex::MerkleInvertedIndex::Build(64, corpus, weights, true);
  auto query = workload::QueryFromImage(cp, corpus[7].second, 30, 0.2, 9);
  invindex::InvSearchParams params;
  params.k = 3;
  auto honest = invindex::InvSearch(index, query, params);
  std::vector<bovw::ImageId> claimed;
  for (auto& si : honest.topk) claimed.push_back(si.id);

  size_t step = std::max<size_t>(1, honest.vo.size() / 200);
  int accepted = 0;
  for (size_t len = 0; len < honest.vo.size(); len += step) {
    Bytes prefix(honest.vo.begin(), honest.vo.begin() + len);
    invindex::InvVerifyResult out;
    if (invindex::VerifyInvVo(prefix, query, claimed, 3, true, &out).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0) << "no strict prefix may verify";
}

// ---------------------------------------------------------------------------
// Adversarial matrix against the concurrent serving path: the same cheating
// strategies a rational SP could mount, but mounted on responses served by
// the QueryEngine. The engine must not open any hole the serial path does
// not have — a client holding the snapshot's PublicParams rejects each.
// ---------------------------------------------------------------------------

class EngineAdversaryTest : public ::testing::Test {
 public:
  EngineAdversaryTest() {
    core::Config config = core::Config::ImageProof();  // plain inv layout
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 300;
    cp.num_clusters = 128;
    cp.seed = 13;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 128;
    cbp.dims = 16;
    owner_ = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                   std::move(corpus), std::move(blobs));
    package_ =
        std::shared_ptr<const core::SpPackage>(std::move(owner_.package));
    core::EngineOptions opts;
    opts.num_workers = 2;
    opts.intra_query_threads = 2;
    engine_ = std::make_unique<core::QueryEngine>(
        package_, owner_.public_params, opts);
    features_ =
        workload::GenerateQueryFeatures(package_->codebook, 10, 0.3, 21);
    honest_ = engine_->Submit(features_, 5).get();
  }

  // Verifies `vo` against the params of the snapshot that served `honest_`.
  bool Accepts(const core::QueryVO& vo) {
    core::Client client(honest_.snapshot->params);
    return client.Verify(features_, 5, vo).ok();
  }

  core::OwnerOutput owner_;
  std::shared_ptr<const core::SpPackage> package_;
  std::unique_ptr<core::QueryEngine> engine_;
  std::vector<std::vector<float>> features_;
  core::EngineResponse honest_;
};

TEST_F(EngineAdversaryTest, HonestResponseAccepted) {
  EXPECT_TRUE(Accepts(honest_.response.vo));
}

TEST_F(EngineAdversaryTest, TamperMatrixRejected) {
  struct TamperCase {
    const char* name;
    std::function<bool(core::QueryVO*)> mutate;  // false = skip (no target)
  };
  const size_t dims = package_->codebook.dims();
  std::vector<TamperCase> cases;

  // 1. Dropped reveal: hide one revealed candidate cluster — the client can
  // then no longer authenticate that candidate's exclusion/assignment.
  cases.push_back({"dropped_reveal", [dims](core::QueryVO* vo) {
                     ByteReader r(vo->reveal_section);
                     std::vector<mrkd::ClusterReveal> reveals;
                     if (!mrkd::DeserializeReveals(r, dims, &reveals).ok() ||
                         reveals.empty()) {
                       return false;
                     }
                     reveals.pop_back();
                     ByteWriter w;
                     mrkd::SerializeReveals(reveals, w);
                     vo->reveal_section = w.Take();
                     return true;
                   }});

  // 2. Swapped posting entry: reorder two popped postings inside one
  // inverted-list stream (breaks the impact order or the chain digest).
  cases.push_back({"swapped_posting_entry", [](core::QueryVO* vo) {
                     auto lists = ParseVo(vo->inv_vo);
                     for (auto& l : lists) {
                       if (l.popped.size() >= 2) {
                         std::swap(l.popped[0], l.popped[1]);
                         vo->inv_vo = Reserialize(lists);
                         return true;
                       }
                     }
                     return false;
                   }});

  // 3. Truncated inv VO: chop the tail of the inverted-index proof.
  cases.push_back({"truncated_inv_vo", [](core::QueryVO* vo) {
                     if (vo->inv_vo.size() < 8) return false;
                     vo->inv_vo.resize(vo->inv_vo.size() - 7);
                     return true;
                   }});

  for (const TamperCase& tc : cases) {
    core::QueryVO tampered = honest_.response.vo;
    if (!tc.mutate(&tampered)) {
      ADD_FAILURE() << tc.name << ": no mutation target in this VO";
      continue;
    }
    EXPECT_FALSE(Accepts(tampered)) << "accepted tampered VO: " << tc.name;
  }
}

TEST_F(EngineAdversaryTest, MemoizedProofsByteIdenticalAndTamperEvident) {
  // honest_ was served through the engine, i.e. with the per-snapshot proof
  // memo feeding MRKD leaf runs and (in dim-Merkle mode) coordinate-block
  // trees. The memo must be invisible: a memoless serial serve produces the
  // same bytes, and the memo'd proof sections stay as tamper-evident as
  // cold ones.
  core::ServiceProvider cold_sp(package_.get());
  Bytes cold = cold_sp.Query(features_, 5).vo.Serialize();
  EXPECT_EQ(honest_.response.vo.Serialize(), cold);

  // Flip one byte in each memo-fed proof section; every mutant must be
  // rejected (parse failure or digest mismatch — never acceptance).
  for (size_t t = 0; t < honest_.response.vo.tree_vos.size(); ++t) {
    core::QueryVO tampered = honest_.response.vo;
    Bytes& stream = tampered.tree_vos[t];
    ASSERT_FALSE(stream.empty());
    stream[stream.size() / 2] ^= 0x10;
    EXPECT_FALSE(Accepts(tampered)) << "tree_vos[" << t << "]";
  }
  core::QueryVO tampered = honest_.response.vo;
  ASSERT_FALSE(tampered.reveal_section.empty());
  tampered.reveal_section[tampered.reveal_section.size() / 3] ^= 0x04;
  EXPECT_FALSE(Accepts(tampered)) << "reveal_section";
}

TEST_F(EngineAdversaryTest, CompressedResponseTamperRejected) {
  core::SubmitOptions compressed;
  compressed.compress_vo = true;
  core::EngineResponse resp = engine_->Submit(features_, 5, compressed).get();
  ASSERT_TRUE(resp.ok());
  // The compressed framing verifies as-is (the hardened parsers decode the
  // group-varint sections before any digest is checked) ...
  ASSERT_TRUE(Accepts(resp.response.vo));
  // ... and every byte of the compressed inv section is load-bearing: the
  // decoded values feed digest reconstruction, so flips surface as parse
  // errors or digest mismatches, never different accepted results.
  const Bytes& inv = resp.response.vo.inv_vo;
  ASSERT_FALSE(inv.empty());
  size_t step = std::max<size_t>(1, inv.size() / 256);
  for (size_t pos = 0; pos < inv.size(); pos += step) {
    core::QueryVO tampered = resp.response.vo;
    tampered.inv_vo[pos] ^= 0x01;
    EXPECT_FALSE(Accepts(tampered)) << "compressed inv_vo byte " << pos;
  }
  // Truncation of the compressed stream is kCorrupted territory, not UB.
  core::QueryVO truncated = resp.response.vo;
  truncated.inv_vo.resize(truncated.inv_vo.size() / 2);
  EXPECT_FALSE(Accepts(truncated));
}

TEST_F(EngineAdversaryTest, TruncatedSerializedVoRejected) {
  // A network- or SP-truncated VO: every strict prefix of the serialized
  // honest response must be rejected with a specific error — either the
  // parser reports kCorrupted or the parsed remains fail verification.
  // Never a crash, never an accept.
  Bytes wire = honest_.response.vo.Serialize();
  ASSERT_GT(wire.size(), 16u);
  for (size_t len : {wire.size() - 1, wire.size() - 7, wire.size() / 2,
                     wire.size() / 4, size_t{16}, size_t{1}, size_t{0}}) {
    Bytes truncated(wire.begin(), wire.begin() + len);
    core::QueryVO vo;
    Status s = core::QueryVO::Deserialize(truncated, &vo);
    if (s.ok()) {
      EXPECT_FALSE(Accepts(vo)) << "accepted VO truncated to " << len;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorrupted) << s.message();
    }
  }
}

TEST_F(EngineAdversaryTest, SplicedVoRejected) {
  // Splice attack: a valid header/prefix from the honest response combined
  // with the body of a DIFFERENT query's response, served by the same
  // engine. Both messages are individually authentic, so every digest in
  // each half is genuine — only the cross-binding to this query's features
  // can reject the hybrid.
  auto foreign_features =
      workload::GenerateQueryFeatures(package_->codebook, 10, 0.3, 77);
  core::EngineResponse foreign = engine_->Submit(foreign_features, 5).get();
  ASSERT_TRUE(foreign.ok());

  // Field-level splices: swap one VO section wholesale.
  {
    core::QueryVO hybrid = honest_.response.vo;
    hybrid.inv_vo = foreign.response.vo.inv_vo;
    EXPECT_FALSE(Accepts(hybrid)) << "accepted foreign inverted-index proof";
  }
  {
    core::QueryVO hybrid = honest_.response.vo;
    hybrid.reveal_section = foreign.response.vo.reveal_section;
    hybrid.tree_vos = foreign.response.vo.tree_vos;
    EXPECT_FALSE(Accepts(hybrid)) << "accepted foreign BoVW proof";
  }

  // Byte-level splices: honest prefix + foreign suffix at several cuts.
  Bytes a = honest_.response.vo.Serialize();
  Bytes b = foreign.response.vo.Serialize();
  for (size_t cut : {size_t{8}, a.size() / 4, a.size() / 2, 3 * a.size() / 4}) {
    ASSERT_LT(cut, a.size());
    size_t fcut = std::min(cut, b.size());
    Bytes spliced(a.begin(), a.begin() + cut);
    spliced.insert(spliced.end(), b.begin() + fcut, b.end());
    core::QueryVO vo;
    Status s = core::QueryVO::Deserialize(spliced, &vo);
    if (s.ok()) {
      EXPECT_FALSE(Accepts(vo)) << "accepted splice at " << cut;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorrupted) << s.message();
    }
  }
}

TEST_F(EngineAdversaryTest, StaleSignatureRejected) {
  // The SP updates the deployment, then tries to pass off a response served
  // under the NEW root to a client still holding (or replaying) the OLD
  // public parameters — and vice versa. Both directions must fail: a root
  // signature authenticates exactly one package state.
  auto old_params = honest_.snapshot->params;
  workload::CorpusParams qp;
  qp.num_clusters = 128;
  auto ins = engine_->InsertImage(owner_.private_key, 31000,
                                  workload::GenerateQueryBovw(qp, 20, 3),
                                  workload::GenerateImageBlob(31000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();

  core::EngineResponse fresh = engine_->Submit(features_, 5).get();
  ASSERT_GT(fresh.snapshot->version, honest_.snapshot->version);

  // New response under old params: stale signature, reject.
  core::Client stale_client(old_params);
  EXPECT_FALSE(stale_client.Verify(features_, 5, fresh.response.vo).ok());
  // Old (replayed) response under new params: also reject.
  core::Client new_client(fresh.snapshot->params);
  EXPECT_FALSE(new_client.Verify(features_, 5, honest_.response.vo).ok());
  // Each verifies under its own snapshot.
  EXPECT_TRUE(new_client.Verify(features_, 5, fresh.response.vo).ok());
  EXPECT_TRUE(stale_client.Verify(features_, 5, honest_.response.vo).ok());
}

// ---------------------------------------------------------------------------
// MITM over the wire: a protocol-aware adversary between a real NetServer
// and a real NetClient rewrites response frames mid-flight. This is the
// paper's threat model made literal — the transport gives no integrity, so
// Client::Verify alone must catch every rewrite of the results, the VO, or
// the root signature. (A transport-level MITM that garbles framing is the
// easy case: kCorrupted. These mutants keep the framing VALID.)
// ---------------------------------------------------------------------------

// One-shot TCP relay: accepts a single client connection, forwards request
// frames upstream verbatim, and passes each downstream (server -> client)
// frame through `rewrite` before relaying it. Frame-aware in both
// directions, so mutations operate on exactly one complete response frame.
class MitmProxy {
 public:
  MitmProxy(uint16_t upstream_port, std::function<Bytes(Bytes)> rewrite)
      : upstream_port_(upstream_port), rewrite_(std::move(rewrite)) {
    auto listener = net::ListenTcp("127.0.0.1", 0, &port_);
    EXPECT_TRUE(listener.ok());
    listener_ = std::move(listener).value();
    thread_ = std::thread([this] { Run(); });
  }

  ~MitmProxy() {
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  // Blocking read of one complete frame from `fd` into *frame (raw bytes,
  // header included). False on peer close.
  static bool ReadFrame(int fd, Bytes* buffer, Bytes* frame) {
    net::FrameHeader header;
    Bytes payload;
    Status err;
    for (;;) {
      Bytes probe = *buffer;
      if (net::TryExtractFrame(&probe, &header, &payload, &err) ==
          net::ExtractResult::kFrame) {
        size_t frame_len = buffer->size() - probe.size();
        frame->assign(buffer->begin(), buffer->begin() + frame_len);
        buffer->erase(buffer->begin(), buffer->begin() + frame_len);
        return true;
      }
      uint8_t chunk[4096];
      auto got = net::RecvSome(fd, chunk, sizeof(chunk));
      if (!got.ok() || got.value() == 0) return false;
      buffer->insert(buffer->end(), chunk, chunk + got.value());
    }
  }

  void Run() {
    int client_fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (client_fd < 0) return;
    net::Socket client(client_fd);
    auto upstream = net::ConnectTcp("127.0.0.1", upstream_port_);
    if (!upstream.ok()) return;

    Bytes client_buf, upstream_buf;
    Bytes frame;
    while (ReadFrame(client.fd(), &client_buf, &frame)) {
      if (!net::SendAll(upstream->fd(), frame.data(), frame.size()).ok()) {
        return;
      }
      if (!ReadFrame(upstream->fd(), &upstream_buf, &frame)) return;
      Bytes rewritten = rewrite_(std::move(frame));
      if (!net::SendAll(client.fd(), rewritten.data(), rewritten.size())
               .ok()) {
        return;
      }
    }
  }

  uint16_t upstream_port_ = 0;
  std::function<Bytes(Bytes)> rewrite_;
  net::Socket listener_;
  uint16_t port_ = 0;
  std::thread thread_;
};

class WireMitmTest : public ::testing::Test {
 public:
  WireMitmTest() {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 150;
    cp.num_clusters = 64;
    cp.seed = 29;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 64;
    cbp.dims = 8;
    owner_ = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                   std::move(corpus), std::move(blobs));
    package_ =
        std::shared_ptr<const core::SpPackage>(std::move(owner_.package));
    engine_ = std::make_unique<core::QueryEngine>(package_,
                                                  owner_.public_params);
    server_ = std::make_unique<net::NetServer>(engine_.get());
    EXPECT_TRUE(server_->Start().ok());
    features_ = workload::GenerateQueryFeatures(package_->codebook, 8, 0.3,
                                                41);
  }

  // Runs one query through a MITM applying `rewrite` to the response frame;
  // returns the client-side outcome.
  Status QueryThrough(std::function<Bytes(Bytes)> rewrite) {
    MitmProxy proxy(server_->port(), std::move(rewrite));
    auto client = net::NetClient::Connect("127.0.0.1", proxy.port(),
                                          owner_.public_params);
    if (!client.ok()) return client.status();
    auto result = client->Query(features_, 5, /*deadline_ms=*/30000);
    return result.ok() ? Status::Ok() : result.status();
  }

  // Decodes a response frame, hands the payload struct to `mutate`, and
  // re-frames — the protocol-aware rewrite every case below builds on.
  static Bytes RewriteResponse(
      Bytes frame, const std::function<void(net::ResponseFrame*)>& mutate) {
    net::FrameHeader header;
    Bytes payload;
    Status err;
    EXPECT_EQ(net::TryExtractFrame(&frame, &header, &payload, &err),
              net::ExtractResult::kFrame);
    EXPECT_EQ(header.type, net::FrameType::kResponse);
    net::ResponseFrame resp;
    EXPECT_TRUE(net::DecodeResponse(payload, &resp).ok());
    mutate(&resp);
    return net::EncodeFrame(net::FrameType::kResponse,
                            net::EncodeResponse(resp));
  }

  core::OwnerOutput owner_;
  std::shared_ptr<const core::SpPackage> package_;
  std::unique_ptr<core::QueryEngine> engine_;
  std::unique_ptr<net::NetServer> server_;
  std::vector<std::vector<float>> features_;
};

TEST_F(WireMitmTest, PassthroughVerifies) {
  // Control: the proxy itself must be transparent.
  Status st = QueryThrough([](Bytes frame) { return frame; });
  EXPECT_TRUE(st.ok()) << st.message();
}

TEST_F(WireMitmTest, FlippedVoBytesRejected) {
  // One byte anywhere in the VO stream: front, middle, back.
  for (double pos : {0.05, 0.5, 0.95}) {
    Status st = QueryThrough([pos](Bytes frame) {
      return RewriteResponse(std::move(frame), [pos](net::ResponseFrame* r) {
        r->vo_bytes[static_cast<size_t>(pos * r->vo_bytes.size())] ^= 0x01;
      });
    });
    EXPECT_FALSE(st.ok()) << "flip at " << pos << " accepted";
  }
}

TEST_F(WireMitmTest, TamperedResultImageRejected) {
  // Surgically rewrite a RESULT: deserialize the VO, flip one byte of the
  // top result's image payload, reserialize. Eq. (15) signatures must catch
  // it even though every proof structure around it is untouched.
  Status st = QueryThrough([](Bytes frame) {
    return RewriteResponse(std::move(frame), [](net::ResponseFrame* r) {
      core::QueryVO vo;
      ASSERT_TRUE(core::QueryVO::Deserialize(r->vo_bytes, &vo).ok());
      ASSERT_FALSE(vo.results.empty());
      vo.results[0].data[0] ^= 0xFF;
      r->vo_bytes = vo.Serialize();
    });
  });
  EXPECT_FALSE(st.ok());
}

TEST_F(WireMitmTest, SwappedResultIdRejected) {
  Status st = QueryThrough([](Bytes frame) {
    return RewriteResponse(std::move(frame), [](net::ResponseFrame* r) {
      core::QueryVO vo;
      ASSERT_TRUE(core::QueryVO::Deserialize(r->vo_bytes, &vo).ok());
      ASSERT_FALSE(vo.results.empty());
      vo.results[0].id ^= 1;  // claim a different image produced these bytes
      r->vo_bytes = vo.Serialize();
    });
  });
  EXPECT_FALSE(st.ok());
}

TEST_F(WireMitmTest, TamperedSignatureRejected) {
  for (auto mutate : {
           +[](net::ResponseFrame* r) { r->root_signature[0] ^= 0x01; },
           +[](net::ResponseFrame* r) { r->root_signature.pop_back(); },
           +[](net::ResponseFrame* r) { r->root_signature.clear(); },
       }) {
    Status st = QueryThrough([mutate](Bytes frame) {
      return RewriteResponse(std::move(frame), mutate);
    });
    EXPECT_FALSE(st.ok());
  }
}

TEST_F(WireMitmTest, SubstitutedVoRejected) {
  // Replace the whole VO with one served for a DIFFERENT query — every
  // byte individually authentic, but not an answer to what the client
  // asked. The replay must fail against the client's own features.
  core::ServiceProvider sp(package_.get());
  auto other_features =
      workload::GenerateQueryFeatures(package_->codebook, 8, 0.3, 99);
  Bytes other_vo = sp.Query(other_features, 5).vo.Serialize();
  Status st = QueryThrough([&other_vo](Bytes frame) {
    return RewriteResponse(std::move(frame), [&](net::ResponseFrame* r) {
      r->vo_bytes = other_vo;
    });
  });
  EXPECT_FALSE(st.ok());
}

TEST_F(WireMitmTest, AdvisoryVersionMutationStillVerifies) {
  // The one field a MITM may touch without detection: snapshot_version is
  // advisory metadata, authenticated by nothing — the test documents that
  // boundary (and that the VO it arrives with still verifies).
  Status st = QueryThrough([](Bytes frame) {
    return RewriteResponse(std::move(frame), [](net::ResponseFrame* r) {
      r->snapshot_version = 424242;
    });
  });
  EXPECT_TRUE(st.ok()) << st.message();
}

// ---------------------------------------------------------------------------
// Adversarial composite-merge matrix (sharded scatter-gather)
// ---------------------------------------------------------------------------
//
// A malicious coordinator holds N individually valid per-shard VOs, all
// signed by the same owner key — the composite layer is what stops it from
// recombining them dishonestly. Each attack below mutates a REAL composite
// (decode, edit fields, re-encode), and VerifyComposite must reject every
// one; the honest bytes are accepted as the control.

class CompositeAdversaryTest : public ::testing::Test {
 public:
  CompositeAdversaryTest() {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 120;
    cp.num_clusters = 96;
    cp.min_distinct = 4;
    cp.max_distinct = 14;
    cp.seed = 21;
    corpus_ = workload::GenerateCorpus(cp);
    for (const auto& [id, v] : corpus_) {
      blobs_[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 96;
    cbp.dims = 12;
    cbp.seed = 22;
    codebook_ = workload::GenerateCodebook(cbp);
    features_ = workload::FeaturesFromBovw(codebook_, corpus_[3].second, 24,
                                           0.2, 0.1, 99);

    shard::ShardedDeployment dep =
        shard::ShardPlanner::Build(config, codebook_, corpus_, blobs_, 2);
    base_params_ = dep.shards[0].public_params;
    keys_ = dep.keys;
    // Keep shard 0's package shared so UnsettledScores can serve it raw.
    std::vector<std::unique_ptr<shard::ShardBackend>> backends;
    for (core::OwnerOutput& s : dep.shards) {
      std::shared_ptr<const core::SpPackage> pkg(std::move(s.package));
      if (packages_.empty()) packages_.push_back(pkg);
      backends.push_back(std::make_unique<shard::LocalShardBackend>(
          std::move(pkg), s.public_params, dep.keys.private_key));
    }
    coordinator_ = std::make_unique<shard::Coordinator>(
        std::move(backends), dep.manifest, dep.keys.private_key,
        shard::CoordinatorOptions{});
    Result<Bytes> r = coordinator_->Query(features_, 5);
    EXPECT_TRUE(r.ok());
    honest_bytes_ = *r;
    EXPECT_TRUE(
        shard::CompositeVO::Deserialize(honest_bytes_, &honest_).ok());
  }

  bool Accepts(const shard::CompositeVO& vo) {
    shard::CompositeClient client(base_params_);
    return client.VerifyComposite(features_, 5, vo.Serialize()).ok();
  }

  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus_;
  std::unordered_map<bovw::ImageId, Bytes> blobs_;
  ann::PointSet codebook_;
  std::vector<std::vector<float>> features_;
  core::PublicParams base_params_;
  crypto::RsaKeyPair keys_;
  std::vector<std::shared_ptr<const core::SpPackage>> packages_;
  std::unique_ptr<shard::Coordinator> coordinator_;
  Bytes honest_bytes_;
  shard::CompositeVO honest_;
};

TEST_F(CompositeAdversaryTest, HonestCompositeAccepted) {
  EXPECT_TRUE(Accepts(honest_));
}

TEST_F(CompositeAdversaryTest, DroppedShardRejected) {
  // The dropped shard might hold a better result; coverage must be total.
  shard::CompositeVO vo = honest_;
  vo.entries.resize(1);
  EXPECT_FALSE(Accepts(vo));
  shard::CompositeVO vo2 = honest_;
  vo2.entries.erase(vo2.entries.begin());  // drop shard 0, keep shard 1
  EXPECT_FALSE(Accepts(vo2));
}

TEST_F(CompositeAdversaryTest, ReorderedEntriesRejected) {
  shard::CompositeVO vo = honest_;
  std::swap(vo.entries[0], vo.entries[1]);
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, SplicedEntryRejected) {
  // Shard 0's (individually valid, owner-signed) VO answering shard 1's
  // slot: the replayed root is not in slot 1's digest set.
  shard::CompositeVO vo = honest_;
  vo.entries[1] = vo.entries[0];
  vo.entries[1].shard_id = 1;
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, DuplicatedEntryRejected) {
  shard::CompositeVO vo = honest_;
  vo.entries.push_back(vo.entries[1]);
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, StaleRootBeyondWindowRejected) {
  // Two epoch swaps on shard 0 age its original root out of the
  // {current, prev} window; replaying the original response is a rollback.
  const auto& corpus_vec = packages_[0]->corpus;
  ASSERT_TRUE(coordinator_
                  ->Insert(1000, corpus_vec[0].second,
                           workload::GenerateImageBlob(1000))
                  .ok());
  ASSERT_TRUE(coordinator_
                  ->Insert(1002, corpus_vec[1].second,
                           workload::GenerateImageBlob(1002))
                  .ok());
  Result<Bytes> fresh = coordinator_->Query(features_, 5);
  ASSERT_TRUE(fresh.ok());
  shard::CompositeVO vo;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(*fresh, &vo).ok());
  vo.entries[0] = honest_.entries[0];
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, TamperedManifestRejected) {
  shard::CompositeVO vo = honest_;
  ASSERT_FALSE(vo.manifest_bytes.empty());
  vo.manifest_bytes[vo.manifest_bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, SubstitutedManifestRejected) {
  // A structurally valid manifest signed by a DIFFERENT key (an SP's own):
  // the owner-key signature check must refuse it.
  Rng rng(91);
  crypto::RsaKeyPair forged_keys = crypto::RsaKeyPair::Generate(512, rng);
  shard::ShardManifest m;
  ASSERT_TRUE(
      shard::ShardManifest::Deserialize(honest_.manifest_bytes, &m).ok());
  m.Sign(forged_keys.private_key);
  shard::CompositeVO vo = honest_;
  vo.manifest_bytes = m.Serialize();
  EXPECT_FALSE(Accepts(vo));
}

TEST_F(CompositeAdversaryTest, UnsettledScoresRejected) {
  // A plain (non-settled) serve yields a perfectly valid VO whose scores
  // are only lower bounds — which would let a shard deflate a score to
  // eject an image from the global merge, so exactness is mandatory. The
  // filterless Baseline config makes inexactness structural (absence from
  // a non-exhausted list is unprovable without filters), so the plain
  // serve below is guaranteed un-settled while the coordinator's settled
  // serve of the same deployment drains to exact scores.
  core::Config config = core::Config::Baseline();
  config.rsa_bits = 512;
  // A corpus big enough that posting lists outlive the bound-resolution
  // pops (short lists drain completely, which would make even a plain
  // serve exact and void the attack).
  workload::CorpusParams cp;
  cp.num_images = 600;
  cp.num_clusters = 128;
  cp.seed = 31;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 12;
  cbp.seed = 32;
  ann::PointSet codebook = workload::GenerateCodebook(cbp);
  std::vector<std::vector<float>> features =
      workload::FeaturesFromBovw(codebook, corpus[3].second, 40, 0.2, 0.3, 99);
  shard::ShardedDeployment dep =
      shard::ShardPlanner::Build(config, codebook, corpus, blobs, 2);
  const core::PublicParams base = dep.shards[0].public_params;
  std::shared_ptr<const core::SpPackage> shard0(std::move(dep.shards[0].package));
  std::shared_ptr<const core::SpPackage> shard1(std::move(dep.shards[1].package));
  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  backends.push_back(std::make_unique<shard::LocalShardBackend>(
      shard0, dep.shards[0].public_params, dep.keys.private_key));
  backends.push_back(std::make_unique<shard::LocalShardBackend>(
      shard1, dep.shards[1].public_params, dep.keys.private_key));
  shard::Coordinator coord(std::move(backends), dep.manifest,
                           dep.keys.private_key, shard::CoordinatorOptions{});
  Result<Bytes> honest = coord.Query(features, 5);
  ASSERT_TRUE(honest.ok()) << honest.status().message();
  shard::CompositeClient client(base);
  ASSERT_TRUE(client.VerifyComposite(features, 5, *honest).ok());

  core::ServiceProvider sp(shard0.get());
  core::QueryResponse resp;
  ASSERT_TRUE(sp.Query(features, 5, {}, {}, {}, &resp).ok());
  core::Client plain(base);
  Result<core::VerifiedResults> unsettled =
      plain.Verify(features, 5, resp.vo);
  ASSERT_TRUE(unsettled.ok());
  ASSERT_FALSE(unsettled->topk_scores_exact);  // the attack's precondition

  shard::CompositeVO vo;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(*honest, &vo).ok());
  vo.entries[0].vo_bytes = resp.vo.Serialize();
  EXPECT_FALSE(client.VerifyComposite(features, 5, vo.Serialize()).ok());
}

TEST_F(CompositeAdversaryTest, TamperedEntrySignatureRejected) {
  shard::CompositeVO vo = honest_;
  ASSERT_FALSE(vo.entries[0].root_signature.empty());
  vo.entries[0].root_signature[0] ^= 0x01;
  EXPECT_FALSE(Accepts(vo));
}

}  // namespace
}  // namespace imageproof
