// Tests for the randomized k-d tree, forest (AKM search), and the AKM
// codebook trainer, checked against brute-force references.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "ann/kmeans.h"
#include "ann/points.h"
#include "ann/rkd_forest.h"
#include "ann/rkd_tree.h"
#include "common/random.h"

namespace imageproof::ann {
namespace {

PointSet RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  PointSet out(dims, n);
  for (size_t i = 0; i < n; ++i) {
    float* row = out.row(i);
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.NextGaussian());
    }
  }
  return out;
}

int32_t BruteNearest(const PointSet& points, const float* q, double* best_out) {
  double best = std::numeric_limits<double>::infinity();
  int32_t idx = -1;
  for (size_t i = 0; i < points.size(); ++i) {
    double d = SquaredL2(q, points.row(i), points.dims());
    if (d < best || (d == best && static_cast<int32_t>(i) < idx)) {
      best = d;
      idx = static_cast<int32_t>(i);
    }
  }
  if (best_out) *best_out = best;
  return idx;
}

std::set<int32_t> BruteRange(const PointSet& points, const float* q,
                             double radius_sq) {
  std::set<int32_t> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (SquaredL2(q, points.row(i), points.dims()) <= radius_sq) {
      out.insert(static_cast<int32_t>(i));
    }
  }
  return out;
}

TEST(PointSetTest, FromRowsAndAccess) {
  PointSet p = PointSet::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(p.dims(), 3u);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.row(1)[2], 6.0f);
  EXPECT_EQ(p.RowVec(0), (std::vector<float>{1, 2, 3}));
}

TEST(SquaredL2Test, KnownValues) {
  float a[] = {0, 0, 0};
  float b[] = {1, 2, 2};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(SquaredL2(a, a, 3), 0.0);
}

TEST(RkdTreeTest, EveryPointInExactlyOneLeaf) {
  PointSet points = RandomPoints(500, 8, 3);
  RkdTree tree(points, 4, 42);
  std::vector<int> seen(points.size(), 0);
  for (const RkdNode& node : tree.nodes()) {
    if (!node.IsLeaf()) continue;
    EXPECT_LE(node.end - node.begin, 4);
    EXPECT_GT(node.end, node.begin);
    for (int32_t i = node.begin; i < node.end; ++i) {
      seen[tree.point_indices()[i]]++;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(RkdTreeTest, DifferentSeedsDifferentTrees) {
  PointSet points = RandomPoints(200, 16, 4);
  RkdTree t1(points, 2, 1), t2(points, 2, 2);
  // The randomized split choice should change at least one node.
  bool differ = t1.nodes().size() != t2.nodes().size();
  if (!differ) {
    for (size_t i = 0; i < t1.nodes().size(); ++i) {
      if (t1.nodes()[i].split_dim != t2.nodes()[i].split_dim ||
          t1.nodes()[i].split_value != t2.nodes()[i].split_value) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RkdTreeTest, ExactNearestMatchesBruteForce) {
  PointSet points = RandomPoints(300, 12, 5);
  RkdTree tree(points, 3, 7);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> q(12);
    for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
    double tree_dist, brute_dist;
    int32_t tree_idx = tree.ExactNearest(q.data(), &tree_dist);
    int32_t brute_idx = BruteNearest(points, q.data(), &brute_dist);
    EXPECT_EQ(tree_idx, brute_idx);
    EXPECT_DOUBLE_EQ(tree_dist, brute_dist);
  }
}

TEST(RkdTreeTest, RangeSearchMatchesBruteForce) {
  PointSet points = RandomPoints(400, 6, 11);
  RkdTree tree(points, 2, 13);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> q(6);
    for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
    double radius_sq = 0.5 + rng.NextDouble() * 3.0;
    auto got = tree.RangeSearch(q.data(), radius_sq);
    std::set<int32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicates returned";
    std::set<int32_t> want = BruteRange(points, q.data(), radius_sq);
    // Range search over the tree returns whole leaves' points only when the
    // *leaf region* intersects the ball, so it returns a superset of the
    // exact answer; it must never miss a point.
    for (int32_t idx : want) {
      EXPECT_TRUE(got_set.count(idx)) << "missed point " << idx;
    }
  }
}

TEST(RkdTreeTest, EmptyAndSingleton) {
  PointSet empty;
  RkdTree t_empty(empty, 2, 1);
  double d;
  EXPECT_EQ(t_empty.ExactNearest(nullptr, &d), -1);

  PointSet one = PointSet::FromRows({{1.0f, 2.0f}});
  RkdTree t_one(one, 2, 1);
  float q[] = {0.0f, 0.0f};
  EXPECT_EQ(t_one.ExactNearest(q, &d), 0);
  EXPECT_DOUBLE_EQ(d, 5.0);
  // Range search returns whole leaves whose *region* intersects the ball;
  // the singleton tree's root region is all of space, so the point is
  // returned as a candidate even for a tiny radius (superset semantics).
  EXPECT_EQ(t_one.RangeSearch(q, 5.0).size(), 1u);
  EXPECT_EQ(t_one.RangeSearch(q, 0.01).size(), 1u);
}

TEST(RkdForestTest, ApproxNearestUsuallyExact) {
  PointSet points = RandomPoints(1000, 16, 21);
  ForestParams params;
  params.num_trees = 8;
  params.max_leaf_checks = 64;
  RkdForest forest(points, params);
  Rng rng(23);
  int exact = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(16);
    for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
    NearestResult r = forest.ApproxNearest(q.data());
    double brute_dist;
    int32_t brute_idx = BruteNearest(points, q.data(), &brute_dist);
    ASSERT_GE(r.index, 0);
    // The returned distance must be correct for the returned point.
    EXPECT_DOUBLE_EQ(r.dist_sq,
                     SquaredL2(q.data(), points.row(r.index), 16));
    EXPECT_GE(r.dist_sq, brute_dist);
    if (r.index == brute_idx) ++exact;
  }
  // AKM is approximate, but with 8 trees / 64 checks recall should be high.
  EXPECT_GE(exact, trials * 7 / 10);
}

TEST(RkdForestTest, QueryOnDatabasePointFindsItself) {
  PointSet points = RandomPoints(500, 8, 31);
  RkdForest forest(points, ForestParams{});
  for (size_t i = 0; i < 20; ++i) {
    NearestResult r = forest.ApproxNearest(points.row(i * 7));
    EXPECT_EQ(r.index, static_cast<int32_t>(i * 7));
    EXPECT_DOUBLE_EQ(r.dist_sq, 0.0);
  }
}

TEST(RkdForestTest, EmptySet) {
  PointSet empty;
  RkdForest forest(empty, ForestParams{});
  float q[] = {1.0f};
  EXPECT_EQ(forest.ApproxNearest(q).index, -1);
}

TEST(KmeansTest, ClusterCountAndAssignmentRange) {
  PointSet points = RandomPoints(600, 8, 41);
  AkmParams params;
  params.num_clusters = 20;
  params.iterations = 5;
  AkmResult result = TrainCodebook(points, params);
  EXPECT_EQ(result.centers.size(), 20u);
  EXPECT_EQ(result.assignment.size(), 600u);
  for (int32_t a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 20);
  }
}

TEST(KmeansTest, RecoversWellSeparatedClusters) {
  // Three tight blobs far apart; AKM must drive quantization error well
  // below the blob separation.
  Rng rng(55);
  PointSet points(4, 0);
  points.set_dims(4);
  const float centers[3][4] = {
      {0, 0, 0, 0}, {50, 50, 0, 0}, {0, 0, 50, 50}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      std::vector<float> p(4);
      for (int d = 0; d < 4; ++d) {
        p[d] = centers[c][d] + static_cast<float>(rng.NextGaussian());
      }
      points.AppendRow(p);
    }
  }
  AkmParams params;
  params.num_clusters = 3;
  params.iterations = 10;
  AkmResult result = TrainCodebook(points, params);
  EXPECT_LT(result.quantization_error, 30.0);
  // Points from the same blob should mostly share a cluster.
  int agree = 0;
  for (int i = 0; i < 99; ++i) {
    if (result.assignment[i] == result.assignment[i + 1]) ++agree;
  }
  EXPECT_GT(agree, 80);
}

TEST(KmeansTest, QuantizationErrorDecreasesWithMoreClusters) {
  PointSet points = RandomPoints(500, 6, 61);
  AkmParams small;
  small.num_clusters = 4;
  small.iterations = 6;
  AkmParams large = small;
  large.num_clusters = 64;
  double err_small = TrainCodebook(points, small).quantization_error;
  double err_large = TrainCodebook(points, large).quantization_error;
  EXPECT_LT(err_large, err_small);
}

}  // namespace
}  // namespace imageproof::ann
