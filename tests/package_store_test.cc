// Tests for the mmap package store (storage/package_store.h): round-trip
// fidelity, the loopback byte-identity contract (disk-backed queries are
// byte-identical to in-memory at any thread count), the open-time rejection
// matrix for every tampered header/TOC/section byte class, lazy image
// integrity, the epoch directory protocol, and the engine's disk-backed
// update path.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "core/update.h"
#include "storage/package_store.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

namespace imageproof::storage {
namespace {

core::OwnerOutput BuildSmallDeployment(core::Config config, uint64_t seed = 3,
                                       size_t num_images = 200) {
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = 96;
  cp.min_distinct = 4;
  cp.max_distinct = 14;
  cp.seed = seed;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 96;
  cbp.dims = 12;
  cbp.seed = seed + 1;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs), seed + 2);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Overwrites one byte of the file at `offset` with its XOR against `mask`.
void FlipByte(const std::string& path, uint64_t offset, uint8_t mask = 0xFF) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ mask, f);
  std::fclose(f);
}

class PackageStoreSchemeTest : public ::testing::TestWithParam<const char*> {
 protected:
  core::Config SchemeConfig() const {
    return std::string(GetParam()) == "ImageProof"
               ? core::Config::ImageProof()
               : core::Config::OptimizedBoth();
  }
};

TEST_P(PackageStoreSchemeTest, RoundTripPreservesSignedDigests) {
  core::OwnerOutput owner = BuildSmallDeployment(SchemeConfig());
  std::string path = TempPath("store_roundtrip.ipk");
  ASSERT_TRUE(PackageStore::Write(path, *owner.package).ok());

  OpenOptions opts;
  opts.params = &owner.public_params;
  auto loaded = PackageStore::Open(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE((*loaded)->disk_backed());
  EXPECT_EQ((*loaded)->RootDigest(), owner.package->RootDigest());
  EXPECT_EQ((*loaded)->NumImages(), owner.package->NumImages());
  EXPECT_TRUE((*loaded)->ImagesEqual(*owner.package));

  // Queries served from the mapped package verify against the ORIGINAL
  // owner's signature.
  core::ServiceProvider sp(loaded->get());
  core::Client client(owner.public_params);
  auto features =
      workload::GenerateQueryFeatures((*loaded)->codebook, 20, 0.3, 42);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
  std::remove(path.c_str());
}

// The loopback contract from the determinism invariant, extended to disk:
// for the same snapshot state, a disk-backed engine's VO bytes are
// byte-identical to the in-memory engine's at every thread count.
TEST_P(PackageStoreSchemeTest, DiskBackedQueriesByteIdenticalToMemory) {
  core::OwnerOutput owner = BuildSmallDeployment(SchemeConfig());
  std::string path = TempPath("store_loopback.ipk");
  ASSERT_TRUE(PackageStore::Write(path, *owner.package).ok());
  OpenOptions opts;
  opts.params = &owner.public_params;
  auto disk_pkg = PackageStore::Open(path, opts);
  ASSERT_TRUE(disk_pkg.ok()) << disk_pkg.status().message();

  std::vector<std::vector<std::vector<float>>> queries;
  for (uint64_t s = 0; s < 4; ++s) {
    queries.push_back(workload::GenerateQueryFeatures(
        owner.package->codebook, 15, 0.3, 100 + s));
  }

  // Reference: serial in-memory ServiceProvider.
  std::vector<Bytes> reference;
  core::ServiceProvider sp(owner.package.get());
  for (const auto& q : queries) reference.push_back(sp.Query(q, 5).vo.Serialize());

  for (unsigned threads : {1u, 4u}) {
    core::EngineOptions eo;
    eo.num_workers = threads;
    eo.intra_query_threads = threads;
    core::QueryEngine engine(
        std::shared_ptr<const core::SpPackage>(std::move(*disk_pkg)),
        owner.public_params, eo);
    auto responses = engine.QueryBatch(queries, 5);
    ASSERT_EQ(responses.size(), queries.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << responses[i].status.message();
      EXPECT_EQ(responses[i].response.vo.Serialize(), reference[i])
          << "disk-backed VO diverged, query " << i << ", " << threads
          << " threads";
    }
    // Re-open for the next engine (the previous one consumed the package).
    disk_pkg = PackageStore::Open(path, opts);
    ASSERT_TRUE(disk_pkg.ok());
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Schemes, PackageStoreSchemeTest,
                         ::testing::Values("ImageProof", "OptimizedBoth"));

class PackageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owner_ = BuildSmallDeployment(core::Config::ImageProof(), 3, 120);
    path_ = TempPath("store_fixture.ipk");
    ASSERT_TRUE(PackageStore::Write(path_, *owner_.package).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  OpenOptions SignedOpen() {
    OpenOptions o;
    o.params = &owner_.public_params;
    return o;
  }

  core::OwnerOutput owner_;
  std::string path_;
};

TEST_F(PackageStoreTest, InspectReportsAlignedSections) {
  auto layout = PackageStore::Inspect(path_);
  ASSERT_TRUE(layout.ok()) << layout.status().message();
  EXPECT_EQ(layout->page_size, 4096u);
  ASSERT_EQ(layout->sections.size(), 9u);
  uint64_t prev_end = layout->toc_offset + layout->toc_size;
  for (size_t i = 0; i < layout->sections.size(); ++i) {
    const auto& s = layout->sections[i];
    EXPECT_EQ(s.id, i + 1) << "sections must appear in id order";
    EXPECT_EQ(s.offset % layout->page_size, 0u);
    EXPECT_GE(s.offset, prev_end);
    prev_end = s.offset + s.size;
  }
  EXPECT_EQ(prev_end, layout->file_size) << "no trailing bytes after sections";
}

TEST_F(PackageStoreTest, SmallPageSizeRoundTrips) {
  std::string path = TempPath("store_page64.ipk");
  WriteOptions wo;
  wo.page_size = 64;
  ASSERT_TRUE(PackageStore::Write(path, *owner_.package, wo).ok());
  auto loaded = PackageStore::Open(path, SignedOpen());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->RootDigest(), owner_.package->RootDigest());
  std::remove(path.c_str());
}

TEST_F(PackageStoreTest, InvalidPageSizeRejectedAtWrite) {
  WriteOptions wo;
  wo.page_size = 48;  // not a power of two
  EXPECT_FALSE(PackageStore::Write(TempPath("x.ipk"), *owner_.package, wo).ok());
  wo.page_size = 32;  // below the floor
  EXPECT_FALSE(PackageStore::Write(TempPath("x.ipk"), *owner_.package, wo).ok());
}

TEST_F(PackageStoreTest, DeepVerifyPassesOnIntactFile) {
  OpenOptions opts = SignedOpen();
  opts.deep_verify = true;
  auto loaded = PackageStore::Open(path_, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
}

// Rejection matrix: every tampered metadata byte class fails kCorrupted at
// open. Offsets follow the documented layout: magic at 0, version at 4,
// flags at 8, page_size at 12, section_count at 16, root digest at 44,
// toc digest at 76, header digest at 108, TOC from 140.
TEST_F(PackageStoreTest, TamperedHeaderAndTocRejected) {
  struct Case {
    const char* what;
    uint64_t offset;
  };
  const Case cases[] = {
      {"magic", 0},          {"version", 4},        {"flags", 8},
      {"page_size", 12},     {"section_count", 16}, {"root_digest", 44},
      {"toc_digest", 76},    {"header_digest", 108}, {"toc_entry_id", 140},
      {"toc_entry_offset", 144}, {"toc_entry_digest", 160},
  };
  for (const auto& c : cases) {
    std::string path = TempPath("store_tamper.ipk");
    ASSERT_TRUE(PackageStore::Write(path, *owner_.package).ok());
    FlipByte(path, c.offset);
    auto loaded = PackageStore::Open(path, SignedOpen());
    ASSERT_FALSE(loaded.ok()) << "tampered " << c.what << " accepted";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupted) << c.what;
    std::remove(path.c_str());
  }
}

TEST_F(PackageStoreTest, TamperedSectionBytesRejected) {
  auto layout = PackageStore::Inspect(path_);
  ASSERT_TRUE(layout.ok());
  // Every section except image blobs is digest-checked at open.
  for (const auto& s : layout->sections) {
    if (s.id == 9 || s.size == 0) continue;  // kImageBlobs: checked lazily
    std::string path = TempPath("store_tamper_sec.ipk");
    ASSERT_TRUE(PackageStore::Write(path, *owner_.package).ok());
    FlipByte(path, s.offset + s.size / 2);
    auto loaded = PackageStore::Open(path, SignedOpen());
    ASSERT_FALSE(loaded.ok()) << "tampered section " << s.id << " accepted";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupted);
    std::remove(path.c_str());
  }
}

TEST_F(PackageStoreTest, TruncatedAndPaddedFilesRejected) {
  Bytes original;
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      original.insert(original.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  auto write_and_open = [&](const Bytes& data) {
    std::string path = TempPath("store_resize.ipk");
    FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    auto loaded = PackageStore::Open(path, SignedOpen());
    std::remove(path.c_str());
    return loaded.ok() ? Status::Ok() : loaded.status();
  };

  Bytes truncated(original.begin(), original.begin() + original.size() / 2);
  Status s = write_and_open(truncated);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorrupted);

  Bytes tiny(original.begin(), original.begin() + 64);  // inside the header
  s = write_and_open(tiny);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorrupted);

  Bytes padded = original;
  padded.push_back(0);
  s = write_and_open(padded);
  ASSERT_FALSE(s.ok()) << "trailing byte accepted";
  EXPECT_EQ(s.code(), StatusCode::kCorrupted);

  EXPECT_FALSE(write_and_open({}).ok());
}

// A flipped image payload byte passes Open (lazy integrity) but surfaces as
// kCorrupted from the access that touches it — never as silently wrong
// bytes.
TEST_F(PackageStoreTest, TamperedImagePayloadCaughtLazily) {
  auto layout = PackageStore::Inspect(path_);
  ASSERT_TRUE(layout.ok());
  const auto& blobs = layout->sections.back();
  ASSERT_EQ(blobs.id, 9u);
  ASSERT_GT(blobs.size, 0u);

  std::string path = TempPath("store_lazy.ipk");
  ASSERT_TRUE(PackageStore::Write(path, *owner_.package).ok());
  FlipByte(path, blobs.offset + blobs.size / 2);

  auto loaded = PackageStore::Open(path, SignedOpen());
  ASSERT_TRUE(loaded.ok()) << "lazy open must not hash payloads: "
                           << loaded.status().message();

  // Walking every payload must hit the corruption.
  Status walk = (*loaded)->ForEachImage(
      [](bovw::ImageId, BytesView, BytesView) { return Status::Ok(); });
  ASSERT_FALSE(walk.ok());
  EXPECT_EQ(walk.code(), StatusCode::kCorrupted);

  // deep_verify refuses the same file at open.
  OpenOptions deep = SignedOpen();
  deep.deep_verify = true;
  auto audited = PackageStore::Open(path, deep);
  ASSERT_FALSE(audited.ok());
  EXPECT_EQ(audited.status().code(), StatusCode::kCorrupted);
  std::remove(path.c_str());
}

// Authenticity is separate from integrity: a self-consistent file written
// by someone else fails the signature check.
TEST_F(PackageStoreTest, ForeignPackageFailsSignatureCheck) {
  core::OwnerOutput other =
      BuildSmallDeployment(core::Config::ImageProof(), 77, 120);
  std::string path = TempPath("store_foreign.ipk");
  ASSERT_TRUE(PackageStore::Write(path, *other.package).ok());

  // Unsigned open succeeds (the file is internally consistent)...
  auto unsigned_open = PackageStore::Open(path, {});
  EXPECT_TRUE(unsigned_open.ok()) << unsigned_open.status().message();

  // ...but opening against OUR params rejects it.
  auto loaded = PackageStore::Open(path, SignedOpen());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupted);
  std::remove(path.c_str());
}

TEST_F(PackageStoreTest, DiskBackedPackageRejectsInPlaceUpdate) {
  auto loaded = PackageStore::Open(path_, SignedOpen());
  ASSERT_TRUE(loaded.ok());
  core::SpPackage* pkg = const_cast<core::SpPackage*>(loaded->get());
  core::PublicParams params = owner_.public_params;
  crypto::RsaPrivateKey key = owner_.private_key;
  auto stats = core::InsertImage(pkg, key, &params, 999999,
                                 owner_.package->corpus[0].second,
                                 workload::GenerateImageBlob(999999));
  EXPECT_FALSE(stats.ok()) << "in-place update of a mapped package";
}

TEST_F(PackageStoreTest, WriteFromDiskBackedPackageRoundTrips) {
  // Re-serializing a mapped package streams payloads through the uniform
  // accessor; the copy must be byte-equivalent to one written from memory.
  auto loaded = PackageStore::Open(path_, SignedOpen());
  ASSERT_TRUE(loaded.ok());
  std::string copy = TempPath("store_copy.ipk");
  ASSERT_TRUE(PackageStore::Write(copy, **loaded).ok());
  auto reloaded = PackageStore::Open(copy, SignedOpen());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().message();
  EXPECT_EQ((*reloaded)->RootDigest(), owner_.package->RootDigest());
  EXPECT_TRUE((*reloaded)->ImagesEqual(*owner_.package));
  std::remove(copy.c_str());
}

// The serializer interchange path and the store must agree: a package
// loaded from one can be written to the other with identical signed state.
TEST_F(PackageStoreTest, InterchangesWithSerializer) {
  Bytes stream = SerializeSpPackage(*owner_.package);
  auto from_stream = DeserializeSpPackage(stream);
  ASSERT_TRUE(from_stream.ok());
  std::string path = TempPath("store_interchange.ipk");
  ASSERT_TRUE(PackageStore::Write(path, **from_stream).ok());
  auto from_store = PackageStore::Open(path, SignedOpen());
  ASSERT_TRUE(from_store.ok()) << from_store.status().message();
  EXPECT_EQ(SerializeSpPackage(**from_store), stream)
      << "store -> serializer bytes diverged from the original stream";
  std::remove(path.c_str());
}

// --- epoch directory protocol -------------------------------------------

TEST(EpochProtocolTest, CurrentPointerLifecycle) {
  core::OwnerOutput owner =
      BuildSmallDeployment(core::Config::ImageProof(), 11, 60);
  std::string dir = TempPath("epoch_dir_lifecycle");
  (void)system(("mkdir -p " + dir).c_str());
  (void)std::remove((dir + "/CURRENT").c_str());

  // Fresh directory: no CURRENT.
  EXPECT_FALSE(PackageStore::CurrentEpoch(dir).ok());
  EXPECT_FALSE(PackageStore::OpenCurrent(dir).ok());

  auto p1 = PackageStore::WriteEpoch(dir, 1, *owner.package);
  ASSERT_TRUE(p1.ok()) << p1.status().message();
  // Written but not published: still no CURRENT.
  EXPECT_FALSE(PackageStore::CurrentEpoch(dir).ok());

  ASSERT_TRUE(PackageStore::SetCurrentEpoch(dir, 1).ok());
  auto cur = PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 1u);

  OpenOptions opts;
  opts.params = &owner.public_params;
  uint64_t epoch = 0;
  auto pkg = PackageStore::OpenCurrent(dir, opts, &epoch);
  ASSERT_TRUE(pkg.ok()) << pkg.status().message();
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ((*pkg)->RootDigest(), owner.package->RootDigest());

  // Publish epoch 2; OpenCurrent follows the pointer.
  auto p2 = PackageStore::WriteEpoch(dir, 2, *owner.package);
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(PackageStore::SetCurrentEpoch(dir, 2).ok());
  pkg = PackageStore::OpenCurrent(dir, opts, &epoch);
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(epoch, 2u);
}

TEST(EpochProtocolTest, CorruptCurrentPointerRejected) {
  std::string dir = TempPath("epoch_dir_badcur");
  (void)system(("mkdir -p " + dir).c_str());
  FILE* f = std::fopen((dir + "/CURRENT").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("IPKC not-a-number\n", f);
  std::fclose(f);
  auto cur = PackageStore::CurrentEpoch(dir);
  ASSERT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code(), StatusCode::kCorrupted);
}

// --- engine persistence -------------------------------------------------

TEST(EnginePersistTest, UpdatesPublishVerifiedEpochs) {
  core::OwnerOutput owner =
      BuildSmallDeployment(core::Config::ImageProof(), 21, 80);
  std::string dir = TempPath("engine_persist");
  (void)system(("mkdir -p " + dir).c_str());

  auto features = workload::GenerateQueryFeatures(
      owner.package->codebook, 15, 0.3, 5);
  bovw::BovwVector insert_vec = owner.package->corpus[0].second;

  core::EngineOptions eo;
  eo.num_workers = 1;
  eo.persist_dir = dir;
  core::QueryEngine engine(
      std::shared_ptr<const core::SpPackage>(std::move(owner.package)),
      owner.public_params, eo);

  auto ins = engine.InsertImage(owner.private_key, 500000, insert_vec,
                                workload::GenerateImageBlob(500000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();

  // The engine now serves the mapped epoch it just published.
  auto snap = engine.CurrentSnapshot();
  EXPECT_TRUE(snap->package->disk_backed());
  EXPECT_EQ(snap->version, 1u);
  auto cur = PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 1u);

  // Queries served from the mapped snapshot verify against its params.
  auto fut = engine.Submit(features, 5);
  auto resp = fut.get();
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  core::Client client(resp.snapshot->params);
  EXPECT_TRUE(client.Verify(features, 5, resp.response.vo).ok());

  // A second update advances the epoch.
  auto del = engine.DeleteImage(owner.private_key, 500000);
  ASSERT_TRUE(del.ok()) << del.status().message();
  cur = PackageStore::CurrentEpoch(dir);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 2u);
  EXPECT_EQ(engine.CurrentSnapshot()->version, 2u);

  // A restarted process resumes from CURRENT: same root as the live
  // snapshot, and initial_version keeps epoch numbering monotonic.
  OpenOptions opts;
  opts.params = &engine.CurrentSnapshot()->params;
  uint64_t epoch = 0;
  auto reopened = PackageStore::OpenCurrent(dir, opts, &epoch);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ((*reopened)->RootDigest(),
            engine.CurrentSnapshot()->package->RootDigest());
}

}  // namespace
}  // namespace imageproof::storage
