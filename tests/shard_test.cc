// Sharded scatter-gather serving tests: manifest/composite codecs, the
// golden merge identity (merged output byte-identical across shard counts
// AND fan-out thread counts, and equal to the unsharded settled serve),
// update isolation (one shard epoch-swaps under live query load), the
// one-epoch freshness window, the remote (wire) composite path, and
// persistence round-trips. Adversarial composite mutations live in
// security_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "crypto/hasher.h"
#include "net/client.h"
#include "net/server.h"
#include "shard/composite.h"
#include "shard/composite_client.h"
#include "shard/coordinator.h"
#include "shard/manifest.h"
#include "shard/planner.h"
#include "storage/file_io.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void FlipByte(const std::string& path, size_t offset, uint8_t mask = 0xFF) {
  Bytes data;
  ASSERT_TRUE(storage::ReadFileBytes(path, &data).ok());
  ASSERT_LT(offset, data.size());
  data[offset] ^= mask;
  ASSERT_TRUE(storage::AtomicWriteFile(path, data).ok());
}

crypto::Digest DigestOf(const char* s) {
  crypto::DigestBuilder b;
  b.AddString(s);
  return b.Finalize();
}

// ---------------------------------------------------------------------------
// Manifest codec + signature
// ---------------------------------------------------------------------------

shard::ShardManifest MakeManifest() {
  shard::ShardManifest m;
  m.num_shards = 2;
  m.epoch = 7;
  m.shards.resize(2);
  m.shards[0].current = DigestOf("root-0");
  m.shards[0].current_signature = Bytes{1, 2, 3};
  m.shards[1].current = DigestOf("root-1b");
  m.shards[1].current_signature = Bytes{4, 5};
  m.shards[1].has_prev = true;
  m.shards[1].prev = DigestOf("root-1a");
  m.shards[1].prev_signature = Bytes{6};
  return m;
}

TEST(ShardManifestTest, SignSerializeRoundTrip) {
  Rng rng(42);
  crypto::RsaKeyPair keys = crypto::RsaKeyPair::Generate(512, rng);
  shard::ShardManifest m = MakeManifest();
  m.Sign(keys.private_key);
  EXPECT_TRUE(m.VerifySignature(keys.public_key));

  shard::ShardManifest out;
  ASSERT_TRUE(shard::ShardManifest::Deserialize(m.Serialize(), &out).ok());
  EXPECT_TRUE(out.VerifySignature(keys.public_key));
  EXPECT_EQ(out.num_shards, 2u);
  EXPECT_EQ(out.epoch, 7u);
  ASSERT_EQ(out.shards.size(), 2u);
  EXPECT_TRUE(out.shards[0].Allows(DigestOf("root-0")));
  EXPECT_FALSE(out.shards[0].Allows(DigestOf("root-1b")));
  EXPECT_TRUE(out.shards[1].Allows(DigestOf("root-1b")));
  EXPECT_TRUE(out.shards[1].Allows(DigestOf("root-1a")));  // one-epoch window
  EXPECT_FALSE(out.shards[1].Allows(DigestOf("root-0")));
  EXPECT_EQ(out.shards[1].prev_signature, Bytes{6});

  // Any field edit breaks the signature.
  out.epoch = 8;
  EXPECT_FALSE(out.VerifySignature(keys.public_key));
  out.epoch = 7;
  EXPECT_TRUE(out.VerifySignature(keys.public_key));
  out.shards[1].has_prev = false;
  EXPECT_FALSE(out.VerifySignature(keys.public_key));
}

TEST(ShardManifestTest, DecoderHardened) {
  Rng rng(43);
  crypto::RsaKeyPair keys = crypto::RsaKeyPair::Generate(512, rng);
  shard::ShardManifest m = MakeManifest();
  m.Sign(keys.private_key);
  const Bytes good = m.Serialize();
  shard::ShardManifest out;
  ASSERT_TRUE(shard::ShardManifest::Deserialize(good, &out).ok());

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_EQ(shard::ShardManifest::Deserialize(trailing, &out).code(),
            StatusCode::kCorrupted);

  for (size_t len = 0; len < good.size(); ++len) {
    Bytes cut(good.begin(), good.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(shard::ShardManifest::Deserialize(cut, &out).ok())
        << "truncation to " << len << " bytes accepted";
  }

  // Single-byte corruption either fails to decode or decodes to a manifest
  // whose owner signature no longer verifies — never crashes, never yields
  // an authentic-looking manifest.
  for (size_t i = 0; i < good.size(); ++i) {
    Bytes mut = good;
    mut[i] ^= 0xFF;
    shard::ShardManifest decoded;
    if (shard::ShardManifest::Deserialize(mut, &decoded).ok()) {
      EXPECT_FALSE(decoded.VerifySignature(keys.public_key))
          << "byte " << i << " flip kept the signature valid";
    }
  }

  // A zero-shard manifest is structurally invalid.
  shard::ShardManifest empty;
  empty.signature = Bytes{1};
  EXPECT_EQ(shard::ShardManifest::Deserialize(empty.Serialize(), &out).code(),
            StatusCode::kCorrupted);
}

TEST(ShardManifestTest, SaveLoadAndTamper) {
  Rng rng(44);
  crypto::RsaKeyPair keys = crypto::RsaKeyPair::Generate(512, rng);
  shard::ShardManifest m = MakeManifest();
  m.Sign(keys.private_key);
  const std::string path = TempPath("shard_manifest_roundtrip");
  ASSERT_TRUE(shard::SaveManifest(path, m).ok());
  Result<shard::ShardManifest> loaded = shard::LoadManifest(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->VerifySignature(keys.public_key));
  EXPECT_EQ(loaded->Serialize(), m.Serialize());
}

// ---------------------------------------------------------------------------
// Composite codec
// ---------------------------------------------------------------------------

TEST(CompositeCodecTest, RoundTripAndHardened) {
  shard::CompositeVO vo;
  vo.manifest_bytes = Bytes{1, 2, 3, 4};
  vo.entries.push_back({0, 5, Bytes{7, 8}, Bytes{9}});
  vo.entries.push_back({1, 6, Bytes{}, Bytes{1, 2, 3}});
  const Bytes good = vo.Serialize();

  shard::CompositeVO out;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(good, &out).ok());
  EXPECT_EQ(out.manifest_bytes, vo.manifest_bytes);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].shard_id, 0u);
  EXPECT_EQ(out.entries[0].snapshot_version, 5u);
  EXPECT_EQ(out.entries[0].root_signature, (Bytes{7, 8}));
  EXPECT_EQ(out.entries[1].vo_bytes, (Bytes{1, 2, 3}));

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_EQ(shard::CompositeVO::Deserialize(trailing, &out).code(),
            StatusCode::kCorrupted);

  for (size_t len = 0; len < good.size(); ++len) {
    Bytes cut(good.begin(), good.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(shard::CompositeVO::Deserialize(cut, &out).ok());
  }

  shard::CompositeVO empty;
  empty.manifest_bytes = Bytes{1};
  EXPECT_EQ(shard::CompositeVO::Deserialize(empty.Serialize(), &out).code(),
            StatusCode::kCorrupted);
}

// ---------------------------------------------------------------------------
// End-to-end sharded serving
// ---------------------------------------------------------------------------

struct TestData {
  core::Config config;
  ann::PointSet codebook;
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  std::unordered_map<bovw::ImageId, Bytes> blobs;
};

TestData MakeData(size_t num_images = 120) {
  TestData d;
  d.config = core::Config::ImageProof();
  d.config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = 96;
  cp.min_distinct = 4;
  cp.max_distinct = 14;
  cp.seed = 11;
  d.corpus = workload::GenerateCorpus(cp);
  workload::CodebookParams cbp;
  cbp.num_clusters = 96;
  cbp.dims = 12;
  cbp.seed = 12;
  d.codebook = workload::GenerateCodebook(cbp);
  for (const auto& [id, v] : d.corpus) {
    d.blobs[id] = workload::GenerateImageBlob(id);
  }
  return d;
}

std::vector<std::vector<float>> QueryFeatures(const TestData& d) {
  // A query derived from image 3, so the top result set is stable and
  // spans shards (image 3's near-duplicate group has members on both sides
  // of any id-mod partition).
  return workload::FeaturesFromBovw(d.codebook, d.corpus[3].second, 24, 0.2,
                                    0.1, 99);
}

std::unique_ptr<shard::Coordinator> MakeCoordinator(
    shard::ShardedDeployment deployment, unsigned fanout_threads) {
  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  for (core::OwnerOutput& s : deployment.shards) {
    std::shared_ptr<const core::SpPackage> pkg(std::move(s.package));
    backends.push_back(std::make_unique<shard::LocalShardBackend>(
        std::move(pkg), s.public_params, deployment.keys.private_key));
  }
  shard::CoordinatorOptions opts;
  opts.fanout_threads = fanout_threads;
  return std::make_unique<shard::Coordinator>(
      std::move(backends), deployment.manifest, deployment.keys.private_key,
      opts);
}

TEST(ShardServingTest, GoldenMergeByteIdentityAcrossLayouts) {
  TestData d = MakeData();
  const std::vector<std::vector<float>> features = QueryFeatures(d);
  const size_t k = 5;

  std::vector<bovw::ScoredImage> reference;
  std::vector<Bytes> reference_images;
  for (uint32_t shards : {1u, 2u, 4u}) {
    Bytes single_thread_bytes;
    for (unsigned threads : {1u, 4u}) {
      shard::ShardedDeployment dep = shard::ShardPlanner::Build(
          d.config, d.codebook, d.corpus, d.blobs, shards);
      const core::PublicParams base = dep.shards[0].public_params;
      std::unique_ptr<shard::Coordinator> coord =
          MakeCoordinator(std::move(dep), threads);
      Result<Bytes> r = coord->Query(features, k);
      ASSERT_TRUE(r.ok()) << shards << " shards: " << r.status().message();

      shard::CompositeClient client(base);
      Result<shard::CompositeVerifiedResults> v =
          client.VerifyComposite(features, k, *r);
      ASSERT_TRUE(v.ok()) << shards << " shards: " << v.status().message();
      EXPECT_EQ(v->num_shards, shards);
      ASSERT_EQ(v->topk.size(), v->images.size());
      for (const core::VerifiedResults& ps : v->per_shard) {
        EXPECT_TRUE(ps.topk_scores_exact);
      }

      // The composite BYTES are identical across fan-out thread counts:
      // parallelism must not leak into the proof.
      if (threads == 1u) {
        single_thread_bytes = *r;
      } else {
        EXPECT_EQ(single_thread_bytes, *r)
            << shards << " shards: composite bytes differ across thread "
            << "counts";
      }

      // The merged output is identical across shard counts.
      if (reference.empty()) {
        reference = v->topk;
        reference_images = v->images;
        ASSERT_EQ(reference.size(), k);
      } else {
        ASSERT_EQ(v->topk.size(), reference.size());
        for (size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(v->topk[i].id, reference[i].id) << "rank " << i;
          EXPECT_EQ(v->topk[i].score, reference[i].score) << "rank " << i;
          EXPECT_EQ(v->images[i], reference_images[i]) << "rank " << i;
        }
      }
    }
  }

  // And identical to the unsharded settled serve over the same corpus: the
  // frozen global idf weights make every per-image score independent of the
  // partition, so sharding is invisible in the verified answer.
  core::OwnerOutput owner =
      core::BuildDeployment(d.config, d.codebook, d.corpus, d.blobs);
  core::ServiceProvider sp(owner.package.get());
  core::ServeOptions serve;
  serve.settle_exact_topk = true;
  core::QueryResponse resp;
  ASSERT_TRUE(sp.Query(features, k, {}, {}, serve, &resp).ok());
  core::Client client(owner.public_params);
  Result<core::VerifiedResults> v = client.Verify(features, k, resp.vo);
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_TRUE(v->topk_scores_exact);
  ASSERT_EQ(v->topk.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(v->topk[i].id, reference[i].id) << "rank " << i;
    EXPECT_EQ(v->topk[i].score, reference[i].score) << "rank " << i;
  }
}

TEST(ShardServingTest, UpdateIsolationUnderLoad) {
  TestData d = MakeData();
  const std::vector<std::vector<float>> features = QueryFeatures(d);
  const bovw::BovwVector duplicate = d.corpus[3].second;  // lives in shard 1

  shard::ShardedDeployment dep =
      shard::ShardPlanner::Build(d.config, d.codebook, d.corpus, d.blobs, 2);
  const core::PublicParams base = dep.shards[0].public_params;
  std::unique_ptr<shard::Coordinator> coord =
      MakeCoordinator(std::move(dep), 2);
  shard::CompositeClient client(base);
  EXPECT_TRUE(coord->ProbeAll().ok());

  // Live query load while one shard epoch-swaps: every completed query must
  // verify; the only acceptable failure is the kUnavailable double-swap
  // transient (which a single insert cannot even trigger — asserted below).
  std::atomic<bool> stop{false};
  std::atomic<int> verify_failures{0};
  std::atomic<int> verified{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<Bytes> r = coord->Query(features, 5);
        if (!r.ok()) {
          if (r.status().code() != StatusCode::kUnavailable) {
            verify_failures.fetch_add(1);
          }
          continue;
        }
        Result<shard::CompositeVerifiedResults> v =
            client.VerifyComposite(features, 5, *r);
        if (v.ok()) {
          verified.fetch_add(1);
        } else {
          verify_failures.fetch_add(1);
        }
      }
    });
  }

  // Insert a cross-shard near-duplicate: id 1000 -> shard 0, byte-identical
  // BoVW to image 3 in shard 1.
  const bovw::ImageId new_id = 1000;
  Result<uint64_t> epoch =
      coord->Insert(new_id, duplicate, workload::GenerateImageBlob(new_id));
  ASSERT_TRUE(epoch.ok()) << epoch.status().message();
  EXPECT_EQ(*epoch, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : load) t.join();
  EXPECT_EQ(verify_failures.load(), 0);
  EXPECT_GT(verified.load(), 0);

  // Post-swap composite: the new image appears in the merged top-k with a
  // score exactly equal to its shard-1 twin (frozen weights), the tie
  // broken by ascending id.
  Result<Bytes> r = coord->Query(features, 6);
  ASSERT_TRUE(r.ok()) << r.status().message();
  Result<shard::CompositeVerifiedResults> v =
      client.VerifyComposite(features, 6, *r);
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->manifest_epoch, 1u);
  size_t pos3 = v->topk.size(), pos1000 = v->topk.size();
  for (size_t i = 0; i < v->topk.size(); ++i) {
    if (v->topk[i].id == 3) pos3 = i;
    if (v->topk[i].id == new_id) pos1000 = i;
  }
  ASSERT_LT(pos3, v->topk.size());
  ASSERT_LT(pos1000, v->topk.size());
  EXPECT_EQ(v->topk[pos3].score, v->topk[pos1000].score);
  EXPECT_LT(pos3, pos1000);
}

TEST(ShardServingTest, FreshnessWindowIsExactlyOneEpoch) {
  TestData d = MakeData();
  const std::vector<std::vector<float>> features = QueryFeatures(d);

  shard::ShardedDeployment dep =
      shard::ShardPlanner::Build(d.config, d.codebook, d.corpus, d.blobs, 2);
  const core::PublicParams base = dep.shards[0].public_params;
  std::unique_ptr<shard::Coordinator> coord =
      MakeCoordinator(std::move(dep), 2);
  shard::CompositeClient client(base);

  Result<Bytes> r_old = coord->Query(features, 5);
  ASSERT_TRUE(r_old.ok());
  shard::CompositeVO old_vo;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(*r_old, &old_vo).ok());

  // One update to shard 0 (ids 1000, 1002 are even).
  ASSERT_TRUE(coord
                  ->Insert(1000, d.corpus[5].second,
                           workload::GenerateImageBlob(1000))
                  .ok());
  Result<Bytes> r_new = coord->Query(features, 5);
  ASSERT_TRUE(r_new.ok());
  shard::CompositeVO new_vo;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(*r_new, &new_vo).ok());

  // A fan-out racing the swap legitimately carries shard 0's pre-update
  // response next to the post-update manifest; the prev digest accepts it.
  shard::CompositeVO mixed = new_vo;
  mixed.entries[0] = old_vo.entries[0];
  Result<shard::CompositeVerifiedResults> v =
      client.VerifyComposite(features, 5, mixed.Serialize());
  EXPECT_TRUE(v.ok()) << v.status().message();

  // A second update pushes the original root out of the window: the same
  // splice is now a rollback attempt and must be rejected.
  ASSERT_TRUE(coord
                  ->Insert(1002, d.corpus[7].second,
                           workload::GenerateImageBlob(1002))
                  .ok());
  Result<Bytes> r_latest = coord->Query(features, 5);
  ASSERT_TRUE(r_latest.ok());
  shard::CompositeVO latest;
  ASSERT_TRUE(shard::CompositeVO::Deserialize(*r_latest, &latest).ok());
  shard::CompositeVO stale = latest;
  stale.entries[0] = old_vo.entries[0];
  Result<shard::CompositeVerifiedResults> rejected =
      client.VerifyComposite(features, 5, stale.Serialize());
  EXPECT_FALSE(rejected.ok());
}

TEST(ShardServingTest, RemoteCompositeServingOverTheWire) {
  TestData d = MakeData();
  const std::vector<std::vector<float>> features = QueryFeatures(d);
  const size_t k = 5;

  shard::ShardedDeployment dep =
      shard::ShardPlanner::Build(d.config, d.codebook, d.corpus, d.blobs, 2);
  const core::PublicParams base = dep.shards[0].public_params;

  // Local reference: the same deployment served in-process.
  shard::ShardedDeployment dep_local = shard::ShardPlanner::Build(
      d.config, d.codebook, d.corpus, d.blobs, 2);
  std::unique_ptr<shard::Coordinator> local =
      MakeCoordinator(std::move(dep_local), 2);
  Result<Bytes> local_bytes = local->Query(features, k);
  ASSERT_TRUE(local_bytes.ok());

  // One NetServer per shard, each serving settled queries.
  std::vector<std::unique_ptr<core::QueryEngine>> engines;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::vector<core::PublicParams> shard_params;
  for (core::OwnerOutput& s : dep.shards) {
    std::shared_ptr<const core::SpPackage> pkg(std::move(s.package));
    engines.push_back(
        std::make_unique<core::QueryEngine>(std::move(pkg), s.public_params));
    net::ServerOptions so;
    so.settle_exact_topk = true;
    servers.push_back(
        std::make_unique<net::NetServer>(engines.back().get(), so));
    ASSERT_TRUE(servers.back()->Start().ok());
    shard_params.push_back(s.public_params);
  }

  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  for (size_t i = 0; i < servers.size(); ++i) {
    backends.push_back(std::make_unique<shard::RemoteShardBackend>(
        "127.0.0.1", servers[i]->port(), shard_params[i]));
  }
  shard::Coordinator coord(std::move(backends), dep.manifest,
                           dep.keys.private_key, {});
  EXPECT_TRUE(coord.ProbeAll().ok());

  // Front server: relays version-2 composite queries to the coordinator.
  net::NetServer front(engines[0].get(), {});
  front.EnableComposite([&coord](std::vector<std::vector<float>> f, size_t kk,
                                 bool compress, uint32_t deadline,
                                 std::function<void(Result<Bytes>)> done) {
    coord.QueryAsync(std::move(f), kk, compress, deadline, std::move(done));
  });
  ASSERT_TRUE(front.Start().ok());

  Result<net::NetClient> cli =
      net::NetClient::Connect("127.0.0.1", front.port(), base);
  ASSERT_TRUE(cli.ok()) << cli.status().message();
  Result<Bytes> r = cli->QueryComposite(features, k);
  ASSERT_TRUE(r.ok()) << r.status().message();

  shard::CompositeClient client(base);
  Result<shard::CompositeVerifiedResults> v =
      client.VerifyComposite(features, k, *r);
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->num_shards, 2u);
  for (const core::VerifiedResults& ps : v->per_shard) {
    EXPECT_TRUE(ps.topk_scores_exact);
  }

  // The wire path answers the same merged result as the in-process path.
  Result<shard::CompositeVerifiedResults> local_v =
      client.VerifyComposite(features, k, *local_bytes);
  ASSERT_TRUE(local_v.ok());
  ASSERT_EQ(v->topk.size(), local_v->topk.size());
  for (size_t i = 0; i < v->topk.size(); ++i) {
    EXPECT_EQ(v->topk[i].id, local_v->topk[i].id);
    EXPECT_EQ(v->topk[i].score, local_v->topk[i].score);
  }

  front.Stop();
}

TEST(ShardServingTest, PersistenceRoundTripAndManifestTamper) {
  TestData d = MakeData();
  const std::vector<std::vector<float>> features = QueryFeatures(d);

  shard::ShardedDeployment dep =
      shard::ShardPlanner::Build(d.config, d.codebook, d.corpus, d.blobs, 2);
  const core::PublicParams base = dep.shards[0].public_params;
  const crypto::RsaKeyPair keys = dep.keys;

  const std::string dir = TempPath("shard_persist");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(shard::WriteShardedDeployment(dir, dep).ok());

  Result<shard::OpenedShardedDeployment> opened =
      shard::OpenShardedDeployment(dir, base);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  ASSERT_EQ(opened->shards.size(), 2u);
  EXPECT_EQ(opened->manifest.epoch, 0u);

  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  for (shard::OpenedShard& s : opened->shards) {
    std::shared_ptr<const core::SpPackage> pkg(std::move(s.package));
    backends.push_back(std::make_unique<shard::LocalShardBackend>(
        std::move(pkg), s.params, keys.private_key));
  }
  shard::Coordinator coord(std::move(backends), opened->manifest,
                           keys.private_key, {});
  Result<Bytes> r = coord.Query(features, 5);
  ASSERT_TRUE(r.ok()) << r.status().message();
  shard::CompositeClient client(base);
  Result<shard::CompositeVerifiedResults> v =
      client.VerifyComposite(features, 5, *r);
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->topk.size(), 5u);

  // A tampered MANIFEST (any byte) must refuse to open.
  FlipByte(dir + "/MANIFEST", 9);
  Result<shard::OpenedShardedDeployment> bad =
      shard::OpenShardedDeployment(dir, base);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace imageproof
