// Tests for the image container, PGM codec, and synthetic generator.

#include <gtest/gtest.h>

#include <cstdio>

#include "image/image.h"
#include "image/pgm_io.h"
#include "image/synth.h"

namespace imageproof::image {
namespace {

TEST(ImageTest, BasicAccessors) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(2, 1), 7);
  img.set(2, 1, 200);
  EXPECT_EQ(img.at(2, 1), 200);
}

TEST(ImageTest, ClampedAccess) {
  Image img(2, 2);
  img.set(0, 0, 10);
  img.set(1, 1, 20);
  EXPECT_EQ(img.AtClamped(-5, -5), 10);
  EXPECT_EQ(img.AtClamped(100, 100), 20);
}

TEST(ImageTest, BilinearSample) {
  Image img(2, 1);
  img.set(0, 0, 0);
  img.set(1, 0, 100);
  EXPECT_NEAR(img.Sample(0.5, 0.0), 50.0, 1e-9);
  EXPECT_NEAR(img.Sample(0.25, 0.0), 25.0, 1e-9);
}

TEST(ImageTest, SerializeRoundTrip) {
  Image img = SynthesizeImage(42, 33, 17);
  Bytes data = img.Serialize();
  Image back;
  ASSERT_TRUE(Image::Deserialize(data, &back));
  EXPECT_EQ(back.width(), 33);
  EXPECT_EQ(back.height(), 17);
  EXPECT_EQ(back.pixels(), img.pixels());
}

TEST(ImageTest, DeserializeRejectsGarbage) {
  Image out;
  EXPECT_FALSE(Image::Deserialize({1, 2, 3}, &out));
  // Valid header, wrong pixel count.
  ByteWriter w;
  w.PutU32(10);
  w.PutU32(10);
  w.PutU8(0);
  EXPECT_FALSE(Image::Deserialize(w.bytes(), &out));
}

TEST(PgmTest, EncodeDecodeRoundTrip) {
  Image img = SynthesizeImage(7, 40, 25);
  Bytes pgm = EncodePgm(img);
  Image back;
  ASSERT_TRUE(DecodePgm(pgm, &back).ok());
  EXPECT_EQ(back.width(), img.width());
  EXPECT_EQ(back.height(), img.height());
  EXPECT_EQ(back.pixels(), img.pixels());
}

TEST(PgmTest, DecodeHandlesComments) {
  std::string text = "P5\n# a comment line\n2 2\n255\n";
  Bytes data(text.begin(), text.end());
  data.insert(data.end(), {10, 20, 30, 40});
  Image img;
  ASSERT_TRUE(DecodePgm(data, &img).ok());
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.at(1, 1), 40);
}

TEST(PgmTest, RejectsBadMagicAndTruncation) {
  Image img;
  Bytes p6 = {'P', '6', '\n'};
  EXPECT_FALSE(DecodePgm(p6, &img).ok());
  std::string text = "P5\n4 4\n255\n";
  Bytes truncated(text.begin(), text.end());
  truncated.push_back(1);  // only 1 of 16 pixels
  EXPECT_FALSE(DecodePgm(truncated, &img).ok());
}

TEST(PgmTest, FileRoundTrip) {
  Image img = SynthesizeImage(99, 16, 16);
  std::string path = ::testing::TempDir() + "/imageproof_pgm_test.pgm";
  ASSERT_TRUE(WritePgmFile(path, img).ok());
  Image back;
  ASSERT_TRUE(ReadPgmFile(path, &back).ok());
  EXPECT_EQ(back.pixels(), img.pixels());
  std::remove(path.c_str());
}

TEST(SynthTest, DeterministicPerSeed) {
  Image a = SynthesizeImage(5, 64, 64);
  Image b = SynthesizeImage(5, 64, 64);
  Image c = SynthesizeImage(6, 64, 64);
  EXPECT_EQ(a.pixels(), b.pixels());
  EXPECT_NE(a.pixels(), c.pixels());
}

TEST(SynthTest, HasContrast) {
  Image img = SynthesizeImage(11, 64, 64);
  uint8_t lo = 255, hi = 0;
  for (uint8_t p : img.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, 60);  // textured, not flat
}

TEST(TransformTest, RotateByZeroIsIdentityish) {
  Image img = SynthesizeImage(3, 32, 32);
  Image rot = Rotate(img, 0.0);
  int diffs = 0;
  for (size_t i = 0; i < img.pixels().size(); ++i) {
    if (std::abs(int(img.pixels()[i]) - int(rot.pixels()[i])) > 1) ++diffs;
  }
  EXPECT_EQ(diffs, 0);
}

TEST(TransformTest, ScaleChangesDimensions) {
  Image img(40, 20);
  Image up = Scale(img, 2.0);
  EXPECT_EQ(up.width(), 80);
  EXPECT_EQ(up.height(), 40);
  Image down = Scale(img, 0.5);
  EXPECT_EQ(down.width(), 20);
  EXPECT_EQ(down.height(), 10);
}

TEST(TransformTest, BrightnessClamps) {
  Image img(2, 1);
  img.set(0, 0, 200);
  img.set(1, 0, 10);
  Image bright = AdjustBrightness(img, 2.0, 50);
  EXPECT_EQ(bright.at(0, 0), 255);  // clamped
  EXPECT_EQ(bright.at(1, 0), 70);
}

TEST(TransformTest, NoiseIsDeterministicAndBounded) {
  Image img = SynthesizeImage(13, 32, 32);
  Image n1 = AddNoise(img, 5.0, 77);
  Image n2 = AddNoise(img, 5.0, 77);
  EXPECT_EQ(n1.pixels(), n2.pixels());
  EXPECT_NE(n1.pixels(), img.pixels());
}

TEST(TransformTest, CenterCrop) {
  Image img(40, 40);
  img.set(20, 20, 123);
  Image crop = CenterCrop(img, 0.5);
  EXPECT_EQ(crop.width(), 20);
  EXPECT_EQ(crop.height(), 20);
  EXPECT_EQ(crop.at(10, 10), 123);
}

}  // namespace
}  // namespace imageproof::image
