// Tests for the generic Merkle hash tree and its multi-leaf subset proofs.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "common/random.h"
#include "crypto/sha3.h"
#include "merkle/merkle_tree.h"

namespace imageproof::merkle {
namespace {

std::vector<Bytes> MakeLeaves(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<Bytes> leaves(n);
  for (auto& leaf : leaves) {
    size_t len = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < len; ++i) {
      leaf.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
  }
  return leaves;
}

TEST(MerkleTreeTest, RootDeterministicAndSensitive) {
  auto leaves = MakeLeaves(9);
  MerkleTree t1(leaves), t2(leaves);
  EXPECT_EQ(t1.root(), t2.root());
  leaves[4][0] ^= 1;
  MerkleTree t3(leaves);
  EXPECT_NE(t1.root(), t3.root());
}

TEST(MerkleTreeTest, LeafOrderMatters) {
  auto leaves = MakeLeaves(4);
  MerkleTree t1(leaves);
  std::swap(leaves[0], leaves[1]);
  MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(MerkleTreeTest, SingleLeafProof) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  auto proof = tree.ProveSubset({0});
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(
      MerkleTree::VerifySubset(1, tree.root(), {0}, {leaves[0]}, proof).ok());
}

TEST(MerkleTreeTest, EmptySubsetProofIsJustTheRoot) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.ProveSubset({});
  ASSERT_EQ(proof.size(), 1u);
  EXPECT_EQ(proof[0], tree.root());
  EXPECT_TRUE(MerkleTree::VerifySubset(8, tree.root(), {}, {}, proof).ok());
}

class MerkleSubsetTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleSubsetTest, AllSingletonProofsVerify) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n, n);
  MerkleTree tree(leaves);
  for (uint32_t i = 0; i < n; ++i) {
    auto proof = tree.ProveSubset({i});
    EXPECT_TRUE(
        MerkleTree::VerifySubset(n, tree.root(), {i}, {leaves[i]}, proof).ok())
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleSubsetTest, RandomSubsetsVerify) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n, n * 31);
  MerkleTree tree(leaves);
  Rng rng(n * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> indices;
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < 0.3) {
        indices.push_back(i);
        payloads.push_back(leaves[i]);
      }
    }
    auto proof = tree.ProveSubset(indices);
    EXPECT_TRUE(
        MerkleTree::VerifySubset(n, tree.root(), indices, payloads, proof).ok());
  }
}

TEST_P(MerkleSubsetTest, TamperedPayloadRejected) {
  size_t n = GetParam();
  if (n < 2) return;
  auto leaves = MakeLeaves(n, n * 13);
  MerkleTree tree(leaves);
  std::vector<uint32_t> indices = {0, static_cast<uint32_t>(n - 1)};
  std::vector<Bytes> payloads = {leaves[0], leaves[n - 1]};
  auto proof = tree.ProveSubset(indices);
  payloads[1][0] ^= 0xFF;
  EXPECT_FALSE(
      MerkleTree::VerifySubset(n, tree.root(), indices, payloads, proof).ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSubsetTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 33, 128));

TEST(MerkleTreeTest, TamperedProofRejected) {
  auto leaves = MakeLeaves(10);
  MerkleTree tree(leaves);
  std::vector<uint32_t> indices = {2, 5};
  std::vector<Bytes> payloads = {leaves[2], leaves[5]};
  auto proof = tree.ProveSubset(indices);
  ASSERT_FALSE(proof.empty());
  proof[0].bytes[0] ^= 1;
  EXPECT_FALSE(
      MerkleTree::VerifySubset(10, tree.root(), indices, payloads, proof).ok());
}

TEST(MerkleTreeTest, WrongIndexRejected) {
  auto leaves = MakeLeaves(10);
  MerkleTree tree(leaves);
  auto proof = tree.ProveSubset({3});
  // Claiming the same payload belongs to a different index must fail.
  EXPECT_FALSE(
      MerkleTree::VerifySubset(10, tree.root(), {4}, {leaves[3]}, proof).ok());
}

TEST(MerkleTreeTest, MalformedProofsRejectedCleanly) {
  auto leaves = MakeLeaves(10);
  MerkleTree tree(leaves);
  std::vector<uint32_t> indices = {1};
  std::vector<Bytes> payloads = {leaves[1]};
  auto proof = tree.ProveSubset(indices);

  auto too_short = proof;
  too_short.pop_back();
  EXPECT_FALSE(MerkleTree::VerifySubset(10, tree.root(), indices, payloads,
                                        too_short)
                   .ok());

  auto too_long = proof;
  too_long.push_back(Digest::Zero());
  EXPECT_FALSE(
      MerkleTree::VerifySubset(10, tree.root(), indices, payloads, too_long)
          .ok());

  EXPECT_FALSE(MerkleTree::VerifySubset(10, tree.root(), {5, 5},
                                        {leaves[5], leaves[5]}, proof)
                   .ok())
      << "duplicate indices";
  EXPECT_FALSE(MerkleTree::VerifySubset(10, tree.root(), {99}, {leaves[1]},
                                        proof)
                   .ok())
      << "out of range";
  EXPECT_FALSE(MerkleTree::VerifySubset(10, tree.root(), {5, 2},
                                        {leaves[5], leaves[2]}, proof)
                   .ok())
      << "unsorted";
}

// The build must produce the same bytes at any thread count / grain: the
// chunked batch-hash decomposition is fixed by chunk size, not workers.
TEST(MerkleTreeTest, ParallelBuildMatchesSerialAtAnyThreadCount) {
  for (size_t n : {1u, 2u, 3u, 100u, 1337u, 4096u, 5000u}) {
    auto leaves = MakeLeaves(n, n * 17 + 3);
    MerkleTree serial(leaves, {.max_threads = 1, .parallel_grain = ~size_t{0}});
    for (unsigned threads : {2u, 3u, 8u}) {
      MerkleTree parallel(leaves,
                          {.max_threads = threads, .parallel_grain = 1});
      ASSERT_EQ(serial.root(), parallel.root()) << "n=" << n << " t=" << threads;
    }
  }
}

// Randomized UpdateLeaf sequences must track a from-scratch rebuild exactly
// — root and subset proofs byte-identical after every step.
TEST(MerkleTreeTest, IncrementalUpdateMatchesRebuild) {
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 64u, 129u}) {
    auto leaves = MakeLeaves(n, n * 101 + 7);
    MerkleTree tree(leaves);
    Rng rng(n * 9 + 5);
    for (int step = 0; step < 24; ++step) {
      size_t idx = rng.NextBounded(n);
      Bytes payload;
      size_t len = 1 + rng.NextBounded(20);
      for (size_t i = 0; i < len; ++i) {
        payload.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      leaves[idx] = payload;
      tree.UpdateLeaf(idx, payload);
      MerkleTree rebuilt(leaves);
      ASSERT_EQ(tree.root(), rebuilt.root()) << "n=" << n << " step=" << step;
      std::vector<uint32_t> indices;
      std::vector<Bytes> payloads;
      for (uint32_t i = 0; i < n; ++i) {
        if (rng.NextDouble() < 0.25) {
          indices.push_back(i);
          payloads.push_back(leaves[i]);
        }
      }
      ASSERT_EQ(tree.ProveSubset(indices), rebuilt.ProveSubset(indices));
      ASSERT_TRUE(MerkleTree::VerifySubset(n, tree.root(), indices, payloads,
                                           tree.ProveSubset(indices))
                      .ok());
    }
  }
}

// UpdateLeaf is O(log n): one leaf hash plus at most ceil(log2(n)) node
// hashes, measured with the process-wide hash-invocation counter.
TEST(MerkleTreeTest, UpdateLeafHashCountLogarithmic) {
  for (size_t n : {1u, 2u, 5u, 64u, 1000u}) {
    auto leaves = MakeLeaves(n, n + 77);
    MerkleTree tree(leaves);
    const size_t depth =
        n <= 1 ? 0 : static_cast<size_t>(std::bit_width(n - 1));
    Rng rng(n);
    for (int step = 0; step < 8; ++step) {
      uint64_t before = crypto::HashInvocations();
      tree.UpdateLeaf(rng.NextBounded(n), {0xAB, static_cast<uint8_t>(step)});
      uint64_t spent = crypto::HashInvocations() - before;
      EXPECT_LE(spent, 1 + depth) << "n=" << n;
      EXPECT_GE(spent, 1u);
    }
  }
}

TEST(MerkleTreeTest, LeafNodeDomainSeparation) {
  // A leaf whose payload equals the concatenation of two digests must not
  // collide with the internal node over those digests.
  auto leaves = MakeLeaves(2);
  MerkleTree tree(leaves);
  Bytes fake_leaf;
  Digest l0 = MerkleTree::HashLeaf(leaves[0]);
  Digest l1 = MerkleTree::HashLeaf(leaves[1]);
  fake_leaf.insert(fake_leaf.end(), l0.bytes.begin(), l0.bytes.end());
  fake_leaf.insert(fake_leaf.end(), l1.bytes.begin(), l1.bytes.end());
  MerkleTree fake({fake_leaf});
  EXPECT_NE(fake.root(), tree.root());
}

}  // namespace
}  // namespace imageproof::merkle
