// Tests for incremental deployment updates: inserted images become
// retrievable with verifying VOs under the re-signed root; deleted images
// vanish; stale signatures are rejected; rollback on failure.

#include <gtest/gtest.h>

#include "core/client.h"
#include "core/server.h"
#include "core/update.h"
#include "workload/synthetic.h"

namespace imageproof::core {
namespace {

struct UpdateFixture {
  workload::CorpusParams cp;
  OwnerOutput owner;
  std::unique_ptr<ServiceProvider> sp;

  explicit UpdateFixture(Config config, uint64_t seed = 9) {
    config.rsa_bits = 512;
    cp.num_images = 300;
    cp.num_clusters = 128;
    cp.min_distinct = 4;
    cp.max_distinct = 14;
    cp.seed = seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 128;
    cbp.dims = 12;
    cbp.seed = seed + 1;
    owner = BuildDeployment(config, workload::GenerateCodebook(cbp),
                            std::move(corpus), std::move(blobs), seed + 2);
    sp = std::make_unique<ServiceProvider>(owner.package.get());
  }

  // Runs a query whose features quantize to the given BoVW vector.
  Result<VerifiedResults> QueryAndVerify(const bovw::BovwVector& target,
                                         size_t k, uint64_t seed) {
    auto features = workload::FeaturesFromBovw(owner.package->codebook, target,
                                               40, 0.2, 0.0, seed);
    QueryResponse resp = sp->Query(features, k);
    Client client(owner.public_params);
    return client.Verify(features, k, resp.vo);
  }
};

class UpdateSchemeTest : public ::testing::TestWithParam<const char*> {
 public:
  static Config ConfigFor(const std::string& name) {
    return name == "ImageProof" ? Config::ImageProof() : Config::OptimizedBoth();
  }
};

TEST_P(UpdateSchemeTest, InsertedImageBecomesRetrievable) {
  UpdateFixture fx(ConfigFor(GetParam()));
  // A distinctive new image: reuse an existing image's words so queries
  // for it have competition, plus a twist.
  bovw::BovwVector new_bovw = fx.owner.package->corpus[5].second;
  for (auto& [c, f] : new_bovw.entries) f += 2;
  const ImageId new_id = 100000;
  Bytes new_data = workload::GenerateImageBlob(new_id);

  auto stats = InsertImage(fx.owner.package.get(), fx.owner.private_key,
                           &fx.owner.public_params, new_id, new_bovw, new_data);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->lists_updated, new_bovw.entries.size());
  EXPECT_GT(stats->mrkd_nodes_rehashed, 0u);

  auto verified = fx.QueryAndVerify(new_bovw, 3, 77);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  ASSERT_FALSE(verified->topk.empty());
  EXPECT_EQ(verified->topk[0].id, new_id) << "new image should rank first";
}

TEST_P(UpdateSchemeTest, DeletedImageDisappears) {
  UpdateFixture fx(ConfigFor(GetParam()));
  const ImageId victim = 5;
  bovw::BovwVector victim_bovw = fx.owner.package->corpus[victim].second;

  // Before deletion the image is retrievable by its own vector.
  auto before = fx.QueryAndVerify(victim_bovw, 3, 88);
  ASSERT_TRUE(before.ok()) << before.status().message();
  ASSERT_FALSE(before->topk.empty());
  EXPECT_EQ(before->topk[0].id, victim);

  auto stats = DeleteImage(fx.owner.package.get(), fx.owner.private_key,
                           &fx.owner.public_params, victim);
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  auto after = fx.QueryAndVerify(victim_bovw, 3, 88);
  ASSERT_TRUE(after.ok()) << after.status().message();
  for (const auto& si : after->topk) {
    EXPECT_NE(si.id, victim);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, UpdateSchemeTest,
                         ::testing::Values("ImageProof", "OptimizedBoth"));

TEST(UpdateTest, StaleSignatureRejectedAfterUpdate) {
  UpdateFixture fx(Config::ImageProof());
  PublicParams stale = fx.owner.public_params;

  bovw::BovwVector v;
  v.entries = {{3, 2}, {9, 1}};
  auto stats = InsertImage(fx.owner.package.get(), fx.owner.private_key,
                           &fx.owner.public_params, 200000, v,
                           workload::GenerateImageBlob(200000));
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  // A client still holding the pre-update signature must reject responses
  // from the updated package (the root changed).
  auto features = workload::FeaturesFromBovw(fx.owner.package->codebook, v,
                                             20, 0.2, 0.0, 3);
  QueryResponse resp = fx.sp->Query(features, 3);
  Client stale_client(stale);
  EXPECT_FALSE(stale_client.Verify(features, 3, resp.vo).ok());
  Client fresh_client(fx.owner.public_params);
  EXPECT_TRUE(fresh_client.Verify(features, 3, resp.vo).ok());
}

TEST(UpdateTest, DuplicateInsertAndUnknownDeleteFail) {
  UpdateFixture fx(Config::ImageProof());
  bovw::BovwVector v;
  v.entries = {{1, 1}};
  EXPECT_FALSE(InsertImage(fx.owner.package.get(), fx.owner.private_key,
                           &fx.owner.public_params, /*id=*/7, v, {})
                   .ok())
      << "id 7 already exists";
  EXPECT_FALSE(DeleteImage(fx.owner.package.get(), fx.owner.private_key,
                           &fx.owner.public_params, 999999)
                   .ok());
}

TEST(UpdateTest, InsertDeleteRoundTripRestoresRoot) {
  UpdateFixture fx(Config::ImageProof());
  crypto::Digest original_root = fx.owner.package->RootDigest();
  bovw::BovwVector v;
  v.entries = {{2, 3}, {50, 1}, {90, 2}};
  const ImageId id = 300000;
  ASSERT_TRUE(InsertImage(fx.owner.package.get(), fx.owner.private_key,
                          &fx.owner.public_params, id, v,
                          workload::GenerateImageBlob(id))
                  .ok());
  EXPECT_NE(fx.owner.package->RootDigest(), original_root);
  ASSERT_TRUE(DeleteImage(fx.owner.package.get(), fx.owner.private_key,
                          &fx.owner.public_params, id)
                  .ok());
  // Removing the inserted image restores the exact original ADS state.
  EXPECT_EQ(fx.owner.package->RootDigest(), original_root);
}

TEST(UpdateTest, ManySequentialUpdatesStayConsistent) {
  UpdateFixture fx(Config::ImageProof());
  Rng rng(17);
  for (int step = 0; step < 20; ++step) {
    ImageId id = 400000 + step;
    bovw::BovwVector v;
    std::map<bovw::ClusterId, uint32_t> counts;
    for (int i = 0; i < 6; ++i) {
      counts[static_cast<bovw::ClusterId>(rng.NextBounded(128))] +=
          1 + static_cast<uint32_t>(rng.NextBounded(3));
    }
    v.entries.assign(counts.begin(), counts.end());
    ASSERT_TRUE(InsertImage(fx.owner.package.get(), fx.owner.private_key,
                            &fx.owner.public_params, id, v,
                            workload::GenerateImageBlob(id))
                    .ok());
    if (step % 3 == 0) {
      ASSERT_TRUE(DeleteImage(fx.owner.package.get(), fx.owner.private_key,
                              &fx.owner.public_params,
                              static_cast<ImageId>(step))
                      .ok());
    }
  }
  // The live package still answers verifying queries.
  auto& corpus = fx.owner.package->corpus;
  auto verified =
      fx.QueryAndVerify(corpus[corpus.size() / 2].second, 5, 1234);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

}  // namespace
}  // namespace imageproof::core
