// Loopback end-to-end tests for the network serving layer: a real TCP
// socket between NetServer (feeding core::QueryEngine) and NetClient (full
// Client::Verify on every response). The load-bearing assertion is
// byte-identity: the VO bytes a remote client receives are exactly the
// bytes an in-process ServiceProvider::Query produces — the wire adds
// framing, never meaning. The degradation cases then pin the PR-4 taxonomy
// to wire error codes: deadline expiry comes back kDeadlineExceeded, a full
// submission queue kOverloaded, garbage bytes kCorrupted-and-close.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/fault.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

using std::chrono::milliseconds;

struct NetFixture {
  core::OwnerOutput owner;
  std::shared_ptr<const core::SpPackage> package;

  explicit NetFixture(uint64_t seed = 7) {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 150;
    cp.num_clusters = 64;
    cp.seed = seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 64;
    cbp.dims = 8;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs));
    package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
  }

  std::vector<std::vector<float>> Features(uint64_t seed) const {
    return workload::GenerateQueryFeatures(package->codebook, 8, 0.3, seed);
  }
};

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

TEST_F(NetTest, LoopbackQueryVerifiesWithByteIdenticalVo) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok()) << client.status().message();

  auto features = fx.Features(3);
  auto result = client->Query(features, 5, /*deadline_ms=*/30000);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->verified.topk.size(), 5u);
  EXPECT_EQ(result->snapshot_version, 0u);
  EXPECT_GT(result->response_frame_bytes, result->vo_bytes.size());

  // The remote VO bytes equal the in-process serialization exactly — the
  // acceptance bar for the wire layer (framing adds nothing, drops nothing).
  core::ServiceProvider sp(fx.package.get());
  Bytes local = sp.Query(features, 5).vo.Serialize();
  EXPECT_EQ(result->vo_bytes, local);

  // And the verified top-k matches what a local client extracts.
  core::Client local_client(fx.owner.public_params);
  auto local_verified =
      local_client.Verify(features, 5, sp.Query(features, 5).vo);
  ASSERT_TRUE(local_verified.ok());
  ASSERT_EQ(result->verified.topk.size(), local_verified->topk.size());
  for (size_t i = 0; i < local_verified->topk.size(); ++i) {
    EXPECT_EQ(result->verified.topk[i].id, local_verified->topk[i].id);
    EXPECT_EQ(result->verified.topk[i].score, local_verified->topk[i].score);
  }
}

TEST_F(NetTest, ConcurrentConnectionsAllVerify) {
  NetFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 4;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  constexpr int kQueriesEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                            fx.owner.public_params);
      if (!client.ok()) {
        failures++;
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = client->Query(fx.Features(100 + t * 10 + q), 5, 30000);
        if (!result.ok() || result->verified.topk.size() != 5) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, kClients);
  EXPECT_EQ(counters.protocol_errors, 0u);
  EXPECT_GE(counters.frames_in, kClients * kQueriesEach);
}

TEST_F(NetTest, DeadlineExpiryComesBackAsDeadlineExceeded) {
  NetFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 1;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  // Pin the worker inside the query long past the deadline: the expiry is
  // detected between pipeline stages and must surface as the wire's
  // kDeadlineExceeded error frame, not a hang or a served response.
  fault::FaultInjector::Global().ArmLatencyMs("engine.query.latency", 200);

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok());
  auto result = client->Query(fx.Features(4), 5, /*deadline_ms=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().message();
}

TEST_F(NetTest, OverloadShedsWithExplicitWireError) {
  NetFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  // One query in flight (pinned by injected latency), one queued; further
  // admissions shed. Offered concurrency is 6 — at least 4 must come back
  // kOverloaded, and every response must be either served-and-verified or
  // an explicit shed: no hangs, no unverifiable bytes.
  fault::FaultInjector::Global().ArmLatencyMs("engine.query.latency", 150);

  constexpr int kConcurrent = 6;
  std::atomic<int> verified{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kConcurrent; ++t) {
    threads.emplace_back([&, t] {
      auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                            fx.owner.public_params);
      if (!client.ok()) {
        other++;
        return;
      }
      auto result = client->Query(fx.Features(10 + t), 5, 30000);
      if (result.ok()) {
        verified++;
      } else if (result.status().code() == StatusCode::kOverloaded) {
        shed++;
      } else {
        other++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(shed.load(), kConcurrent - 2);
  EXPECT_GE(verified.load(), 1);
  EXPECT_EQ(verified.load() + shed.load(), kConcurrent);
}

TEST_F(NetTest, StoppedEngineAnswersUnavailable) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  engine.Shutdown();

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok());
  auto result = client->Query(fx.Features(5), 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTest, UpdateOverWireBumpsVersionAndReverifies) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);
  server.EnableUpdates(&fx.owner.private_key);
  ASSERT_TRUE(server.Start().ok());

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok());

  // Insert a near-duplicate of image 3 over the wire, then re-query: the
  // response must verify under the NEW root signature carried in the frame
  // (the client's stored copy of the signature is stale by design).
  auto ack = client->Insert(1000000, fx.package->corpus[3].second,
                            workload::GenerateImageBlob(1000000));
  ASSERT_TRUE(ack.ok()) << ack.status().message();
  EXPECT_EQ(ack->new_version, 1u);
  EXPECT_GT(ack->lists_updated, 0u);

  auto features = workload::FeaturesFromBovw(fx.package->codebook,
                                             fx.package->corpus[3].second, 20,
                                             0.2, 0.1, 11);
  auto result = client->Query(features, 5, 30000);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->snapshot_version, 1u);

  // Delete it again; the next response verifies under version 2.
  auto ack2 = client->Delete(1000000);
  ASSERT_TRUE(ack2.ok()) << ack2.status().message();
  EXPECT_EQ(ack2->new_version, 2u);
  auto result2 = client->Query(features, 5, 30000);
  ASSERT_TRUE(result2.ok()) << result2.status().message();
  EXPECT_EQ(result2->snapshot_version, 2u);
}

TEST_F(NetTest, UpdatesRejectedWithoutOwnerKey) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);  // EnableUpdates NOT called
  ASSERT_TRUE(server.Start().ok());

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok());
  auto ack = client->Insert(1000000, fx.package->corpus[3].second,
                            workload::GenerateImageBlob(1000000));
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kError);  // kBadRequest on wire
}

TEST_F(NetTest, StatusFrameReportsEngineCounters) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  auto client = net::NetClient::Connect("127.0.0.1", server.port(),
                                        fx.owner.public_params);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query(fx.Features(6), 5, 30000).ok());

  auto status = client->ServerStatus();
  ASSERT_TRUE(status.ok()) << status.status().message();
  EXPECT_EQ(status->snapshot_version, 0u);
  EXPECT_FALSE(status->stopped);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(status->queries_served, 1u);
    EXPECT_EQ(status->queries_shed, 0u);
  }
}

TEST_F(NetTest, GarbageBytesAnswerCorruptedAndClose) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  // Raw socket, no framing: the stream cannot begin a valid frame, so the
  // server must answer exactly one kCorrupted error frame and close — never
  // hang, never crash.
  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  Bytes garbage(64, 0xAB);
  ASSERT_TRUE(net::SendAll(sock->fd(), garbage.data(), garbage.size()).ok());

  Bytes buf;
  for (;;) {
    uint8_t chunk[1024];
    auto got = net::RecvSome(sock->fd(), chunk, sizeof(chunk));
    ASSERT_TRUE(got.ok());
    if (got.value() == 0) break;  // server closed after the error frame
    buf.insert(buf.end(), chunk, chunk + got.value());
  }
  net::FrameHeader header;
  Bytes payload;
  Status err;
  ASSERT_EQ(net::TryExtractFrame(&buf, &header, &payload, &err),
            net::ExtractResult::kFrame);
  ASSERT_EQ(header.type, net::FrameType::kError);
  net::ErrorFrame frame;
  ASSERT_TRUE(net::DecodeError(payload, &frame).ok());
  EXPECT_EQ(frame.code, net::WireError::kCorrupted);
  EXPECT_TRUE(buf.empty()) << "server sent bytes after the error frame";
  EXPECT_GE(server.counters().protocol_errors, 1u);
}

TEST_F(NetTest, ConnectionLimitRejectsWithOverloaded) {
  NetFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params);
  net::ServerOptions opts;
  opts.max_connections = 1;
  net::NetServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  auto first = net::NetClient::Connect("127.0.0.1", server.port(),
                                       fx.owner.public_params);
  ASSERT_TRUE(first.ok());
  // Ensure the first connection is registered before the second arrives.
  ASSERT_TRUE(first->ServerStatus().ok());

  auto sock = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  Bytes buf;
  for (;;) {
    uint8_t chunk[256];
    auto got = net::RecvSome(sock->fd(), chunk, sizeof(chunk));
    ASSERT_TRUE(got.ok());
    if (got.value() == 0) break;
    buf.insert(buf.end(), chunk, chunk + got.value());
  }
  net::FrameHeader header;
  Bytes payload;
  Status err;
  ASSERT_EQ(net::TryExtractFrame(&buf, &header, &payload, &err),
            net::ExtractResult::kFrame);
  net::ErrorFrame frame;
  ASSERT_TRUE(net::DecodeError(payload, &frame).ok());
  EXPECT_EQ(frame.code, net::WireError::kOverloaded);
  EXPECT_GE(server.counters().connections_rejected, 1u);

  // The admitted connection keeps working.
  EXPECT_TRUE(first->Query(fx.Features(8), 5, 30000).ok());
}

}  // namespace
}  // namespace imageproof
