// Tests for the from-scratch SIFT-style extractor: detector fires on real
// structure, descriptors are normalized, and matching survives the
// transforms the paper's retrieval scenario depends on.

#include <gtest/gtest.h>

#include <cmath>

#include "image/synth.h"
#include "sift/extractor.h"
#include "sift/gaussian.h"

namespace imageproof::sift {
namespace {

using image::FloatImage;
using image::Image;

TEST(GaussianTest, PreservesConstantImage) {
  FloatImage img(16, 16, 0.5f);
  FloatImage out = GaussianBlur(img, 2.0);
  for (float v : out.pixels()) EXPECT_NEAR(v, 0.5f, 1e-4);
}

TEST(GaussianTest, SmoothsAnImpulse) {
  FloatImage img(21, 21, 0.0f);
  img.set(10, 10, 1.0f);
  FloatImage out = GaussianBlur(img, 1.5);
  EXPECT_LT(out.at(10, 10), 1.0f);
  EXPECT_GT(out.at(10, 10), out.at(13, 10));
  EXPECT_GT(out.at(13, 10), 0.0f);
  // Mass is approximately conserved.
  double sum = 0;
  for (float v : out.pixels()) sum += v;
  EXPECT_NEAR(sum, 1.0, 0.02);
}

TEST(GaussianTest, DownsampleHalves) {
  FloatImage img(10, 8, 1.0f);
  FloatImage d = Downsample2x(img);
  EXPECT_EQ(d.width(), 5);
  EXPECT_EQ(d.height(), 4);
}

TEST(SiftTest, FindsKeypointsOnSyntheticTexture) {
  Image img = image::SynthesizeImage(1, 128, 128);
  SiftExtractor extractor;
  auto features = extractor.Extract(img);
  EXPECT_GT(features.size(), 10u);
}

TEST(SiftTest, FlatImageYieldsNoKeypoints) {
  Image img(64, 64, 128);
  SiftExtractor extractor;
  EXPECT_TRUE(extractor.Extract(img).empty());
}

TEST(SiftTest, TinyImageYieldsNoKeypoints) {
  Image img(8, 8, 0);
  SiftExtractor extractor;
  EXPECT_TRUE(extractor.Extract(img).empty());
}

TEST(SiftTest, DescriptorDimensionality) {
  Image img = image::SynthesizeImage(2, 96, 96);
  SiftParams p128;
  EXPECT_EQ(p128.DescriptorDims(), 128);
  for (const auto& f : SiftExtractor(p128).Extract(img)) {
    EXPECT_EQ(f.descriptor.size(), 128u);
  }
  SiftParams p64;
  p64.orientation_bins = 4;
  EXPECT_EQ(p64.DescriptorDims(), 64);
  for (const auto& f : SiftExtractor(p64).Extract(img)) {
    EXPECT_EQ(f.descriptor.size(), 64u);
  }
}

TEST(SiftTest, DescriptorsAreUnitNorm) {
  Image img = image::SynthesizeImage(3, 96, 96);
  auto features = SiftExtractor().Extract(img);
  ASSERT_FALSE(features.empty());
  for (const auto& f : features) {
    double norm = 0;
    for (float v : f.descriptor) {
      norm += static_cast<double>(v) * v;
      EXPECT_GE(v, 0.0f);
      // Values are clipped at 0.2 *before* the final renormalization, so
      // they stay well below 1 but may exceed 0.2 afterwards.
      EXPECT_LE(v, 1.0f);
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
  }
}

TEST(SiftTest, MaxFeaturesKeepsStrongest) {
  Image img = image::SynthesizeImage(4, 128, 128);
  SiftParams unlimited;
  auto all = SiftExtractor(unlimited).Extract(img);
  ASSERT_GT(all.size(), 5u);
  SiftParams capped;
  capped.max_features = 5;
  auto top = SiftExtractor(capped).Extract(img);
  EXPECT_EQ(top.size(), 5u);
  float weakest_kept = top.back().keypoint.response;
  for (const auto& f : top) {
    weakest_kept = std::min(weakest_kept, f.keypoint.response);
  }
  // Every kept response is >= the median response of the full set.
  std::vector<float> responses;
  for (const auto& f : all) responses.push_back(f.keypoint.response);
  std::sort(responses.begin(), responses.end());
  EXPECT_GE(weakest_kept, responses[responses.size() / 2] * 0.99f);
}

TEST(SiftTest, Deterministic) {
  Image img = image::SynthesizeImage(5, 96, 96);
  auto a = SiftExtractor().Extract(img);
  auto b = SiftExtractor().Extract(img);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].descriptor, b[i].descriptor);
  }
}

// Nearest-descriptor matching between an image and its transformed variant
// should beat matching against an unrelated image.
double MeanNearestDistance(const std::vector<Feature>& a,
                           const std::vector<Feature>& b) {
  double total = 0;
  int count = 0;
  for (const auto& fa : a) {
    double best = 1e30;
    for (const auto& fb : b) {
      double d = 0;
      for (size_t i = 0; i < fa.descriptor.size(); ++i) {
        double diff = fa.descriptor[i] - fb.descriptor[i];
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    total += best;
    ++count;
  }
  return count ? total / count : 1e30;
}

TEST(SiftTest, TransformedVariantMatchesBetterThanUnrelated) {
  Image original = image::SynthesizeImage(10, 128, 128);
  Image variant = image::AddNoise(original, 4.0, 99);
  Image unrelated = image::SynthesizeImage(20, 128, 128);

  SiftParams params;
  params.max_features = 60;
  SiftExtractor extractor(params);
  auto f_orig = extractor.Extract(original);
  auto f_var = extractor.Extract(variant);
  auto f_unrel = extractor.Extract(unrelated);
  ASSERT_GT(f_orig.size(), 10u);
  ASSERT_GT(f_var.size(), 10u);
  ASSERT_GT(f_unrel.size(), 10u);

  double d_variant = MeanNearestDistance(f_orig, f_var);
  double d_unrelated = MeanNearestDistance(f_orig, f_unrel);
  EXPECT_LT(d_variant, d_unrelated);
}

}  // namespace
}  // namespace imageproof::sift
