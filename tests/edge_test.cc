// Degenerate-input and boundary-condition tests across modules: the kinds
// of corner cases a production deployment will eventually feed the library.

#include <gtest/gtest.h>

#include "ann/rkd_tree.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "freqgroup/fg_index.h"
#include "freqgroup/fg_search.h"
#include "freqgroup/fg_verify.h"
#include "invindex/merkle_inv_index.h"
#include "invindex/search.h"
#include "invindex/verify.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

// ---------------------------------------------------------------------------
// k-d trees on degenerate data
// ---------------------------------------------------------------------------

TEST(EdgeKdTree, AllIdenticalPoints) {
  // Every split is degenerate; the median fallback must still terminate and
  // produce a valid tree.
  ann::PointSet points(4, 0);
  points.set_dims(4);
  for (int i = 0; i < 50; ++i) points.AppendRow({1.0f, 2.0f, 3.0f, 4.0f});
  ann::RkdTree tree(points, 2, 7);
  std::vector<int> seen(50, 0);
  for (const auto& n : tree.nodes()) {
    if (!n.IsLeaf()) continue;
    for (int32_t i = n.begin; i < n.end; ++i) seen[tree.point_indices()[i]]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  float q[] = {1.0f, 2.0f, 3.0f, 4.0f};
  double d;
  EXPECT_GE(tree.ExactNearest(q, &d), 0);
  EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_EQ(tree.RangeSearch(q, 0.1).size(), 50u);
}

TEST(EdgeKdTree, OneDimensionalData) {
  ann::PointSet points(1, 0);
  points.set_dims(1);
  for (int i = 0; i < 100; ++i) points.AppendRow({static_cast<float>(i)});
  ann::RkdTree tree(points, 2, 3);
  float q[] = {42.3f};
  double d;
  EXPECT_EQ(tree.ExactNearest(q, &d), 42);
  auto in_range = tree.RangeSearch(q, 4.0);  // radius 2 -> 41,42,43,44 region
  std::set<int32_t> got(in_range.begin(), in_range.end());
  for (int32_t expect : {41, 42, 43, 44}) EXPECT_TRUE(got.count(expect));
}

TEST(EdgeKdTree, LargeLeafSize) {
  ann::PointSet points(4, 0);
  points.set_dims(4);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    points.AppendRow({static_cast<float>(rng.NextGaussian()),
                      static_cast<float>(rng.NextGaussian()),
                      static_cast<float>(rng.NextGaussian()),
                      static_cast<float>(rng.NextGaussian())});
  }
  ann::RkdTree tree(points, 64, 11);
  // At leaf size >= n the tree is a single leaf.
  ann::RkdTree flat(points, 128, 11);
  EXPECT_EQ(flat.nodes().size(), 1u);
  EXPECT_TRUE(flat.nodes()[0].IsLeaf());
  float q[] = {0, 0, 0, 0};
  double d1, d2;
  EXPECT_EQ(tree.ExactNearest(q, &d1), flat.ExactNearest(q, &d2));
  EXPECT_DOUBLE_EQ(d1, d2);
}

// ---------------------------------------------------------------------------
// Inverted indexes on degenerate corpora
// ---------------------------------------------------------------------------

TEST(EdgeInvIndex, SingleImageCorpus) {
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus(1);
  corpus[0].first = 7;
  corpus[0].second.entries = {{0, 3}, {2, 1}};
  auto weights = bovw::ClusterWeights::FromCorpus(3, {corpus[0].second});
  auto index = invindex::MerkleInvertedIndex::Build(3, corpus, weights, true);
  // All weights are ln(1/1) = 0, so impacts vanish and no list is relevant.
  bovw::BovwVector q;
  q.entries = {{0, 1}};
  invindex::InvSearchParams params;
  params.k = 1;
  auto result = invindex::InvSearch(index, q, params);
  EXPECT_TRUE(result.topk.empty());
  invindex::InvVerifyResult verified;
  EXPECT_TRUE(
      invindex::VerifyInvVo(result.vo, q, {}, 1, true, &verified).ok());
}

TEST(EdgeInvIndex, AllImagesIdentical) {
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  bovw::BovwVector same;
  same.entries = {{0, 2}, {1, 1}};
  for (bovw::ImageId id = 0; id < 20; ++id) corpus.emplace_back(id, same);
  // Add one differing image so weights are nonzero.
  bovw::BovwVector other;
  other.entries = {{2, 1}};
  corpus.emplace_back(20, other);
  std::vector<bovw::BovwVector> vecs;
  for (auto& [id, v] : corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(3, vecs);
  auto index = invindex::MerkleInvertedIndex::Build(3, corpus, weights, true);

  bovw::BovwVector q;
  q.entries = {{0, 1}, {2, 1}};
  invindex::InvSearchParams params;
  params.k = 5;
  auto result = invindex::InvSearch(index, q, params);
  ASSERT_EQ(result.topk.size(), 5u);
  // Tie-break: the identical images rank by ascending id after image 20
  // (which matches the rare cluster).
  std::vector<bovw::ImageId> claimed;
  for (auto& si : result.topk) claimed.push_back(si.id);
  invindex::InvVerifyResult verified;
  Status s = invindex::VerifyInvVo(result.vo, q, claimed, 5, true, &verified);
  EXPECT_TRUE(s.ok()) << s.message();
  for (const auto& [c, digest] : verified.list_digests) {
    EXPECT_EQ(digest, index.list(c).digest);
  }
}

TEST(EdgeFgIndex, AllSameFrequency) {
  // Every posting has frequency 1: one group per list holds everything.
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  for (bovw::ImageId id = 0; id < 30; ++id) {
    bovw::BovwVector v;
    v.entries = {{static_cast<bovw::ClusterId>(id % 3), 1},
                 {static_cast<bovw::ClusterId>(3 + id % 2), 1}};
    corpus.emplace_back(id, v);
  }
  std::vector<bovw::BovwVector> vecs;
  for (auto& [id, v] : corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(5, vecs);
  auto index = freqgroup::FgInvertedIndex::Build(5, corpus, weights, true);
  for (bovw::ClusterId c = 0; c < 5; ++c) {
    EXPECT_LE(index.list(c).postings.size(), 1u) << "one group per list";
  }
  bovw::BovwVector q;
  q.entries = {{0, 1}, {3, 2}};
  invindex::InvSearchParams params;
  params.k = 4;
  auto result = freqgroup::FgSearch(index, q, params);
  std::vector<bovw::ImageId> claimed;
  for (auto& si : result.topk) claimed.push_back(si.id);
  invindex::InvVerifyResult verified;
  Status s = freqgroup::FgVerifyVo(result.vo, q, claimed, 4, true, &verified);
  EXPECT_TRUE(s.ok()) << s.message();
}

// ---------------------------------------------------------------------------
// Whole-scheme edges
// ---------------------------------------------------------------------------

core::OwnerOutput TinyDeployment(size_t num_images) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = 32;
  cp.min_distinct = 2;
  cp.max_distinct = 6;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 32;
  cbp.dims = 8;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs));
}

TEST(EdgeScheme, SingleImageDatabase) {
  core::OwnerOutput owner = TinyDeployment(1);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto features = workload::FeaturesFromBovw(
      owner.package->codebook, owner.package->corpus[0].second, 5, 0.2, 0.0, 1);
  core::QueryResponse resp = sp.Query(features, 3);
  auto verified = client.Verify(features, 3, resp.vo);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  // With one image all idf weights are 0 -> no similarity signal; the
  // verified result set must be empty but valid.
  EXPECT_TRUE(verified->topk.empty());
}

TEST(EdgeScheme, KZero) {
  core::OwnerOutput owner = TinyDeployment(50);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 5, 0.3, 3);
  core::QueryResponse resp = sp.Query(features, 0);
  EXPECT_TRUE(resp.topk.empty());
  auto verified = client.Verify(features, 0, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

TEST(EdgeScheme, WrongFeatureDimsRejectedCleanly) {
  core::OwnerOutput owner = TinyDeployment(50);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 5, 0.3, 4);
  core::QueryResponse resp = sp.Query(features, 3);
  // Client verifying with differently-sized features must fail, not crash.
  std::vector<std::vector<float>> wrong = features;
  wrong[0].push_back(1.0f);
  auto verified = client.Verify(wrong, 3, resp.vo);
  EXPECT_FALSE(verified.ok());
}

TEST(EdgeScheme, SingleFeatureQuery) {
  core::OwnerOutput owner = TinyDeployment(80);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 1, 0.2, 5);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

TEST(EdgeScheme, DuplicateFeatureVectors) {
  core::OwnerOutput owner = TinyDeployment(80);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);
  auto one = workload::GenerateQueryFeatures(owner.package->codebook, 1, 0.2, 6);
  std::vector<std::vector<float>> features(10, one[0]);  // 10 identical
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
  // Identical features share every tree node.
  EXPECT_GT(resp.stats.mrkd.ShareRatio(), 0.8);
}

}  // namespace
}  // namespace imageproof
