// Tests for the cuckoo filter: membership semantics, deletion support,
// false-positive behavior, serialization, and the paper's MaxCount bound
// (Algorithm 2 / Lemma 1).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "cuckoo/counting_bloom.h"
#include "cuckoo/cuckoo_filter.h"

namespace imageproof::cuckoo {
namespace {

TEST(CuckooParamsTest, GeometryForMaxItems) {
  CuckooParams p = CuckooParams::ForMaxItems(1000);
  EXPECT_EQ(p.num_buckets & (p.num_buckets - 1), 0u) << "power of two";
  EXPECT_GE(p.num_buckets, 600u);
  EXPECT_EQ(p.slots_per_bucket, 4u);
}

TEST(CuckooFilterTest, NoFalseNegatives) {
  CuckooParams params = CuckooParams::ForMaxItems(500);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(filter.Insert(i * 1000003 + 7)) << i;
  }
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(filter.Contains(i * 1000003 + 7)) << i;
  }
}

TEST(CuckooFilterTest, LowFalsePositiveRate) {
  CuckooParams params = CuckooParams::ForMaxItems(2000);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(filter.Insert(i));
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.Contains(1000000 + i)) ++fp;
  }
  // 8-bit fingerprints at <50% load: expect well under 3% (the paper's FPR
  // regime where cuckoo beats Bloom).
  EXPECT_LT(fp, probes * 3 / 100);
}

TEST(CuckooFilterTest, DeleteRemovesExactlyOneOccurrence) {
  CuckooParams params = CuckooParams::ForMaxItems(100);
  CuckooFilter filter(params);
  ASSERT_TRUE(filter.Insert(42));
  ASSERT_TRUE(filter.Insert(42));  // duplicate insertion is legal
  EXPECT_EQ(filter.Count(), 2u);
  EXPECT_TRUE(filter.Delete(42));
  EXPECT_TRUE(filter.Contains(42));  // one copy remains
  EXPECT_TRUE(filter.Delete(42));
  EXPECT_FALSE(filter.Contains(42));
  EXPECT_FALSE(filter.Delete(42));  // nothing left
  EXPECT_EQ(filter.Count(), 0u);
}

TEST(CuckooFilterTest, DeleteThenReinsert) {
  CuckooParams params = CuckooParams::ForMaxItems(300);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(filter.Insert(i));
  for (uint64_t i = 0; i < 300; i += 2) EXPECT_TRUE(filter.Delete(i));
  for (uint64_t i = 1; i < 300; i += 2) EXPECT_TRUE(filter.Contains(i));
  for (uint64_t i = 0; i < 300; i += 2) ASSERT_TRUE(filter.Insert(i));
  for (uint64_t i = 0; i < 300; ++i) EXPECT_TRUE(filter.Contains(i));
}

TEST(CuckooFilterTest, SerializationRoundTrip) {
  CuckooParams params = CuckooParams::ForMaxItems(200);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < 150; ++i) ASSERT_TRUE(filter.Insert(i * 31 + 5));
  Bytes data = filter.Serialize();
  auto restored = CuckooFilter::Deserialize(data);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->StateDigest(), filter.StateDigest());
  for (uint64_t i = 0; i < 150; ++i) {
    EXPECT_TRUE(restored->Contains(i * 31 + 5));
  }
  // Restored filter keeps deleting deterministically like the original.
  CuckooFilter copy = *restored;
  uint32_t b1, b2;
  ASSERT_TRUE(filter.Delete(36, &b1));
  ASSERT_TRUE(copy.Delete(36, &b2));
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(copy.StateDigest(), filter.StateDigest());
}

TEST(CuckooFilterTest, DeserializeRejectsMalformed) {
  CuckooFilter filter(CuckooParams::ForMaxItems(50));
  Bytes data = filter.Serialize();
  Bytes truncated(data.begin(), data.end() - 1);
  EXPECT_FALSE(CuckooFilter::Deserialize(truncated).ok());
  Bytes trailing = data;
  trailing.push_back(0);
  EXPECT_FALSE(CuckooFilter::Deserialize(trailing).ok());
  Bytes bad_params = data;
  bad_params[0] = 3;  // non-power-of-two bucket count
  EXPECT_FALSE(CuckooFilter::Deserialize(bad_params).ok());
}

TEST(CuckooFilterTest, StateDigestTracksContent) {
  CuckooParams params = CuckooParams::ForMaxItems(100);
  CuckooFilter a(params), b(params);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  ASSERT_TRUE(a.Insert(7));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  ASSERT_TRUE(b.Insert(7));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(CuckooFilterTest, SharedGeometryGivesSharedBuckets) {
  // Lemma 1 requires an item's fingerprint/buckets to agree across filters.
  CuckooParams params = CuckooParams::ForMaxItems(128);
  CuckooFilter a(params), b(params);
  for (uint64_t item : {1ULL, 99ULL, 123456789ULL}) {
    EXPECT_EQ(a.Fingerprint(item), b.Fingerprint(item));
    EXPECT_EQ(a.Bucket1(item), b.Bucket1(item));
  }
}

TEST(CuckooFilterTest, AltBucketIsInvolution) {
  CuckooFilter f(CuckooParams::ForMaxItems(256));
  for (uint64_t item = 0; item < 64; ++item) {
    uint16_t fp = f.Fingerprint(item);
    uint32_t b1 = f.Bucket1(item);
    uint32_t b2 = f.AltBucket(b1, fp);
    EXPECT_EQ(f.AltBucket(b2, fp), b1);
  }
}

TEST(CuckooFilterTest, SixteenBitFingerprints) {
  CuckooParams params = CuckooParams::ForMaxItems(100, /*fingerprint_bits=*/16);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(filter.Insert(i));
  for (uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(filter.Contains(i));
  auto restored = CuckooFilter::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->StateDigest(), filter.StateDigest());
}

// MaxCount (Algorithm 2): gamma upper-bounds the true max frequency of any
// item across the filter set.
TEST(MaxCountTest, BoundsTrueFrequency) {
  CuckooParams params = CuckooParams::ForMaxItems(200);
  Rng rng(77);
  std::vector<CuckooFilter> filters(20, CuckooFilter(params));
  std::vector<std::set<uint64_t>> contents(20);
  // Insert random items; item 7 goes into 15 filters (the heavy hitter).
  for (int f = 0; f < 20; ++f) {
    for (int i = 0; i < 100; ++i) {
      uint64_t item = rng.NextBounded(5000) + 100;
      if (contents[f].insert(item).second) {
        ASSERT_TRUE(filters[f].Insert(item));
      }
    }
  }
  for (int f = 0; f < 15; ++f) {
    if (contents[f].insert(7).second) {
      ASSERT_TRUE(filters[f].Insert(7));
    }
  }
  // True max frequency across filters.
  size_t true_max = 0;
  std::set<uint64_t> all_items;
  for (const auto& c : contents) all_items.insert(c.begin(), c.end());
  for (uint64_t item : all_items) {
    size_t freq = 0;
    for (const auto& c : contents) freq += c.count(item);
    true_max = std::max(true_max, freq);
  }
  std::vector<const CuckooFilter*> ptrs;
  for (const auto& f : filters) ptrs.push_back(&f);
  uint32_t gamma = MaxCountGamma(ptrs);
  EXPECT_GE(gamma, true_max);  // Lemma 1
}

TEST(MaxCountTest, EmptyFilterSet) {
  EXPECT_EQ(MaxCountGamma({}), 0u);
}

TEST(MaxCountTest, TrackerMatchesRescanUnderDeletions) {
  CuckooParams params = CuckooParams::ForMaxItems(100);
  std::vector<CuckooFilter> filters(8, CuckooFilter(params));
  for (int f = 0; f < 8; ++f) {
    for (uint64_t i = 0; i < 60; ++i) {
      ASSERT_TRUE(filters[f].Insert(i * (f + 1)));
    }
  }
  std::vector<const CuckooFilter*> ptrs;
  for (const auto& f : filters) ptrs.push_back(&f);
  MaxCountTracker tracker(ptrs);
  EXPECT_EQ(tracker.Gamma(), MaxCountGamma(ptrs));

  Rng rng(13);
  for (int step = 0; step < 200; ++step) {
    int f = static_cast<int>(rng.NextBounded(8));
    uint64_t item = rng.NextBounded(60) * (f + 1);
    uint32_t bucket;
    if (filters[f].Delete(item, &bucket)) {
      tracker.OnDelete(bucket, filters[f].Fingerprint(item));
    }
    ASSERT_EQ(tracker.Gamma(), MaxCountGamma(ptrs)) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Counting Bloom filter (the comparison structure)
// ---------------------------------------------------------------------------

TEST(CountingBloomTest, NoFalseNegatives) {
  CountingBloomFilter filter(BloomParams::ForMaxItems(500));
  for (uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(filter.Insert(i * 7 + 1));
  for (uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(filter.Contains(i * 7 + 1));
}

TEST(CountingBloomTest, LowFalsePositiveRate) {
  CountingBloomFilter filter(BloomParams::ForMaxItems(2000));
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(filter.Insert(i));
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.Contains(1000000 + i)) ++fp;
  }
  EXPECT_LT(fp, probes * 2 / 100);
}

TEST(CountingBloomTest, DeleteSupportsMultiplicity) {
  CountingBloomFilter filter(BloomParams::ForMaxItems(100));
  ASSERT_TRUE(filter.Insert(42));
  ASSERT_TRUE(filter.Insert(42));
  EXPECT_TRUE(filter.Delete(42));
  EXPECT_TRUE(filter.Contains(42));
  EXPECT_TRUE(filter.Delete(42));
  EXPECT_FALSE(filter.Contains(42));
  EXPECT_FALSE(filter.Delete(42));
}

TEST(CountingBloomTest, CounterSaturationRejected) {
  CountingBloomFilter filter(BloomParams::ForMaxItems(64));
  // The same item 15 times saturates its counters; the 16th insert fails
  // cleanly and the filter still contains the item.
  for (int i = 0; i < 15; ++i) ASSERT_TRUE(filter.Insert(7)) << i;
  EXPECT_FALSE(filter.Insert(7));
  EXPECT_TRUE(filter.Contains(7));
}

TEST(CountingBloomTest, StateDigestTracksContent) {
  BloomParams params = BloomParams::ForMaxItems(100);
  CountingBloomFilter a(params), b(params);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  ASSERT_TRUE(a.Insert(5));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  ASSERT_TRUE(a.Delete(5));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(CuckooStressTest, HighLoadInsertMostlySucceeds) {
  // At the paper's 60%-of-max sizing, load stays below ~42% and inserts
  // never fail; push to ~90% to confirm the eviction path works.
  CuckooParams params;
  params.num_buckets = 64;
  CuckooFilter filter(params);
  size_t capacity = params.num_buckets * params.slots_per_bucket;
  size_t inserted = 0;
  for (uint64_t i = 0; i < capacity * 9 / 10; ++i) {
    if (filter.Insert(i)) ++inserted;
  }
  EXPECT_GE(inserted, capacity * 8 / 10);
  EXPECT_EQ(filter.Count(), inserted);
}

}  // namespace
}  // namespace imageproof::cuckoo
