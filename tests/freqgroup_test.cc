// Tests for the frequency-grouped Merkle inverted index (Optimization B):
// grouping invariants, digest chains, search-vs-oracle agreement, VO
// compression behavior, and adversarial rejection.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "freqgroup/fg_index.h"
#include "freqgroup/fg_search.h"
#include "freqgroup/fg_verify.h"
#include "invindex/merkle_inv_index.h"
#include "invindex/search.h"

namespace imageproof::freqgroup {
namespace {

using bovw::BovwVector;
using bovw::ClusterWeights;

struct Corpus {
  size_t num_clusters;
  std::vector<std::pair<ImageId, BovwVector>> images;
  std::unique_ptr<ClusterWeights> weights;

  Corpus(size_t num_images, size_t num_clusters_in, uint64_t seed)
      : num_clusters(num_clusters_in) {
    Rng rng(seed);
    for (ImageId id = 0; id < num_images; ++id) {
      size_t distinct = 3 + rng.NextBounded(8);
      std::map<bovw::ClusterId, uint32_t> counts;
      for (size_t i = 0; i < distinct; ++i) {
        auto c = static_cast<bovw::ClusterId>(rng.NextZipf(num_clusters, 1.15));
        counts[c] += 1 + static_cast<uint32_t>(rng.NextBounded(3));
      }
      BovwVector v;
      v.entries.assign(counts.begin(), counts.end());
      images.emplace_back(id, v);
    }
    std::vector<BovwVector> vecs;
    for (auto& [id, v] : images) vecs.push_back(v);
    weights = std::make_unique<ClusterWeights>(
        ClusterWeights::FromCorpus(num_clusters, vecs));
  }

  BovwVector RandomQuery(uint64_t seed) const {
    Rng rng(seed);
    std::map<bovw::ClusterId, uint32_t> counts;
    for (size_t i = 0; i < 6; ++i) {
      auto c = static_cast<bovw::ClusterId>(rng.NextZipf(num_clusters, 1.1));
      counts[c] += 1 + static_cast<uint32_t>(rng.NextBounded(3));
    }
    BovwVector v;
    v.entries.assign(counts.begin(), counts.end());
    return v;
  }
};

TEST(FgIndexTest, GroupingInvariants) {
  Corpus corpus(300, 40, 3);
  auto index = FgInvertedIndex::Build(40, corpus.images, *corpus.weights, true);
  for (bovw::ClusterId c = 0; c < 40; ++c) {
    const FgList& list = index.list(c);
    std::set<uint32_t> freqs_seen;
    std::set<ImageId> ids_seen;
    double prev_impact = 1e300;
    for (const FgPosting& p : list.postings) {
      // One group per frequency.
      EXPECT_TRUE(freqs_seen.insert(p.freq).second);
      ASSERT_FALSE(p.members.empty());
      // Members sorted by (norm, id); each image at most once per list.
      for (size_t m = 0; m < p.members.size(); ++m) {
        EXPECT_TRUE(ids_seen.insert(p.members[m].id).second);
        if (m > 0) {
          EXPECT_TRUE(p.members[m - 1].norm < p.members[m].norm ||
                      (p.members[m - 1].norm == p.members[m].norm &&
                       p.members[m - 1].id < p.members[m].id));
        }
      }
      // Group impacts descend along the list.
      double impact = p.GroupImpact(list.weight);
      EXPECT_LE(impact, prev_impact);
      prev_impact = impact;
    }
    // Chain digests verify.
    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = FgPostingDigest(list.postings[i], next);
      EXPECT_EQ(next, list.postings[i].digest);
    }
    EXPECT_EQ(list.digest,
              invindex::ListDigest(list.weight, list.theta_digest,
                                   list.FirstPostingDigest()));
  }
}

TEST(FgIndexTest, GroupsEquivalentToPlainPostings) {
  // The grouped index encodes exactly the same (image, impact) pairs as the
  // plain index.
  Corpus corpus(200, 30, 5);
  auto plain = invindex::MerkleInvertedIndex::Build(30, corpus.images,
                                                    *corpus.weights, true);
  auto grouped = FgInvertedIndex::Build(30, corpus.images, *corpus.weights, true);
  for (bovw::ClusterId c = 0; c < 30; ++c) {
    std::map<ImageId, double> plain_impacts, grouped_impacts;
    for (const auto& p : plain.list(c).postings) {
      plain_impacts[p.id] = p.impact;
    }
    const FgList& list = grouped.list(c);
    for (const auto& g : list.postings) {
      for (size_t m = 0; m < g.members.size(); ++m) {
        grouped_impacts[g.members[m].id] = g.MemberImpact(list.weight, m);
      }
    }
    ASSERT_EQ(plain_impacts.size(), grouped_impacts.size()) << "cluster " << c;
    for (const auto& [id, impact] : plain_impacts) {
      ASSERT_TRUE(grouped_impacts.count(id));
      EXPECT_DOUBLE_EQ(grouped_impacts[id], impact);
    }
  }
}

void ExpectFgRoundTrip(const FgInvertedIndex& index, const Corpus& corpus,
                       const BovwVector& query, size_t k) {
  invindex::InvSearchParams params;
  params.k = k;
  FgSearchResult result = FgSearch(index, query, params);

  auto expected = bovw::BruteForceTopK(corpus.images, query, *corpus.weights, k);
  while (!expected.empty() && expected.back().score <= 0) expected.pop_back();
  ASSERT_EQ(result.topk.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.topk[i].id, expected[i].id) << "rank " << i;
    EXPECT_NEAR(result.topk[i].score, expected[i].score, 1e-9);
  }

  std::vector<ImageId> claimed;
  for (const auto& si : result.topk) claimed.push_back(si.id);
  InvVerifyResult verified;
  Status s = FgVerifyVo(result.vo, query, claimed, k, index.with_filters(),
                        &verified);
  ASSERT_TRUE(s.ok()) << s.message();
  for (const auto& [c, digest] : verified.list_digests) {
    EXPECT_EQ(digest, index.list(c).digest) << "cluster " << c;
  }
}

TEST(FgSearchTest, MatchesBruteForce) {
  Corpus corpus(400, 50, 7);
  auto index = FgInvertedIndex::Build(50, corpus.images, *corpus.weights, true);
  for (uint64_t qs = 0; qs < 8; ++qs) {
    SCOPED_TRACE(qs);
    ExpectFgRoundTrip(index, corpus, corpus.RandomQuery(100 + qs), 10);
  }
}

TEST(FgSearchTest, VariousK) {
  Corpus corpus(250, 40, 9);
  auto index = FgInvertedIndex::Build(40, corpus.images, *corpus.weights, true);
  BovwVector q = corpus.RandomQuery(500);
  for (size_t k : {1u, 3u, 10u, 40u}) {
    SCOPED_TRACE(k);
    ExpectFgRoundTrip(index, corpus, q, k);
  }
}

TEST(FgSearchTest, PlainFilterlessMode) {
  Corpus corpus(200, 30, 11);
  auto index = FgInvertedIndex::Build(30, corpus.images, *corpus.weights, false);
  for (uint64_t qs = 0; qs < 4; ++qs) {
    SCOPED_TRACE(qs);
    ExpectFgRoundTrip(index, corpus, corpus.RandomQuery(600 + qs), 5);
  }
}

TEST(FgSearchTest, VoSmallerThanPlainIndexVo) {
  // The headline claim of Optimization B: grouped VOs carry fewer bytes
  // than the plain impact-ordered VOs for the same query.
  Corpus corpus(800, 40, 13);
  auto plain = invindex::MerkleInvertedIndex::Build(40, corpus.images,
                                                    *corpus.weights, true);
  auto grouped = FgInvertedIndex::Build(40, corpus.images, *corpus.weights, true);
  invindex::InvSearchParams params;
  params.k = 10;
  size_t plain_bytes = 0, grouped_bytes = 0;
  for (uint64_t qs = 0; qs < 5; ++qs) {
    BovwVector q = corpus.RandomQuery(700 + qs);
    plain_bytes += invindex::InvSearch(plain, q, params).vo.size();
    grouped_bytes += FgSearch(grouped, q, params).vo.size();
  }
  EXPECT_LT(grouped_bytes, plain_bytes);
}

TEST(FgAttackTest, TamperingRejected) {
  Corpus corpus(300, 40, 17);
  auto index = FgInvertedIndex::Build(40, corpus.images, *corpus.weights, true);
  BovwVector q = corpus.RandomQuery(900);
  invindex::InvSearchParams params;
  params.k = 10;
  FgSearchResult honest = FgSearch(index, q, params);
  std::vector<ImageId> claimed;
  for (const auto& si : honest.topk) claimed.push_back(si.id);

  auto accepts = [&](const Bytes& vo, const std::vector<ImageId>& ids) {
    InvVerifyResult verified;
    if (!FgVerifyVo(vo, q, ids, 10, true, &verified).ok()) return false;
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index.list(c).digest) return false;
    }
    return true;
  };
  ASSERT_TRUE(accepts(honest.vo, claimed));

  // Bit flips.
  Rng rng(19);
  for (int t = 0; t < 40; ++t) {
    Bytes tampered = honest.vo;
    tampered[rng.NextBounded(tampered.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    EXPECT_FALSE(accepts(tampered, claimed)) << t;
  }
  // Result swap.
  if (!claimed.empty()) {
    auto swapped = claimed;
    swapped[0] += 1000000;
    EXPECT_FALSE(accepts(honest.vo, swapped));
  }
  // Dropped result.
  if (claimed.size() > 1) {
    auto dropped = std::vector<ImageId>(claimed.begin() + 1, claimed.end());
    EXPECT_FALSE(accepts(honest.vo, dropped));
  }
}

}  // namespace
}  // namespace imageproof::freqgroup
