// Result-cache correctness: the epoch-keyed LRU in front of
// ServiceProvider::Query must be invisible in every byte a client sees.
// Hits return byte-identical VOs to a cold serve (at any thread count), an
// update's snapshot swap implicitly invalidates (the epoch lives in the
// key, so a post-update query can never be answered with a pre-swap VO),
// and cached / memo'd / cold / compressed responses all pass the full
// Client::Verify.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/client.h"
#include "core/owner.h"
#include "core/query_cache.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

bool SameTopk(const std::vector<bovw::ScoredImage>& a,
              const std::vector<bovw::ScoredImage>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].score != b[i].score) return false;
  }
  return true;
}

struct CacheFixture {
  core::OwnerOutput owner;
  std::shared_ptr<const core::SpPackage> package;
  std::vector<std::vector<std::vector<float>>> queries;

  explicit CacheFixture(uint64_t seed = 11) {
    // OptimizedBoth so hits cover the dim-Merkle reveal memo and the
    // frequency-group VO (the compressed encoding's richest shape).
    core::Config config = core::Config::OptimizedBoth();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 200;
    cp.num_clusters = 64;
    cp.seed = seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 64;
    cbp.dims = 16;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs));
    package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
    for (uint64_t q = 0; q < 6; ++q) {
      queries.push_back(workload::GenerateQueryFeatures(package->codebook, 8,
                                                        0.3, 100 + q));
    }
  }
};

// --- QueryCache unit behavior ---------------------------------------------

TEST(QueryCacheTest, KeySeparatesEpochFlagKAndFeatures) {
  std::vector<std::vector<float>> a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  std::vector<std::vector<float>> b{{1.0f, 2.0f}, {3.0f, 4.5f}};
  // Same floats, different split across vectors (length-prefixed framing
  // must keep these distinct).
  std::vector<std::vector<float>> c{{1.0f, 2.0f, 3.0f, 4.0f}};
  auto base = core::QueryCache::Key(1, false, 5, a);
  EXPECT_EQ(base, core::QueryCache::Key(1, false, 5, a));
  EXPECT_NE(base, core::QueryCache::Key(2, false, 5, a));
  EXPECT_NE(base, core::QueryCache::Key(1, true, 5, a));
  EXPECT_NE(base, core::QueryCache::Key(1, false, 6, a));
  EXPECT_NE(base, core::QueryCache::Key(1, false, 5, b));
  EXPECT_NE(base, core::QueryCache::Key(1, false, 5, c));
  // Settled serves pop more postings, so their VOs must never alias the
  // plain-serve entries (sharded serving always queries settled).
  EXPECT_NE(base, core::QueryCache::Key(1, false, 5, a, true));
  EXPECT_EQ(core::QueryCache::Key(1, false, 5, a, true),
            core::QueryCache::Key(1, false, 5, a, true));
}

TEST(QueryCacheTest, InsertLookupAndLruEviction) {
  core::QueryCache cache(8);
  ASSERT_TRUE(cache.enabled());
  std::vector<std::vector<float>> f{{0.0f}};
  std::vector<crypto::Digest> keys;
  for (uint64_t v = 0; v < 64; ++v) {
    keys.push_back(core::QueryCache::Key(v, false, 1, f));
    auto resp = std::make_shared<core::QueryResponse>();
    resp->topk.resize(static_cast<size_t>(v));  // distinguishable payloads
    cache.Insert(keys.back(), resp);
  }
  core::QueryCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.evictions, 0u);
  // The newest key survives in its shard; its payload is the one inserted.
  auto hit = cache.Lookup(keys.back());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->topk.size(), 63u);
  // Something old was evicted.
  size_t misses = 0;
  for (const auto& k : keys) {
    if (cache.Lookup(k) == nullptr) ++misses;
  }
  EXPECT_GT(misses, 0u);
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  core::QueryCache cache(0);
  EXPECT_FALSE(cache.enabled());
}

// --- Engine-level byte identity -------------------------------------------

TEST(QueryCacheEngineTest, HitIsByteIdenticalToColdServeSingleThread) {
  CacheFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 1;
  opts.cache_capacity = 64;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  core::ServiceProvider sp(fx.package.get());

  for (const auto& features : fx.queries) {
    Bytes cold = sp.Query(features, 4).vo.Serialize();
    core::EngineResponse miss = engine.Submit(features, 4).get();
    core::EngineResponse hit = engine.Submit(features, 4).get();
    ASSERT_TRUE(miss.ok());
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(miss.response.vo.Serialize(), cold);
    EXPECT_EQ(hit.response.vo.Serialize(), cold);
    EXPECT_TRUE(SameTopk(miss.response.topk, hit.response.topk));
  }
  if (obs::kMetricsEnabled) {
    core::EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.cache_hits, fx.queries.size());
    EXPECT_EQ(stats.cache_misses, fx.queries.size());
  }
}

TEST(QueryCacheEngineTest, HitIsByteIdenticalToColdServeFourThreads) {
  CacheFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 4;
  opts.intra_query_threads = 2;
  opts.cache_capacity = 64;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  core::ServiceProvider sp(fx.package.get());

  std::vector<Bytes> cold;
  for (const auto& features : fx.queries) {
    cold.push_back(sp.Query(features, 4).vo.Serialize());
  }
  // 4 client threads, each hammering every query several times: racing
  // lookups, racing inserts of the same key, and hits off other threads'
  // inserts must all surface the same bytes.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        for (size_t q = 0; q < fx.queries.size(); ++q) {
          core::EngineResponse r = engine.Submit(fx.queries[q], 4).get();
          if (!r.ok() || r.response.vo.Serialize() != cold[q]) ++mismatches;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  if (obs::kMetricsEnabled) {
    core::EngineStats stats = engine.Stats();
    EXPECT_GT(stats.cache_hits, 0u);
  }
}

// --- Epoch-key invalidation -----------------------------------------------

TEST(QueryCacheEngineTest, UpdateNeverServesPreSwapVo) {
  CacheFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  opts.cache_capacity = 64;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  const auto& features = fx.queries[0];

  core::EngineResponse before = engine.Submit(features, 4).get();
  core::EngineResponse before_hit = engine.Submit(features, 4).get();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before_hit.ok());

  workload::CorpusParams qp;
  qp.num_clusters = 64;
  auto ins = engine.InsertImage(fx.owner.private_key, 5000,
                                workload::GenerateQueryBovw(qp, 20, 77),
                                workload::GenerateImageBlob(5000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();

  core::EngineResponse after = engine.Submit(features, 4).get();
  ASSERT_TRUE(after.ok());
  // The post-swap response is served under (and verifies against) the new
  // epoch. A pre-swap cached VO would carry the old root and fail this
  // check — the epoch in the cache key makes that impossible by
  // construction, and we assert it end to end.
  EXPECT_GT(after.snapshot->version, before.snapshot->version);
  core::Client new_client(after.snapshot->params);
  EXPECT_TRUE(new_client.Verify(features, 4, after.response.vo).ok());
  // The stale response still verifies against its own epoch's params
  // (snapshot isolation), but not against the new root.
  core::Client old_client(before.snapshot->params);
  EXPECT_TRUE(old_client.Verify(features, 4, before.response.vo).ok());
  EXPECT_FALSE(new_client.Verify(features, 4, before.response.vo).ok());

  // And the post-update serve was a genuine miss: the old entry's key no
  // longer matches.
  if (obs::kMetricsEnabled) {
    core::EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.cache_hits, 1u);    // the pre-update repeat
    EXPECT_EQ(stats.cache_misses, 2u);  // initial + post-update
  }
}

// --- Everything a client can receive verifies -----------------------------

TEST(QueryCacheEngineTest, ColdMemoizedCachedAndCompressedAllVerify) {
  CacheFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  opts.cache_capacity = 64;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);
  core::ServiceProvider cold_sp(fx.package.get());  // no memo, no cache
  core::Client client(fx.owner.public_params);
  core::SubmitOptions compressed;
  compressed.compress_vo = true;

  for (const auto& features : fx.queries) {
    core::QueryResponse cold = cold_sp.Query(features, 4);
    EXPECT_TRUE(client.Verify(features, 4, cold.vo).ok());
    core::EngineResponse miss = engine.Submit(features, 4).get();
    core::EngineResponse hit = engine.Submit(features, 4).get();
    core::EngineResponse comp_miss =
        engine.Submit(features, 4, compressed).get();
    core::EngineResponse comp_hit =
        engine.Submit(features, 4, compressed).get();
    for (const core::EngineResponse* r :
         {&miss, &hit, &comp_miss, &comp_hit}) {
      ASSERT_TRUE(r->ok());
      EXPECT_TRUE(client.Verify(features, 4, r->response.vo).ok());
    }
    // Compressed and raw framing are distinct cache entries (the flag is in
    // the key) but decode to the same verified results.
    EXPECT_TRUE(SameTopk(comp_hit.response.topk, hit.response.topk));
  }
  if (obs::kMetricsEnabled) {
    core::EngineStats stats = engine.Stats();
    EXPECT_GT(stats.memo_hits, 0u);
    EXPECT_GT(stats.vo_bytes_compressed, 0u);
    EXPECT_GT(stats.vo_bytes_raw, 0u);
  }
}

}  // namespace
}  // namespace imageproof
