// Cross-module integration tests: the full pixels -> SIFT -> AKM -> BoVW ->
// ImageProof pipeline, plus parameterized property sweeps of the end-to-end
// scheme over corpus shapes.

#include <gtest/gtest.h>

#include "ann/kmeans.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "image/synth.h"
#include "sift/extractor.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

// ---------------------------------------------------------------------------
// Real image pipeline
// ---------------------------------------------------------------------------

class ImagePipelineTest : public ::testing::Test {
 protected:
  static constexpr int kNumImages = 40;
  static constexpr int kCodebook = 200;

  static void SetUpTestSuite() {
    sift::SiftParams sift_params;
    sift_params.max_features = 60;
    sift::SiftExtractor extractor(sift_params);

    std::vector<image::Image> images;
    std::vector<std::vector<std::vector<float>>> features;
    ann::PointSet pool(sift_params.DescriptorDims(), 0);
    pool.set_dims(sift_params.DescriptorDims());
    for (int i = 0; i < kNumImages; ++i) {
      images.push_back(image::SynthesizeImage(500 + i, 96, 96));
      std::vector<std::vector<float>> f;
      for (auto& feat : extractor.Extract(images.back())) {
        f.push_back(std::move(feat.descriptor));
      }
      for (const auto& d : f) pool.AppendRow(d);
      features.push_back(std::move(f));
    }

    ann::AkmParams akm;
    akm.num_clusters = kCodebook;
    akm.iterations = 4;
    ann::AkmResult trained = TrainCodebook(pool, akm);

    ann::RkdForest forest(trained.centers, ann::ForestParams{});
    std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
    std::unordered_map<bovw::ImageId, Bytes> payloads;
    for (int i = 0; i < kNumImages; ++i) {
      corpus.emplace_back(i, bovw::EncodeWithForest(forest, features[i]));
      payloads[i] = images[i].Serialize();
    }
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    owner_ = new core::OwnerOutput(core::BuildDeployment(
        config, trained.centers, std::move(corpus), std::move(payloads)));
    extractor_ = new sift::SiftExtractor(sift_params);
    images_ = new std::vector<image::Image>(std::move(images));
  }

  static void TearDownTestSuite() {
    delete owner_;
    delete extractor_;
    delete images_;
    owner_ = nullptr;
    extractor_ = nullptr;
    images_ = nullptr;
  }

  static std::vector<std::vector<float>> Features(const image::Image& img) {
    std::vector<std::vector<float>> out;
    for (auto& f : extractor_->Extract(img)) out.push_back(std::move(f.descriptor));
    return out;
  }

  static core::OwnerOutput* owner_;
  static sift::SiftExtractor* extractor_;
  static std::vector<image::Image>* images_;
};

core::OwnerOutput* ImagePipelineTest::owner_ = nullptr;
sift::SiftExtractor* ImagePipelineTest::extractor_ = nullptr;
std::vector<image::Image>* ImagePipelineTest::images_ = nullptr;

TEST_F(ImagePipelineTest, ExactDuplicateQueryRetrievesItself) {
  core::ServiceProvider sp(owner_->package.get());
  core::Client client(owner_->public_params);
  for (int target : {0, 13, 39}) {
    auto features = Features((*images_)[target]);
    ASSERT_FALSE(features.empty());
    core::QueryResponse resp = sp.Query(features, 3);
    auto verified = client.Verify(features, 3, resp.vo);
    ASSERT_TRUE(verified.ok()) << verified.status().message();
    ASSERT_FALSE(verified->topk.empty());
    EXPECT_EQ(verified->topk[0].id, static_cast<bovw::ImageId>(target));
  }
}

TEST_F(ImagePipelineTest, NoisyVariantRanksSourceHighly) {
  core::ServiceProvider sp(owner_->package.get());
  core::Client client(owner_->public_params);
  const int target = 7;
  image::Image variant = image::AddNoise((*images_)[target], 3.0, 77);
  auto features = Features(variant);
  ASSERT_FALSE(features.empty());
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  bool found = false;
  for (const auto& si : verified->topk) {
    if (si.id == target) found = true;
  }
  EXPECT_TRUE(found) << "source image not in verified top-5";
}

TEST_F(ImagePipelineTest, VerifiedPayloadsDecodeToImages) {
  core::ServiceProvider sp(owner_->package.get());
  core::Client client(owner_->public_params);
  auto features = Features((*images_)[3]);
  core::QueryResponse resp = sp.Query(features, 4);
  auto verified = client.Verify(features, 4, resp.vo);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  for (size_t i = 0; i < verified->topk.size(); ++i) {
    image::Image decoded;
    ASSERT_TRUE(image::Image::Deserialize(verified->images[i], &decoded));
    EXPECT_EQ(decoded.pixels(),
              (*images_)[verified->topk[i].id].pixels());
  }
}

TEST_F(ImagePipelineTest, TamperedPayloadRejected) {
  core::ServiceProvider sp(owner_->package.get());
  core::Client client(owner_->public_params);
  auto features = Features((*images_)[21]);
  core::QueryResponse resp = sp.Query(features, 3);
  ASSERT_FALSE(resp.vo.results.empty());
  resp.vo.results[0].data[10] ^= 0x80;  // flip one pixel bit
  auto verified = client.Verify(features, 3, resp.vo);
  EXPECT_FALSE(verified.ok());
}

// ---------------------------------------------------------------------------
// Property sweep: the scheme holds across corpus/codebook shapes
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* scheme;
  size_t images;
  size_t clusters;
  size_t dims;
  size_t features;
  size_t k;
};

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, HonestVerifiesAndMatchesOracle) {
  const SweepCase& sc = GetParam();
  core::Config config =
      std::string(sc.scheme) == "Baseline"     ? core::Config::Baseline()
      : std::string(sc.scheme) == "ImageProof" ? core::Config::ImageProof()
      : std::string(sc.scheme) == "OptA"       ? core::Config::OptimizedBovw()
                                               : core::Config::OptimizedBoth();
  config.rsa_bits = 512;

  workload::CorpusParams cp;
  cp.num_images = sc.images;
  cp.num_clusters = sc.clusters;
  cp.min_distinct = 4;
  cp.max_distinct = 16;
  cp.seed = sc.images + sc.clusters;
  auto corpus = workload::GenerateCorpus(cp);
  auto corpus_copy = corpus;
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id, 16);

  workload::CodebookParams cbp;
  cbp.num_clusters = sc.clusters;
  cbp.dims = sc.dims;
  cbp.seed = cp.seed + 1;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs), cp.seed + 2);
  core::ServiceProvider sp(owner.package.get());
  core::Client client(owner.public_params);

  auto features = workload::GenerateQueryFeatures(owner.package->codebook,
                                                  sc.features, 0.3, cp.seed + 3);
  core::QueryResponse resp = sp.Query(features, sc.k);
  auto verified = client.Verify(features, sc.k, resp.vo);
  ASSERT_TRUE(verified.ok()) << sc.scheme << ": " << verified.status().message();

  // Oracle: exact NN assignment + brute-force scoring.
  std::vector<bovw::ClusterId> assignment;
  const auto& cb = owner.package->codebook;
  for (const auto& f : features) {
    double best = 0;
    int32_t best_c = -1;
    for (size_t c = 0; c < cb.size(); ++c) {
      double d = ann::SquaredL2(f.data(), cb.row(c), cb.dims());
      if (best_c < 0 || d < best) {
        best = d;
        best_c = static_cast<int32_t>(c);
      }
    }
    assignment.push_back(static_cast<bovw::ClusterId>(best_c));
  }
  std::vector<bovw::BovwVector> vecs;
  for (const auto& [id, v] : corpus_copy) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(sc.clusters, vecs);
  auto expected = bovw::BruteForceTopK(
      corpus_copy, bovw::CountAssignments(assignment), weights, sc.k);
  while (!expected.empty() && expected.back().score <= 0) expected.pop_back();
  ASSERT_EQ(resp.topk.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resp.topk[i].id, expected[i].id) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndSweep,
    ::testing::Values(
        SweepCase{"ImageProof", 100, 64, 8, 10, 3},
        SweepCase{"ImageProof", 500, 64, 8, 20, 10},
        SweepCase{"ImageProof", 200, 512, 24, 30, 5},
        SweepCase{"ImageProof", 50, 32, 8, 5, 60},   // k > corpus
        SweepCase{"Baseline", 200, 128, 12, 15, 5},
        SweepCase{"Baseline", 100, 512, 16, 25, 8},
        SweepCase{"OptA", 200, 128, 32, 15, 5},
        SweepCase{"OptA", 300, 256, 64, 20, 10},
        SweepCase{"OptBoth", 200, 128, 16, 15, 5},
        SweepCase{"OptBoth", 400, 256, 32, 25, 10}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.scheme) + "_" +
             std::to_string(info.param.images) + "i_" +
             std::to_string(info.param.clusters) + "c_" +
             std::to_string(info.param.dims) + "d_" +
             std::to_string(info.param.k) + "k";
    });

}  // namespace
}  // namespace imageproof
