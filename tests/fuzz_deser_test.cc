// Deterministic byte-mutation fuzzing of every untrusted deserialization
// surface: QueryVO, SpPackage, and PublicParams wire bytes — plus the
// on-disk package-store format — are truncated, bit-flipped, spliced, and
// garbled thousands of times per run, and every mutant must either parse
// cleanly (and then fail verification, not crash) or return kCorrupted.
// The CI ASan job re-runs this harness with a larger IMAGEPROOF_FUZZ_ITERS
// to lock in "no UB on hostile input" — the default here already exceeds
// 5000 mutated inputs across the surfaces.
//
// Everything is seeded: a failure reproduces with the same iteration index.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "common/varint_kernels.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "core/vo.h"
#include "storage/package_store.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

size_t FuzzIters() {
  // Total mutated inputs across all three surfaces (split evenly). The env
  // override lets CI crank the count without recompiling.
  if (const char* env = std::getenv("IMAGEPROOF_FUZZ_ITERS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 6000;
}

// One deterministic mutation of `base` (optionally splicing in bytes from
// `foreign`, a valid message of the same type from a different state).
Bytes Mutate(const Bytes& base, const Bytes& foreign, Rng& rng) {
  Bytes out = base;
  switch (rng.NextBounded(4)) {
    case 0: {  // truncate the tail
      if (!out.empty()) out.resize(rng.NextBounded(out.size()));
      break;
    }
    case 1: {  // flip 1..8 bits anywhere
      if (out.empty()) break;
      size_t flips = 1 + rng.NextBounded(8);
      for (size_t f = 0; f < flips; ++f) {
        out[rng.NextBounded(out.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      break;
    }
    case 2: {  // splice: valid prefix of one message + suffix of another
      if (out.empty() || foreign.empty()) break;
      size_t cut = rng.NextBounded(out.size());
      size_t fcut = rng.NextBounded(foreign.size());
      out.resize(cut);
      out.insert(out.end(), foreign.begin() + fcut, foreign.end());
      break;
    }
    default: {  // overwrite a random run with garbage
      if (out.empty()) break;
      size_t start = rng.NextBounded(out.size());
      size_t len = 1 + rng.NextBounded(32);
      for (size_t i = start; i < out.size() && i < start + len; ++i) {
        out[i] = static_cast<uint8_t>(rng.NextU64());
      }
      break;
    }
  }
  return out;
}

class FuzzDeserTest : public ::testing::Test {
 protected:
  // A deliberately tiny deployment: thousands of package deserializations
  // must stay cheap, and small messages make truncations/splices land on
  // interesting boundaries more often.
  void SetUp() override {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 40;
    cp.num_clusters = 32;
    cp.seed = 5;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 32;
    cbp.dims = 8;
    owner_ = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                   std::move(corpus), std::move(blobs));

    core::ServiceProvider sp(owner_.package.get());
    features_ = workload::GenerateQueryFeatures(owner_.package->codebook, 6,
                                                0.3, 17);
    vo_bytes_ = sp.Query(features_, 3).vo.Serialize();
    auto foreign_features =
        workload::GenerateQueryFeatures(owner_.package->codebook, 6, 0.3, 91);
    foreign_vo_bytes_ = sp.Query(foreign_features, 3).vo.Serialize();

    pkg_bytes_ = storage::SerializeSpPackage(*owner_.package);
    // The foreign package: same config, different corpus, so splices are
    // structurally plausible but semantically inconsistent.
    cp.seed = 6;
    auto corpus2 = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs2;
    for (const auto& [id, v] : corpus2) {
      blobs2[id] = workload::GenerateImageBlob(id);
    }
    auto owner2 = core::BuildDeployment(config,
                                        workload::GenerateCodebook(cbp),
                                        std::move(corpus2), std::move(blobs2));
    foreign_pkg_bytes_ = storage::SerializeSpPackage(*owner2.package);

    params_bytes_ = storage::SerializePublicParams(owner_.public_params);
    foreign_params_bytes_ = storage::SerializePublicParams(owner2.public_params);
  }

  core::OwnerOutput owner_;
  std::vector<std::vector<float>> features_;
  Bytes vo_bytes_, foreign_vo_bytes_;
  Bytes pkg_bytes_, foreign_pkg_bytes_;
  Bytes params_bytes_, foreign_params_bytes_;
};

TEST_F(FuzzDeserTest, MutatedQueryVoNeverCrashes) {
  Rng rng(101);
  core::Client client(owner_.public_params);
  size_t parsed = 0, rejected = 0;
  const size_t iters = FuzzIters() / 3;
  for (size_t t = 0; t < iters; ++t) {
    Bytes mutant = Mutate(vo_bytes_, foreign_vo_bytes_, rng);
    core::QueryVO vo;
    Status s = core::QueryVO::Deserialize(mutant, &vo);
    if (!s.ok()) {
      ++rejected;
      EXPECT_EQ(s.code(), StatusCode::kCorrupted)
          << "iteration " << t << ": " << s.message();
      continue;
    }
    ++parsed;
    // Structurally valid mutants must still be caught by verification
    // (unless the mutation was a no-op splice reproducing the original).
    auto verified = client.Verify(features_, 3, vo);
    if (mutant == vo_bytes_) {
      EXPECT_TRUE(verified.ok());
    }
  }
  // The mutator must exercise both parser rejection and the verify path.
  EXPECT_GT(rejected, iters / 10);
  EXPECT_GT(parsed, 0u);
}

TEST_F(FuzzDeserTest, MutatedPackageNeverCrashes) {
  Rng rng(202);
  size_t parsed = 0, rejected = 0;
  const size_t iters = FuzzIters() / 3;
  for (size_t t = 0; t < iters; ++t) {
    Bytes mutant = Mutate(pkg_bytes_, foreign_pkg_bytes_, rng);
    auto pkg = storage::DeserializeSpPackage(mutant);
    if (!pkg.ok()) {
      ++rejected;
      EXPECT_EQ(pkg.status().code(), StatusCode::kCorrupted)
          << "iteration " << t << ": " << pkg.status().message();
      continue;
    }
    ++parsed;
    // A package that parses is internally consistent (digests re-derived
    // from data); exercising the root digest must be safe.
    (void)(*pkg)->RootDigest();
  }
  EXPECT_GT(rejected, iters / 10);
}

TEST_F(FuzzDeserTest, MutatedPublicParamsNeverCrashes) {
  Rng rng(303);
  size_t rejected = 0;
  const size_t iters = FuzzIters() - 2 * (FuzzIters() / 3);
  for (size_t t = 0; t < iters; ++t) {
    Bytes mutant = Mutate(params_bytes_, foreign_params_bytes_, rng);
    auto params = storage::DeserializePublicParams(mutant);
    if (!params.ok()) {
      ++rejected;
      EXPECT_EQ(params.status().code(), StatusCode::kCorrupted)
          << "iteration " << t << ": " << params.status().message();
    }
  }
  EXPECT_GT(rejected, iters / 10);
}

// The on-disk store is a hostile-input surface like any other: a served
// package directory could be swapped by anyone with filesystem access.
// Mutants of a valid .ipk file must never crash Open — they either fail
// kCorrupted or (rare no-op mutations aside) open into a package whose
// mapped state still verifies as internally consistent.
TEST_F(FuzzDeserTest, MutatedStoreFileNeverCrashes) {
  std::string base_path = ::testing::TempDir() + "/fuzz_store_base.ipk";
  storage::WriteOptions wo;
  wo.page_size = 64;  // small file => mutations hit every layout region
  ASSERT_TRUE(storage::PackageStore::Write(base_path, *owner_.package, wo).ok());
  Bytes base;
  {
    FILE* f = std::fopen(base_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      base.insert(base.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  // A structurally plausible foreign file for splices: same page size,
  // different deployment — from the foreign interchange bytes.
  auto foreign_pkg = storage::DeserializeSpPackage(foreign_pkg_bytes_);
  ASSERT_TRUE(foreign_pkg.ok());
  std::string foreign_path = ::testing::TempDir() + "/fuzz_store_foreign.ipk";
  ASSERT_TRUE(
      storage::PackageStore::Write(foreign_path, **foreign_pkg, wo).ok());
  Bytes foreign;
  {
    FILE* f = std::fopen(foreign_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      foreign.insert(foreign.end(), buf, buf + n);
    }
    std::fclose(f);
  }

  storage::OpenOptions opts;
  opts.params = &owner_.public_params;
  opts.deep_verify = true;  // also drag every payload through its digest
  std::string mutant_path = ::testing::TempDir() + "/fuzz_store_mutant.ipk";
  Rng rng(404);
  size_t parsed = 0, rejected = 0;
  const size_t iters = FuzzIters() / 3;
  for (size_t t = 0; t < iters; ++t) {
    Bytes mutant = Mutate(base, foreign, rng);
    FILE* f = std::fopen(mutant_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!mutant.empty()) {
      ASSERT_EQ(std::fwrite(mutant.data(), 1, mutant.size(), f),
                mutant.size());
    }
    std::fclose(f);
    auto pkg = storage::PackageStore::Open(mutant_path, opts);
    if (!pkg.ok()) {
      ++rejected;
      EXPECT_EQ(pkg.status().code(), StatusCode::kCorrupted)
          << "iteration " << t << ": " << pkg.status().message();
      continue;
    }
    ++parsed;
    // An accepted mutant passed the full digest/signature chain, so it must
    // BE the original state.
    EXPECT_EQ((*pkg)->RootDigest(), owner_.package->RootDigest())
        << "iteration " << t;
  }
  EXPECT_GT(rejected, iters / 2);
  std::remove(base_path.c_str());
  std::remove(foreign_path.c_str());
  std::remove(mutant_path.c_str());
}

// Exhaustive single-byte coverage on top of the randomized sweeps: every
// strict prefix of the VO must be rejected (no truncation point may crash
// or verify), mirroring the serializer-level cap audit.
// ---------------------------------------------------------------------------
// Group-varint coding layer (common/varint_kernels.h): the compressed VO's
// integer substrate. Canonical round-trip over every small length and the
// byte-length boundary values, and rejection (kCorrupted, never a wild
// read) of every truncation.
// ---------------------------------------------------------------------------

TEST(GroupVarintFuzzTest, RoundTripAllLengthsAndBoundaryValues) {
  const uint32_t boundaries[] = {0,          1,          0xFFu,      0x100u,
                                 0xFFFFu,    0x10000u,   0xFFFFFFu,  0x1000000u,
                                 0xFFFFFFFFu};
  Rng rng(4242);
  for (size_t n = 0; n <= 70; ++n) {
    std::vector<uint32_t> values(n);
    for (size_t i = 0; i < n; ++i) {
      // Mix boundary values with random ones so every 2-bit length code
      // appears in every quad position across the sweep.
      values[i] = (rng.NextBounded(2) == 0)
                      ? boundaries[rng.NextBounded(std::size(boundaries))]
                      : static_cast<uint32_t>(rng.NextU64());
    }
    ByteWriter w;
    kern::GroupVarintEncode(values.data(), n, w);
    Bytes encoded = w.Take();
    EXPECT_EQ(encoded.size(), kern::GroupVarintEncodedBytes(values.data(), n));
    std::vector<uint32_t> decoded(n, 0xDEADBEEFu);
    ByteReader r(encoded);
    ASSERT_TRUE(kern::GroupVarintDecode(r, n, decoded.data()).ok())
        << "length " << n;
    EXPECT_EQ(r.remaining(), 0u) << "length " << n;
    EXPECT_EQ(decoded, values) << "length " << n;
  }
}

TEST(GroupVarintFuzzTest, EveryTruncationRejected) {
  Rng rng(777);
  std::vector<uint32_t> values(37);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextU64());
  ByteWriter w;
  kern::GroupVarintEncode(values.data(), values.size(), w);
  Bytes encoded = w.Take();
  std::vector<uint32_t> out(values.size());
  for (size_t len = 0; len < encoded.size(); ++len) {
    Bytes prefix(encoded.begin(), encoded.begin() + len);
    ByteReader r(prefix);
    Status s = kern::GroupVarintDecode(r, values.size(), out.data());
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " bytes decoded";
    if (!s.ok()) EXPECT_EQ(s.code(), StatusCode::kCorrupted);
  }
}

// Exhaustive single-bit-flip scan over a complete compressed VO: every
// flipped bit must yield a parse error or a verification failure — or, if
// it verifies (e.g. a bit with no semantic weight), the verified results
// must be identical to the honest ones. A flip may never be silently
// accepted with different results.
TEST_F(FuzzDeserTest, CompressedVoExhaustiveBitFlipScan) {
  core::ServiceProvider sp(owner_.package.get());
  core::ServeOptions serve;
  serve.compress_vo = true;
  core::QueryResponse resp;
  core::QueryControl control;
  ASSERT_TRUE(sp.Query(features_, 3, core::QueryParallelism{}, control, serve,
                       &resp)
                  .ok());
  Bytes honest = resp.vo.Serialize();
  core::Client client(owner_.public_params);
  auto honest_verified = client.Verify(features_, 3, resp.vo);
  ASSERT_TRUE(honest_verified.ok());
  std::vector<bovw::ImageId> honest_ids;
  for (const auto& si : honest_verified->topk) honest_ids.push_back(si.id);

  size_t rejected = 0, neutral = 0;
  for (size_t byte = 0; byte < honest.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutant = honest;
      mutant[byte] ^= static_cast<uint8_t>(1u << bit);
      core::QueryVO vo;
      if (!core::QueryVO::Deserialize(mutant, &vo).ok()) {
        ++rejected;
        continue;
      }
      auto verified = client.Verify(features_, 3, vo);
      if (!verified.ok()) {
        ++rejected;
        continue;
      }
      ++neutral;
      std::vector<bovw::ImageId> ids;
      for (const auto& si : verified->topk) ids.push_back(si.id);
      EXPECT_EQ(ids, honest_ids)
          << "bit " << bit << " of byte " << byte
          << " verified with different results";
    }
  }
  EXPECT_GT(rejected, 0u);
  // Nearly every bit of the VO is digest- or structure-bound; a handful of
  // semantically-inert bits (e.g. image payload bytes are covered by their
  // own signatures, so this stays 0 in practice) may verify identically,
  // but they can never be the majority.
  EXPECT_LT(neutral, rejected / 100 + 8);
}

TEST_F(FuzzDeserTest, MutatedCompressedVoNeverCrashes) {
  core::ServiceProvider sp(owner_.package.get());
  core::ServeOptions serve;
  serve.compress_vo = true;
  core::QueryResponse resp;
  core::QueryResponse foreign_resp;
  core::QueryControl control;
  ASSERT_TRUE(sp.Query(features_, 3, core::QueryParallelism{}, control, serve,
                       &resp)
                  .ok());
  auto foreign_features =
      workload::GenerateQueryFeatures(owner_.package->codebook, 6, 0.3, 92);
  ASSERT_TRUE(sp.Query(foreign_features, 3, core::QueryParallelism{}, control,
                       serve, &foreign_resp)
                  .ok());
  Bytes compressed = resp.vo.Serialize();
  Bytes foreign = foreign_resp.vo.Serialize();

  Rng rng(505);
  core::Client client(owner_.public_params);
  size_t parsed = 0, rejected = 0;
  const size_t iters = FuzzIters() / 3;
  for (size_t t = 0; t < iters; ++t) {
    Bytes mutant = Mutate(compressed, foreign, rng);
    core::QueryVO vo;
    Status s = core::QueryVO::Deserialize(mutant, &vo);
    if (!s.ok()) {
      ++rejected;
      EXPECT_EQ(s.code(), StatusCode::kCorrupted)
          << "iteration " << t << ": " << s.message();
      continue;
    }
    ++parsed;
    auto verified = client.Verify(features_, 3, vo);
    if (mutant == compressed) {
      EXPECT_TRUE(verified.ok());
    }
  }
  EXPECT_GT(rejected, iters / 10);
  EXPECT_GT(parsed, 0u);
}

TEST_F(FuzzDeserTest, EveryVoPrefixRejectedCleanly) {
  core::Client client(owner_.public_params);
  for (size_t len = 0; len < vo_bytes_.size(); ++len) {
    Bytes prefix(vo_bytes_.begin(), vo_bytes_.begin() + len);
    core::QueryVO vo;
    Status s = core::QueryVO::Deserialize(prefix, &vo);
    if (s.ok()) {
      EXPECT_FALSE(client.Verify(features_, 3, vo).ok())
          << "strict prefix of length " << len << " verified";
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorrupted);
    }
  }
}

}  // namespace
}  // namespace imageproof
