// Tests for the serialization and RNG utilities everything else builds on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"

namespace imageproof {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutF64(-1234.5678);
  w.PutF32(3.25f);

  ByteReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f64;
  float f32;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetF64(&f64).ok());
  ASSERT_TRUE(r.GetF32(&f32).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(f64, -1234.5678);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  ByteWriter w;
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  (1ULL << 32) - 1,
                                  1ULL << 32,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintEncodingLength) {
  ByteWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.PutVarint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(BytesTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  Bytes blob = {1, 2, 3, 4, 5};
  w.PutBlob(blob);
  w.PutString("hello");
  w.PutBlob({});
  ByteReader r(w.bytes());
  Bytes got_blob;
  std::string got_str;
  Bytes got_empty;
  ASSERT_TRUE(r.GetBlob(&got_blob).ok());
  ASSERT_TRUE(r.GetString(&got_str).ok());
  ASSERT_TRUE(r.GetBlob(&got_empty).ok());
  EXPECT_EQ(got_blob, blob);
  EXPECT_EQ(got_str, "hello");
  EXPECT_TRUE(got_empty.empty());
}

TEST(BytesTest, TruncatedInputsAreErrorsNotCrashes) {
  ByteWriter w;
  w.PutU32(42);
  Bytes data = w.bytes();
  data.pop_back();
  ByteReader r(data);
  uint32_t v;
  EXPECT_FALSE(r.GetU32(&v).ok());
}

TEST(BytesTest, OversizedBlobLengthRejected) {
  ByteWriter w;
  w.PutVarint(1000000);  // claims a million bytes
  w.PutU8(1);
  ByteReader r(w.bytes());
  Bytes out;
  EXPECT_FALSE(r.GetBlob(&out).ok());
}

TEST(BytesTest, MalformedVarintRejected) {
  // 11 continuation bytes exceed the 64-bit range.
  Bytes data(11, 0xFF);
  ByteReader r(data);
  uint64_t v;
  EXPECT_FALSE(r.GetVarint(&v).ok());
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.message(), "");
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(StatusTest, CodesAndToString) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kError), "ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorrupted), "CORRUPTED");
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(250)), "UNKNOWN");
}

TEST(StatusTest, NamedConstructors) {
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::Error("e").code(), StatusCode::kError);
  Status over = Status::Overloaded("full");
  EXPECT_EQ(over.code(), StatusCode::kOverloaded);
  EXPECT_EQ(over.message(), "full");
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Corrupted("bits").code(), StatusCode::kCorrupted);
}

TEST(StatusTest, WithCodePreservesAndSanitizes) {
  Status s = Status::WithCode(StatusCode::kCorrupted, "wrapped");
  EXPECT_EQ(s.code(), StatusCode::kCorrupted);
  EXPECT_EQ(s.message(), "wrapped");
  // A non-OK status can never carry kOk: WithCode maps it to kError.
  EXPECT_EQ(Status::WithCode(StatusCode::kOk, "bad").code(),
            StatusCode::kError);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad = Result<int>::Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, ZipfIsHeavyTailed) {
  Rng rng(33);
  const uint64_t n = 1000;
  int rank0 = 0, tail = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    uint64_t r = rng.NextZipf(n, 1.2);
    EXPECT_LT(r, n);
    if (r == 0) ++rank0;
    if (r >= n / 2) ++tail;
  }
  // Rank 0 must dominate any individual deep-tail rank.
  EXPECT_GT(rank0, samples / 50);
  EXPECT_LT(tail, samples / 4);
}

}  // namespace
}  // namespace imageproof
