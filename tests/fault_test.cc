// Fault-tolerance tests: load shedding and deadlines under overload,
// shutdown semantics, and injected storage/signing faults through the
// update path. The engine's contract under stress is "explicit errors,
// never indefinite blocking, never a published-but-invalid snapshot" —
// every test here drives one clause of that contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& fi = fault::FaultInjector::Global();
    fi.DisarmAll();
    // Synthetic sites for the unit tests below; arming an unregistered
    // name aborts (see UnknownSiteAbortsLoudly in resilience_test.cc).
    for (const char* site : {"site.a", "site.s", "site.p"}) {
      fi.RegisterSite(site);
    }
  }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectorTest, DisarmedNeverFires) {
  auto& fi = fault::FaultInjector::Global();
  EXPECT_FALSE(fi.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault::InjectFault("some.site"));
  EXPECT_EQ(fi.Fired("some.site"), 0u);
}

TEST_F(FaultInjectorTest, AlwaysFiresEveryHit) {
  auto& fi = fault::FaultInjector::Global();
  fi.ArmAlways("site.a");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fault::InjectFault("site.a"));
  EXPECT_EQ(fi.Hits("site.a"), 10u);
  EXPECT_EQ(fi.Fired("site.a"), 10u);
  // Other sites stay dark.
  EXPECT_FALSE(fault::InjectFault("site.b"));
}

TEST_F(FaultInjectorTest, ScriptedHitsFireExactlyOnSchedule) {
  auto& fi = fault::FaultInjector::Global();
  fi.ArmHits("site.s", {1, 3});
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::InjectFault("site.s"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, false}));
  EXPECT_EQ(fi.Fired("site.s"), 2u);
}

TEST_F(FaultInjectorTest, ProbabilityStreamIsDeterministic) {
  auto& fi = fault::FaultInjector::Global();
  auto run = [&] {
    fi.DisarmAll();
    fi.ArmProbability("site.p", 0.5, 42);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fault::InjectFault("site.p"));
    return fired;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b) << "same seed must replay the same firing pattern";
  size_t count = 0;
  for (bool f : a) count += f;
  EXPECT_GT(count, 16u);  // p=0.5 over 64 draws: wildly improbable bounds
  EXPECT_LT(count, 48u);
}

TEST_F(FaultInjectorTest, ByteFaultsFlipAndTruncate) {
  auto& fi = fault::FaultInjector::Global();
  Bytes original(256);
  for (size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<uint8_t>(i);
  }

  fi.ArmAlways("storage.serialize.bitflip");
  Bytes flipped = original;
  fault::InjectByteFaults(&flipped);
  ASSERT_EQ(flipped.size(), original.size());
  size_t diff_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t x = flipped[i] ^ original[i];
    while (x) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1u) << "bitflip site must flip exactly one bit";

  fi.DisarmAll();
  fi.ArmAlways("storage.serialize.truncate");
  Bytes truncated = original;
  fault::InjectByteFaults(&truncated);
  EXPECT_LT(truncated.size(), original.size());
  EXPECT_GE(truncated.size(), original.size() - 64);
}

// ---------------------------------------------------------------------------
// Engine fixture
// ---------------------------------------------------------------------------

struct EngineFixture {
  core::OwnerOutput owner;
  std::shared_ptr<const core::SpPackage> package;

  explicit EngineFixture(uint64_t seed = 7) {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 150;
    cp.num_clusters = 64;
    cp.seed = seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 64;
    cbp.dims = 8;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs));
    package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
  }

  std::vector<std::vector<float>> Features(uint64_t seed) const {
    return workload::GenerateQueryFeatures(package->codebook, 8, 0.3, seed);
  }
};

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Load shedding and deadlines
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, OverloadShedsWithExplicitStatus) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 4;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  // Pin the single worker inside one query so admission becomes
  // deterministic: one in flight, `queue_capacity` queued, the rest shed.
  fault::FaultInjector::Global().ArmLatencyMs("engine.query.latency", 150);

  auto features = fx.Features(1);
  std::vector<std::future<core::EngineResponse>> futures;
  futures.push_back(engine.Submit(features, 5));
  // Wait until the worker picked the first query up (live queue state, not
  // an obs metric, so this works in IMAGEPROOF_NO_METRICS builds too).
  while (engine.Stats().queue_depth > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  // Offered load at 2x queue capacity: capacity accepted, capacity shed.
  for (size_t i = 0; i < 2 * opts.queue_capacity; ++i) {
    futures.push_back(engine.Submit(fx.Features(2 + i), 5));
  }

  size_t served = 0, shed = 0;
  for (auto& f : futures) {
    core::EngineResponse r = f.get();
    if (r.ok()) {
      ++served;
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kOverloaded) << r.status.message();
      EXPECT_TRUE(r.response.vo.tree_vos.empty()) << "shed query carried a VO";
      ++shed;
    }
  }
  EXPECT_EQ(served, 1 + opts.queue_capacity);
  EXPECT_EQ(shed, opts.queue_capacity);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(engine.Stats().queries_shed, opts.queue_capacity);
  }

  // Accepted queries are byte-identical to the serial path: shedding is an
  // admission decision, never a change to what an admitted query computes.
  fault::FaultInjector::Global().DisarmAll();
  core::ServiceProvider sp(fx.package.get());
  Bytes serial = sp.Query(features, 5).vo.Serialize();
  core::EngineResponse again = engine.Submit(features, 5).get();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.response.vo.Serialize(), serial);
}

TEST_F(EngineFaultTest, DeadlineExpiredInQueue) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 8;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  fault::FaultInjector::Global().ArmLatencyMs("engine.query.latency", 120);

  // First query occupies the worker for >=120ms; the second, with a 5ms
  // deadline, expires while queued behind it.
  auto first = engine.Submit(fx.Features(1), 5);
  while (engine.Stats().queue_depth > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  core::SubmitOptions so;
  so.deadline = milliseconds(5);
  core::EngineResponse expired = engine.Submit(fx.Features(2), 5, so).get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded)
      << expired.status.message();
  EXPECT_TRUE(expired.response.vo.tree_vos.empty());
  EXPECT_TRUE(first.get().ok());
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(engine.Stats().deadline_exceeded, 1u);
  }
}

TEST_F(EngineFaultTest, QueryControlStopsBetweenStages) {
  EngineFixture fx;
  core::ServiceProvider sp(fx.package.get());
  // An already-expired control aborts before the first stage.
  core::QueryControl expired(core::QueryControl::Clock::now() -
                             milliseconds(1));
  core::QueryResponse out;
  Status s = sp.Query(fx.Features(3), 5, {}, expired, &out);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);

  // A generous deadline changes nothing about the produced bytes.
  core::QueryControl generous(core::QueryControl::Clock::now() +
                              std::chrono::seconds(60));
  core::QueryResponse with_deadline, without_deadline;
  ASSERT_TRUE(sp.Query(fx.Features(3), 5, {}, generous, &with_deadline).ok());
  ASSERT_TRUE(
      sp.Query(fx.Features(3), 5, {}, core::QueryControl(), &without_deadline)
          .ok());
  EXPECT_EQ(with_deadline.vo.Serialize(), without_deadline.vo.Serialize());
}

// ---------------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, SubmitAfterShutdownIsUnavailable) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  // A query accepted before shutdown is drained, not dropped.
  auto accepted = engine.Submit(fx.Features(1), 5);
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  EXPECT_TRUE(engine.stopped());
  EXPECT_TRUE(accepted.get().ok());

  core::EngineResponse rejected = engine.Submit(fx.Features(2), 5).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rejected.snapshot, nullptr);

  auto update = engine.InsertImage(fx.owner.private_key, 50000,
                                   bovw::BovwVector{{{1, 2}}}, Bytes{1, 2, 3});
  EXPECT_FALSE(update.ok());
  EXPECT_EQ(update.status().code(), StatusCode::kUnavailable);

  core::EngineStats stats = engine.Stats();
  EXPECT_TRUE(stats.stopped);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(stats.rejected_unavailable, 2u);
  }
}

TEST_F(EngineFaultTest, ConcurrentShutdownAndSubmitsNeverHang) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 4;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<int> resolved{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int q = 0; q < 5; ++q) {
        // Every future must resolve — served, shed, or unavailable.
        (void)engine.Submit(fx.Features(t * 10 + q), 5).get();
        ++resolved;
      }
    });
  }
  threads.emplace_back([&] {
    while (!go.load()) std::this_thread::yield();
    engine.Shutdown();
  });
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(resolved.load(), 15);
}

// ---------------------------------------------------------------------------
// Update faults: retry, rollback, and isolation from readers
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, TransientCloneFaultIsRetried) {
  EngineFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params, {});

  // Fail the first clone attempt only; the retry must succeed.
  fault::FaultInjector::Global().ArmHits("engine.update.clone", {0});
  workload::CorpusParams qp;
  qp.num_clusters = 64;
  auto ins = engine.InsertImage(fx.owner.private_key, 40000,
                                workload::GenerateQueryBovw(qp, 10, 1),
                                workload::GenerateImageBlob(40000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();
  EXPECT_EQ(engine.CurrentSnapshot()->version, 1u);
  if (obs::kMetricsEnabled) {
    core::EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.update_retries, 1u);
    EXPECT_EQ(stats.updates_applied, 1u);
    EXPECT_EQ(stats.update_failures, 0u);
  }
}

TEST_F(EngineFaultTest, StorageBitFlipRollsBackThenRecovers) {
  EngineFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params, {});
  auto& fi = fault::FaultInjector::Global();

  // Every serialize emits one flipped bit: all attempts fail, nothing is
  // published, and the old snapshot keeps serving verifiable responses.
  fi.ArmAlways("storage.serialize.bitflip");
  workload::CorpusParams qp;
  qp.num_clusters = 64;
  auto ins = engine.InsertImage(fx.owner.private_key, 40001,
                                workload::GenerateQueryBovw(qp, 10, 2),
                                workload::GenerateImageBlob(40001));
  EXPECT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), StatusCode::kCorrupted)
      << ins.status().message();
  EXPECT_EQ(engine.CurrentSnapshot()->version, 0u) << "faulty update published";
  EXPECT_GE(fi.Fired("storage.serialize.bitflip"),
            static_cast<uint64_t>(engine.options().update_max_attempts));

  auto features = fx.Features(9);
  core::EngineResponse resp = engine.Submit(features, 5).get();
  ASSERT_TRUE(resp.ok());
  core::Client client(resp.snapshot->params);
  EXPECT_TRUE(client.Verify(features, 5, resp.response.vo).ok())
      << "rolled-back update corrupted the served snapshot";

  // Fault cleared: the same update now applies.
  fi.DisarmAll();
  ins = engine.InsertImage(fx.owner.private_key, 40001,
                           workload::GenerateQueryBovw(qp, 10, 2),
                           workload::GenerateImageBlob(40001));
  ASSERT_TRUE(ins.ok()) << ins.status().message();
  EXPECT_EQ(engine.CurrentSnapshot()->version, 1u);
}

TEST_F(EngineFaultTest, TruncationFaultRollsBack) {
  EngineFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params, {});
  fault::FaultInjector::Global().ArmAlways("storage.serialize.truncate");

  auto del = engine.DeleteImage(fx.owner.private_key, 1);
  EXPECT_FALSE(del.ok());
  EXPECT_EQ(del.status().code(), StatusCode::kCorrupted)
      << del.status().message();
  EXPECT_EQ(engine.CurrentSnapshot()->version, 0u);
}

TEST_F(EngineFaultTest, SigningFaultIsCaughtBeforePublish) {
  EngineFixture fx;
  core::QueryEngine engine(fx.package, fx.owner.public_params, {});

  // Corrupt the fresh signature on the first attempt only: the pre-publish
  // verification must catch it (rollback), and the retry must publish a
  // snapshot whose signature verifies.
  fault::FaultInjector::Global().ArmHits("engine.update.sign", {0});
  workload::CorpusParams qp;
  qp.num_clusters = 64;
  auto ins = engine.InsertImage(fx.owner.private_key, 40002,
                                workload::GenerateQueryBovw(qp, 10, 3),
                                workload::GenerateImageBlob(40002));
  ASSERT_TRUE(ins.ok()) << ins.status().message();
  ASSERT_EQ(engine.CurrentSnapshot()->version, 1u);

  auto features = fx.Features(11);
  core::EngineResponse resp = engine.Submit(features, 5).get();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.snapshot->version, 1u);
  core::Client client(resp.snapshot->params);
  EXPECT_TRUE(client.Verify(features, 5, resp.response.vo).ok());
}

TEST_F(EngineFaultTest, QueriesRacingFaultyUpdatesAlwaysVerify) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  // Probabilistic storage faults plus update latency, racing readers.
  auto& fi = fault::FaultInjector::Global();
  fi.ArmProbability("storage.serialize.bitflip", 0.4, 1234);
  fi.ArmLatencyMs("engine.update.latency", 2);

  std::atomic<int> verify_failures{0};
  std::atomic<int> updates_applied{0};
  std::thread writer([&] {
    workload::CorpusParams qp;
    qp.num_clusters = 64;
    for (int u = 0; u < 6; ++u) {
      bovw::ImageId id = 60000 + u;
      auto ins = engine.InsertImage(fx.owner.private_key, id,
                                    workload::GenerateQueryBovw(qp, 10, 50 + u),
                                    workload::GenerateImageBlob(id));
      if (ins.ok()) ++updates_applied;
      // Failed attempts rolled back; either way the published snapshot
      // must stay serveable, which the readers assert.
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      for (int q = 0; q < 8; ++q) {
        auto features = fx.Features(r * 100 + q);
        core::EngineResponse resp = engine.Submit(features, 5).get();
        if (!resp.ok()) continue;  // shed/deadline: no VO to check
        core::Client client(resp.snapshot->params);
        if (!client.Verify(features, 5, resp.response.vo).ok()) {
          ++verify_failures;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(verify_failures.load(), 0)
      << "a query served across faulty updates failed verification";
  EXPECT_EQ(engine.CurrentSnapshot()->version,
            static_cast<uint64_t>(updates_applied.load()));
}

}  // namespace
}  // namespace imageproof
