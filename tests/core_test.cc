// End-to-end tests of the complete ImageProof scheme: owner -> SP -> client
// across all four evaluated configurations, correctness against the
// brute-force oracle, and rejection of every attack class in Theorem 1.

#include <gtest/gtest.h>

#include <map>

#include "core/adversary.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

namespace imageproof::core {
namespace {

struct Deployment {
  workload::CorpusParams corpus_params;
  workload::CodebookParams codebook_params;
  OwnerOutput owner;
  std::unique_ptr<ServiceProvider> sp;
  std::unique_ptr<Client> client;

  explicit Deployment(Config config, size_t num_images = 300,
                      size_t num_clusters = 128, size_t dims = 16,
                      uint64_t seed = 1) {
    config.rsa_bits = 512;  // fast test keys
    corpus_params.num_images = num_images;
    corpus_params.num_clusters = num_clusters;
    corpus_params.min_distinct = 5;
    corpus_params.max_distinct = 20;
    corpus_params.seed = seed;
    codebook_params.num_clusters = num_clusters;
    codebook_params.dims = dims;
    codebook_params.seed = seed + 1;

    auto corpus = workload::GenerateCorpus(corpus_params);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    owner = BuildDeployment(config, workload::GenerateCodebook(codebook_params),
                            std::move(corpus), std::move(blobs), seed + 2);
    sp = std::make_unique<ServiceProvider>(owner.package.get());
    client = std::make_unique<Client>(owner.public_params);
  }

  std::vector<std::vector<float>> Features(size_t n, uint64_t seed) const {
    return workload::GenerateQueryFeatures(owner.package->codebook, n,
                                           /*noise=*/1.0, seed);
  }
};

class SchemeTest : public ::testing::TestWithParam<const char*> {
 public:
  static Config ConfigFor(const std::string& name) {
    if (name == "Baseline") return Config::Baseline();
    if (name == "ImageProof") return Config::ImageProof();
    if (name == "OptimizedBovw") return Config::OptimizedBovw();
    return Config::OptimizedBoth();
  }
};

TEST_P(SchemeTest, HonestRoundTripVerifies) {
  Deployment d(ConfigFor(GetParam()));
  for (uint64_t qs = 0; qs < 3; ++qs) {
    auto features = d.Features(30, 100 + qs);
    QueryResponse resp = d.sp->Query(features, 10);
    auto verified = d.client->Verify(features, 10, resp.vo);
    ASSERT_TRUE(verified.ok()) << GetParam() << ": "
                               << verified.status().message();
    // Claimed and verified result sets agree.
    ASSERT_EQ(verified->topk.size(), resp.topk.size());
    for (size_t i = 0; i < resp.topk.size(); ++i) {
      EXPECT_EQ(verified->topk[i].id, resp.topk[i].id);
    }
    // Verified images round-trip the owner's payloads.
    ASSERT_EQ(verified->images.size(), verified->topk.size());
    for (size_t i = 0; i < verified->topk.size(); ++i) {
      EXPECT_EQ(verified->images[i],
                workload::GenerateImageBlob(verified->topk[i].id));
    }
  }
}

TEST_P(SchemeTest, ResultsMatchBruteForceOracle) {
  Deployment d(ConfigFor(GetParam()));
  // Build the ground truth from the SP's own BoVW encoding of the query:
  // encode via exact nearest clusters (what the authenticated pipeline
  // computes) and score with the corpus weights.
  auto features = d.Features(40, 777);
  QueryResponse resp = d.sp->Query(features, 10);

  std::vector<bovw::ClusterId> assignment;
  for (const auto& f : features) {
    double best = 0;
    int32_t best_c = -1;
    for (size_t c = 0; c < d.owner.package->codebook.size(); ++c) {
      double dist = ann::SquaredL2(f.data(), d.owner.package->codebook.row(c),
                                   d.owner.package->codebook.dims());
      if (best_c < 0 || dist < best) {
        best = dist;
        best_c = static_cast<int32_t>(c);
      }
    }
    assignment.push_back(static_cast<bovw::ClusterId>(best_c));
  }
  bovw::BovwVector query_bovw = bovw::CountAssignments(assignment);
  std::vector<bovw::BovwVector> vecs;
  for (const auto& [id, v] : d.owner.package->corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(
      d.owner.package->codebook.size(), vecs);
  auto expected = bovw::BruteForceTopK(d.owner.package->corpus, query_bovw,
                                       weights, 10);
  while (!expected.empty() && expected.back().score <= 0) expected.pop_back();

  ASSERT_EQ(resp.topk.size(), expected.size()) << GetParam();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resp.topk[i].id, expected[i].id) << GetParam() << " rank " << i;
    EXPECT_NEAR(resp.topk[i].score, expected[i].score, 1e-9);
  }
}

TEST_P(SchemeTest, VoSerializationRoundTrip) {
  Deployment d(ConfigFor(GetParam()));
  auto features = d.Features(20, 55);
  QueryResponse resp = d.sp->Query(features, 5);
  Bytes wire = resp.vo.Serialize();
  QueryVO back;
  ASSERT_TRUE(QueryVO::Deserialize(wire, &back).ok());
  auto verified = d.client->Verify(features, 5, back);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(back.TotalBytes(), resp.vo.TotalBytes());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeTest,
                         ::testing::Values("Baseline", "ImageProof",
                                           "OptimizedBovw", "OptimizedBoth"));

// ---------------------------------------------------------------------------
// Attacks (Theorem 1 cases) — run under the full ImageProof scheme.
// ---------------------------------------------------------------------------

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() : d_(Config::ImageProof()) {
    features_ = d_.Features(25, 4242);
    honest_ = d_.sp->Query(features_, 10);
    EXPECT_TRUE(d_.client->Verify(features_, 10, honest_.vo).ok());
  }

  bool Accepts(const QueryVO& vo) {
    return d_.client->Verify(features_, 10, vo).ok();
  }

  Deployment d_;
  std::vector<std::vector<float>> features_;
  QueryResponse honest_;
};

TEST_F(AttackTest, FakeImageDataRejected) {
  EXPECT_FALSE(Accepts(TamperImageData(honest_).vo));
}

TEST_F(AttackTest, ForgedSignatureRejected) {
  EXPECT_FALSE(Accepts(TamperSignature(honest_).vo));
}

TEST_F(AttackTest, SwappedResultRejected) {
  // Substitute an image that exists but did not make the top-k.
  bovw::ImageId sub = 0;
  std::set<bovw::ImageId> topk;
  for (const auto& si : honest_.topk) topk.insert(si.id);
  while (topk.count(sub)) ++sub;
  EXPECT_FALSE(Accepts(TamperSwapResult(honest_, sub).vo));
}

TEST_F(AttackTest, DroppedResultRejected) {
  EXPECT_FALSE(Accepts(TamperDropResult(honest_).vo));
}

TEST_F(AttackTest, InvVoTamperingRejected) {
  for (size_t pos : {0u, 7u, 101u, 5003u}) {
    EXPECT_FALSE(Accepts(TamperInvVo(honest_, pos).vo)) << pos;
  }
}

TEST_F(AttackTest, RevealTamperingRejected) {
  for (size_t pos : {1u, 13u, 247u}) {
    EXPECT_FALSE(Accepts(TamperRevealSection(honest_, pos).vo)) << pos;
  }
}

TEST_F(AttackTest, TreeVoTamperingRejected) {
  for (size_t tree : {0u, 3u, 7u}) {
    EXPECT_FALSE(Accepts(TamperTreeVo(honest_, tree, 31).vo)) << tree;
  }
}

TEST_F(AttackTest, ThresholdTamperingRejected) {
  // Growing a threshold makes the client expect subtrees the VO pruned;
  // shrinking it makes revealed subtrees look gratuitous. Both must fail.
  EXPECT_FALSE(Accepts(TamperThreshold(honest_, 0, 1e9).vo));
  EXPECT_FALSE(Accepts(TamperThreshold(honest_, 0, 1e-12).vo));
}

TEST_F(AttackTest, WrongKRejected) {
  // Claiming the honest k=10 VO answers k=3 must fail (too many results).
  EXPECT_FALSE(d_.client->Verify(features_, 3, honest_.vo).ok());
}

TEST_F(AttackTest, RandomBitFlipsNeverChangeAcceptedResults) {
  // A flip may land somewhere semantically neutral (e.g., the low mantissa
  // bits of a threshold, which the SP chooses freely anyway). What must
  // never happen is that a flipped VO verifies AND yields a different
  // result set or different payloads.
  auto honest_verified = d_.client->Verify(features_, 10, honest_.vo);
  ASSERT_TRUE(honest_verified.ok());
  Bytes wire = honest_.vo.Serialize();
  Rng rng(99);
  int accepted_with_changes = 0;
  for (int t = 0; t < 60; ++t) {
    Bytes tampered = wire;
    tampered[rng.NextBounded(tampered.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    QueryVO vo;
    if (!QueryVO::Deserialize(tampered, &vo).ok()) continue;
    auto verified = d_.client->Verify(features_, 10, vo);
    if (!verified.ok()) continue;
    bool same = verified->topk.size() == honest_verified->topk.size() &&
                verified->images == honest_verified->images;
    if (same) {
      for (size_t i = 0; i < verified->topk.size(); ++i) {
        if (verified->topk[i].id != honest_verified->topk[i].id) same = false;
      }
    }
    if (!same) ++accepted_with_changes;
  }
  EXPECT_EQ(accepted_with_changes, 0);
}

// ---------------------------------------------------------------------------
// Cross-scheme agreement: all four schemes must return the same results.
// ---------------------------------------------------------------------------

TEST(CrossSchemeTest, AllSchemesAgreeOnResults) {
  std::map<std::string, std::vector<bovw::ImageId>> results;
  for (const char* name :
       {"Baseline", "ImageProof", "OptimizedBovw", "OptimizedBoth"}) {
    Config c = SchemeTest::ConfigFor(name);
    Deployment d(c, 200, 96, 12, /*seed=*/7);
    auto features = d.Features(25, 31337);
    QueryResponse resp = d.sp->Query(features, 8);
    auto verified = d.client->Verify(features, 8, resp.vo);
    ASSERT_TRUE(verified.ok()) << name << ": " << verified.status().message();
    std::vector<bovw::ImageId> ids;
    for (const auto& si : resp.topk) ids.push_back(si.id);
    results[name] = ids;
  }
  EXPECT_EQ(results["Baseline"], results["ImageProof"]);
  EXPECT_EQ(results["ImageProof"], results["OptimizedBovw"]);
  EXPECT_EQ(results["OptimizedBovw"], results["OptimizedBoth"]);
}

// Optimization A shrinks the BoVW VO relative to plain ImageProof.
TEST(CrossSchemeTest, OptimizationAShrinksBovwVo) {
  Deployment plain(Config::ImageProof(), 200, 128, 32, 9);
  Deployment opt(Config::OptimizedBovw(), 200, 128, 32, 9);
  auto features = plain.Features(40, 555);
  size_t plain_bytes = plain.sp->Query(features, 10).stats.bovw_vo_bytes;
  size_t opt_bytes = opt.sp->Query(features, 10).stats.bovw_vo_bytes;
  EXPECT_LT(opt_bytes, plain_bytes);
}

// Node sharing shrinks the BoVW VO relative to Baseline.
TEST(CrossSchemeTest, NodeSharingShrinksBovwVo) {
  Config baseline_cfg = Config::Baseline();
  Config shared_cfg = Config::ImageProof();
  shared_cfg.with_filters = false;  // isolate the sharing effect
  Deployment baseline(baseline_cfg, 150, 128, 16, 11);
  Deployment shared(shared_cfg, 150, 128, 16, 11);
  auto features = baseline.Features(40, 666);
  size_t base_bytes = baseline.sp->Query(features, 10).stats.bovw_vo_bytes;
  size_t shared_bytes = shared.sp->Query(features, 10).stats.bovw_vo_bytes;
  EXPECT_LT(shared_bytes, base_bytes);
}

// ImageProof pops fewer postings than Baseline (the cuckoo-filter win).
TEST(CrossSchemeTest, FiltersReducePoppedPostings) {
  Deployment baseline(Config::Baseline(), 400, 96, 12, 13);
  Deployment imageproof(Config::ImageProof(), 400, 96, 12, 13);
  size_t base_popped = 0, ip_popped = 0;
  for (uint64_t qs = 0; qs < 3; ++qs) {
    auto features = baseline.Features(30, 700 + qs);
    base_popped += baseline.sp->Query(features, 10).stats.inv.popped_postings;
    ip_popped += imageproof.sp->Query(features, 10).stats.inv.popped_postings;
  }
  EXPECT_LT(ip_popped, base_popped);
}

TEST(DeploymentTest, EmptyQueryYieldsNoResults) {
  Deployment d(Config::ImageProof(), 100, 64, 8, 15);
  QueryResponse resp = d.sp->Query({}, 5);
  EXPECT_TRUE(resp.topk.empty());
  auto verified = d.client->Verify({}, 5, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

TEST(DeploymentTest, KLargerThanCorpus) {
  Deployment d(Config::ImageProof(), 20, 64, 8, 17);
  auto features = d.Features(10, 888);
  QueryResponse resp = d.sp->Query(features, 500);
  EXPECT_LE(resp.topk.size(), 20u);
  auto verified = d.client->Verify(features, 500, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

}  // namespace
}  // namespace imageproof::core
