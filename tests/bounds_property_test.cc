// Property tests for the bounds engine: on randomized corpora and pop
// sequences, the engine's incremental s_k^L / pi^U / S^U values must match
// an independent from-scratch evaluation of Eqs. (9), (11), (12) over the
// current revealed state — and the soundness properties of Lemma 1 must
// hold against ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "invindex/bounds.h"
#include "invindex/merkle_inv_index.h"
#include "workload/synthetic.h"

namespace imageproof::invindex {
namespace {

struct RandomState {
  // Ground-truth lists: (cluster, q_impact, postings sorted by impact desc).
  struct ListTruth {
    ClusterId cluster;
    double q_impact;
    std::vector<std::pair<ImageId, double>> postings;
    size_t popped = 0;  // prefix length revealed so far
  };
  std::vector<ListTruth> lists;

  static RandomState Make(uint64_t seed, size_t num_lists, size_t num_images) {
    Rng rng(seed);
    RandomState st;
    for (size_t li = 0; li < num_lists; ++li) {
      ListTruth lt;
      lt.cluster = static_cast<ClusterId>(li);
      lt.q_impact = 0.1 + rng.NextDouble();
      size_t len = 1 + rng.NextBounded(30);
      std::set<ImageId> used;
      for (size_t j = 0; j < len; ++j) {
        ImageId id = rng.NextBounded(num_images);
        if (!used.insert(id).second) continue;
        lt.postings.emplace_back(id, 0.01 + rng.NextDouble());
      }
      std::sort(lt.postings.begin(), lt.postings.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      st.lists.push_back(std::move(lt));
    }
    return st;
  }
};

// Builds a filters-enabled engine over the state and replays its pops.
BoundsEngine BuildEngine(RandomState& st, bool use_filters) {
  cuckoo::CuckooParams params = cuckoo::CuckooParams::ForMaxItems(64);
  std::vector<BoundsList> bl;
  for (const auto& lt : st.lists) {
    BoundsList b;
    b.cluster = lt.cluster;
    b.q_impact = lt.q_impact;
    if (use_filters && lt.popped < lt.postings.size()) {
      cuckoo::CuckooFilter filter(params);
      for (const auto& [id, impact] : lt.postings) {
        EXPECT_TRUE(filter.Insert(id));
      }
      b.filter = std::move(filter);
    }
    bl.push_back(std::move(b));
  }
  BoundsEngine engine(std::move(bl), use_filters);
  for (size_t li = 0; li < st.lists.size(); ++li) {
    const auto& lt = st.lists[li];
    for (size_t j = 0; j < lt.popped; ++j) {
      EXPECT_TRUE(
          engine.AddPopped(li, lt.postings[j].first, lt.postings[j].second)
              .ok());
    }
    if (lt.popped >= lt.postings.size()) engine.MarkExhausted(li);
  }
  return engine;
}

// Reference Eq. (9): S^L from the revealed prefixes only.
std::map<ImageId, double> ReferenceScores(const RandomState& st) {
  std::map<ImageId, double> scores;
  for (const auto& lt : st.lists) {
    for (size_t j = 0; j < lt.popped; ++j) {
      scores[lt.postings[j].first] += lt.q_impact * lt.postings[j].second;
    }
  }
  return scores;
}

// Reference remaining-impact cap of a list.
double ReferenceCap(const RandomState::ListTruth& lt) {
  if (lt.popped >= lt.postings.size()) return 0.0;
  if (lt.popped == 0) return std::numeric_limits<double>::infinity();
  return lt.postings[lt.popped - 1].second;
}

// Ground-truth remaining contribution of image `id` (what S^U must bound).
double TrueRemaining(const RandomState& st, ImageId id) {
  double acc = 0;
  for (const auto& lt : st.lists) {
    for (size_t j = lt.popped; j < lt.postings.size(); ++j) {
      if (lt.postings[j].first == id) acc += lt.q_impact * lt.postings[j].second;
    }
  }
  return acc;
}

class BoundsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundsPropertyTest, EngineMatchesReferenceAndIsSound) {
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  RandomState st = RandomState::Make(seed, 3 + rng.NextBounded(10), 60);

  // Random pop schedule: several rounds of popping random prefixes.
  for (int round = 0; round < 4; ++round) {
    for (auto& lt : st.lists) {
      size_t extra = rng.NextBounded(4);
      lt.popped = std::min(lt.postings.size(), lt.popped + extra);
    }
    BoundsEngine engine = BuildEngine(st, /*use_filters=*/true);

    // S^L matches Eq. (9) exactly for every revealed image.
    auto ref_scores = ReferenceScores(st);
    EXPECT_EQ(engine.Scores().size(), ref_scores.size());
    for (const auto& [id, score] : ref_scores) {
      EXPECT_NEAR(engine.ScoreOf(id), score, 1e-12) << "image " << id;
    }

    // Caps match.
    for (size_t li = 0; li < st.lists.size(); ++li) {
      double ref = ReferenceCap(st.lists[li]);
      if (std::isinf(ref)) {
        EXPECT_TRUE(std::isinf(engine.Cap(li)));
      } else {
        EXPECT_DOUBLE_EQ(engine.Cap(li), ref);
      }
    }

    bool all_capped = true;
    for (size_t li = 0; li < st.lists.size(); ++li) {
      if (std::isinf(engine.Cap(li))) all_capped = false;
    }
    if (!all_capped) continue;  // bounds are +inf; trivially sound

    // Soundness of S^U (Eq. 11): for every image (revealed or not), true
    // score <= S^U.
    std::set<ImageId> all_images;
    for (const auto& lt : st.lists) {
      for (const auto& [id, impact] : lt.postings) all_images.insert(id);
    }
    double max_unseen_true = 0;
    for (ImageId id : all_images) {
      double truth = engine.ScoreOf(id) + TrueRemaining(st, id);
      EXPECT_LE(truth, engine.SUpper(id) + 1e-12) << "image " << id;
      if (!ref_scores.contains(id)) {
        max_unseen_true = std::max(max_unseen_true, truth);
      }
    }
    // Soundness of pi^U (Eq. 12 / Lemma 1): bounds every unseen image.
    EXPECT_LE(max_unseen_true, engine.PiUpper() + 1e-12);

    // The baseline (loose) bounds dominate the filter-tightened ones.
    BoundsEngine loose = BuildEngine(st, /*use_filters=*/false);
    for (ImageId id : all_images) {
      EXPECT_LE(engine.SUpper(id), loose.SUpper(id) + 1e-12);
    }
    EXPECT_LE(engine.PiUpper(), loose.PiUpper() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace imageproof::invindex
