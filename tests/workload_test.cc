// Tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include <set>

#include "workload/synthetic.h"

namespace imageproof::workload {
namespace {

TEST(CorpusTest, ShapeAndDeterminism) {
  CorpusParams params;
  params.num_images = 100;
  params.num_clusters = 50;
  params.min_distinct = 5;
  params.max_distinct = 15;
  auto a = GenerateCorpus(params);
  auto b = GenerateCorpus(params);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, i);
    EXPECT_EQ(a[i].second.entries, b[i].second.entries);
    EXPECT_FALSE(a[i].second.entries.empty());
    // Sorted by cluster, within range, frequencies positive & capped.
    for (size_t j = 0; j < a[i].second.entries.size(); ++j) {
      auto [c, f] = a[i].second.entries[j];
      EXPECT_LT(c, 50u);
      EXPECT_GE(f, 1u);
      if (j > 0) {
        EXPECT_GT(c, a[i].second.entries[j - 1].first);
      }
    }
  }
}

TEST(CorpusTest, SkewedButCappedPopularity) {
  CorpusParams params;
  params.num_images = 2000;
  params.num_clusters = 800;
  params.zipf_s = 1.3;
  params.max_list_fraction = 0.08;
  auto corpus = GenerateCorpus(params);
  std::vector<size_t> list_len(800, 0);
  for (const auto& [id, v] : corpus) {
    for (auto& [c, f] : v.entries) ++list_len[c];
  }
  size_t max_len = *std::max_element(list_len.begin(), list_len.end());
  size_t nonzero = 0;
  double avg = 0;
  for (size_t l : list_len) {
    nonzero += (l > 0);
    avg += l;
  }
  avg /= nonzero;
  // Skewed (hot lists well above average) ...
  EXPECT_GT(max_len, avg * 2);
  // ... but no stop words: the popularity cap holds (small slack for the
  // base-scene words added before per-image accounting).
  EXPECT_LE(max_len, static_cast<size_t>(0.08 * 2000 * 1.3));
}

TEST(CorpusTest, GroupMatesShareWords) {
  CorpusParams params;
  params.num_images = 100;
  params.num_clusters = 400;
  params.group_size = 4;
  auto corpus = GenerateCorpus(params);
  // Images 0..3 form a group; 0 and 4 do not.
  auto overlap = [&](int a, int b) {
    std::set<bovw::ClusterId> wa, shared;
    for (auto& [c, f] : corpus[a].second.entries) wa.insert(c);
    for (auto& [c, f] : corpus[b].second.entries) {
      if (wa.count(c)) shared.insert(c);
    }
    return shared.size();
  };
  size_t in_group = overlap(0, 1) + overlap(0, 2) + overlap(1, 2);
  size_t cross_group = overlap(0, 4) + overlap(1, 5) + overlap(2, 6);
  EXPECT_GT(in_group, cross_group + 6);
}

TEST(QueryFromImageTest, CorrelatedWithSource) {
  CorpusParams params;
  params.num_images = 50;
  params.num_clusters = 500;
  auto corpus = GenerateCorpus(params);
  const auto& source = corpus[10].second;
  bovw::BovwVector q = QueryFromImage(params, source, 100, 0.2, 77);
  uint32_t total = 0, on_source = 0;
  for (auto& [c, f] : q.entries) {
    total += f;
    if (source.FrequencyOf(c) > 0) on_source += f;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_GT(on_source, 60u) << "most features quantize to source words";
}

TEST(FeaturesFromBovwTest, EncodesBackToSourceWords) {
  CodebookParams cbp;
  cbp.num_clusters = 100;
  cbp.dims = 16;
  auto codebook = GenerateCodebook(cbp);
  bovw::BovwVector source;
  source.entries = {{3, 5}, {17, 2}, {40, 1}};
  auto features = FeaturesFromBovw(codebook, source, 60, 0.1, 0.0, 5);
  EXPECT_EQ(features.size(), 60u);
  // Every feature should be nearest to one of the source clusters.
  size_t on_source = 0;
  for (const auto& f : features) {
    double best = 1e30;
    size_t best_c = 0;
    for (size_t c = 0; c < codebook.size(); ++c) {
      double d = ann::SquaredL2(f.data(), codebook.row(c), 16);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    if (best_c == 3 || best_c == 17 || best_c == 40) ++on_source;
  }
  EXPECT_GT(on_source, 55u);
}

TEST(QueryTest, OverlapsCorpusClusters) {
  CorpusParams params;
  params.num_images = 200;
  params.num_clusters = 100;
  auto corpus = GenerateCorpus(params);
  std::set<bovw::ClusterId> corpus_clusters;
  for (const auto& [id, v] : corpus) {
    for (auto& [c, f] : v.entries) corpus_clusters.insert(c);
  }
  bovw::BovwVector q = GenerateQueryBovw(params, 50, 9);
  EXPECT_FALSE(q.entries.empty());
  size_t overlapping = 0;
  uint32_t total_features = 0;
  for (auto& [c, f] : q.entries) {
    if (corpus_clusters.count(c)) ++overlapping;
    total_features += f;
  }
  EXPECT_EQ(total_features, 50u) << "query feature count preserved";
  EXPECT_GT(overlapping, q.entries.size() / 2);
}

TEST(CodebookTest, ShapeAndDeterminism) {
  CodebookParams params;
  params.num_clusters = 64;
  params.dims = 32;
  auto a = GenerateCodebook(params);
  auto b = GenerateCodebook(params);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a.dims(), 32u);
  EXPECT_EQ(a.RowVec(7), b.RowVec(7));
}

TEST(QueryFeaturesTest, NearCodebookCenters) {
  CodebookParams params;
  params.num_clusters = 32;
  params.dims = 16;
  params.scale = 20.0;
  auto codebook = GenerateCodebook(params);
  auto features = GenerateQueryFeatures(codebook, 40, /*noise=*/0.5, 11);
  ASSERT_EQ(features.size(), 40u);
  for (const auto& f : features) {
    ASSERT_EQ(f.size(), 16u);
    // Within a few noise-sigmas of SOME center.
    double best = 1e30;
    for (size_t c = 0; c < codebook.size(); ++c) {
      best = std::min(best, ann::SquaredL2(f.data(), codebook.row(c), 16));
    }
    EXPECT_LT(best, 16 * 0.5 * 0.5 * 9);
  }
}

TEST(ImageBlobTest, DeterministicPerId) {
  EXPECT_EQ(GenerateImageBlob(7), GenerateImageBlob(7));
  EXPECT_NE(GenerateImageBlob(7), GenerateImageBlob(8));
  EXPECT_EQ(GenerateImageBlob(3, 128).size(), 128u);
}

}  // namespace
}  // namespace imageproof::workload
