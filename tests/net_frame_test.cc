// Wire-format lockdown for the network protocol: committed golden frame
// encodings (the frame layout is a compatibility contract — an accidental
// byte moved breaks every deployed client), strict header validation, and
// the wire extension of the seeded fuzz matrix: thousands of deterministic
// truncate/flip/splice/garbage mutants of real frames must parse to
// kCorrupted or parse cleanly and then fail verification — never crash,
// never verify. A single-bit-flip scan over a full response+VO frame closes
// the gap fuzzing samples: EVERY bit position is flipped once, and the only
// flips a client may accept are in the advisory snapshot_version field —
// with the verified VO bytes still identical to the original's.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "core/vo.h"
#include "net/wire.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

using net::ExtractResult;
using net::FrameHeader;
using net::FrameType;
using net::WireError;

std::string ToHex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Golden frames. If one of these fails because you *intentionally* changed
// the wire format, bump kWireVersion and update the constants — that is a
// breaking protocol change (deployed peers reject the new magic/version).
// ---------------------------------------------------------------------------

TEST(GoldenFrameTest, QueryFrame) {
  net::QueryRequest q;
  q.deadline_ms = 1000;
  q.k = 5;
  q.features = {{1.0f, 2.0f}};
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kQuery,
                                   net::EncodeQueryRequest(q))),
            "314e5049010001000f000000e80300000501020000803f00000040");
}

TEST(GoldenFrameTest, ResponseFrame) {
  net::ResponseFrame r;
  r.snapshot_version = 1;
  r.root_signature = {0xAA, 0xBB};
  r.vo_bytes = {0x01, 0x02, 0x03};
  EXPECT_EQ(
      ToHex(net::EncodeFrame(FrameType::kResponse, net::EncodeResponse(r))),
      "314e5049010002000f000000010000000000000002aabb03010203");
}

TEST(GoldenFrameTest, ErrorFrame) {
  net::ErrorFrame e;
  e.code = WireError::kOverloaded;
  e.message = "shed";
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kError, net::EncodeError(e))),
            "314e50490100030006000000020473686564");
}

TEST(GoldenFrameTest, StatusFrames) {
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kStatusRequest, {})),
            "314e50490100040000000000");
  net::StatusReply s;
  s.snapshot_version = 2;
  s.queries_served = 10;
  s.queries_shed = 1;
  s.deadline_exceeded = 3;
  s.rejected_unavailable = 4;
  s.queue_depth = 5;
  s.in_flight = 6;
  s.updates_applied = 7;
  s.stopped = true;
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kStatusReply,
                                   net::EncodeStatusReply(s))),
            "314e5049010005004100000002000000000000000a00000000000000010000000"
            "00000000300000000000000040000000000000005000000000000000600000000"
            "000000070000000000000001");
}

TEST(GoldenFrameTest, UpdateFrames) {
  net::InsertRequest i;
  i.id = 9;
  i.bovw.entries = {{2, 3}, {5, 1}};
  i.image_data = {0xDE, 0xAD};
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kInsert,
                                   net::EncodeInsertRequest(i))),
            "314e5049010006000900000009020203050102dead");
  net::DeleteRequest d;
  d.id = 7;
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kDelete,
                                   net::EncodeDeleteRequest(d))),
            "314e5049010007000100000007");
  net::UpdateAck a;
  a.new_version = 3;
  a.lists_updated = 15;
  a.nodes_rehashed = 887;
  EXPECT_EQ(ToHex(net::EncodeFrame(FrameType::kUpdateAck,
                                   net::EncodeUpdateAck(a))),
            "314e5049010008001800000003000000000000000f0000000000000077030000"
            "00000000");
}

// ---------------------------------------------------------------------------
// Header validation
// ---------------------------------------------------------------------------

TEST(FrameHeaderTest, RoundTrip) {
  Bytes frame = net::EncodeFrame(FrameType::kDelete,
                                 net::EncodeDeleteRequest({7}));
  FrameHeader header;
  ASSERT_TRUE(
      net::DecodeFrameHeader(frame.data(), frame.size(), &header).ok());
  EXPECT_EQ(header.type, FrameType::kDelete);
  EXPECT_EQ(header.payload_len, frame.size() - net::kFrameHeaderBytes);
}

TEST(FrameHeaderTest, RejectsBadMagicVersionFlagsTypeLength) {
  Bytes good = net::EncodeFrame(FrameType::kStatusRequest, {});
  FrameHeader header;

  Bytes bad = good;
  bad[0] ^= 0xFF;  // magic
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);

  bad = good;
  bad[4] = 2;  // version 2 (composite protocol) is known — header decodes
  EXPECT_TRUE(net::DecodeFrameHeader(bad.data(), bad.size(), &header).ok());
  EXPECT_EQ(header.version, 2);
  bad[4] = 3;  // one past the newest known version
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);

  bad = good;
  bad[6] = 0;  // type below range
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);
  bad[6] = 9;  // kCompositeResponse needs version 2; above range in v1
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);
  bad[4] = 2;  // same type under version 2 is legal
  EXPECT_TRUE(net::DecodeFrameHeader(bad.data(), bad.size(), &header).ok());
  EXPECT_EQ(header.type, FrameType::kCompositeResponse);
  bad[6] = 10;  // still one past the newest version-2 type
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);

  bad = good;
  bad[7] = 1;  // reserved flags must be zero in v1
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);

  // Oversized length: a hostile peer may not make us reserve 4 GiB.
  bad = good;
  bad[8] = 0xFF;
  bad[9] = 0xFF;
  bad[10] = 0xFF;
  bad[11] = 0xFF;
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), bad.size(), &header).code(),
            StatusCode::kCorrupted);
}

TEST(FrameHeaderTest, CompositeFlagIsVersionAndTypeGated) {
  // kFrameFlagComposite is only meaningful on a version-2 kQuery; anywhere
  // else it is a reserved bit and the frame is corrupt.
  net::QueryRequest qr;
  qr.k = 3;
  qr.features = {{1.0f, 2.0f}};
  Bytes q = net::EncodeQueryRequest(qr);
  Bytes v2 = net::EncodeFrame(FrameType::kQuery, q, net::kFrameFlagComposite,
                              net::kWireVersionComposite);
  FrameHeader header;
  ASSERT_TRUE(net::DecodeFrameHeader(v2.data(), v2.size(), &header).ok());
  EXPECT_EQ(header.version, net::kWireVersionComposite);
  EXPECT_EQ(header.flags & net::kFrameFlagComposite, net::kFrameFlagComposite);

  // Same frame downgraded to version 1: the flag becomes reserved.
  Bytes v1 = v2;
  v1[4] = 1;
  EXPECT_EQ(net::DecodeFrameHeader(v1.data(), v1.size(), &header).code(),
            StatusCode::kCorrupted);

  // A version-2 non-query may not carry it either.
  Bytes status = net::EncodeFrame(FrameType::kStatusRequest, {}, 0,
                                  net::kWireVersionComposite);
  status[7] = net::kFrameFlagComposite;
  EXPECT_EQ(
      net::DecodeFrameHeader(status.data(), status.size(), &header).code(),
      StatusCode::kCorrupted);

  // Both query flags together (compressed composite) are legal on v2.
  Bytes both = net::EncodeFrame(
      FrameType::kQuery, q,
      net::kFrameFlagComposite | net::kFrameFlagCompressVo,
      net::kWireVersionComposite);
  EXPECT_TRUE(net::DecodeFrameHeader(both.data(), both.size(), &header).ok());
}

TEST(FrameExtractTest, NeedMoreThenFrameThenPipelined) {
  Bytes frame = net::EncodeFrame(FrameType::kDelete,
                                 net::EncodeDeleteRequest({7}));
  FrameHeader header;
  Bytes payload;
  Status err;

  // Byte-at-a-time arrival: kNeedMore until the last byte lands.
  Bytes buffer;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buffer.push_back(frame[i]);
    ASSERT_EQ(net::TryExtractFrame(&buffer, &header, &payload, &err),
              ExtractResult::kNeedMore)
        << "at byte " << i;
  }
  buffer.push_back(frame.back());
  ASSERT_EQ(net::TryExtractFrame(&buffer, &header, &payload, &err),
            ExtractResult::kFrame);
  EXPECT_EQ(header.type, FrameType::kDelete);
  EXPECT_TRUE(buffer.empty());

  // Two frames back to back extract in order, leaving nothing behind.
  buffer = frame;
  Bytes second = net::EncodeFrame(FrameType::kStatusRequest, {});
  buffer.insert(buffer.end(), second.begin(), second.end());
  ASSERT_EQ(net::TryExtractFrame(&buffer, &header, &payload, &err),
            ExtractResult::kFrame);
  EXPECT_EQ(header.type, FrameType::kDelete);
  ASSERT_EQ(net::TryExtractFrame(&buffer, &header, &payload, &err),
            ExtractResult::kFrame);
  EXPECT_EQ(header.type, FrameType::kStatusRequest);
  EXPECT_TRUE(buffer.empty());
}

TEST(FrameExtractTest, CorruptPrefixDetectedBeforeFullHeader) {
  // A buffer that can never become a valid frame must be rejected as soon
  // as the prefix proves it, not after kMaxFramePayload bytes of buffering.
  Bytes buffer = {0xDE, 0xAD};
  FrameHeader header;
  Bytes payload;
  Status err;
  EXPECT_EQ(net::TryExtractFrame(&buffer, &header, &payload, &err),
            ExtractResult::kCorrupt);
  EXPECT_EQ(err.code(), StatusCode::kCorrupted);
}

// ---------------------------------------------------------------------------
// Payload decoder hardening (hostile lengths/counts, trailing bytes)
// ---------------------------------------------------------------------------

TEST(PayloadHardeningTest, QueryRequestRejectsHostileCounts) {
  net::QueryRequest q;
  q.k = 5;
  q.features = {{1.0f}};
  Bytes payload = net::EncodeQueryRequest(q);

  net::QueryRequest out;
  ASSERT_TRUE(net::DecodeQueryRequest(payload, &out).ok());

  // Feature count inflated far beyond the bytes present.
  Bytes bad = payload;
  bad[5] = 0xFF;  // the varint n byte (deadline u32 + k varint precede it)
  EXPECT_EQ(net::DecodeQueryRequest(bad, &out).code(), StatusCode::kCorrupted);

  // Trailing bytes reject.
  bad = payload;
  bad.push_back(0x00);
  EXPECT_EQ(net::DecodeQueryRequest(bad, &out).code(), StatusCode::kCorrupted);

  // Truncation rejects.
  bad = payload;
  bad.resize(bad.size() - 1);
  EXPECT_EQ(net::DecodeQueryRequest(bad, &out).code(), StatusCode::kCorrupted);
}

TEST(PayloadHardeningTest, ResponseRejectsOverhangingBlobLengths) {
  net::ResponseFrame r;
  r.snapshot_version = 1;
  r.root_signature = {0xAA};
  r.vo_bytes = {0x01, 0x02};
  Bytes payload = net::EncodeResponse(r);
  net::ResponseFrame out;
  ASSERT_TRUE(net::DecodeResponse(payload, &out).ok());

  // Signature length prefix inflated past the buffer: must reject before
  // allocating, not allocate-then-fail.
  Bytes bad = payload;
  bad[8] = 0xFF;
  EXPECT_EQ(net::DecodeResponse(bad, &out).code(), StatusCode::kCorrupted);
}

TEST(PayloadHardeningTest, ErrorFrameRejectsUnknownCodeAndHugeMessage) {
  net::ErrorFrame e;
  e.code = WireError::kOverloaded;
  e.message = "x";
  Bytes payload = net::EncodeError(e);
  net::ErrorFrame out;
  ASSERT_TRUE(net::DecodeError(payload, &out).ok());

  Bytes bad = payload;
  bad[0] = 0;  // below range
  EXPECT_EQ(net::DecodeError(bad, &out).code(), StatusCode::kCorrupted);
  bad[0] = 7;  // above range
  EXPECT_EQ(net::DecodeError(bad, &out).code(), StatusCode::kCorrupted);

  // A message length prefix beyond kMaxErrorMessage rejects even if the
  // bytes were actually present.
  net::ErrorFrame huge;
  huge.code = WireError::kInternal;
  huge.message.assign(net::kMaxErrorMessage + 100, 'a');
  Bytes encoded = net::EncodeError(huge);  // encoder truncates
  ASSERT_TRUE(net::DecodeError(encoded, &out).ok());
  EXPECT_EQ(out.message.size(), net::kMaxErrorMessage);
}

TEST(PayloadHardeningTest, StatusReplyRejectsNonCanonicalBool) {
  net::StatusReply s;
  Bytes payload = net::EncodeStatusReply(s);
  net::StatusReply out;
  ASSERT_TRUE(net::DecodeStatusReply(payload, &out).ok());
  Bytes bad = payload;
  bad.back() = 2;  // bools decode strictly: only 0 or 1
  EXPECT_EQ(net::DecodeStatusReply(bad, &out).code(), StatusCode::kCorrupted);
}

TEST(PayloadHardeningTest, InsertRejectsUnsortedAndZeroFrequency) {
  net::InsertRequest i;
  i.id = 1;
  i.bovw.entries = {{2, 3}, {5, 1}};
  i.image_data = {0x00};
  Bytes good = net::EncodeInsertRequest(i);
  net::InsertRequest out;
  ASSERT_TRUE(net::DecodeInsertRequest(good, &out).ok());

  net::InsertRequest unsorted = i;
  unsorted.bovw.entries = {{5, 1}, {2, 3}};
  EXPECT_EQ(
      net::DecodeInsertRequest(net::EncodeInsertRequest(unsorted), &out).code(),
      StatusCode::kCorrupted);

  net::InsertRequest zero_freq = i;
  zero_freq.bovw.entries = {{2, 0}};
  EXPECT_EQ(net::DecodeInsertRequest(net::EncodeInsertRequest(zero_freq), &out)
                .code(),
            StatusCode::kCorrupted);
}

// ---------------------------------------------------------------------------
// Seeded wire fuzz matrix + exhaustive single-bit-flip scan
// ---------------------------------------------------------------------------

size_t FuzzIters() {
  if (const char* env = std::getenv("IMAGEPROOF_FUZZ_ITERS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 6000;
}

// Same mutation kernel as tests/fuzz_deser_test.cc: truncate, flip 1..8
// bits, splice with a foreign valid message, garbage runs.
Bytes Mutate(const Bytes& base, const Bytes& foreign, Rng& rng) {
  Bytes out = base;
  switch (rng.NextBounded(4)) {
    case 0: {
      if (!out.empty()) out.resize(rng.NextBounded(out.size()));
      break;
    }
    case 1: {
      if (out.empty()) break;
      size_t flips = 1 + rng.NextBounded(8);
      for (size_t f = 0; f < flips; ++f) {
        out[rng.NextBounded(out.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      break;
    }
    case 2: {
      if (out.empty() || foreign.empty()) break;
      size_t cut = rng.NextBounded(out.size());
      size_t fcut = rng.NextBounded(foreign.size());
      out.resize(cut);
      out.insert(out.end(), foreign.begin() + fcut, foreign.end());
      break;
    }
    default: {
      if (out.empty()) break;
      size_t start = rng.NextBounded(out.size());
      size_t len = 1 + rng.NextBounded(32);
      for (size_t i = start; i < out.size() && i < start + len; ++i) {
        out[i] = static_cast<uint8_t>(rng.NextU64());
      }
      break;
    }
  }
  return out;
}

class WireFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 40;
    cp.num_clusters = 32;
    cp.seed = 5;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 32;
    cbp.dims = 8;
    owner_ = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                   std::move(corpus), std::move(blobs));

    core::ServiceProvider sp(owner_.package.get());
    features_ = workload::GenerateQueryFeatures(owner_.package->codebook, 6,
                                                0.3, 17);
    core::QueryResponse resp = sp.Query(features_, 3);

    net::ResponseFrame rf;
    rf.snapshot_version = 0;
    rf.root_signature = owner_.public_params.root_signature;
    rf.vo_bytes = resp.vo.Serialize();
    response_frame_ = net::EncodeFrame(FrameType::kResponse,
                                       net::EncodeResponse(rf));

    auto foreign_features =
        workload::GenerateQueryFeatures(owner_.package->codebook, 6, 0.3, 91);
    net::ResponseFrame ff;
    ff.snapshot_version = 0;
    ff.root_signature = owner_.public_params.root_signature;
    ff.vo_bytes = sp.Query(foreign_features, 3).vo.Serialize();
    foreign_response_frame_ = net::EncodeFrame(FrameType::kResponse,
                                               net::EncodeResponse(ff));

    net::QueryRequest qr;
    qr.deadline_ms = 100;
    qr.k = 3;
    qr.features = features_;
    query_frame_ = net::EncodeFrame(FrameType::kQuery,
                                    net::EncodeQueryRequest(qr));
    net::QueryRequest fq;
    fq.deadline_ms = 100;
    fq.k = 3;
    fq.features = foreign_features;
    foreign_query_frame_ = net::EncodeFrame(FrameType::kQuery,
                                            net::EncodeQueryRequest(fq));
  }

  // The full client-side response path under mutation: extract the frame,
  // decode the payload, deserialize the VO, verify. Returns true when the
  // mutant was ACCEPTED end to end; *accepted then holds the verified
  // results. Callers assert acceptance is harmless — the verified results
  // must be identical to the honest baseline's (mutations confined to
  // advisory bytes, or to proof bytes with no semantic weight, like the
  // low-order mantissa bits of an SP-chosen threshold).
  bool ClientAccepts(Bytes mutant, core::VerifiedResults* accepted) {
    FrameHeader header;
    Bytes payload;
    Status err;
    ExtractResult er = net::TryExtractFrame(&mutant, &header, &payload, &err);
    if (er != ExtractResult::kFrame) {
      // kCorrupt is the usual outcome; kNeedMore happens when the mutation
      // inflated the length field (the buffer is now a valid prefix of a
      // longer frame — on a live connection the client would keep waiting
      // and time out, never accept). Both reject.
      if (er == ExtractResult::kCorrupt) {
        EXPECT_EQ(err.code(), StatusCode::kCorrupted);
      }
      return false;
    }
    if (header.type != FrameType::kResponse) return false;
    net::ResponseFrame rf;
    Status st = net::DecodeResponse(payload, &rf);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kCorrupted);
      return false;
    }
    core::QueryVO vo;
    st = core::QueryVO::Deserialize(rf.vo_bytes, &vo);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kCorrupted);
      return false;
    }
    core::PublicParams params = owner_.public_params;
    params.root_signature = rf.root_signature;
    core::Client client(std::move(params));
    auto verified = client.Verify(features_, 3, vo);
    if (!verified.ok()) return false;
    if (accepted != nullptr) *accepted = std::move(verified).value();
    return true;
  }

  // "Zero undetected corruptions": anything the client accepts must hand
  // the application exactly what the honest response would have — same
  // result ids, same verified score bounds, same image bytes.
  static void ExpectSameResults(const core::VerifiedResults& got,
                                const core::VerifiedResults& want,
                                size_t iteration) {
    ASSERT_EQ(got.topk.size(), want.topk.size()) << "iteration " << iteration;
    for (size_t i = 0; i < want.topk.size(); ++i) {
      ASSERT_EQ(got.topk[i].id, want.topk[i].id) << "iteration " << iteration;
      ASSERT_EQ(got.topk[i].score, want.topk[i].score)
          << "iteration " << iteration;
    }
    ASSERT_EQ(got.images, want.images) << "iteration " << iteration;
  }

  core::OwnerOutput owner_;
  std::vector<std::vector<float>> features_;
  Bytes response_frame_, foreign_response_frame_;
  Bytes query_frame_, foreign_query_frame_;
};

TEST_F(WireFuzzTest, MutatedResponseFramesNeverVerifyCorrupted) {
  core::VerifiedResults baseline;
  ASSERT_TRUE(ClientAccepts(response_frame_, &baseline));

  const size_t iters = FuzzIters() / 2;
  Rng rng(0x51BEF00D);
  size_t accepted = 0;
  for (size_t i = 0; i < iters; ++i) {
    core::VerifiedResults got;
    if (ClientAccepts(Mutate(response_frame_, foreign_response_frame_, rng),
                      &got)) {
      ExpectSameResults(got, baseline, i);
      ++accepted;
    }
  }
  // Sanity: the matrix is not vacuous — the vast majority of mutants must
  // be rejected (acceptance requires an untouched VO + signature).
  EXPECT_LT(accepted, iters / 10);
}

TEST_F(WireFuzzTest, MutatedQueryFramesNeverCrashServerDecoder) {
  // The server-side path: extract + decode. Every mutant either fails
  // cleanly (kCorrupted) or yields a structurally valid request — counts
  // within bounds, no overhang — that the engine could serve.
  const size_t iters = FuzzIters() / 2;
  Rng rng(0x5EEDF00D);
  size_t parsed = 0;
  for (size_t i = 0; i < iters; ++i) {
    Bytes mutant = Mutate(query_frame_, foreign_query_frame_, rng);
    FrameHeader header;
    Bytes payload;
    Status err;
    ExtractResult er = net::TryExtractFrame(&mutant, &header, &payload, &err);
    if (er != ExtractResult::kFrame) continue;
    if (header.type != FrameType::kQuery) continue;
    net::QueryRequest req;
    Status st = net::DecodeQueryRequest(payload, &req);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kCorrupted) << "iteration " << i;
      continue;
    }
    ++parsed;
    EXPECT_LE(req.features.size(), net::kMaxQueryFeatures);
    for (const auto& f : req.features) {
      EXPECT_LE(f.size(), net::kMaxFeatureDims);
    }
  }
  // Bit flips inside float coordinates still parse — that is fine (the
  // request is well-formed, just a different query); this asserts the
  // decoder survived all of them.
  EXPECT_LE(parsed, iters);
}

TEST_F(WireFuzzTest, SingleBitFlipScanOverResponseFrame) {
  // Exhaustive, not sampled: flip every bit of the full response+VO frame
  // once. Every accepted flip must be UNDETECTABLE BY CONSTRUCTION — the
  // verified results identical to the honest baseline's. That covers the
  // advisory snapshot_version field (authenticated by nothing, all 64 of
  // its flips accepted) and proof bytes without semantic weight (low-order
  // mantissa bits of SP-chosen thresholds that alter no replay decision).
  // No flip may ever change what the application receives: that would be
  // an undetected corruption, and the scan fails the build.
  core::VerifiedResults baseline;
  ASSERT_TRUE(ClientAccepts(response_frame_, &baseline));
  const size_t version_begin = net::kFrameHeaderBytes;
  const size_t version_end = version_begin + 8;

  size_t accepted = 0, accepted_in_version = 0;
  for (size_t byte = 0; byte < response_frame_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutant = response_frame_;
      mutant[byte] ^= static_cast<uint8_t>(1u << bit);
      core::VerifiedResults got;
      if (ClientAccepts(std::move(mutant), &got)) {
        ExpectSameResults(got, baseline, byte * 8 + bit);
        ++accepted;
        if (byte >= version_begin && byte < version_end) ++accepted_in_version;
      }
    }
  }
  // Every snapshot_version flip IS accepted (the field is advisory, and
  // nothing else in the frame changed) — 8 bytes x 8 bits.
  EXPECT_EQ(accepted_in_version, 64u);
  // And acceptance stays confined to a sliver of the frame: the scan is
  // meaningful only if the overwhelming majority of flips are caught.
  EXPECT_LT(accepted, response_frame_.size() * 8 / 100);
}

}  // namespace
}  // namespace imageproof
