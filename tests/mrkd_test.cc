// Tests for the Merkle randomized k-d tree ADS: digest construction,
// MRKDSearch VO generation, client replay verification, node sharing, and
// the Optimization-A candidate reveals.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ann/rkd_tree.h"
#include "common/random.h"
#include "crypto/sha3.h"
#include "mrkd/commit.h"
#include "mrkd/mrkd_tree.h"
#include "mrkd/search.h"
#include "mrkd/verify.h"

namespace imageproof::mrkd {
namespace {

constexpr size_t kDims = 8;

struct Fixture {
  ann::PointSet clusters;
  std::vector<Digest> list_digests;
  std::unique_ptr<ann::RkdTree> tree;
  std::unique_ptr<MrkdTree> mrkd;
  std::vector<std::vector<float>> query_storage;
  std::vector<const float*> queries;
  std::vector<double> thresholds_sq;

  Fixture(size_t num_clusters, size_t num_queries, RevealMode mode,
          uint64_t seed) {
    Rng rng(seed);
    clusters = ann::PointSet(kDims, 0);
    clusters.set_dims(kDims);
    for (size_t i = 0; i < num_clusters; ++i) {
      std::vector<float> p(kDims);
      for (auto& v : p) v = static_cast<float>(rng.NextGaussian());
      clusters.AppendRow(p);
    }
    list_digests.resize(num_clusters);
    for (size_t i = 0; i < num_clusters; ++i) {
      Bytes payload{static_cast<uint8_t>(i), static_cast<uint8_t>(i >> 8)};
      list_digests[i] = crypto::Sha3(payload);
    }
    tree = std::make_unique<ann::RkdTree>(clusters, 2, seed + 1);
    mrkd = std::make_unique<MrkdTree>(tree.get(), mode, list_digests);
    for (size_t i = 0; i < num_queries; ++i) {
      std::vector<float> q(kDims);
      for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
      query_storage.push_back(q);
      thresholds_sq.push_back(0.5 + rng.NextDouble() * 2.0);
    }
    for (const auto& q : query_storage) queries.push_back(q.data());
  }

  std::map<ClusterId, Digest> AllCommitments() const {
    std::map<ClusterId, Digest> out;
    for (size_t c = 0; c < clusters.size(); ++c) {
      out[static_cast<ClusterId>(c)] = mrkd->cluster_commitment(c);
    }
    return out;
  }
};

TEST(MrkdTreeTest, RootDigestDeterministic) {
  Fixture f1(50, 0, RevealMode::kFullVector, 3);
  Fixture f2(50, 0, RevealMode::kFullVector, 3);
  EXPECT_EQ(f1.mrkd->root_digest(), f2.mrkd->root_digest());
}

TEST(MrkdTreeTest, RootDependsOnListDigests) {
  Fixture f(50, 0, RevealMode::kFullVector, 5);
  auto tampered_digests = f.list_digests;
  tampered_digests[7].bytes[0] ^= 1;
  MrkdTree other(f.tree.get(), RevealMode::kFullVector, tampered_digests);
  EXPECT_NE(f.mrkd->root_digest(), other.root_digest());
}

TEST(MrkdTreeTest, RootDependsOnRevealMode) {
  Fixture f(30, 0, RevealMode::kFullVector, 7);
  MrkdTree dm(f.tree.get(), RevealMode::kDimMerkle, f.list_digests);
  EXPECT_NE(f.mrkd->root_digest(), dm.root_digest());
}

TEST(MrkdSearchTest, CandidatesAreRangeSupersets) {
  Fixture f(200, 5, RevealMode::kFullVector, 11);
  auto out = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  ASSERT_EQ(out.candidates.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    std::set<ClusterId> got(out.candidates[q].begin(), out.candidates[q].end());
    for (size_t c = 0; c < f.clusters.size(); ++c) {
      double d = ann::SquaredL2(f.queries[q], f.clusters.row(c), kDims);
      if (d <= f.thresholds_sq[q]) {
        EXPECT_TRUE(got.count(static_cast<ClusterId>(c)))
            << "query " << q << " missing in-range cluster " << c;
      }
    }
  }
}

TEST(MrkdSearchTest, SharedAndUnsharedAgreeOnCandidates) {
  Fixture f(150, 6, RevealMode::kFullVector, 13);
  auto shared = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  auto unshared = MrkdSearchUnshared(*f.mrkd, f.queries, f.thresholds_sq);
  for (size_t q = 0; q < 6; ++q) {
    std::set<ClusterId> a(shared.candidates[q].begin(), shared.candidates[q].end());
    std::set<ClusterId> b(unshared.candidates[q].begin(),
                          unshared.candidates[q].end());
    EXPECT_EQ(a, b) << "query " << q;
  }
  EXPECT_LE(shared.vo.size(), unshared.vo.size());
}

TEST(MrkdSearchTest, SharingShrinksVoWithManyQueries) {
  Fixture f(400, 40, RevealMode::kFullVector, 17);
  auto shared = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  auto unshared = MrkdSearchUnshared(*f.mrkd, f.queries, f.thresholds_sq);
  EXPECT_LT(shared.vo.size(), unshared.vo.size() / 2)
      << "node sharing should at least halve the BoVW VO at 40 queries";
  EXPECT_GT(shared.stats.ShareRatio(), 0.1);
}

TEST(MrkdVerifyTest, HonestVoVerifiesAndRootMatches) {
  Fixture f(200, 8, RevealMode::kFullVector, 19);
  auto out = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  ByteReader r(out.vo);
  TreeVerifyOutput v;
  Status s = VerifyTreeVo(r, kDims, f.AllCommitments(), f.queries,
                          f.thresholds_sq, /*shared=*/true, &v);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(v.root, f.mrkd->root_digest());
  for (size_t q = 0; q < 8; ++q) {
    EXPECT_EQ(v.candidates[q], out.candidates[q]);
  }
  // Every candidate's list digest was captured.
  for (const auto& cands : v.candidates) {
    for (ClusterId c : cands) {
      ASSERT_TRUE(v.list_digests.count(c));
      EXPECT_EQ(v.list_digests[c], f.list_digests[c]);
    }
  }
}

TEST(MrkdVerifyTest, UnsharedVoVerifies) {
  Fixture f(100, 4, RevealMode::kFullVector, 23);
  auto out = MrkdSearchUnshared(*f.mrkd, f.queries, f.thresholds_sq);
  ByteReader r(out.vo);
  TreeVerifyOutput v;
  Status s = VerifyTreeVo(r, kDims, f.AllCommitments(), f.queries,
                          f.thresholds_sq, /*shared=*/false, &v);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(v.root, f.mrkd->root_digest());
}

TEST(MrkdVerifyTest, BitFlipsAnywhereAreRejected) {
  Fixture f(80, 3, RevealMode::kFullVector, 29);
  auto out = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  auto commitments = f.AllCommitments();
  Rng rng(31);
  int rejected = 0, root_mismatch = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    Bytes tampered = out.vo;
    size_t pos = rng.NextBounded(tampered.size());
    tampered[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    ByteReader r(tampered);
    TreeVerifyOutput v;
    Status s = VerifyTreeVo(r, kDims, commitments, f.queries, f.thresholds_sq,
                            true, &v);
    if (!s.ok() || !r.AtEnd()) {
      ++rejected;
    } else if (v.root != f.mrkd->root_digest()) {
      ++root_mismatch;
    }
  }
  // Every flip must be caught either by replay/parse errors or by a root
  // digest mismatch.
  EXPECT_EQ(rejected + root_mismatch, trials);
}

TEST(MrkdVerifyTest, MissingCommitmentRejected) {
  Fixture f(60, 2, RevealMode::kFullVector, 37);
  auto out = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  auto commitments = f.AllCommitments();
  // Remove one commitment that is needed.
  ASSERT_FALSE(out.candidates[0].empty());
  commitments.erase(out.candidates[0][0]);
  ByteReader r(out.vo);
  TreeVerifyOutput v;
  Status s = VerifyTreeVo(r, kDims, commitments, f.queries, f.thresholds_sq,
                          true, &v);
  EXPECT_FALSE(s.ok());
}

TEST(MrkdVerifyTest, ThresholdMismatchChangesRootOrFails) {
  // A client replaying with different thresholds must not silently accept.
  Fixture f(120, 4, RevealMode::kFullVector, 41);
  auto out = MrkdSearchShared(*f.mrkd, f.queries, f.thresholds_sq);
  auto bigger = f.thresholds_sq;
  for (auto& t : bigger) t *= 16.0;
  ByteReader r(out.vo);
  TreeVerifyOutput v;
  Status s = VerifyTreeVo(r, kDims, f.AllCommitments(), f.queries, bigger,
                          true, &v);
  // With larger thresholds the client expects subtrees that the VO pruned.
  EXPECT_FALSE(s.ok() && r.AtEnd() && v.root == f.mrkd->root_digest());
}

// --------------------------------------------------------------------------
// Incremental digest refresh (used by core/update.h)
// --------------------------------------------------------------------------

TEST(MrkdRefreshTest, MatchesFullRebuild) {
  Fixture f(100, 0, RevealMode::kFullVector, 67);
  // Change a few list digests, refresh paths, compare against a tree built
  // from scratch over the new digests.
  auto new_digests = f.list_digests;
  for (ClusterId c : {3u, 42u, 97u}) {
    new_digests[c].bytes[5] ^= 0xAA;
  }
  MrkdTree incremental(f.tree.get(), RevealMode::kFullVector, f.list_digests);
  // The tree borrows the digest vector; mutate it in place then refresh.
  f.list_digests = new_digests;
  size_t rehashed = 0;
  for (ClusterId c : {3u, 42u, 97u}) {
    size_t n = incremental.RefreshListDigest(c);
    EXPECT_GT(n, 0u);
    rehashed += n;
  }
  MrkdTree rebuilt(f.tree.get(), RevealMode::kFullVector, new_digests);
  EXPECT_EQ(incremental.root_digest(), rebuilt.root_digest());
  // Path refresh touches far fewer nodes than the whole tree.
  EXPECT_LT(rehashed, f.tree->nodes().size());
}

TEST(MrkdRefreshTest, UnknownClusterIsNoop) {
  Fixture f(20, 0, RevealMode::kFullVector, 71);
  MrkdTree tree(f.tree.get(), RevealMode::kFullVector, f.list_digests);
  Digest before = tree.root_digest();
  EXPECT_EQ(tree.RefreshListDigest(9999), 0u);
  EXPECT_EQ(tree.root_digest(), before);
}

// --------------------------------------------------------------------------
// Cluster reveals (Optimization A)
// --------------------------------------------------------------------------

TEST(RevealTest, FullRevealRoundTrip) {
  Fixture f(10, 0, RevealMode::kFullVector, 43);
  ClusterReveal rev = BuildReveal(RevealMode::kFullVector, 3,
                                  f.clusters.row(3), kDims, false, {}, {});
  EXPECT_TRUE(rev.full);
  Digest commitment;
  ASSERT_TRUE(VerifyReveal(RevealMode::kFullVector, kDims, rev, &commitment).ok());
  EXPECT_EQ(commitment, f.mrkd->cluster_commitment(3));
}

TEST(RevealTest, PartialRevealVerifiesAgainstDimMerkleCommitment) {
  // Needs several kDimBlock-sized blocks for a partial reveal to exist.
  const size_t dims = 64;
  Rng rng(47);
  std::vector<float> cluster(dims), query(dims);
  for (size_t d = 0; d < dims; ++d) {
    cluster[d] = static_cast<float>(rng.NextGaussian());
    query[d] = static_cast<float>(rng.NextGaussian() + 3.0);
  }
  double bound = 1.0;  // far below the true squared distance (~dims * 9)
  ClusterReveal rev = BuildReveal(RevealMode::kDimMerkle, 2, cluster.data(),
                                  dims, false, {query.data()}, {bound});
  ASSERT_FALSE(rev.full) << "partial reveal expected for a distant cluster";
  EXPECT_LT(rev.dim_indices.size(), dims);
  EXPECT_EQ(rev.dim_indices.size() % kDimBlock, 0u) << "block-aligned";
  EXPECT_GT(PartialDistanceSq(query.data(), rev.dim_indices, rev.dim_values),
            bound);

  Digest commitment;
  ASSERT_TRUE(VerifyReveal(RevealMode::kDimMerkle, dims, rev, &commitment).ok());
  EXPECT_EQ(commitment, ClusterCommitment(RevealMode::kDimMerkle, 2,
                                          cluster.data(), dims));
}

TEST(RevealTest, PartialRevealFallsBackToFullWhenBoundUnreachable) {
  Fixture f(10, 0, RevealMode::kDimMerkle, 53);
  // Bound larger than the full squared distance: exclusion is impossible,
  // so BuildReveal must return the full vector.
  std::vector<float> q(f.clusters.row(1), f.clusters.row(1) + kDims);
  double full_dist = ann::SquaredL2(q.data(), f.clusters.row(4), kDims);
  ClusterReveal rev =
      BuildReveal(RevealMode::kDimMerkle, 4, f.clusters.row(4), kDims, false,
                  {q.data()}, {full_dist * 2});
  EXPECT_TRUE(rev.full);
}

TEST(RevealTest, TamperedPartialValueRejected) {
  const size_t dims = 64;
  Rng rng(59);
  std::vector<float> cluster(dims), q(dims, 10.0f);
  for (auto& v : cluster) v = static_cast<float>(rng.NextGaussian());
  ClusterReveal rev = BuildReveal(RevealMode::kDimMerkle, 6, cluster.data(),
                                  dims, false, {q.data()}, {1.0});
  ASSERT_FALSE(rev.full);
  Digest original = ClusterCommitment(RevealMode::kDimMerkle, 6,
                                      cluster.data(), dims);
  rev.dim_values[0] += 1.0f;
  Digest commitment;
  Status s = VerifyReveal(RevealMode::kDimMerkle, dims, rev, &commitment);
  // Either the proof fails structurally or the commitment changes.
  EXPECT_TRUE(!s.ok() || commitment != original);
}

TEST(RevealTest, SerializationRoundTrip) {
  const size_t dims = 64;
  Rng rng(61);
  std::vector<float> c0(dims), c1(dims), q(dims, 3.0f);
  for (auto& v : c0) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : c1) v = static_cast<float>(rng.NextGaussian());
  std::vector<ClusterReveal> reveals;
  reveals.push_back(
      BuildReveal(RevealMode::kDimMerkle, 0, c0.data(), dims, true, {}, {}));
  reveals.push_back(BuildReveal(RevealMode::kDimMerkle, 1, c1.data(), dims,
                                false, {q.data()}, {0.5}));
  ASSERT_FALSE(reveals[1].full);
  ByteWriter w;
  SerializeReveals(reveals, w);
  ByteReader r(w.bytes());
  std::vector<ClusterReveal> back;
  ASSERT_TRUE(DeserializeReveals(r, dims, &back).ok());
  ASSERT_TRUE(r.AtEnd());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 0u);
  EXPECT_TRUE(back[0].full);
  EXPECT_EQ(back[0].coords, reveals[0].coords);
  EXPECT_FALSE(back[1].full);
  EXPECT_EQ(back[1].dim_indices, reveals[1].dim_indices);
  EXPECT_EQ(back[1].dim_values, reveals[1].dim_values);
  EXPECT_EQ(back[1].proof, reveals[1].proof);
}

TEST(RevealTest, DeserializeRejectsMalformed) {
  ByteWriter w;
  w.PutVarint(1);   // one reveal
  w.PutVarint(0);   // id
  w.PutU8(0);       // partial
  w.PutVarint(99);  // dim count > dims
  ByteReader r(w.bytes());
  std::vector<ClusterReveal> out;
  EXPECT_FALSE(DeserializeReveals(r, kDims, &out).ok());
}

TEST(PartialDistanceTest, MonotoneInRevealedDims) {
  std::vector<float> q = {1, 2, 3, 4};
  std::vector<float> c = {0, 0, 0, 0};
  double d1 = PartialDistanceSq(q.data(), {3}, {c[3]});
  double d2 = PartialDistanceSq(q.data(), {2, 3}, {c[2], c[3]});
  double d3 = PartialDistanceSq(q.data(), {0, 1, 2, 3}, {0, 0, 0, 0});
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
  EXPECT_DOUBLE_EQ(d3, 1 + 4 + 9 + 16);
}

}  // namespace
}  // namespace imageproof::mrkd
