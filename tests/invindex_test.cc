// Tests for the Merkle inverted index ADS, PostingSearch/InvSearch, the
// bounds engine, and client verification — including adversarial cases.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "bovw/bovw.h"
#include "common/random.h"
#include "invindex/bounds.h"
#include "invindex/merkle_inv_index.h"
#include "invindex/search.h"
#include "invindex/verify.h"

namespace imageproof::invindex {
namespace {

using bovw::BovwVector;
using bovw::ClusterWeights;

struct Corpus {
  size_t num_clusters;
  std::vector<std::pair<ImageId, BovwVector>> images;
  std::unique_ptr<ClusterWeights> weights;

  Corpus(size_t num_images, size_t num_clusters_in, double zipf_s,
         uint64_t seed)
      : num_clusters(num_clusters_in) {
    Rng rng(seed);
    for (ImageId id = 0; id < num_images; ++id) {
      size_t distinct = 3 + rng.NextBounded(8);
      std::map<bovw::ClusterId, uint32_t> counts;
      for (size_t i = 0; i < distinct; ++i) {
        bovw::ClusterId c =
            static_cast<bovw::ClusterId>(rng.NextZipf(num_clusters, zipf_s));
        counts[c] += 1 + static_cast<uint32_t>(rng.NextBounded(4));
      }
      BovwVector v;
      v.entries.assign(counts.begin(), counts.end());
      images.emplace_back(id, v);
    }
    std::vector<BovwVector> vecs;
    for (auto& [id, v] : images) vecs.push_back(v);
    weights = std::make_unique<ClusterWeights>(
        ClusterWeights::FromCorpus(num_clusters, vecs));
  }

  BovwVector RandomQuery(uint64_t seed) const {
    Rng rng(seed);
    std::map<bovw::ClusterId, uint32_t> counts;
    size_t distinct = 4 + rng.NextBounded(6);
    for (size_t i = 0; i < distinct; ++i) {
      bovw::ClusterId c =
          static_cast<bovw::ClusterId>(rng.NextZipf(num_clusters, 1.1));
      counts[c] += 1 + static_cast<uint32_t>(rng.NextBounded(3));
    }
    BovwVector v;
    v.entries.assign(counts.begin(), counts.end());
    return v;
  }
};

// Checks an InvSearch round trip end to end, including digest matching
// against the authenticated per-list digests (which in the full scheme come
// from the MRKD-tree).
void ExpectRoundTrip(const MerkleInvertedIndex& index, const Corpus& corpus,
                     const BovwVector& query, size_t k) {
  InvSearchParams params;
  params.k = k;
  InvSearchResult result = InvSearch(index, query, params);

  // Exact against brute force.
  auto expected = bovw::BruteForceTopK(corpus.images, query, *corpus.weights, k);
  // Drop zero-score tail entries from the oracle: images sharing no
  // relevant cluster are not retrievable results.
  while (!expected.empty() && expected.back().score <= 0) expected.pop_back();
  ASSERT_EQ(result.topk.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.topk[i].id, expected[i].id) << "rank " << i;
    EXPECT_NEAR(result.topk[i].score, expected[i].score, 1e-9);
  }

  // Client verification.
  std::vector<ImageId> claimed;
  for (const auto& si : result.topk) claimed.push_back(si.id);
  InvVerifyResult verified;
  Status s = VerifyInvVo(result.vo, query, claimed, k, index.with_filters(),
                         &verified);
  ASSERT_TRUE(s.ok()) << s.message();

  // Reconstructed digests must equal the authenticated ones.
  for (const auto& [c, digest] : verified.list_digests) {
    EXPECT_EQ(digest, index.list(c).digest) << "cluster " << c;
  }
  // Verified scores are true lower bounds and rank the same set.
  ASSERT_EQ(verified.topk.size(), claimed.size());
  for (const auto& si : verified.topk) {
    EXPECT_LE(si.score,
              bovw::BruteForceTopK(corpus.images, query, *corpus.weights,
                                   corpus.images.size())
                      .empty()
                  ? 0.0
                  : 1e18);  // sanity only; exactness checked elsewhere
  }
}

TEST(MerkleInvIndexTest, BuildInvariants) {
  Corpus corpus(200, 50, 1.1, 7);
  auto index = MerkleInvertedIndex::Build(corpus.num_clusters, corpus.images,
                                          *corpus.weights, true);
  EXPECT_EQ(index.num_clusters(), 50u);
  size_t nonempty = 0;
  for (bovw::ClusterId c = 0; c < 50; ++c) {
    const auto& list = index.list(c);
    if (!list.postings.empty()) ++nonempty;
    // Impact-descending order with ascending-id ties.
    for (size_t i = 1; i < list.postings.size(); ++i) {
      const auto& prev = list.postings[i - 1];
      const auto& cur = list.postings[i];
      EXPECT_TRUE(prev.impact > cur.impact ||
                  (prev.impact == cur.impact && prev.id < cur.id));
    }
    // Chain digests verify backwards.
    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = PostingDigest(list.postings[i].id, list.postings[i].impact, next);
      EXPECT_EQ(next, list.postings[i].digest);
    }
    EXPECT_EQ(list.digest, ListDigest(list.weight, list.theta_digest,
                                      list.FirstPostingDigest()));
    // Filter contains every posting id.
    if (!list.postings.empty()) {
      ASSERT_TRUE(list.filter.has_value());
      for (const auto& p : list.postings) {
        EXPECT_TRUE(list.filter->Contains(p.id));
      }
    }
  }
  EXPECT_GT(nonempty, 20u);
}

TEST(MerkleInvIndexTest, PlainModeDiffersFromFilterMode) {
  Corpus corpus(100, 30, 1.1, 9);
  auto with = MerkleInvertedIndex::Build(30, corpus.images, *corpus.weights, true);
  auto without =
      MerkleInvertedIndex::Build(30, corpus.images, *corpus.weights, false);
  EXPECT_FALSE(without.with_filters());
  EXPECT_FALSE(without.list(0).filter.has_value());
  bool any_diff = false;
  for (bovw::ClusterId c = 0; c < 30; ++c) {
    if (!with.list(c).postings.empty() &&
        with.list(c).digest != without.list(c).digest) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(InvSearchTest, MatchesBruteForceWithFilters) {
  Corpus corpus(400, 60, 1.15, 11);
  auto index = MerkleInvertedIndex::Build(60, corpus.images, *corpus.weights, true);
  for (uint64_t qs = 0; qs < 8; ++qs) {
    SCOPED_TRACE(qs);
    ExpectRoundTrip(index, corpus, corpus.RandomQuery(100 + qs), 10);
  }
}

TEST(InvSearchTest, MatchesBruteForceBaseline) {
  Corpus corpus(300, 40, 1.15, 13);
  auto index = MerkleInvertedIndex::Build(40, corpus.images, *corpus.weights, false);
  for (uint64_t qs = 0; qs < 5; ++qs) {
    SCOPED_TRACE(qs);
    ExpectRoundTrip(index, corpus, corpus.RandomQuery(200 + qs), 5);
  }
}

TEST(InvSearchTest, FiltersPopFewerPostingsThanBaseline) {
  Corpus corpus(800, 50, 1.2, 17);
  auto filtered = MerkleInvertedIndex::Build(50, corpus.images, *corpus.weights, true);
  auto plain = MerkleInvertedIndex::Build(50, corpus.images, *corpus.weights, false);
  size_t popped_filtered = 0, popped_plain = 0;
  InvSearchParams params;
  params.k = 10;
  for (uint64_t qs = 0; qs < 5; ++qs) {
    BovwVector q = corpus.RandomQuery(300 + qs);
    popped_filtered += InvSearch(filtered, q, params).stats.popped_postings;
    popped_plain += InvSearch(plain, q, params).stats.popped_postings;
  }
  EXPECT_LT(popped_filtered, popped_plain);
}

TEST(InvSearchTest, VariousK) {
  Corpus corpus(250, 40, 1.1, 19);
  auto index = MerkleInvertedIndex::Build(40, corpus.images, *corpus.weights, true);
  BovwVector q = corpus.RandomQuery(400);
  for (size_t k : {1u, 2u, 5u, 20u, 50u}) {
    SCOPED_TRACE(k);
    ExpectRoundTrip(index, corpus, q, k);
  }
}

TEST(InvSearchTest, LazyTopkPopsMatchesEagerAndVerifies) {
  Corpus corpus(600, 60, 1.15, 21);
  auto index = MerkleInvertedIndex::Build(60, corpus.images, *corpus.weights, true);
  size_t eager_total = 0, lazy_total = 0;
  for (uint64_t qs = 0; qs < 6; ++qs) {
    BovwVector q = corpus.RandomQuery(800 + qs);
    InvSearchParams eager;
    eager.k = 10;
    InvSearchParams lazy = eager;
    lazy.lazy_topk_pops = true;
    auto re = InvSearch(index, q, eager);
    auto rl = InvSearch(index, q, lazy);
    // Same result set (ordering within may differ when lazy scores are
    // partial, so compare as sets).
    std::set<ImageId> se, sl;
    for (auto& si : re.topk) se.insert(si.id);
    for (auto& si : rl.topk) sl.insert(si.id);
    EXPECT_EQ(se, sl) << "query " << qs;
    eager_total += re.stats.popped_postings;
    lazy_total += rl.stats.popped_postings;
    // The lazy VO verifies like any other.
    std::vector<ImageId> claimed;
    for (auto& si : rl.topk) claimed.push_back(si.id);
    InvVerifyResult verified;
    Status s = VerifyInvVo(rl.vo, q, claimed, 10, true, &verified);
    ASSERT_TRUE(s.ok()) << s.message();
    for (const auto& [c, digest] : verified.list_digests) {
      EXPECT_EQ(digest, index.list(c).digest);
    }
  }
  EXPECT_LE(lazy_total, eager_total);
}

TEST(InvSearchTest, QueryWithNoRelevantLists) {
  Corpus corpus(100, 30, 1.1, 23);
  auto index = MerkleInvertedIndex::Build(30, corpus.images, *corpus.weights, true);
  // A query over a cluster no image contains (weight 0).
  BovwVector q;
  // Find an unused cluster if any; otherwise skip.
  std::set<bovw::ClusterId> used;
  for (const auto& [id, v] : corpus.images) {
    for (auto& [c, f] : v.entries) used.insert(c);
  }
  bovw::ClusterId unused = 30;
  for (bovw::ClusterId c = 0; c < 30; ++c) {
    if (!used.count(c)) {
      unused = c;
      break;
    }
  }
  if (unused == 30) GTEST_SKIP() << "all clusters used";
  q.entries = {{unused, 3}};
  InvSearchParams params;
  params.k = 5;
  auto result = InvSearch(index, q, params);
  EXPECT_TRUE(result.topk.empty());
  InvVerifyResult verified;
  Status s = VerifyInvVo(result.vo, q, {}, 5, true, &verified);
  EXPECT_TRUE(s.ok()) << s.message();
}

// ---------------------------------------------------------------------------
// Adversarial server behaviors
// ---------------------------------------------------------------------------

class InvAttackTest : public ::testing::Test {
 protected:
  InvAttackTest()
      : corpus_(500, 50, 1.15, 29),
        index_(MerkleInvertedIndex::Build(50, corpus_.images, *corpus_.weights,
                                          true)),
        query_(corpus_.RandomQuery(999)) {
    InvSearchParams params;
    params.k = 10;
    honest_ = InvSearch(index_, query_, params);
    for (const auto& si : honest_.topk) claimed_.push_back(si.id);
  }

  // Returns true if verification accepts AND the reconstructed digests all
  // match the authenticated ones (the full client-side acceptance test).
  bool Accepts(const Bytes& vo, const std::vector<ImageId>& claimed) {
    InvVerifyResult verified;
    Status s = VerifyInvVo(vo, query_, claimed, 10, true, &verified);
    if (!s.ok()) return false;
    for (const auto& [c, digest] : verified.list_digests) {
      if (digest != index_.list(c).digest) return false;
    }
    return true;
  }

  Corpus corpus_;
  MerkleInvertedIndex index_;
  BovwVector query_;
  InvSearchResult honest_;
  std::vector<ImageId> claimed_;
};

TEST_F(InvAttackTest, HonestAccepted) {
  EXPECT_TRUE(Accepts(honest_.vo, claimed_));
}

TEST_F(InvAttackTest, SwapResultForLowRankedImageRejected) {
  // Replace the best result with some popped image outside the top-k.
  InvVerifyResult verified;
  ASSERT_TRUE(VerifyInvVo(honest_.vo, query_, claimed_, 10, true, &verified).ok());
  auto tampered = claimed_;
  tampered[0] = claimed_.back() + 1000000;  // an id that never appears
  EXPECT_FALSE(Accepts(honest_.vo, tampered));
}

TEST_F(InvAttackTest, DropBestResultRejected) {
  auto tampered = claimed_;
  tampered.erase(tampered.begin());
  EXPECT_FALSE(Accepts(honest_.vo, tampered));
}

TEST_F(InvAttackTest, DuplicateResultRejected) {
  auto tampered = claimed_;
  if (tampered.size() >= 2) tampered[1] = tampered[0];
  EXPECT_FALSE(Accepts(honest_.vo, tampered));
}

TEST_F(InvAttackTest, RandomBitFlipsRejected) {
  Rng rng(31);
  int accepted = 0;
  for (int t = 0; t < 50; ++t) {
    Bytes tampered = honest_.vo;
    size_t pos = rng.NextBounded(tampered.size());
    tampered[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    if (Accepts(tampered, claimed_)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST_F(InvAttackTest, TruncatedVoRejected) {
  Bytes truncated(honest_.vo.begin(), honest_.vo.end() - 5);
  EXPECT_FALSE(Accepts(truncated, claimed_));
}

// ---------------------------------------------------------------------------
// BoundsEngine unit behavior
// ---------------------------------------------------------------------------

TEST(BoundsEngineTest, OrderingViolationsRejected) {
  std::vector<BoundsList> lists(1);
  lists[0].cluster = 0;
  lists[0].q_impact = 1.0;
  BoundsEngine engine(std::move(lists), /*use_filters=*/false);
  EXPECT_TRUE(engine.AddPopped(0, 5, 0.9).ok());
  EXPECT_FALSE(engine.AddPopped(0, 6, 0.95).ok()) << "impact increased";
  EXPECT_TRUE(engine.AddPopped(0, 7, 0.9).ok()) << "tie ok";
  EXPECT_FALSE(engine.AddPopped(0, 5, 0.5).ok()) << "duplicate image";
  EXPECT_FALSE(engine.AddPopped(0, 9, -0.1).ok()) << "negative impact";
  EXPECT_FALSE(engine.AddPopped(0, 10, 0.5, 0.4).ok()) << "impact above cap";
  EXPECT_TRUE(engine.AddPopped(0, 11, 0.2, 0.6).ok()) << "grouped-style cap";
  EXPECT_FALSE(engine.AddPopped(0, 12, 0.2, 0.7).ok()) << "cap increased";
}

TEST(BoundsEngineTest, CapsAndScores) {
  std::vector<BoundsList> lists(2);
  lists[0] = {0, 2.0, std::nullopt};
  lists[1] = {1, 1.0, std::nullopt};
  BoundsEngine engine(std::move(lists), false);
  EXPECT_TRUE(std::isinf(engine.Cap(0)));
  ASSERT_TRUE(engine.AddPopped(0, 1, 0.5).ok());
  ASSERT_TRUE(engine.AddPopped(1, 1, 0.4).ok());
  ASSERT_TRUE(engine.AddPopped(1, 2, 0.3).ok());
  EXPECT_DOUBLE_EQ(engine.Cap(0), 0.5);
  EXPECT_DOUBLE_EQ(engine.Cap(1), 0.3);
  EXPECT_DOUBLE_EQ(engine.ScoreOf(1), 2.0 * 0.5 + 1.0 * 0.4);
  EXPECT_DOUBLE_EQ(engine.ScoreOf(2), 0.3);
  EXPECT_DOUBLE_EQ(engine.ScoreOf(42), 0.0);
  // Baseline S^U: score + remaining caps of lists where the image is not
  // popped.
  EXPECT_DOUBLE_EQ(engine.SUpper(1), engine.ScoreOf(1));
  EXPECT_DOUBLE_EQ(engine.SUpper(2), 0.3 + 2.0 * 0.5);
  engine.MarkExhausted(0);
  EXPECT_DOUBLE_EQ(engine.Cap(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.SUpper(2), 0.3);
  // pi^U over the single remaining list.
  EXPECT_DOUBLE_EQ(engine.PiUpper(), 1.0 * 0.3);
}

TEST(BoundsEngineTest, FiltersTightenSUpper) {
  cuckoo::CuckooParams params = cuckoo::CuckooParams::ForMaxItems(100);
  cuckoo::CuckooFilter f0(params), f1(params);
  ASSERT_TRUE(f0.Insert(1));
  ASSERT_TRUE(f0.Insert(2));
  ASSERT_TRUE(f1.Insert(1));  // image 2 NOT in list 1

  std::vector<BoundsList> lists(2);
  lists[0] = {0, 1.0, f0};
  lists[1] = {1, 1.0, f1};
  BoundsEngine engine(std::move(lists), true);
  ASSERT_TRUE(engine.AddPopped(0, 1, 0.9).ok());
  ASSERT_TRUE(engine.AddPopped(1, 1, 0.8).ok());
  // Image 2 remains only in list 0 per its filter.
  EXPECT_DOUBLE_EQ(engine.SUpper(2), 1.0 * 0.9);
  auto possible = engine.PossibleLists(2);
  ASSERT_EQ(possible.size(), 1u);
  EXPECT_EQ(possible[0], 0u);
}

TEST(BoundsEngineTest, GammaShrinksAsImagesPop) {
  cuckoo::CuckooParams params = cuckoo::CuckooParams::ForMaxItems(50);
  std::vector<BoundsList> lists;
  for (int i = 0; i < 5; ++i) {
    cuckoo::CuckooFilter f(params);
    ASSERT_TRUE(f.Insert(7));  // image 7 in all five lists
    BoundsList bl;
    bl.cluster = i;
    bl.q_impact = 1.0;
    bl.filter = std::move(f);
    lists.push_back(std::move(bl));
  }
  BoundsEngine engine(std::move(lists), true);
  uint32_t before = engine.Gamma();
  EXPECT_GE(before, 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.AddPopped(i, 7, 0.5).ok());
  }
  EXPECT_EQ(engine.Gamma(), 0u);
  EXPECT_DOUBLE_EQ(engine.PiUpper(), 0.0);
}

TEST(VerifyClaimedTopKTest, Basics) {
  std::vector<BoundsList> lists(1);
  lists[0] = {0, 1.0, std::nullopt};
  BoundsEngine engine(std::move(lists), false);
  ASSERT_TRUE(engine.AddPopped(0, 10, 0.9).ok());
  ASSERT_TRUE(engine.AddPopped(0, 20, 0.8).ok());
  ASSERT_TRUE(engine.AddPopped(0, 30, 0.7).ok());
  double skl;
  EXPECT_TRUE(VerifyClaimedTopK(engine, {10, 20}, &skl));
  EXPECT_DOUBLE_EQ(skl, 0.8);
  EXPECT_FALSE(VerifyClaimedTopK(engine, {10, 30}, &skl)) << "not the best 2";
  EXPECT_FALSE(VerifyClaimedTopK(engine, {10, 99}, &skl)) << "unknown id";
  EXPECT_FALSE(VerifyClaimedTopK(engine, {10, 20, 30, 40}, &skl))
      << "more than popped";
  EXPECT_TRUE(VerifyClaimedTopK(engine, {}, &skl));
}

}  // namespace
}  // namespace imageproof::invindex
