// Property tests for the retrieval-kernel layer (common/kernels.h).
//
// The load-bearing guarantee is bit-exactness: the AVX2 and portable
// implementations must produce identical doubles for every input, because
// query responses (and hence client verification) must not depend on which
// path the dispatcher picked. The tests sweep randomized dimensions
// (including non-multiple-of-8 tails), lengths, and value regimes
// (denormals, huge magnitudes, signed zeros) and compare raw bit patterns.
//
// The file also pins the allocation contract: a warm kern::SearchScratch /
// core::QueryScratch makes the search-stage machinery heap-allocation-free,
// verified with a counting global operator new.

#include "common/kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "ann/points.h"
#include "ann/rkd_forest.h"
#include "common/random.h"
#include "common/varint_kernels.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

// ---------------------------------------------------------------------------
// Counting allocation hook. Every global allocation in the binary routes
// through these; the zero-alloc tests diff the counter around a warm search.
// The replacements keep malloc underneath so sanitizer interposition (ASan
// poisoning, LSan bookkeeping) still sees every allocation.

namespace {
std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n == 0 ? align : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace imageproof {
namespace {

using kern::internal::KernelImpls;

// Random floats across the regimes that stress summation order: denormals,
// huge and tiny magnitudes, signed zeros, and ordinary values. Never NaN or
// infinity — distances over them are not meaningful inputs.
float RandomFloat(Rng& rng) {
  const uint64_t regime = rng.NextU64() % 16;
  const float sign = (rng.NextU64() & 1) ? 1.0f : -1.0f;
  if (regime == 0) {
    // Denormal: zero exponent, random mantissa.
    uint32_t bits = static_cast<uint32_t>(rng.NextU64()) & 0x007FFFFFu;
    if (rng.NextU64() & 1) bits |= 0x80000000u;
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
  }
  if (regime == 1) return sign * 0.0f;
  if (regime == 2) {
    // Huge: ~2^100 scale.
    return sign * std::ldexp(1.0f + static_cast<float>(rng.NextU64() % 1000) /
                                        1000.0f,
                             100);
  }
  if (regime == 3) {
    // Tiny normal: ~2^-120 scale.
    return sign * std::ldexp(1.0f + static_cast<float>(rng.NextU64() % 1000) /
                                        1000.0f,
                             -120);
  }
  return sign * static_cast<float>(rng.NextU64() % 1000000) / 3333.0f;
}

std::vector<float> RandomVec(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (float& f : v) f = RandomFloat(rng);
  return v;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Dimension sweep: every tail length mod 8, plus larger sizes spanning
// multiple prune-check windows.
const size_t kDims[] = {1,  2,  3,   5,   7,   8,   9,   15,  16,  17,
                        24, 31, 32,  33,  40,  63,  64,  65,  96,  127,
                        128, 129, 200, 256, 333, 512, 1000};

// The canonical order restated from its definition: 8 lane accumulators,
// lane i%8, reduced by ReduceLanes. Locks the implementations to the
// documented order, not merely to each other.
double LaneReferenceSquaredL2(const float* a, const float* b, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i & 7] += diff * diff;
  }
  return kern::internal::ReduceLanes(lanes);
}

TEST(KernelsTest, PortableMatchesLaneReference) {
  Rng rng(101);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      auto a = RandomVec(rng, n);
      auto b = RandomVec(rng, n);
      double expect = LaneReferenceSquaredL2(a.data(), b.data(), n);
      double got = kern::internal::Portable().squared_l2(a.data(), b.data(), n);
      EXPECT_TRUE(BitEqual(expect, got)) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(KernelsTest, Avx2MatchesPortableBitExact) {
  const KernelImpls* avx2 = kern::internal::Avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 path not available in this build";
  const KernelImpls& portable = kern::internal::Portable();
  Rng rng(202);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 16; ++trial) {
      auto a = RandomVec(rng, n);
      auto b = RandomVec(rng, n);
      EXPECT_TRUE(BitEqual(portable.squared_l2(a.data(), b.data(), n),
                           avx2->squared_l2(a.data(), b.data(), n)))
          << "squared_l2 n=" << n << " trial=" << trial;
      EXPECT_TRUE(BitEqual(portable.dot(a.data(), b.data(), n),
                           avx2->dot(a.data(), b.data(), n)))
          << "dot n=" << n << " trial=" << trial;
      EXPECT_TRUE(BitEqual(portable.squared_norm(a.data(), n),
                           avx2->squared_norm(a.data(), n)))
          << "squared_norm n=" << n << " trial=" << trial;
    }
  }
}

TEST(GroupVarintKernelTest, Avx2MatchesPortableBitExact) {
  kern::internal::GroupVarintDecodeFn avx2 =
      kern::internal::GroupVarintDecodeAvx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 path not available in this build";
  Rng rng(303);
  const uint32_t boundaries[] = {0, 1, 0xFFu, 0x100u, 0xFFFFu, 0x10000u,
                                 0xFFFFFFu, 0x1000000u, 0xFFFFFFFFu};
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 64u, 333u, 4096u}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint32_t> values(n);
      for (auto& v : values) {
        v = (rng.NextBounded(2) == 0)
                ? boundaries[rng.NextBounded(std::size(boundaries))]
                : static_cast<uint32_t>(rng.NextU64());
      }
      ByteWriter w;
      kern::GroupVarintEncode(values.data(), n, w);
      // Trailing garbage after the block: the AVX2 fast path may look at
      // (but never consume) bytes past the block while 16 bytes remain, and
      // both decoders must still stop at exactly the block boundary.
      Bytes encoded = w.Take();
      size_t block = encoded.size();
      for (int g = 0; g < 24; ++g) {
        encoded.push_back(static_cast<uint8_t>(rng.NextU64()));
      }

      std::vector<uint32_t> portable_out(n + 1, 0xA5A5A5A5u);
      std::vector<uint32_t> avx2_out(n + 1, 0x5A5A5A5Au);
      ByteReader pr(encoded);
      ByteReader ar(encoded);
      ASSERT_TRUE(kern::internal::GroupVarintDecodePortable(pr, n,
                                                            portable_out.data())
                      .ok());
      ASSERT_TRUE(avx2(ar, n, avx2_out.data()).ok());
      EXPECT_EQ(pr.remaining(), encoded.size() - block) << "n=" << n;
      EXPECT_EQ(ar.remaining(), encoded.size() - block) << "n=" << n;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(portable_out[i], avx2_out[i]) << "n=" << n << " i=" << i;
      }

      // Truncations: both paths must agree on rejection too.
      for (size_t len = 0; len < block; len += (block / 7) + 1) {
        Bytes prefix(encoded.begin(), encoded.begin() + len);
        ByteReader tp(prefix);
        ByteReader ta(prefix);
        Status sp = kern::internal::GroupVarintDecodePortable(
            tp, n, portable_out.data());
        Status sa = avx2(ta, n, avx2_out.data());
        EXPECT_EQ(sp.ok(), sa.ok()) << "n=" << n << " len=" << len;
        if (n > 0) EXPECT_FALSE(sp.ok()) << "n=" << n << " len=" << len;
      }
    }
  }
}

TEST(KernelsTest, BatchMatchesSingleBitExact) {
  std::vector<const KernelImpls*> impls = {&kern::internal::Portable()};
  if (kern::internal::Avx2() != nullptr) {
    impls.push_back(kern::internal::Avx2());
  }
  Rng rng(303);
  // Row counts cover every remainder of the 4-row interleave in the AVX2
  // batch kernel; stride > dims exercises strided row-major layouts.
  for (const KernelImpls* impl : impls) {
    for (size_t dims : {1u, 7u, 8u, 17u, 64u, 128u, 130u}) {
      for (size_t n_rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
        const size_t stride = dims + (rng.NextU64() % 3);
        auto q = RandomVec(rng, dims);
        auto rows = RandomVec(rng, n_rows * stride);
        std::vector<double> out(n_rows, -1.0);
        impl->squared_l2_batch(q.data(), rows.data(), stride, n_rows, dims,
                               out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          double single =
              impl->squared_l2(q.data(), rows.data() + r * stride, dims);
          EXPECT_TRUE(BitEqual(single, out[r]))
              << "dims=" << dims << " rows=" << n_rows << " r=" << r;
        }
      }
    }
  }
}

TEST(KernelsTest, PrunedSemantics) {
  std::vector<const KernelImpls*> impls = {&kern::internal::Portable()};
  if (kern::internal::Avx2() != nullptr) {
    impls.push_back(kern::internal::Avx2());
  }
  Rng rng(404);
  const double kInf = std::numeric_limits<double>::infinity();
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      auto a = RandomVec(rng, n);
      auto b = RandomVec(rng, n);
      const double exact = kern::internal::Portable().squared_l2(
          a.data(), b.data(), n);
      // Bounds below, at, and above the exact distance, plus infinity.
      const double bounds[] = {exact * 0.25, exact * 0.75, exact, exact * 1.5,
                               kInf};
      for (const KernelImpls* impl : impls) {
        // An unreachable bound returns the exact canonical distance.
        EXPECT_TRUE(
            BitEqual(exact, impl->squared_l2_pruned(a.data(), b.data(), n,
                                                    kInf)));
        for (double bound : bounds) {
          double pruned =
              impl->squared_l2_pruned(a.data(), b.data(), n, bound);
          // Partial sums of squares are nondecreasing, so the return value
          // never exceeds the exact distance...
          EXPECT_LE(pruned, exact);
          // ...and a value below the bound means no prune fired: it must be
          // the exact canonical distance, bit for bit.
          if (pruned < bound) {
            EXPECT_TRUE(BitEqual(pruned, exact))
                << "n=" << n << " bound=" << bound;
          }
        }
      }
      if (impls.size() == 2) {
        // Both paths check the partial sum at the same cadence, so they
        // must take the same prune decision and return identical bits.
        for (double bound : bounds) {
          EXPECT_TRUE(BitEqual(
              impls[0]->squared_l2_pruned(a.data(), b.data(), n, bound),
              impls[1]->squared_l2_pruned(a.data(), b.data(), n, bound)))
              << "n=" << n << " bound=" << bound;
        }
      }
    }
  }
}

TEST(KernelsTest, PublicEntryPointsMatchCanonical) {
  Rng rng(505);
  for (size_t n : {1u, 8u, 17u, 128u, 333u}) {
    auto a = RandomVec(rng, n);
    auto b = RandomVec(rng, n);
    double expect = LaneReferenceSquaredL2(a.data(), b.data(), n);
    EXPECT_TRUE(BitEqual(expect, kern::SquaredL2(a.data(), b.data(), n)));
    EXPECT_TRUE(BitEqual(expect, ann::SquaredL2(a.data(), b.data(), n)));
    double out[1];
    kern::SquaredL2Batch(a.data(), b.data(), n, 1, n, out);
    EXPECT_TRUE(BitEqual(expect, out[0]));
  }
}

TEST(KernelsTest, ScalarRefAgreesWithinRounding) {
  // The pre-PR sequential loop is not bit-compatible with the canonical
  // order but must agree to rounding — a gross mismatch means a kernel bug,
  // not reassociation.
  Rng rng(606);
  for (size_t n : {16u, 128u, 512u}) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextU64() % 1000) / 10.0f;
      b[i] = static_cast<float>(rng.NextU64() % 1000) / 10.0f;
    }
    double ref = kern::internal::SquaredL2ScalarRef(a.data(), b.data(), n);
    double got = kern::SquaredL2(a.data(), b.data(), n);
    EXPECT_NEAR(ref, got, 1e-9 * std::max(1.0, std::abs(ref)));
  }
}

// ---------------------------------------------------------------------------
// Top-k and accumulator.

TEST(TopKTest, MatchesSortTruncate) {
  Rng rng(707);
  for (size_t n : {0u, 1u, 5u, 100u}) {
    for (size_t k : {0u, 1u, 3u, 10u, 100u, 200u}) {
      std::vector<kern::ScoredEntry> entries(n);
      for (auto& e : entries) {
        // Few distinct scores force tie-breaking through ids.
        e.score = static_cast<double>(rng.NextU64() % 7);
        e.id = rng.NextU64() % 50;
      }
      std::vector<kern::ScoredEntry> expect = entries;
      std::sort(expect.begin(), expect.end(),
                [](const kern::ScoredEntry& a, const kern::ScoredEntry& b) {
                  return kern::ScoredWorse(b, a);
                });
      if (expect.size() > k) expect.resize(k);

      std::vector<kern::ScoredEntry> heap;
      for (const auto& e : entries) kern::TopKPush(heap, k, e);
      kern::TopKFinish(heap);

      ASSERT_EQ(expect.size(), heap.size()) << "n=" << n << " k=" << k;
      for (size_t i = 0; i < heap.size(); ++i) {
        // Equal (score, id) pairs are interchangeable; compare the ordered
        // (score, id) sequence.
        EXPECT_EQ(expect[i].score, heap[i].score) << "i=" << i;
        EXPECT_EQ(expect[i].id, heap[i].id) << "i=" << i;
      }
    }
  }
}

TEST(ScoreAccumulatorTest, MatchesMapAndKeepsFirstTouchOrder) {
  Rng rng(808);
  kern::ScoreAccumulator acc;
  for (int round = 0; round < 3; ++round) {
    acc.Clear();
    std::unordered_map<uint64_t, double> expect;
    std::vector<uint64_t> first_touch;
    for (int i = 0; i < 5000; ++i) {
      uint64_t key = rng.NextU64() % 700;
      double delta = static_cast<double>(rng.NextU64() % 1000) / 7.0;
      if (!expect.contains(key)) first_touch.push_back(key);
      expect[key] += delta;
      acc.Add(key, delta);
    }
    ASSERT_EQ(expect.size(), acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
      EXPECT_EQ(first_touch[i], acc.key(i)) << "round=" << round;
      EXPECT_EQ(expect[acc.key(i)], acc.value(i)) << "round=" << round;
    }
  }
}

// ---------------------------------------------------------------------------
// PointSet regressions.

TEST(PointSetTest, TryFromRowsRejectsRagged) {
  auto ok = ann::PointSet::TryFromRows({{1, 2, 3}, {4, 5, 6}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(3u, ok->dims());
  EXPECT_EQ(2u, ok->size());

  auto ragged = ann::PointSet::TryFromRows({{1, 2, 3}, {4, 5}});
  ASSERT_FALSE(ragged.ok());
  EXPECT_NE(ragged.status().message().find("ragged"), std::string::npos);
  EXPECT_NE(ragged.status().message().find("row 1"), std::string::npos);

  EXPECT_TRUE(ann::PointSet::TryFromRows({}).ok());
}

#if GTEST_HAS_DEATH_TEST
TEST(PointSetTest, FromRowsAbortsOnRagged) {
  EXPECT_DEATH(ann::PointSet::FromRows({{1, 2}, {3}}), "ragged point rows");
}
#endif

TEST(PointSetTest, StorageIsAligned) {
  ann::PointSet ps(16, 4);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(ps.row(0)) %
                    kern::kPointAlignment);
}

// ---------------------------------------------------------------------------
// Allocation contract.

TEST(AllocTest, WarmForestSearchDoesNotAllocate) {
  Rng rng(909);
  const size_t dims = 16, n = 256;
  ann::PointSet points(dims, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      points.row(i)[d] = static_cast<float>(rng.NextU64() % 1000) / 10.0f;
    }
  }
  ann::RkdForest forest(points, ann::ForestParams{});
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 8; ++q) {
    std::vector<float> v(dims);
    for (float& f : v) f = static_cast<float>(rng.NextU64() % 1000) / 10.0f;
    queries.push_back(std::move(v));
  }

  kern::SearchScratch scratch;
  std::vector<ann::NearestResult> warm(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    warm[q] = forest.ApproxNearest(queries[q].data(), &scratch);
  }

  const uint64_t before = AllocCount();
  for (int rep = 0; rep < 20; ++rep) {
    for (size_t q = 0; q < queries.size(); ++q) {
      ann::NearestResult r = forest.ApproxNearest(queries[q].data(), &scratch);
      ASSERT_EQ(warm[q].index, r.index);
      ASSERT_TRUE(BitEqual(warm[q].dist_sq, r.dist_sq));
    }
  }
  EXPECT_EQ(0u, AllocCount() - before);
}

TEST(AllocTest, WarmScoreAccumulatorAndTopKDoNotAllocate) {
  Rng rng(1010);
  std::vector<std::pair<uint64_t, double>> postings(3000);
  for (auto& [id, imp] : postings) {
    id = rng.NextU64() % 500;
    imp = static_cast<double>(rng.NextU64() % 1000) / 9.0;
  }
  kern::SearchScratch scratch;
  auto run = [&] {
    scratch.scores.Clear();
    for (const auto& [id, imp] : postings) scratch.scores.Add(id, imp);
    scratch.score_heap.clear();
    for (size_t i = 0; i < scratch.scores.size(); ++i) {
      kern::TopKPush(scratch.score_heap, 10,
                     {scratch.scores.value(i), scratch.scores.key(i)});
    }
    kern::TopKFinish(scratch.score_heap);
  };
  run();  // warm-up grows every buffer to steady state
  const uint64_t before = AllocCount();
  for (int rep = 0; rep < 20; ++rep) run();
  EXPECT_EQ(0u, AllocCount() - before);
}

TEST(AllocTest, WarmQueryScratchReducesAllocations) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  config.sign_images = false;
  workload::CorpusParams cp;
  cp.num_images = 400;
  cp.num_clusters = 256;
  cp.seed = 5;
  auto corpus = workload::GenerateCorpus(cp);
  workload::CodebookParams cbp;
  cbp.num_clusters = 256;
  cbp.dims = 16;
  cbp.seed = 6;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus), {}, 7);
  core::ServiceProvider sp(owner.package.get());
  auto features = workload::FeaturesFromBovw(
      owner.package->codebook, owner.package->corpus[0].second, 30, 0.25, 0.2,
      8);

  core::QueryScratch scratch;
  auto count_query = [&](core::QueryScratch* s) {
    const uint64_t before = AllocCount();
    core::QueryResponse resp;
    Status st = sp.Query(features, 10, {}, {}, &resp, s);
    EXPECT_TRUE(st.ok()) << st.message();
    return AllocCount() - before;
  };

  const uint64_t cold = count_query(&scratch);   // grows the scratch
  const uint64_t warm = count_query(&scratch);   // steady state
  const uint64_t bare = count_query(nullptr);    // no scratch at all
  // The warm call still allocates (VO bytes, candidate sets, response
  // payload — caller-owned output), but strictly less than the cold call
  // and the scratch-free call: the search machinery no longer allocates.
  EXPECT_LT(warm, cold);
  EXPECT_LT(warm, bare);
}

}  // namespace
}  // namespace imageproof
