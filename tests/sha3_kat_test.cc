// SHA3-256 known-answer tests (FIPS 202 / NIST CAVP style vectors).
//
// These pin the from-scratch Keccak to the spec independently of the rest of
// the suite: empty input, short strings, multi-block messages, and lengths
// straddling the rate boundary (135/136/137 and 271/272/273 bytes for the
// 136-byte SHA3-256 rate), where the padding rules are easiest to get wrong.
// Expected values generated with Python hashlib.sha3_256 and cross-checked
// against the NIST example values where published (empty, "abc", 200x 0xA3).
//
// The batch API (crypto/hasher.h HashBatch/HashPairBatch) is exercised here
// too: whatever lane-interleaved path serves a given batch size must produce
// exactly the serial digests.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::crypto {
namespace {

Bytes AsciiBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct KatVector {
  const char* name;
  Bytes input;
  const char* digest_hex;
};

std::vector<KatVector> KnownAnswerVectors() {
  return {
      {"empty", Bytes{},
       "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
      {"abc", AsciiBytes("abc"),
       "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
      {"alpha_448bit",
       AsciiBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
       "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"},
      {"alpha_896bit",
       AsciiBytes("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                  "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
       "916f6061fe879741ca6469b43971dfdb28b1a32dc36cb3254e812be27aad1d18"},
      // One byte: exercises the 0x06 || ... || 0x80 padding in isolation,
      // including the input byte that equals the domain separator.
      {"single_0xff", Bytes(1, 0xFF),
       "444b89ecce395aec5dc98f19defd3a23bca0822fc72226f58ca46a17eeeca442"},
      {"single_0x06", Bytes(1, 0x06),
       "5a3442340ee31fa728f182f7dbaef4825025f40378061428bcc9f859aa4c294a"},
      // Rate-boundary lengths (rate = 136 bytes). 135: padding squeezes into
      // the first block; 136: padding forces an entire extra block; 137: one
      // full block plus a one-byte tail.
      {"a3_x135", Bytes(135, 0xA3),
       "d51927265ca4bf0cc8b4453387700918c03f8894e395ad437d4573f3be4d2c34"},
      {"a3_x136", Bytes(136, 0xA3),
       "0adf6bfb359ae40019b67d8c49c361574b70242a6b752de6f9e0d426ca177f7a"},
      {"a3_x137", Bytes(137, 0xA3),
       "e2fa06eaa22fe60106af67d5f6ea093fe58f07d2dcfb06d51057953f114849a7"},
      // 200x 0xA3 is the NIST FIPS 202 example file value.
      {"a3_x200", Bytes(200, 0xA3),
       "79f38adec5c20307a98ef76e8324afbfd46cfd81b22e3973c65fa1bd9de31787"},
      // Two-block boundary.
      {"a3_x271", Bytes(271, 0xA3),
       "4a247a29191b7f1972cb50605c3e73ebc595d7a4744824bb635b32af7d273570"},
      {"a3_x272", Bytes(272, 0xA3),
       "c4742d97ad8ff950c0b5b078600ab1908c864c75b60f419e2d208dfc26a8ba11"},
      {"a3_x273", Bytes(273, 0xA3),
       "45e4a8772aa7f29907a00912f5eef4fb0bc19bd51b3d153c34216a4cdb099270"},
  };
}

TEST(Sha3KatTest, OneShotVectors) {
  for (const KatVector& v : KnownAnswerVectors()) {
    EXPECT_EQ(Sha3(v.input).ToHex(), v.digest_hex) << v.name;
  }
}

TEST(Sha3KatTest, IncrementalByteAtATimeVectors) {
  // Feeding one byte per Update must hit every buffered-absorb path.
  for (const KatVector& v : KnownAnswerVectors()) {
    Sha3_256 h;
    for (uint8_t b : v.input) h.Update(&b, 1);
    EXPECT_EQ(h.Finalize().ToHex(), v.digest_hex) << v.name;
  }
}

TEST(Sha3KatTest, MillionAs) {
  // NIST long-message example: 1,000,000 repetitions of 'a'.
  Sha3_256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finalize().ToHex(),
            "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1");
}

// ---------------------------------------------------------------------------
// Batch API must be byte-identical to the serial sponge.
// ---------------------------------------------------------------------------

TEST(Sha3BatchTest, KatVectorsThroughHashBatch) {
  auto vectors = KnownAnswerVectors();
  std::vector<BytesView> views;
  views.reserve(vectors.size());
  for (const KatVector& v : vectors) views.push_back(BytesView(v.input));
  std::vector<Digest> out(vectors.size());
  HashBatch(views.data(), out.data(), views.size());
  for (size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(out[i].ToHex(), vectors[i].digest_hex) << vectors[i].name;
  }
}

TEST(Sha3BatchTest, RandomLengthsMatchSerial) {
  Rng rng(2024);
  // Batch sizes around the 4-lane width, message lengths spanning zero to
  // several blocks so lanes finish at different times and refill.
  for (size_t batch : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                       size_t{7}, size_t{8}, size_t{13}, size_t{64}}) {
    std::vector<Bytes> msgs(batch);
    for (auto& m : msgs) {
      size_t len = rng.NextBounded(600);
      m.resize(len);
      for (auto& b : m) b = static_cast<uint8_t>(rng.NextU64());
    }
    std::vector<BytesView> views;
    for (const auto& m : msgs) views.push_back(BytesView(m));
    std::vector<Digest> batched(batch);
    HashBatch(views.data(), batched.data(), batch);
    for (size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(batched[i], Sha3(msgs[i])) << "batch=" << batch << " i=" << i;
    }
  }
}

TEST(Sha3BatchTest, ExactRateMultiplesMatchSerial) {
  // Lengths that are multiples of the rate need a full padding block; make
  // sure the lane scheduler agrees with the serial path there.
  for (size_t len : {size_t{0}, size_t{136}, size_t{272}, size_t{408}}) {
    std::vector<Bytes> msgs(4, Bytes(len, 0x5A));
    for (size_t i = 0; i < msgs.size(); ++i) {
      if (!msgs[i].empty()) msgs[i][0] = static_cast<uint8_t>(i);
    }
    std::vector<BytesView> views;
    for (const auto& m : msgs) views.push_back(BytesView(m));
    std::vector<Digest> batched(msgs.size());
    HashBatch(views.data(), batched.data(), msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(batched[i], Sha3(msgs[i])) << "len=" << len << " i=" << i;
    }
  }
}

TEST(Sha3BatchTest, HashPairBatchMatchesHashPair) {
  Rng rng(7);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{9},
                   size_t{33}}) {
    std::vector<Digest> left(n), right(n), out(n);
    for (size_t i = 0; i < n; ++i) {
      for (auto& b : left[i].bytes) b = static_cast<uint8_t>(rng.NextU64());
      for (auto& b : right[i].bytes) b = static_cast<uint8_t>(rng.NextU64());
    }
    HashPairBatch(left.data(), right.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], HashPair(left[i], right[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Sha3BatchTest, HashInvocationCounterAdvances) {
  uint64_t before = HashInvocations();
  (void)Sha3(Bytes{});
  Digest d{};
  (void)HashPair(d, d);
  std::vector<BytesView> views(3, BytesView(nullptr, 0));
  std::vector<Digest> out(3);
  HashBatch(views.data(), out.data(), views.size());
  EXPECT_EQ(HashInvocations() - before, 5u);
}

}  // namespace
}  // namespace imageproof::crypto
