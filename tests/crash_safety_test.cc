// Crash-safety suite for the disk store: a simulated power failure at
// every step of the epoch publish protocol (torn temp write, failed fsync,
// dropped rename — common/fault.h sites inside storage/file_io.cc) must
// leave a reopening process serving the old or the new epoch intact, never
// a torn one; and an exhaustive single-bit-flip scan over a small on-disk
// package must show zero undetected corruptions: every flipped bit in
// digest-covered bytes is rejected (at open or at lazy payload access via
// deep_verify), and every flip that passes lands in alignment padding and
// leaves the served state bit-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/client.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "storage/package_store.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

namespace imageproof::storage {
namespace {

core::OwnerOutput BuildDeploymentOf(size_t num_images, size_t num_clusters,
                                    size_t dims, uint64_t seed) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = num_clusters;
  cp.min_distinct = 2;
  cp.max_distinct = 5;
  cp.seed = seed;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = num_clusters;
  cbp.dims = dims;
  cbp.seed = seed + 1;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs), seed + 2);
}

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  (void)system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  return dir;
}

// --- power failure at every protocol step -------------------------------

class StoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Global().DisarmAll();
    owner_ = BuildDeploymentOf(60, 48, 8, 13);
    dir_ = FreshDir("store_crash");
    ASSERT_TRUE(PackageStore::WriteEpoch(dir_, 1, *owner_.package).ok());
    ASSERT_TRUE(PackageStore::SetCurrentEpoch(dir_, 1).ok());
  }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  // Asserts a cold reopen of the directory serves exactly `epoch`, fully
  // verified (deep_verify walks every chain and payload — "intact, not
  // torn" is checked against the owner's signature, not just parseability).
  void ExpectServes(uint64_t epoch) {
    OpenOptions opts;
    opts.params = &owner_.public_params;
    opts.deep_verify = true;
    uint64_t got = 0;
    auto pkg = PackageStore::OpenCurrent(dir_, opts, &got);
    ASSERT_TRUE(pkg.ok()) << pkg.status().message();
    EXPECT_EQ(got, epoch);
    EXPECT_EQ((*pkg)->RootDigest(), owner_.package->RootDigest());
  }

  core::OwnerOutput owner_;
  std::string dir_;
};

TEST_F(StoreCrashTest, TornEpochWriteLeavesOldEpochServing) {
  auto& fi = fault::FaultInjector::Global();
  fi.ArmAlways("storage.file.short_write");
  auto written = PackageStore::WriteEpoch(dir_, 2, *owner_.package);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.status().code(), StatusCode::kCorrupted);
  fi.DisarmAll();
  // The torn temp file is on disk, exactly as after a crash; it must not
  // affect what a reopening process serves.
  ExpectServes(1);
}

TEST_F(StoreCrashTest, FailedFsyncLeavesOldEpochServing) {
  auto& fi = fault::FaultInjector::Global();
  fi.ArmAlways("storage.file.fsync_fail");
  auto written = PackageStore::WriteEpoch(dir_, 2, *owner_.package);
  ASSERT_FALSE(written.ok());
  fi.DisarmAll();
  ExpectServes(1);
}

TEST_F(StoreCrashTest, DroppedRenameLeavesOldEpochServing) {
  auto& fi = fault::FaultInjector::Global();
  fi.ArmAlways("storage.file.rename_fail");
  auto written = PackageStore::WriteEpoch(dir_, 2, *owner_.package);
  ASSERT_FALSE(written.ok());
  fi.DisarmAll();
  ExpectServes(1);
}

TEST_F(StoreCrashTest, CrashBetweenWriteAndFlipLeavesOldEpochServing) {
  // The epoch file lands completely, then the process dies before the
  // CURRENT flip: the new epoch exists on disk but is not published.
  ASSERT_TRUE(PackageStore::WriteEpoch(dir_, 2, *owner_.package).ok());
  ExpectServes(1);
  // Recovery (or a restarted writer) can complete the flip later.
  ASSERT_TRUE(PackageStore::SetCurrentEpoch(dir_, 2).ok());
  ExpectServes(2);
}

TEST_F(StoreCrashTest, TornCurrentFlipLeavesOldEpochServing) {
  ASSERT_TRUE(PackageStore::WriteEpoch(dir_, 2, *owner_.package).ok());
  auto& fi = fault::FaultInjector::Global();
  for (const char* site : {"storage.file.short_write",
                           "storage.file.fsync_fail",
                           "storage.file.rename_fail"}) {
    fi.DisarmAll();
    fi.ArmAlways(site);
    Status flip = PackageStore::SetCurrentEpoch(dir_, 2);
    ASSERT_FALSE(flip.ok()) << site;
    fi.DisarmAll();
    ExpectServes(1);
  }
  ASSERT_TRUE(PackageStore::SetCurrentEpoch(dir_, 2).ok());
  ExpectServes(2);
}

// --- engine updates under injected crashes ------------------------------

class EngineCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Global().DisarmAll();
    owner_ = BuildDeploymentOf(60, 48, 8, 29);
    dir_ = FreshDir("engine_crash");
    features_ =
        workload::GenerateQueryFeatures(owner_.package->codebook, 10, 0.3, 7);
    insert_vec_ = owner_.package->corpus[0].second;
  }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  std::unique_ptr<core::QueryEngine> MakeEngine() {
    // Serializer round-trip = the engine's own clone path; leaves
    // owner_.package available for reference comparisons.
    auto clone = DeserializeSpPackage(SerializeSpPackage(*owner_.package));
    EXPECT_TRUE(clone.ok());
    core::EngineOptions eo;
    eo.num_workers = 1;
    eo.update_max_attempts = 1;  // one attempt per armed fault
    eo.persist_dir = dir_;
    return std::make_unique<core::QueryEngine>(
        std::shared_ptr<const core::SpPackage>(std::move(*clone)),
        owner_.public_params, eo);
  }

  // The engine must still answer verifying queries from its current
  // snapshot after a failed update.
  void ExpectServingQueries(core::QueryEngine& engine) {
    auto resp = engine.Submit(features_, 3).get();
    ASSERT_TRUE(resp.ok()) << resp.status.message();
    core::Client client(resp.snapshot->params);
    EXPECT_TRUE(client.Verify(features_, 3, resp.response.vo).ok());
  }

  core::OwnerOutput owner_;
  std::string dir_;
  std::vector<std::vector<float>> features_;
  bovw::BovwVector insert_vec_;
};

TEST_F(EngineCrashTest, UpdateSurvivesCrashAtEveryPersistStep) {
  auto engine = MakeEngine();
  auto& fi = fault::FaultInjector::Global();

  struct Step {
    const char* what;
    const char* site;
    std::vector<uint64_t> hits;  // which Fire() at the site to trip
  };
  // Hit 0 of each site is the epoch-file write; rename hit 1 is the CURRENT
  // flip (the epoch file's own rename having succeeded).
  const Step steps[] = {
      {"torn epoch write", "storage.file.short_write", {0}},
      {"epoch fsync failure", "storage.file.fsync_fail", {0}},
      {"epoch rename dropped", "storage.file.rename_fail", {0}},
      {"CURRENT flip dropped", "storage.file.rename_fail", {1}},
  };
  for (const Step& step : steps) {
    fi.DisarmAll();
    fi.ArmHits(step.site, step.hits);
    auto r = engine->InsertImage(owner_.private_key, 700000, insert_vec_,
                                 workload::GenerateImageBlob(700000));
    ASSERT_FALSE(r.ok()) << step.what << " did not fail the update";
    EXPECT_EQ(r.status().code(), StatusCode::kCorrupted) << step.what;
    fi.DisarmAll();

    // Old snapshot still serving, in memory and for a reopening process:
    // no epoch got published.
    EXPECT_EQ(engine->CurrentSnapshot()->version, 0u) << step.what;
    EXPECT_FALSE(engine->CurrentSnapshot()->package->disk_backed())
        << step.what;
    EXPECT_FALSE(PackageStore::CurrentEpoch(dir_).ok())
        << step.what << ": CURRENT appeared despite the crash";
    ExpectServingQueries(*engine);
  }

  // With faults cleared the same update goes through end to end.
  auto ok = engine->InsertImage(owner_.private_key, 700000, insert_vec_,
                                workload::GenerateImageBlob(700000));
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  auto snap = engine->CurrentSnapshot();
  EXPECT_EQ(snap->version, 1u);
  EXPECT_TRUE(snap->package->disk_backed());
  auto cur = PackageStore::CurrentEpoch(dir_);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 1u);
  ExpectServingQueries(*engine);

  // And the published epoch reopens verified from a cold start.
  OpenOptions opts;
  opts.params = &snap->params;
  opts.deep_verify = true;
  uint64_t epoch = 0;
  auto reopened = PackageStore::OpenCurrent(dir_, opts, &epoch);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ((*reopened)->RootDigest(), snap->package->RootDigest());
}

// --- exhaustive single-bit-flip scan ------------------------------------

// Every bit of a small on-disk package is flipped once. For each flip, the
// file is opened with full verification (signature + deep_verify): either
// the open/walk rejects it (detected), or the flip must lie in alignment
// padding — bytes covered by no digest — and the opened package must be
// bit-identical to the original (harmless). Anything else is an undetected
// corruption and fails the test.
TEST(BitFlipScanTest, EveryFlippedBitDetectedOrHarmless) {
  core::OwnerOutput owner = BuildDeploymentOf(10, 12, 4, 41);
  std::string path = ::testing::TempDir() + "/bitflip_scan.ipk";
  WriteOptions wo;
  wo.page_size = 64;  // shrink padding so the scan is dominated by real data
  ASSERT_TRUE(PackageStore::Write(path, *owner.package, wo).ok());

  auto layout = PackageStore::Inspect(path);
  ASSERT_TRUE(layout.ok());
  const uint64_t file_size = layout->file_size;
  ASSERT_LE(file_size, 256u * 1024) << "scan corpus grew too large";

  // Digest-covered byte ranges: header (its own digest chain), TOC, every
  // section (kImageBlobs via per-payload digests walked by deep_verify).
  auto covered = [&](uint64_t off) {
    if (off < layout->header_bytes) return true;
    if (off >= layout->toc_offset && off < layout->toc_offset + layout->toc_size)
      return true;
    for (const auto& s : layout->sections) {
      if (off >= s.offset && off < s.offset + s.size) return true;
    }
    return false;
  };

  OpenOptions opts;
  opts.params = &owner.public_params;
  opts.deep_verify = true;
  const crypto::Digest root = owner.package->RootDigest();

  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  uint64_t detected = 0, harmless = 0;
  for (uint64_t off = 0; off < file_size; ++off) {
    ASSERT_EQ(std::fseek(f, static_cast<long>(off), SEEK_SET), 0);
    int orig = std::fgetc(f);
    ASSERT_NE(orig, EOF);
    for (int bit = 0; bit < 8; ++bit) {
      const uint8_t mutant = static_cast<uint8_t>(orig ^ (1 << bit));
      ASSERT_EQ(std::fseek(f, static_cast<long>(off), SEEK_SET), 0);
      ASSERT_NE(std::fputc(mutant, f), EOF);
      ASSERT_EQ(std::fflush(f), 0);

      auto opened = PackageStore::Open(path, opts);
      if (!opened.ok()) {
        EXPECT_EQ(opened.status().code(), StatusCode::kCorrupted)
            << "byte " << off << " bit " << bit;
        ++detected;
      } else {
        // The flip survived full verification: it must be padding, and the
        // served state must be exactly the original.
        ASSERT_FALSE(covered(off))
            << "undetected corruption at covered byte " << off << " bit "
            << bit;
        EXPECT_EQ((*opened)->RootDigest(), root);
        EXPECT_TRUE((*opened)->ImagesEqual(*owner.package));
        ++harmless;
      }
    }
    ASSERT_EQ(std::fseek(f, static_cast<long>(off), SEEK_SET), 0);
    ASSERT_NE(std::fputc(orig, f), EOF);
    ASSERT_EQ(std::fflush(f), 0);
  }
  std::fclose(f);

  // The scan must have exercised both classes, and after restoration the
  // original file still opens clean.
  EXPECT_GT(detected, 0u);
  EXPECT_GT(harmless, 0u);  // page-64 alignment always leaves some padding
  auto final_open = PackageStore::Open(path, opts);
  EXPECT_TRUE(final_open.ok()) << final_open.status().message();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imageproof::storage
