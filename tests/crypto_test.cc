// Tests for the from-scratch crypto substrate: SHA3-256 and SHA-256 against
// published vectors, bignum arithmetic against independent references, and
// RSA sign/verify round trips.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "crypto/bignum.h"
#include "crypto/digest.h"
#include "crypto/hasher.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/sha3.h"

namespace imageproof::crypto {
namespace {

Bytes AsciiBytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// SHA3-256 (FIPS 202 / NIST example values)
// ---------------------------------------------------------------------------

TEST(Sha3Test, EmptyString) {
  EXPECT_EQ(Sha3(Bytes{}).ToHex(),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3Test, Abc) {
  EXPECT_EQ(Sha3(AsciiBytes("abc")).ToHex(),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3Test, LongerStandardVector) {
  EXPECT_EQ(
      Sha3(AsciiBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Sha3Test, MillionAs) {
  Sha3_256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finalize().ToHex(),
            "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1");
}

TEST(Sha3Test, IncrementalMatchesOneShot) {
  Bytes data;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(rng.NextU64()));
  // Split at many different points, including block boundaries (rate = 136).
  for (size_t split : {size_t{0}, size_t{1}, size_t{135}, size_t{136},
                       size_t{137}, size_t{272}, size_t{999}, size_t{1000}}) {
    Sha3_256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.Finalize(), Sha3(data)) << "split=" << split;
  }
}

TEST(Sha3Test, ExactRateBlock) {
  Bytes data(136, 0x5A);
  Bytes data2(137, 0x5A);
  EXPECT_NE(Sha3(data), Sha3(data2));
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha2(Bytes{}).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha2(AsciiBytes("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlocks) {
  EXPECT_EQ(
      Sha2(AsciiBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all differ.
  Digest prev{};
  for (size_t len : {size_t{54}, size_t{55}, size_t{56}, size_t{57}, size_t{63},
                     size_t{64}, size_t{65}}) {
    Bytes data(len, 0x61);
    Digest d = Sha2(data);
    EXPECT_NE(d, prev);
    prev = d;
  }
}

// ---------------------------------------------------------------------------
// DigestBuilder
// ---------------------------------------------------------------------------

TEST(DigestBuilderTest, MatchesByteWriterEncoding) {
  ByteWriter w;
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutF64(3.14159);
  Digest via_writer = Sha3(w.bytes());

  Digest via_builder = DigestBuilder()
                           .AddU32(0xDEADBEEF)
                           .AddU64(0x0123456789ABCDEFULL)
                           .AddF64(3.14159)
                           .Finalize();
  EXPECT_EQ(via_writer, via_builder);
}

TEST(DigestBuilderTest, OrderMatters) {
  Digest a = DigestBuilder().AddU32(1).AddU32(2).Finalize();
  Digest b = DigestBuilder().AddU32(2).AddU32(1).Finalize();
  EXPECT_NE(a, b);
}

TEST(DigestTest, ZeroAndHex) {
  Digest z = Digest::Zero();
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToHex(), std::string(64, '0'));
  EXPECT_FALSE(Sha3(Bytes{}).IsZero());
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

TEST(BigIntTest, HexRoundTrip) {
  BigInt x = BigInt::FromHex("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(x.ToHex(), "deadbeefcafebabe0123456789abcdef");
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes raw = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt x = BigInt::FromBytes(raw);
  EXPECT_EQ(x.ToBytes(9), raw);
  EXPECT_EQ(x.ToHex(), "10203040506070809");
}

TEST(BigIntTest, AddSubInverse) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::RandomWithBits(1 + static_cast<int>(rng.NextBounded(256)), rng);
    BigInt b = BigInt::RandomWithBits(1 + static_cast<int>(rng.NextBounded(256)), rng);
    BigInt sum = BigInt::Add(a, b);
    EXPECT_EQ(BigInt::Sub(sum, b), a);
    EXPECT_EQ(BigInt::Sub(sum, a), b);
  }
}

TEST(BigIntTest, MulMatchesU64) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64() >> 33;
    uint64_t b = rng.NextU64() >> 33;
    BigInt p = BigInt::Mul(BigInt(a), BigInt(b));
    EXPECT_EQ(p.LowU64(), a * b);
  }
}

TEST(BigIntTest, DivModIdentity) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::RandomWithBits(2 + static_cast<int>(rng.NextBounded(384)), rng);
    BigInt b = BigInt::RandomWithBits(1 + static_cast<int>(rng.NextBounded(200)), rng);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_LT(BigInt::Compare(r, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  }
}

TEST(BigIntTest, KnownDivision) {
  BigInt a = BigInt::FromHex("fedcba9876543210fedcba9876543210");
  BigInt b = BigInt::FromHex("f00dfeed");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  // Verified independently: a = q*b + r.
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  EXPECT_LT(BigInt::Compare(r, b), 0);
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt x = BigInt::FromHex("123456789abcdef0123456789abcdef");
  for (int s : {1, 7, 31, 32, 33, 64, 100}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(x, s), s), x) << s;
  }
}

TEST(BigIntTest, ModExpSmallValues) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401.
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(20), BigInt(1000)).LowU64(), 401u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  BigInt p(1000003);
  for (uint64_t a : {2ULL, 3ULL, 999999ULL}) {
    EXPECT_EQ(BigInt::ModExp(BigInt(a), BigInt(1000002), p).LowU64(), 1u);
  }
}

TEST(BigIntTest, ModInverse) {
  Rng rng(23);
  BigInt m = BigInt::FromHex("fffffffb");  // prime
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Add(BigInt(1), BigInt::RandomBelow(BigInt::Sub(m, BigInt(1)), rng));
    BigInt inv = BigInt::ModInverse(a, m);
    ASSERT_FALSE(inv.IsZero());
    EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, inv), m).LowU64(), 1u);
  }
}

TEST(BigIntTest, ModInverseNotInvertible) {
  EXPECT_TRUE(BigInt::ModInverse(BigInt(6), BigInt(9)).IsZero());
}

TEST(BigIntTest, GcdKnown) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)).LowU64(), 12u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)).LowU64(), 1u);
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(29);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 65537ULL, 1000003ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(p), 20, rng)) << p;
  }
  for (uint64_t c : {1ULL, 4ULL, 100ULL, 65541ULL, 1000001ULL}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(c), 20, rng)) << c;
  }
}

TEST(BigIntTest, GeneratePrimeHasRequestedBits) {
  Rng rng(31);
  BigInt p = BigInt::GeneratePrime(128, rng);
  EXPECT_EQ(p.BitLength(), 128);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, 30, rng));
}

// ---------------------------------------------------------------------------
// RSA
// ---------------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    key_pair_ = new RsaKeyPair(RsaKeyPair::Generate(512, rng));
  }
  static void TearDownTestSuite() {
    delete key_pair_;
    key_pair_ = nullptr;
  }
  static RsaKeyPair* key_pair_;
};

RsaKeyPair* RsaTest::key_pair_ = nullptr;

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Digest d = Sha3(AsciiBytes("hello imageproof"));
  Bytes sig = RsaSign(key_pair_->private_key, d);
  EXPECT_EQ(sig.size(), key_pair_->public_key.ModulusBytes());
  EXPECT_TRUE(RsaVerify(key_pair_->public_key, d, sig));
}

TEST_F(RsaTest, RejectsWrongDigest) {
  Digest d = Sha3(AsciiBytes("message one"));
  Bytes sig = RsaSign(key_pair_->private_key, d);
  Digest other = Sha3(AsciiBytes("message two"));
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, other, sig));
}

TEST_F(RsaTest, RejectsTamperedSignature) {
  Digest d = Sha3(AsciiBytes("message"));
  Bytes sig = RsaSign(key_pair_->private_key, d);
  for (size_t pos : {size_t{0}, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(RsaVerify(key_pair_->public_key, d, bad));
  }
}

TEST_F(RsaTest, RejectsWrongLengthSignature) {
  Digest d = Sha3(AsciiBytes("message"));
  Bytes sig = RsaSign(key_pair_->private_key, d);
  Bytes short_sig(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, d, short_sig));
  Bytes long_sig = sig;
  long_sig.push_back(0);
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, d, long_sig));
}

TEST_F(RsaTest, SignerVerifierInterface) {
  RsaSigner signer(key_pair_->private_key);
  RsaVerifier verifier(key_pair_->public_key);
  Digest d = Sha3(AsciiBytes("interface"));
  EXPECT_TRUE(verifier.Verify(d, signer.Sign(d)));
}

TEST_F(RsaTest, DeterministicSignature) {
  Digest d = Sha3(AsciiBytes("determinism"));
  EXPECT_EQ(RsaSign(key_pair_->private_key, d), RsaSign(key_pair_->private_key, d));
}

TEST(RsaKeygenTest, DifferentSeedsDifferentKeys) {
  Rng rng1(1), rng2(2);
  RsaKeyPair a = RsaKeyPair::Generate(256, rng1);
  RsaKeyPair b = RsaKeyPair::Generate(256, rng2);
  EXPECT_NE(a.public_key.n.ToHex(), b.public_key.n.ToHex());
}

}  // namespace
}  // namespace imageproof::crypto
