// Concurrency tests: ServiceProvider::Query and Client::Verify are const
// operations over immutable state, so any number of clients may be served
// in parallel from one package — and ParallelFor must behave exactly like
// the serial loop. The QueryEngine layer adds snapshot isolation on top:
// writers publish copy-on-write snapshots while readers keep verifying
// against the root they were admitted under. Build with -DIMAGEPROOF_TSAN=ON
// to run this file under ThreadSanitizer (scripts/check.sh --tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/parallel.h"
#include "common/thread_pool.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/query_engine.h"
#include "core/server.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t n : {0u, 1u, 63u, 64u, 1000u, 4097u}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(n, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelForTest, MatchesSerialResults) {
  const size_t n = 10000;
  std::vector<uint64_t> parallel_out(n), serial_out(n);
  auto work = [](size_t i) {
    uint64_t x = i * 2654435761u;
    for (int r = 0; r < 10; ++r) x = x * 6364136223846793005ULL + 1;
    return x;
  };
  ParallelFor(n, [&](size_t i) { parallel_out[i] = work(i); });
  for (size_t i = 0; i < n; ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, ThreadCapRespected) {
  std::atomic<int> concurrent{0}, peak{0};
  ParallelFor(
      1000,
      [&](size_t) {
        int now = ++concurrent;
        int old_peak = peak.load();
        while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
        }
        --concurrent;
      },
      /*max_threads=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ParallelBuildTest, DeploymentIdenticalToItself) {
  // Two builds of the same deployment (each internally parallel) must agree
  // on every signed digest: the parallel loops are deterministic.
  auto build = [] {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 400;
    cp.num_clusters = 128;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 128;
    cbp.dims = 16;
    return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                 std::move(corpus), std::move(blobs));
  };
  core::OwnerOutput a = build();
  core::OwnerOutput b = build();
  EXPECT_EQ(a.package->RootDigest(), b.package->RootDigest());
  EXPECT_EQ(a.public_params.root_signature, b.public_params.root_signature);
}

TEST(ConcurrentQueryTest, ManyClientsOneServer) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 500;
  cp.num_clusters = 128;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 16;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));
  core::ServiceProvider sp(owner.package.get());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::Client client(owner.public_params);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto features = workload::GenerateQueryFeatures(
            owner.package->codebook, 15, 0.3, t * 100 + q);
        core::QueryResponse resp = sp.Query(features, 5);
        auto verified = client.Verify(features, 5, resp.vo);
        if (!verified.ok()) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAndDeliversResults) {
  ThreadPool pool(4, /*queue_capacity=*/8);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  // One worker blocked on a gate; the queue holds 2 more tasks. The 4th
  // Submit must block until the gate opens.
  ThreadPool pool(1, /*queue_capacity=*/2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> done{0};
  auto blocker = pool.Submit([opened, &done] {
    opened.wait();
    ++done;
  });
  // Wait for the worker to pick up the blocker so the queue is empty.
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  for (int i = 0; i < 2; ++i) {
    (void)pool.Submit([&done] { ++done; });
  }
  EXPECT_EQ(pool.QueueDepth(), 2u);

  std::atomic<bool> fourth_submitted{false};
  std::thread submitter([&] {
    (void)pool.Submit([&done] { ++done; });
    fourth_submitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fourth_submitted.load()) << "Submit did not block on full queue";
  gate.set_value();
  submitter.join();
  blocker.get();
  // Destructor drains the remaining tasks.
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

// ---------------------------------------------------------------------------
// QueryEngine: snapshot isolation under a concurrent update/query storm
// ---------------------------------------------------------------------------

struct EngineFixture {
  core::OwnerOutput owner;
  std::shared_ptr<const core::SpPackage> package;

  explicit EngineFixture(uint64_t seed = 5) {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 250;
    cp.num_clusters = 128;
    cp.seed = seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 128;
    cbp.dims = 16;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs));
    package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));
  }
};

TEST(QueryEngineStressTest, UpdatesVersusQueries) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 32;
  opts.intra_query_threads = 2;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  constexpr int kWriters = 2;
  constexpr int kUpdatesPerWriter = 4;
  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 6;

  std::atomic<int> verify_failures{0};
  std::atomic<int> update_failures{0};
  std::atomic<int> updates_ok{0};

  std::vector<std::thread> threads;
  // Writers: insert fresh images (ids disjoint from the corpus and from
  // each other), then delete half of them again.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      workload::CorpusParams qp;
      qp.num_clusters = 128;
      for (int u = 0; u < kUpdatesPerWriter; ++u) {
        bovw::ImageId id = 10000 + w * 100 + u;
        bovw::BovwVector vec =
            workload::GenerateQueryBovw(qp, 20, 900 + w * 10 + u);
        auto ins = engine.InsertImage(fx.owner.private_key, id, vec,
                                      workload::GenerateImageBlob(id));
        if (!ins.ok()) {
          ++update_failures;
          continue;
        }
        ++updates_ok;
        if (u % 2 == 1) {
          auto del = engine.DeleteImage(fx.owner.private_key, id);
          if (del.ok()) {
            ++updates_ok;
          } else {
            ++update_failures;
          }
        }
      }
    });
  }
  // Readers: every response must verify against the PublicParams of the
  // snapshot it was served under — the heart of snapshot isolation. A VO
  // checked against the wrong root signature would fail, so 0 failures here
  // proves responses and roots stay paired across concurrent swaps.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        auto features = workload::GenerateQueryFeatures(
            fx.package->codebook, 10, 0.3, r * 1000 + q);
        core::EngineResponse resp = engine.Submit(features, 5).get();
        core::Client client(resp.snapshot->params);
        auto verified = client.Verify(features, 5, resp.response.vo);
        if (!verified.ok()) ++verify_failures;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(verify_failures.load(), 0);
  EXPECT_EQ(update_failures.load(), 0);
  core::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GT(stats.snapshot_version, 0u);
  // Counter-backed stats read zero when the obs layer is compiled out.
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(stats.queries_served,
              static_cast<uint64_t>(kReaders * kQueriesPerReader));
    EXPECT_EQ(stats.updates_applied, static_cast<uint64_t>(updates_ok.load()));
  }
}

// Readers hammer a small pool of repeated queries — so the result cache
// takes hits, racing inserts of the same key, and epoch turnover from the
// writers — while mixing compressed and raw framing (distinct cache keys)
// and hitting each snapshot's proof memo from several workers at once.
// Every response must still verify against the snapshot it was served
// under. Run under -DIMAGEPROOF_TSAN=ON this is the data-race harness for
// the cache + memo fast paths.
TEST(QueryEngineStressTest, CacheAndCompressionUnderUpdates) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 64;
  opts.intra_query_threads = 2;
  opts.cache_capacity = 16;  // small: forces evictions alongside hits
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  // A pool of 4 hot queries shared by all readers.
  std::vector<std::vector<std::vector<float>>> pool;
  for (uint64_t q = 0; q < 4; ++q) {
    pool.push_back(workload::GenerateQueryFeatures(fx.package->codebook, 10,
                                                   0.3, 600 + q));
  }

  std::atomic<int> verify_failures{0};
  std::atomic<int> update_failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      workload::CorpusParams qp;
      qp.num_clusters = 128;
      for (int u = 0; u < 3; ++u) {
        bovw::ImageId id = 20000 + w * 100 + u;
        auto ins = engine.InsertImage(
            fx.owner.private_key, id,
            workload::GenerateQueryBovw(qp, 20, 700 + w * 10 + u),
            workload::GenerateImageBlob(id));
        if (!ins.ok()) ++update_failures;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      for (int q = 0; q < 10; ++q) {
        const auto& features = pool[(r + q) % pool.size()];
        core::SubmitOptions submit;
        submit.compress_vo = (r + q) % 2 == 0;
        core::EngineResponse resp = engine.Submit(features, 5, submit).get();
        if (!resp.ok()) {
          ++verify_failures;
          continue;
        }
        core::Client client(resp.snapshot->params);
        if (!client.Verify(features, 5, resp.response.vo).ok()) {
          ++verify_failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(verify_failures.load(), 0);
  EXPECT_EQ(update_failures.load(), 0);
  core::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.in_flight, 0u);
  if (obs::kMetricsEnabled) {
    EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
    // Memo counters are per-snapshot (old epochs' memos died with their
    // snapshots), so force one cold serve against the final epoch before
    // checking them.
    auto fresh =
        workload::GenerateQueryFeatures(fx.package->codebook, 10, 0.3, 650);
    ASSERT_TRUE(engine.Submit(fresh, 5).get().ok());
    stats = engine.Stats();
    EXPECT_GT(stats.memo_builds + stats.memo_hits, 0u);
  }
}

TEST(QueryEngineTest, InFlightQueriesKeepTheirSnapshot) {
  EngineFixture fx;
  core::EngineOptions opts;
  opts.num_workers = 2;
  core::QueryEngine engine(fx.package, fx.owner.public_params, opts);

  auto old_snapshot = engine.CurrentSnapshot();
  auto features =
      workload::GenerateQueryFeatures(fx.package->codebook, 10, 0.3, 1);
  std::future<core::EngineResponse> pending = engine.Submit(features, 5);

  workload::CorpusParams qp;
  qp.num_clusters = 128;
  auto ins = engine.InsertImage(fx.owner.private_key, 20000,
                                workload::GenerateQueryBovw(qp, 20, 7),
                                workload::GenerateImageBlob(20000));
  ASSERT_TRUE(ins.ok()) << ins.status().message();

  core::EngineResponse resp = pending.get();
  // The pre-update submission was served under the pre-update snapshot...
  EXPECT_EQ(resp.snapshot->version, old_snapshot->version);
  core::Client old_client(old_snapshot->params);
  EXPECT_TRUE(old_client.Verify(features, 5, resp.response.vo).ok());

  // ...while new submissions see the new state, verified under its params.
  core::EngineResponse fresh = engine.Submit(features, 5).get();
  EXPECT_GT(fresh.snapshot->version, old_snapshot->version);
  core::Client new_client(fresh.snapshot->params);
  EXPECT_TRUE(new_client.Verify(features, 5, fresh.response.vo).ok());

  // The two snapshots are distinct objects with distinct signed roots.
  EXPECT_NE(resp.snapshot->package.get(), fresh.snapshot->package.get());
  EXPECT_NE(old_snapshot->params.root_signature,
            fresh.snapshot->params.root_signature);
}

}  // namespace
}  // namespace imageproof
