// Concurrency tests: ServiceProvider::Query and Client::Verify are const
// operations over immutable state, so any number of clients may be served
// in parallel from one package — and ParallelFor must behave exactly like
// the serial loop.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/parallel.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t n : {0u, 1u, 63u, 64u, 1000u, 4097u}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(n, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelForTest, MatchesSerialResults) {
  const size_t n = 10000;
  std::vector<uint64_t> parallel_out(n), serial_out(n);
  auto work = [](size_t i) {
    uint64_t x = i * 2654435761u;
    for (int r = 0; r < 10; ++r) x = x * 6364136223846793005ULL + 1;
    return x;
  };
  ParallelFor(n, [&](size_t i) { parallel_out[i] = work(i); });
  for (size_t i = 0; i < n; ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, ThreadCapRespected) {
  std::atomic<int> concurrent{0}, peak{0};
  ParallelFor(
      1000,
      [&](size_t) {
        int now = ++concurrent;
        int old_peak = peak.load();
        while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
        }
        --concurrent;
      },
      /*max_threads=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ParallelBuildTest, DeploymentIdenticalToItself) {
  // Two builds of the same deployment (each internally parallel) must agree
  // on every signed digest: the parallel loops are deterministic.
  auto build = [] {
    core::Config config = core::Config::ImageProof();
    config.rsa_bits = 512;
    workload::CorpusParams cp;
    cp.num_images = 400;
    cp.num_clusters = 128;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = 128;
    cbp.dims = 16;
    return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                 std::move(corpus), std::move(blobs));
  };
  core::OwnerOutput a = build();
  core::OwnerOutput b = build();
  EXPECT_EQ(a.package->RootDigest(), b.package->RootDigest());
  EXPECT_EQ(a.public_params.root_signature, b.public_params.root_signature);
}

TEST(ConcurrentQueryTest, ManyClientsOneServer) {
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 500;
  cp.num_clusters = 128;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 16;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));
  core::ServiceProvider sp(owner.package.get());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::Client client(owner.public_params);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto features = workload::GenerateQueryFeatures(
            owner.package->codebook, 15, 0.3, t * 100 + q);
        core::QueryResponse resp = sp.Query(features, 5);
        auto verified = client.Verify(features, 5, resp.vo);
        if (!verified.ok()) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace imageproof
