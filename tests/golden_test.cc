// Golden-digest regression tests: the ADS digest formats are a wire
// protocol — the owner's signatures, every persisted deployment, and every
// VO depend on them byte-for-byte. These constants pin the current formats
// so an accidental change to any canonical encoding (field order, float
// representation, domain separators) fails loudly instead of silently
// invalidating all previously signed state.
//
// If a test here fails because you *intentionally* changed a format, bump
// the storage format version (storage/serializer.cc) and update the
// constants — that is a breaking protocol change.

#include <gtest/gtest.h>

#include "core/query_engine.h"
#include "crypto/hasher.h"
#include "freqgroup/fg_index.h"
#include "invindex/merkle_inv_index.h"
#include "merkle/merkle_tree.h"
#include "mrkd/commit.h"
#include "mrkd/mrkd_tree.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace imageproof {
namespace {

using crypto::Digest;

TEST(GoldenDigestTest, PostingChain) {
  // h(u64 7 | f64 0.25 | 0^256), per Definition 4.
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  EXPECT_EQ(p.ToHex(),
            "2f2d9f080a239a2c5447268d6051537f00fb6d07e49bcb3760cda8ab0e687646");
}

TEST(GoldenDigestTest, ListDigest) {
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  Digest l = invindex::ListDigest(1.5, Digest::Zero(), p);
  EXPECT_EQ(l.ToHex(),
            "8b37f05bb928021e4f028cc4859f9d2cfe7c1303629671fa22bfecb4318d15e4");
}

TEST(GoldenDigestTest, FrequencyGroupDigest) {
  freqgroup::FgPosting g;
  g.freq = 3;
  g.members = {{2, 4.0}, {9, 5.0}};
  Digest gd = freqgroup::FgPostingDigest(g, Digest::Zero());
  EXPECT_EQ(gd.ToHex(),
            "36c3373ad9964d17f0bffccc750da6783aba7a21bb140e9bb506ae1f5d3f60ba");
}

TEST(GoldenDigestTest, ClusterCommitments) {
  float coords[16];
  for (int i = 0; i < 16; ++i) coords[i] = static_cast<float>(i) * 0.5f;
  EXPECT_EQ(
      mrkd::ClusterCommitment(mrkd::RevealMode::kFullVector, 5, coords, 16)
          .ToHex(),
      "63a45624a2630c90a6939558965aff84b5205831da1277140549f39f9dc2349f");
  EXPECT_EQ(
      mrkd::ClusterCommitment(mrkd::RevealMode::kDimMerkle, 5, coords, 16)
          .ToHex(),
      "a3135a97f95c238baf1c575431cd074468a732d87d0ee1463ddf81f9c903d9fb");
}

TEST(GoldenDigestTest, GenericMerkleTree) {
  merkle::MerkleTree t({{0x01}, {0x02}, {0x03}});
  EXPECT_EQ(t.root().ToHex(),
            "4f554b3aea550c2f7a86917c8c02a0ee842a813fadec1f4c87569cff27bccd14");
}

TEST(GoldenDigestTest, MrkdInternalNode) {
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  crypto::DigestBuilder b;
  mrkd::MrkdTree::HashInternal(b, 3, 1.25f, Digest::Zero(), p);
  EXPECT_EQ(b.Finalize().ToHex(),
            "45eff8a4353ec3cf7b04669c667306c1b9094ca4f89089999430db6d855e16e0");
}

// ---------------------------------------------------------------------------
// Engine determinism: the concurrent serving path is a *golden* property of
// the same kind as the digest formats above — at any worker count and any
// intra-query thread count, the engine must emit byte-identical VOs and the
// identical top-k to the serial ServiceProvider::Query. A divergence means
// some parallel loop introduced ordering- or thread-dependent output, which
// would make responses non-reproducible and signatures unverifiable.
// ---------------------------------------------------------------------------

core::OwnerOutput BuildSmallDeployment(const core::Config& config) {
  workload::CorpusParams cp;
  cp.num_images = 250;
  cp.num_clusters = 128;
  cp.seed = 11;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 16;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs));
}

void CheckEngineMatchesSerial(core::Config config) {
  config.rsa_bits = 512;
  core::OwnerOutput owner = BuildSmallDeployment(config);
  auto package =
      std::shared_ptr<const core::SpPackage>(std::move(owner.package));

  const size_t kNumQueries = 6;
  const size_t k = 5;
  std::vector<std::vector<std::vector<float>>> queries;
  for (size_t q = 0; q < kNumQueries; ++q) {
    queries.push_back(
        workload::GenerateQueryFeatures(package->codebook, 12, 0.3, 40 + q));
  }

  // Serial ground truth through the legacy one-at-a-time path.
  core::ServiceProvider sp(package.get());
  std::vector<Bytes> serial_vo;
  std::vector<std::vector<bovw::ScoredImage>> serial_topk;
  for (const auto& q : queries) {
    core::QueryResponse resp = sp.Query(q, k);
    serial_vo.push_back(resp.vo.Serialize());
    serial_topk.push_back(resp.topk);
  }

  struct Shape {
    unsigned workers;
    unsigned intra;
  };
  for (Shape shape : {Shape{1, 1}, Shape{2, 2}, Shape{8, 4}}) {
    core::EngineOptions opts;
    opts.num_workers = shape.workers;
    opts.queue_capacity = 4;  // small: exercises Submit backpressure too
    opts.intra_query_threads = shape.intra;
    core::QueryEngine engine(package, owner.public_params, opts);
    std::vector<core::EngineResponse> responses = engine.QueryBatch(queries, k);
    ASSERT_EQ(responses.size(), kNumQueries);
    for (size_t i = 0; i < kNumQueries; ++i) {
      EXPECT_EQ(responses[i].response.vo.Serialize(), serial_vo[i])
          << config.Name() << " workers=" << shape.workers
          << " intra=" << shape.intra << " query " << i
          << ": VO bytes diverged from the serial path";
      const auto& topk = responses[i].response.topk;
      ASSERT_EQ(topk.size(), serial_topk[i].size());
      for (size_t j = 0; j < topk.size(); ++j) {
        EXPECT_EQ(topk[j].id, serial_topk[i][j].id);
        EXPECT_EQ(topk[j].score, serial_topk[i][j].score);
      }
    }
    core::EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.in_flight, 0u);
    // Counter-backed stats read zero when the obs layer is compiled out.
    if (obs::kMetricsEnabled) {
      EXPECT_EQ(stats.queries_served, kNumQueries);
      EXPECT_GT(stats.p50_latency_ms, 0.0);
      EXPECT_GE(stats.p99_latency_ms, stats.p50_latency_ms);
    }
  }
}

TEST(EngineDeterminismTest, ImageProofConfigByteIdenticalAcrossThreadCounts) {
  CheckEngineMatchesSerial(core::Config::ImageProof());
}

TEST(EngineDeterminismTest, OptimizedBothConfigByteIdenticalAcrossThreadCounts) {
  CheckEngineMatchesSerial(core::Config::OptimizedBoth());
}

}  // namespace
}  // namespace imageproof
