// Golden-digest regression tests: the ADS digest formats are a wire
// protocol — the owner's signatures, every persisted deployment, and every
// VO depend on them byte-for-byte. These constants pin the current formats
// so an accidental change to any canonical encoding (field order, float
// representation, domain separators) fails loudly instead of silently
// invalidating all previously signed state.
//
// If a test here fails because you *intentionally* changed a format, bump
// the storage format version (storage/serializer.cc) and update the
// constants — that is a breaking protocol change.

#include <gtest/gtest.h>

#include "crypto/hasher.h"
#include "freqgroup/fg_index.h"
#include "invindex/merkle_inv_index.h"
#include "merkle/merkle_tree.h"
#include "mrkd/commit.h"
#include "mrkd/mrkd_tree.h"

namespace imageproof {
namespace {

using crypto::Digest;

TEST(GoldenDigestTest, PostingChain) {
  // h(u64 7 | f64 0.25 | 0^256), per Definition 4.
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  EXPECT_EQ(p.ToHex(),
            "2f2d9f080a239a2c5447268d6051537f00fb6d07e49bcb3760cda8ab0e687646");
}

TEST(GoldenDigestTest, ListDigest) {
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  Digest l = invindex::ListDigest(1.5, Digest::Zero(), p);
  EXPECT_EQ(l.ToHex(),
            "8b37f05bb928021e4f028cc4859f9d2cfe7c1303629671fa22bfecb4318d15e4");
}

TEST(GoldenDigestTest, FrequencyGroupDigest) {
  freqgroup::FgPosting g;
  g.freq = 3;
  g.members = {{2, 4.0}, {9, 5.0}};
  Digest gd = freqgroup::FgPostingDigest(g, Digest::Zero());
  EXPECT_EQ(gd.ToHex(),
            "36c3373ad9964d17f0bffccc750da6783aba7a21bb140e9bb506ae1f5d3f60ba");
}

TEST(GoldenDigestTest, ClusterCommitments) {
  float coords[16];
  for (int i = 0; i < 16; ++i) coords[i] = static_cast<float>(i) * 0.5f;
  EXPECT_EQ(
      mrkd::ClusterCommitment(mrkd::RevealMode::kFullVector, 5, coords, 16)
          .ToHex(),
      "63a45624a2630c90a6939558965aff84b5205831da1277140549f39f9dc2349f");
  EXPECT_EQ(
      mrkd::ClusterCommitment(mrkd::RevealMode::kDimMerkle, 5, coords, 16)
          .ToHex(),
      "a3135a97f95c238baf1c575431cd074468a732d87d0ee1463ddf81f9c903d9fb");
}

TEST(GoldenDigestTest, GenericMerkleTree) {
  merkle::MerkleTree t({{0x01}, {0x02}, {0x03}});
  EXPECT_EQ(t.root().ToHex(),
            "4f554b3aea550c2f7a86917c8c02a0ee842a813fadec1f4c87569cff27bccd14");
}

TEST(GoldenDigestTest, MrkdInternalNode) {
  Digest p = invindex::PostingDigest(7, 0.25, Digest::Zero());
  crypto::DigestBuilder b;
  mrkd::MrkdTree::HashInternal(b, 3, 1.25f, Digest::Zero(), p);
  EXPECT_EQ(b.Finalize().ToHex(),
            "45eff8a4353ec3cf7b04669c667306c1b9094ca4f89089999430db6d855e16e0");
}

}  // namespace
}  // namespace imageproof
