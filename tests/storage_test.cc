// Tests for deployment persistence: a loaded package must answer queries
// whose VOs verify against the ORIGINAL owner's signature (bit-identical
// ADS digests), and malformed stored data must be rejected cleanly.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/client.h"
#include "core/server.h"
#include "core/update.h"
#include "storage/serializer.h"
#include "workload/synthetic.h"

namespace imageproof::storage {
namespace {

core::OwnerOutput BuildSmallDeployment(core::Config config, uint64_t seed = 3) {
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = 200;
  cp.num_clusters = 96;
  cp.min_distinct = 4;
  cp.max_distinct = 14;
  cp.seed = seed;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 96;
  cbp.dims = 12;
  cbp.seed = seed + 1;
  return core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                               std::move(corpus), std::move(blobs), seed + 2);
}

class StorageSchemeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StorageSchemeTest, RoundTripPreservesSignedDigests) {
  core::Config config = std::string(GetParam()) == "ImageProof"
                            ? core::Config::ImageProof()
                            : core::Config::OptimizedBoth();
  core::OwnerOutput owner = BuildSmallDeployment(config);

  Bytes blob = SerializeSpPackage(*owner.package);
  auto loaded = DeserializeSpPackage(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  // Bit-identical ADS: the loaded package's root digest matches the
  // original signature.
  EXPECT_EQ((*loaded)->RootDigest(), owner.package->RootDigest());

  // A query served from the LOADED package verifies against the ORIGINAL
  // public parameters.
  core::ServiceProvider sp(loaded->get());
  core::Client client(owner.public_params);
  auto features = workload::GenerateQueryFeatures(
      (*loaded)->codebook, 20, 0.3, 42);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  EXPECT_TRUE(verified.ok()) << verified.status().message();
}

INSTANTIATE_TEST_SUITE_P(Schemes, StorageSchemeTest,
                         ::testing::Values("ImageProof", "OptimizedBoth"));

TEST(StorageTest, PublicParamsRoundTrip) {
  core::OwnerOutput owner = BuildSmallDeployment(core::Config::ImageProof());
  Bytes blob = SerializePublicParams(owner.public_params);
  auto loaded = DeserializePublicParams(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->public_key.n.ToHex(), owner.public_params.public_key.n.ToHex());
  EXPECT_EQ(loaded->public_key.e.ToHex(), owner.public_params.public_key.e.ToHex());
  EXPECT_EQ(loaded->root_signature, owner.public_params.root_signature);
  EXPECT_EQ(loaded->dims, owner.public_params.dims);
  EXPECT_EQ(loaded->num_clusters, owner.public_params.num_clusters);
  EXPECT_EQ(loaded->config.Name(), owner.public_params.config.Name());

  // A client constructed purely from the loaded params works.
  core::ServiceProvider sp(owner.package.get());
  core::Client client(*loaded);
  auto features =
      workload::GenerateQueryFeatures(owner.package->codebook, 15, 0.3, 7);
  core::QueryResponse resp = sp.Query(features, 3);
  EXPECT_TRUE(client.Verify(features, 3, resp.vo).ok());
}

TEST(StorageTest, FileRoundTrip) {
  core::OwnerOutput owner = BuildSmallDeployment(core::Config::ImageProof());
  std::string pkg_path = ::testing::TempDir() + "/imageproof_pkg.bin";
  std::string params_path = ::testing::TempDir() + "/imageproof_params.bin";
  ASSERT_TRUE(SaveSpPackage(pkg_path, *owner.package).ok());
  ASSERT_TRUE(SavePublicParams(params_path, owner.public_params).ok());
  auto pkg = LoadSpPackage(pkg_path);
  ASSERT_TRUE(pkg.ok()) << pkg.status().message();
  auto params = LoadPublicParams(params_path);
  ASSERT_TRUE(params.ok()) << params.status().message();
  EXPECT_EQ((*pkg)->RootDigest(), owner.package->RootDigest());
  std::remove(pkg_path.c_str());
  std::remove(params_path.c_str());
}

TEST(StorageTest, MalformedInputsRejected) {
  core::OwnerOutput owner = BuildSmallDeployment(core::Config::ImageProof());
  Bytes blob = SerializeSpPackage(*owner.package);

  EXPECT_FALSE(DeserializeSpPackage({}).ok());
  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeSpPackage(bad_magic).ok());
  Bytes truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(DeserializeSpPackage(truncated).ok());
  Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_FALSE(DeserializeSpPackage(trailing).ok());
}

TEST(StorageTest, RandomCorruptionNeverCrashes) {
  core::OwnerOutput owner = BuildSmallDeployment(core::Config::ImageProof());
  Bytes blob = SerializeSpPackage(*owner.package);
  Rng rng(5);
  int loaded_ok = 0;
  for (int t = 0; t < 50; ++t) {
    Bytes tampered = blob;
    // A burst of corruption at a random position.
    size_t pos = rng.NextBounded(tampered.size());
    for (size_t i = pos; i < std::min(tampered.size(), pos + 8); ++i) {
      tampered[i] = static_cast<uint8_t>(rng.NextU64());
    }
    auto result = DeserializeSpPackage(tampered);  // must not crash
    if (result.ok()) {
      ++loaded_ok;
      // Even if structurally parseable, the ADS digests diverge, so the
      // owner's signature would catch it downstream. Just ensure the
      // object is usable.
      EXPECT_GT((*result)->corpus.size(), 0u);
    }
  }
  // Corruption of payload floats parses fine (the signature check catches
  // it later); structural corruption must be caught at parse time. The
  // real property under test is "never crashes"; just ensure the parser
  // rejects at least some structural damage.
  EXPECT_LT(loaded_ok, 45);
}

TEST(StorageTest, UpdatedDeploymentSurvivesPersistence) {
  // Regression: incremental updates freeze the tf-idf weights; a load that
  // re-derived weights from the (grown) corpus would diverge from the
  // re-signed root. The stored weights must win.
  core::OwnerOutput owner = BuildSmallDeployment(core::Config::ImageProof());
  bovw::BovwVector v = owner.package->corpus[2].second;
  const bovw::ImageId new_id = 777777;
  auto stats =
      core::InsertImage(owner.package.get(), owner.private_key,
                        &owner.public_params, new_id, v,
                        workload::GenerateImageBlob(new_id));
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  Bytes blob = SerializeSpPackage(*owner.package);
  auto loaded = DeserializeSpPackage(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->RootDigest(), owner.package->RootDigest());

  core::ServiceProvider sp(loaded->get());
  core::Client client(owner.public_params);
  auto features = workload::FeaturesFromBovw((*loaded)->codebook, v, 20, 0.2,
                                             0.0, 11);
  core::QueryResponse resp = sp.Query(features, 3);
  auto verified = client.Verify(features, 3, resp.vo);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  bool found = false;
  for (const auto& si : verified->topk) found |= (si.id == new_id);
  EXPECT_TRUE(found) << "inserted image retrievable after reload";
}

TEST(StorageTest, MissingFile) {
  EXPECT_FALSE(LoadSpPackage("/nonexistent/path/pkg.bin").ok());
  EXPECT_FALSE(LoadPublicParams("/nonexistent/path/params.bin").ok());
}

}  // namespace
}  // namespace imageproof::storage
