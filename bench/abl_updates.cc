// Ablation/extension bench — incremental update throughput.
//
// Measures owner-side cost of inserting and deleting images in a live
// deployment (affected-list rechaining + MRKD path refresh + root
// re-signature) against the cost of a full rebuild, across dataset sizes.
// The per-update cost is proportional to the lengths of the ~20 posting
// lists the image touches (re-chaining is O(list length)), so it grows with
// corpus size at a fixed codebook — but it stays a constant ~25-30x cheaper
// than rebuilding all |codebook| lists, which is the point of supporting
// updates at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/update.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_updates");
  std::printf("Extension — incremental updates vs full rebuild\n");
  std::printf("%10s | %12s %12s %14s %12s\n", "images", "insert_ms",
              "delete_ms", "lists/insert", "rebuild_ms");
  std::printf("----------------------------------------------------------------\n");
  for (size_t images : {2500, 10000, 40000}) {
    DeploymentSpec spec;
    spec.num_images = images;
    spec.num_clusters = 4096;
    spec.dims = 64;
    Stopwatch rebuild_timer;
    Deployment d(core::Config::ImageProof(), spec);
    double rebuild_ms = rebuild_timer.ElapsedMillis();

    const int kOps = 10;
    double insert_ms = 0, delete_ms = 0, lists = 0;
    for (int i = 0; i < kOps; ++i) {
      bovw::ImageId id = 9000000 + i;
      bovw::BovwVector v = d.owner.package->corpus[i * 7].second;
      Stopwatch t1;
      auto stats =
          core::InsertImage(d.owner.package.get(), d.owner.private_key,
                            &d.owner.public_params, id, v,
                            workload::GenerateImageBlob(id));
      insert_ms += t1.ElapsedMillis();
      if (!stats.ok()) {
        std::fprintf(stderr, "insert failed: %s\n",
                     stats.status().message().c_str());
        return FinishBench(1);
      }
      lists += static_cast<double>(stats->lists_updated);
      Stopwatch t2;
      auto del = core::DeleteImage(d.owner.package.get(), d.owner.private_key,
                                   &d.owner.public_params, id);
      delete_ms += t2.ElapsedMillis();
      if (!del.ok()) {
        std::fprintf(stderr, "delete failed: %s\n",
                     del.status().message().c_str());
        return FinishBench(1);
      }
    }
    std::printf("%10zu | %12.2f %12.2f %14.1f %12.0f\n", images,
                insert_ms / kOps, delete_ms / kOps, lists / kOps, rebuild_ms);
    char key[48];
    std::snprintf(key, sizeof(key), "images_%zu.insert_ms", images);
    BenchReport::Global().AddValue(key, insert_ms / kOps);
    std::snprintf(key, sizeof(key), "images_%zu.rebuild_ms", images);
    BenchReport::Global().AddValue(key, rebuild_ms);
  }
  return FinishBench(0);
}
