// Figure 13 — overall authenticated retrieval as the codebook size grows
// (dataset 10k, 100 query features, 64-d, k = 10).
//
// Paper shape to reproduce: communication and computation costs of all
// schemes decrease as the codebook grows (shorter inverted lists dominate
// the total cost).

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig13_overall_codebook");
  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"ImageProof", core::Config::ImageProof()},
      {"Opt(BoVW)", core::Config::OptimizedBovw()},
      {"Opt(Both)", core::Config::OptimizedBoth()},
  };

  std::printf("Figure 13 — overall vs codebook size (10k images, 100 features, k=10)\n");
  std::printf("%-12s %10s | %10s %12s %10s\n", "scheme", "codebook", "sp_ms",
              "client_ms", "vo_KB");
  std::printf("-----------------------------------------------------------\n");
  for (const Scheme& s : schemes) {
    for (size_t codebook : {1024, 2048, 4096, 8192}) {
      DeploymentSpec spec;
      spec.num_images = 10000;
      spec.num_clusters = codebook;
      spec.dims = 64;
      Deployment d(s.config, spec);
      Measurement m = RunQueries(d, 100, 10, 3);
      BenchReport::Global().AddRow(s.name, static_cast<double>(codebook), m);
      std::printf("%-12s %10zu | %10.2f %12.2f %10.1f%s\n", s.name, codebook,
                  m.SpMs(), m.ClientMs(), m.VoKb(),
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
