// Ablation — MRKD node sharing in isolation.
//
// Complexity claim from Section IV-A: without sharing, the BoVW VO is
// O(n_q log n_C); with sharing it drops to O(n_q (log n_C - log n_q)), so
// the benefit grows with the number of query features. This bench holds
// everything else fixed and toggles only share_nodes.

#include "bench/bench_util.h"
#include "mrkd/search.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_node_sharing");
  DeploymentSpec spec;
  spec.num_images = 1000;
  spec.num_clusters = 8192;
  spec.dims = 64;

  std::printf("Ablation — MRKD node sharing (codebook %zu, 64-d)\n",
              spec.num_clusters);
  std::printf("%10s | %14s %14s %9s %9s\n", "features", "unshared_vo_KB",
              "shared_vo_KB", "ratio", "share");
  std::printf("---------------------------------------------------------------\n");

  core::Config shared_cfg = core::Config::ImageProof();
  core::Config unshared_cfg = shared_cfg;
  unshared_cfg.share_nodes = false;
  Deployment shared(shared_cfg, spec);
  Deployment unshared(unshared_cfg, spec);

  for (size_t nf : {25, 50, 100, 200, 400, 800}) {
    Measurement ms = RunQueries(shared, nf, 10, 3);
    Measurement mu = RunQueries(unshared, nf, 10, 3);
    std::printf("%10zu | %14.1f %14.1f %9.2f %9.2f\n", nf, mu.bovw_vo_kb,
                ms.bovw_vo_kb,
                ms.bovw_vo_kb > 0 ? mu.bovw_vo_kb / ms.bovw_vo_kb : 0.0,
                ms.share_ratio);
  }
  std::printf("(ratio should grow with the feature count)\n");
  return FinishBench(0);
}
