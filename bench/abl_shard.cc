// Ablation/extension bench — sharded scatter-gather serving (ROADMAP item 3).
//
// One corpus is planned into {1, 2, 4} shards (frozen global idf weights,
// one owner key) and served through a shard::Coordinator with one
// single-worker engine per shard, so every speedup measured here comes from
// the parallel fan-out across shards, not from intra-shard threading. The
// closed loop times the full authenticated path the paper's client runs:
// composite query -> CompositeClient::VerifyComposite, i.e. VERIFIED
// latency, and reports p50/p99, throughput, and composite-VO bytes per
// query for each shard count.
//
// Correctness is asserted in-bench, not assumed: for every pool query the
// verified merged top-k (ids and exact scores) must be identical across all
// shard counts — the sharding-is-invisible invariant the golden tests pin
// down — and every response must verify.
//
// The fan-out experiment isolates the scatter itself: at 4 shards the same
// deployment is served once with fanout_threads=1 (serial scatter, the sum
// of the per-shard serves) and once with fanout_threads=4 (parallel
// scatter, the max of them), timing the coordinator serve path. Non-smoke
// runs enforce the ROADMAP item 3 acceptance threshold (>= 2x warm-path
// p50 fan-out speedup at 4 shards) and exit nonzero if unmet. The
// threshold needs hardware that can actually run four shard serves at
// once, so it is gated on hardware_concurrency() >= 4 (a single-core box
// can only interleave them — correctness still asserts, the speedup
// cannot); the report records hw_threads so the baseline is interpretable.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shard/composite_client.h"
#include "shard/coordinator.h"
#include "shard/planner.h"

using namespace imageproof;
using namespace imageproof::bench;

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct ShardRun {
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  double vo_bytes = 0;  // mean composite bytes per query
  size_t errors = 0;
  // Verified merged top-k per pool entry, for the cross-layout identity
  // check.
  std::vector<std::vector<bovw::ScoredImage>> merged;
};

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_shard");

  DeploymentSpec spec;
  spec.num_images = SmokeMode() ? 2000 : 12000;
  spec.num_clusters = SmokeMode() ? 256 : 1024;
  spec.dims = 32;

  core::Config config = core::Config::OptimizedBoth();
  config.rsa_bits = 512;
  config.sign_images = false;  // constant per-image cost, off the figures

  workload::CorpusParams cp;
  cp.num_images = spec.num_images;
  cp.num_clusters = spec.num_clusters;
  cp.seed = spec.seed;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) {
    blobs[id] = workload::GenerateImageBlob(id, 32);
  }
  workload::CodebookParams cbp;
  cbp.num_clusters = spec.num_clusters;
  cbp.dims = spec.dims;
  cbp.seed = spec.seed + 1;
  ann::PointSet codebook = workload::GenerateCodebook(cbp);

  const size_t kPool = 16;
  const size_t kTopK = 16;
  const size_t kQueries = SmokeMode() ? 32 : 96;
  workload::QueryMixParams mix_params;
  mix_params.pool_size = kPool;
  mix_params.num_features = 12;
  mix_params.zipf_s = 0.0;  // uniform: every pool entry hits the warm path
  mix_params.seed = 42;
  workload::ZipfQueryMix mix(codebook, corpus, mix_params);

  std::printf("Extension — sharded scatter-gather serving "
              "(%zu images, %zu clusters, pool=%zu, k=%zu, %zu queries)\n",
              spec.num_images, spec.num_clusters, kPool, kTopK, kQueries);
  std::printf("%7s | %10s %10s %10s %12s %8s\n", "shards", "qps", "p50_ms",
              "p99_ms", "vo_bytes", "errors");
  std::printf("---------------------------------------------------------"
              "-------\n");

  const std::vector<uint32_t> shard_counts{1, 2, 4};
  std::vector<ShardRun> runs;
  size_t identity_failures = 0;
  // The 4-shard deployment is reused by the fan-out experiment below
  // (packages are shared, so re-wrapping them in fresh backends is cheap).
  std::vector<std::shared_ptr<const core::SpPackage>> pkgs4;
  std::vector<core::PublicParams> params4;
  shard::ShardManifest manifest4;
  crypto::RsaPrivateKey key4;
  for (uint32_t num_shards : shard_counts) {
    shard::ShardedDeployment dep =
        shard::ShardPlanner::Build(config, codebook, corpus, blobs,
                                   num_shards, spec.seed + 2);
    const core::PublicParams base = dep.shards[0].public_params;
    std::vector<std::unique_ptr<shard::ShardBackend>> backends;
    for (core::OwnerOutput& s : dep.shards) {
      std::shared_ptr<const core::SpPackage> pkg(std::move(s.package));
      if (num_shards == 4) {
        pkgs4.push_back(pkg);
        params4.push_back(s.public_params);
      }
      core::EngineOptions eo;
      eo.num_workers = 1;  // all parallelism comes from the fan-out
      backends.push_back(std::make_unique<shard::LocalShardBackend>(
          std::move(pkg), s.public_params, dep.keys.private_key, eo));
    }
    if (num_shards == 4) {
      manifest4 = dep.manifest;
      key4 = dep.keys.private_key;
    }
    shard::CoordinatorOptions copts;
    copts.fanout_threads = num_shards;
    shard::Coordinator coord(std::move(backends), dep.manifest,
                             dep.keys.private_key, copts);
    shard::CompositeClient client(base);

    ShardRun run;
    run.merged.resize(mix.pool_size());

    // Warm path: serve and verify every pool entry once before timing, and
    // record the verified merge for the identity check.
    for (size_t i = 0; i < mix.pool_size(); ++i) {
      Result<Bytes> r = coord.Query(mix.query(i), kTopK);
      if (!r.ok()) {
        ++run.errors;
        continue;
      }
      Result<shard::CompositeVerifiedResults> v =
          client.VerifyComposite(mix.query(i), kTopK, *r);
      if (!v.ok()) {
        ++run.errors;
        continue;
      }
      run.merged[i] = v->topk;
    }

    std::vector<double> latencies;
    latencies.reserve(kQueries);
    size_t total_bytes = 0;
    Rng rng(7000);
    Stopwatch wall;
    for (size_t q = 0; q < kQueries; ++q) {
      const auto& features = mix.query(mix.Draw(rng));
      Stopwatch timer;
      Result<Bytes> r = coord.Query(features, kTopK);
      if (!r.ok()) {
        ++run.errors;
        continue;
      }
      Result<shard::CompositeVerifiedResults> v =
          client.VerifyComposite(features, kTopK, *r);
      latencies.push_back(timer.ElapsedMillis());
      if (!v.ok()) {
        ++run.errors;
        continue;
      }
      total_bytes += r->size();
    }
    const double wall_ms = wall.ElapsedMillis();
    std::sort(latencies.begin(), latencies.end());
    run.p50_ms = Percentile(latencies, 0.50);
    run.p99_ms = Percentile(latencies, 0.99);
    run.qps = latencies.empty()
                  ? 0.0
                  : static_cast<double>(latencies.size()) / (wall_ms / 1000.0);
    run.vo_bytes = latencies.empty()
                       ? 0.0
                       : static_cast<double>(total_bytes) /
                             static_cast<double>(latencies.size());
    std::printf("%7u | %10.1f %10.3f %10.3f %12.0f %8zu\n", num_shards,
                run.qps, run.p50_ms, run.p99_ms, run.vo_bytes, run.errors);

    const std::string prefix = "shard.s" + std::to_string(num_shards);
    BenchReport::Global().AddValue(prefix + ".qps", run.qps);
    BenchReport::Global().AddValue(prefix + ".p50_ms", run.p50_ms);
    BenchReport::Global().AddValue(prefix + ".p99_ms", run.p99_ms);
    BenchReport::Global().AddValue(prefix + ".vo_bytes", run.vo_bytes);
    BenchReport::Global().AddValue(prefix + ".errors",
                                   static_cast<double>(run.errors));
    runs.push_back(std::move(run));
  }

  // Cross-layout identity: the verified global top-k must not depend on the
  // shard count (ids AND exact scores).
  for (size_t i = 0; i < kPool; ++i) {
    for (size_t s = 1; s < runs.size(); ++s) {
      const auto& a = runs[0].merged[i];
      const auto& b = runs[s].merged[i];
      if (a.size() != b.size()) {
        ++identity_failures;
        continue;
      }
      for (size_t r = 0; r < a.size(); ++r) {
        if (a[r].id != b[r].id || a[r].score != b[r].score) {
          ++identity_failures;
          break;
        }
      }
    }
  }

  // Fan-out experiment: same 4 shards, serial vs parallel scatter, timing
  // the coordinator serve path (the scatter the speedup claim is about;
  // every response is still verified, outside the timer).
  size_t fanout_errors = 0;
  double fanout_p50[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    const size_t threads = mode == 0 ? 1 : 4;
    std::vector<std::unique_ptr<shard::ShardBackend>> backends;
    for (size_t s = 0; s < pkgs4.size(); ++s) {
      core::EngineOptions eo;
      eo.num_workers = 1;
      backends.push_back(std::make_unique<shard::LocalShardBackend>(
          pkgs4[s], params4[s], key4, eo));
    }
    shard::CoordinatorOptions copts;
    copts.fanout_threads = threads;
    shard::Coordinator coord(std::move(backends), manifest4, key4, copts);
    shard::CompositeClient client(params4[0]);
    for (size_t i = 0; i < mix.pool_size(); ++i) {  // warm path
      if (!coord.Query(mix.query(i), kTopK).ok()) ++fanout_errors;
    }
    std::vector<double> latencies;
    Rng rng(9000);
    for (size_t q = 0; q < kQueries; ++q) {
      const auto& features = mix.query(mix.Draw(rng));
      Stopwatch timer;
      Result<Bytes> r = coord.Query(features, kTopK);
      const double ms = timer.ElapsedMillis();
      if (!r.ok() || !client.VerifyComposite(features, kTopK, *r).ok()) {
        ++fanout_errors;
        continue;
      }
      latencies.push_back(ms);
    }
    std::sort(latencies.begin(), latencies.end());
    fanout_p50[mode] = Percentile(latencies, 0.50);
  }
  const double speedup =
      fanout_p50[1] > 0 ? fanout_p50[0] / fanout_p50[1] : 0.0;
  std::printf("  4-shard scatter p50: serial %.3f ms, parallel %.3f ms "
              "-> fan-out speedup %.1fx; identity failures: %zu\n",
              fanout_p50[0], fanout_p50[1], speedup, identity_failures);
  BenchReport::Global().AddValue("shard.fanout_serial_p50_ms", fanout_p50[0]);
  BenchReport::Global().AddValue("shard.fanout_parallel_p50_ms",
                                 fanout_p50[1]);
  BenchReport::Global().AddValue("shard.fanout_speedup", speedup);
  BenchReport::Global().AddValue("shard.identity_failures",
                                 static_cast<double>(identity_failures));
  const unsigned hw_threads = std::thread::hardware_concurrency();
  BenchReport::Global().AddValue("shard.hw_threads",
                                 static_cast<double>(hw_threads));

  int code = 0;
  size_t total_errors = fanout_errors;
  for (const ShardRun& r : runs) total_errors += r.errors;
  if (identity_failures != 0 || total_errors != 0) {
    std::fprintf(stderr, "abl_shard: identity/verification FAILED "
                         "(%zu identity, %zu errors)\n",
                 identity_failures, total_errors);
    code = 1;
  }
  if (!SmokeMode()) {
    // ROADMAP item 3 acceptance threshold, enforced at full scale on
    // hardware that can physically parallelize the 4-way scatter.
    if (hw_threads >= 4 && speedup < 2.0) {
      std::fprintf(stderr, "abl_shard: fan-out threshold unmet (%.1fx)\n",
                   speedup);
      code = 1;
    } else if (hw_threads < 4) {
      std::printf("  (fan-out threshold not enforced: %u hw thread(s))\n",
                  hw_threads);
    }
  }
  return FinishBench(code);
}
