// Micro-benchmarks for the crypto substrate: SHA3-256 / SHA-256 throughput
// at VO-relevant message sizes, digest-chain rebuilding, and RSA
// sign/verify latency.

#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "common/random.h"
#include "crypto/hasher.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/sha3.h"

namespace {

using namespace imageproof;
using namespace imageproof::crypto;

Bytes RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

void BM_Sha3(benchmark::State& state) {
  Bytes data = RandomBytes(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha3(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha3)->Arg(48)->Arg(136)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Bytes data = RandomBytes(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha2(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(48)->Arg(136)->Arg(1024)->Arg(65536);

// The client's hot loop: rebuilding a posting digest chain.
void BM_PostingChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Digest next = Digest::Zero();
    for (int i = 0; i < n; ++i) {
      next = DigestBuilder()
                 .AddU64(static_cast<uint64_t>(i))
                 .AddF64(1.0 / (i + 1))
                 .AddDigest(next)
                 .Finalize();
    }
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PostingChain)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(42);
  RsaKeyPair keys = RsaKeyPair::Generate(static_cast<int>(state.range(0)), rng);
  Digest d = Sha3(RandomBytes(64, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(keys.private_key, d));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(42);
  RsaKeyPair keys = RsaKeyPair::Generate(static_cast<int>(state.range(0)), rng);
  Digest d = Sha3(RandomBytes(64, 3));
  Bytes sig = RsaSign(keys.private_key, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(keys.public_key, d, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

}  // namespace

IMAGEPROOF_MICRO_BENCH_MAIN("micro_crypto");
