// Ablation — the fast hashing core (optimized Keccak, 4-lane batch digest
// API, level-parallel Merkle construction, O(log n) incremental update).
//
// Four sections, each comparing the pre-PR serial strategy against the
// batched/parallel one on identical inputs and checking the outputs are
// byte-identical (the whole point of the optimization is that only the
// schedule changes, never the digests):
//
//   keccak    one-at-a-time Sha3() vs HashBatch() over a message set
//   merkle    the old serial recursion (replicated here verbatim) vs the
//             level-parallel batched MerkleTree build
//   update    full rebuild vs UpdateLeaf per single-leaf change, with the
//             O(log n) hash bound asserted via the invocation counter
//   chain     a serial backward digest chain vs four chains interleaved on
//             the Sha3x4 lanes (the inverted-index build pattern)

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"
#include "merkle/merkle_tree.h"

using namespace imageproof;
using namespace imageproof::bench;
using crypto::Digest;

namespace {

std::vector<Bytes> RandomMessages(size_t n, size_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> msgs(n);
  for (auto& m : msgs) {
    m.resize(len);
    for (auto& b : m) b = static_cast<uint8_t>(rng.NextU64());
  }
  return msgs;
}

// The pre-PR MerkleTree construction, kept here as the baseline: serial
// leaf hashing plus the recursive largest-power-of-two-split root, no
// digest memoization beyond the leaves.
size_t SerialSplitPoint(size_t n) {
  size_t p = 1;
  while (p * 2 < n) p *= 2;
  return p;
}

Digest SerialSubtree(const std::vector<Digest>& leaves, size_t begin,
                     size_t end) {
  if (end - begin == 1) return leaves[begin];
  size_t mid = begin + SerialSplitPoint(end - begin);
  return crypto::DigestBuilder()
      .AddU8(0x01)
      .AddDigest(SerialSubtree(leaves, begin, mid))
      .AddDigest(SerialSubtree(leaves, mid, end))
      .Finalize();
}

Digest SerialMerkleRoot(const std::vector<Bytes>& payloads) {
  std::vector<Digest> leaves(payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    leaves[i] = merkle::MerkleTree::HashLeaf(payloads[i]);
  }
  return SerialSubtree(leaves, 0, payloads.size());
}

struct ChainPosting {
  uint64_t id;
  double impact;
};

Digest SerialChain(const std::vector<ChainPosting>& postings) {
  Digest next = Digest::Zero();
  for (size_t i = postings.size(); i-- > 0;) {
    next = crypto::DigestBuilder()
               .AddU64(postings[i].id)
               .AddF64(postings[i].impact)
               .AddDigest(next)
               .Finalize();
  }
  return next;
}

// Four independent chains advanced in lockstep on the 4-lane engine — the
// schedule the inverted-index builders use internally.
void InterleavedChains(const std::vector<ChainPosting>* lists, Digest* heads) {
  crypto::Sha3x4 eng;
  size_t idx[4];
  Digest next[4];
  uint8_t buf[4][48];
  auto start = [&](int j) {
    const ChainPosting& p = lists[j][idx[j] - 1];
    for (int b = 0; b < 8; ++b) {
      buf[j][b] = static_cast<uint8_t>(p.id >> (8 * b));
    }
    uint64_t bits;
    std::memcpy(&bits, &p.impact, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      buf[j][8 + b] = static_cast<uint8_t>(bits >> (8 * b));
    }
    std::memcpy(buf[j] + 16, next[j].bytes.data(), 32);
    eng.Start(j, buf[j], sizeof(buf[j]));
  };
  int active = 0;
  for (int j = 0; j < 4; ++j) {
    idx[j] = lists[j].size();
    next[j] = Digest::Zero();
    if (idx[j] > 0) {
      start(j);
      ++active;
    }
  }
  while (active > 0) {
    eng.Step();
    for (int j = 0; j < 4; ++j) {
      if (!eng.done(j)) continue;
      next[j] = eng.Take(j);
      if (--idx[j] > 0) {
        start(j);
      } else {
        heads[j] = next[j];
        --active;
      }
    }
  }
}

bool g_ok = true;

void Check(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "abl_hash: CHECK FAILED: %s\n", what);
    g_ok = false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_hash");
  BenchReport& report = BenchReport::Global();
  const bool smoke = SmokeMode();
  std::printf("Ablation — fast hashing core (batch Keccak + parallel ADS build)\n");
  std::printf("%-28s %14s %14s %9s\n", "section", "serial", "optimized",
              "speedup");
  std::printf("-------------------------------------------------------------------\n");

  // --- keccak: one-at-a-time vs 4-lane batch -------------------------------
  {
    const size_t n = smoke ? 4096 : 65536;
    const size_t len = 512;
    auto msgs = RandomMessages(n, len, 42);
    std::vector<BytesView> views(msgs.begin(), msgs.end());
    std::vector<Digest> serial_out(n), batch_out(n);
    Stopwatch t1;
    for (size_t i = 0; i < n; ++i) {
      serial_out[i] = crypto::Sha3(msgs[i].data(), msgs[i].size());
    }
    const double serial_ms = t1.ElapsedMillis();
    Stopwatch t2;
    crypto::HashBatch(views.data(), batch_out.data(), n);
    const double batch_ms = t2.ElapsedMillis();
    Check(serial_out == batch_out, "keccak batch digests match serial");
    const double mb = static_cast<double>(n * len) / (1024.0 * 1024.0);
    std::printf("%-28s %11.1f MB/s %11.1f MB/s %8.2fx\n", "keccak (512B msgs)",
                mb / (serial_ms / 1000.0), mb / (batch_ms / 1000.0),
                serial_ms / batch_ms);
    report.AddValue("keccak_single_mbps", mb / (serial_ms / 1000.0));
    report.AddValue("keccak_batch_mbps", mb / (batch_ms / 1000.0));
    report.AddValue("keccak_batch_speedup", serial_ms / batch_ms);
  }

  // --- merkle: serial recursion vs level-parallel batched build ------------
  {
    const size_t n = smoke ? 20000 : 400000;
    auto payloads = RandomMessages(n, 64, 7);
    Stopwatch t1;
    Digest serial_root = SerialMerkleRoot(payloads);
    const double serial_ms = t1.ElapsedMillis();
    Stopwatch t2;
    merkle::MerkleTree tree(payloads);
    const double parallel_ms = t2.ElapsedMillis();
    Check(serial_root == tree.root(), "parallel merkle root matches serial");
    std::printf("%-28s %11.1f ms %13.1f ms %8.2fx\n", "merkle build", serial_ms,
                parallel_ms, serial_ms / parallel_ms);
    report.AddValue("merkle_leaves", static_cast<double>(n));
    report.AddValue("merkle_serial_ms", serial_ms);
    report.AddValue("merkle_parallel_ms", parallel_ms);
    report.AddValue("merkle_build_speedup", serial_ms / parallel_ms);

    // --- update: full rebuild vs O(log n) UpdateLeaf -----------------------
    const int ops = 32;
    const size_t depth = std::bit_width(n - 1);
    Rng rng(11);
    uint64_t max_hashes = 0;
    Stopwatch t3;
    for (int i = 0; i < ops; ++i) {
      const size_t idx = rng.NextBounded(n);
      payloads[idx][0] ^= static_cast<uint8_t>(i + 1);
      const uint64_t before = crypto::HashInvocations();
      tree.UpdateLeaf(idx, payloads[idx]);
      const uint64_t spent = crypto::HashInvocations() - before;
      if (spent > max_hashes) max_hashes = spent;
    }
    const double incr_ms = t3.ElapsedMillis() / ops;
    Stopwatch t4;
    merkle::MerkleTree rebuilt(payloads);
    const double rebuild_ms = t4.ElapsedMillis();
    Check(rebuilt.root() == tree.root(), "incremental root matches rebuild");
    Check(max_hashes <= 1 + depth, "UpdateLeaf within 1 + ceil(log2 n) hashes");
    std::printf("%-28s %11.3f ms %13.3f ms %8.0fx\n", "update (rebuild/incr)",
                rebuild_ms, incr_ms, rebuild_ms / incr_ms);
    std::printf("%-28s %11llu %16zu\n", "  hashes/update (max, bound)",
                static_cast<unsigned long long>(max_hashes), 1 + depth);
    report.AddValue("update_rebuild_ms", rebuild_ms);
    report.AddValue("update_incremental_ms", incr_ms);
    report.AddValue("update_speedup", rebuild_ms / incr_ms);
    report.AddValue("update_max_hashes", static_cast<double>(max_hashes));
    report.AddValue("update_hash_bound", static_cast<double>(1 + depth));
  }

  // --- chain: serial backward chain vs 4-lane interleave -------------------
  {
    const size_t len = smoke ? 20000 : 200000;
    Rng rng(23);
    std::vector<ChainPosting> lists[4];
    for (auto& list : lists) {
      list.resize(len);
      for (auto& p : list) {
        p.id = rng.NextU64();
        p.impact = static_cast<double>(rng.NextU64() % 1000) / 7.0;
      }
    }
    Digest serial_heads[4], x4_heads[4];
    Stopwatch t1;
    for (int j = 0; j < 4; ++j) serial_heads[j] = SerialChain(lists[j]);
    const double serial_ms = t1.ElapsedMillis();
    Stopwatch t2;
    InterleavedChains(lists, x4_heads);
    const double x4_ms = t2.ElapsedMillis();
    Check(std::equal(serial_heads, serial_heads + 4, x4_heads),
          "interleaved chain heads match serial");
    std::printf("%-28s %11.1f ms %13.1f ms %8.2fx\n", "chain (4 lists)",
                serial_ms, x4_ms, serial_ms / x4_ms);
    report.AddValue("chain_serial_ms", serial_ms);
    report.AddValue("chain_x4_ms", x4_ms);
    report.AddValue("chain_x4_speedup", serial_ms / x4_ms);
  }

  return FinishBench(g_ok ? 0 : 1);
}
