// Figure 10 — inverted-index search performance as the codebook size grows
// (dataset 20k, 200 query features, k = 10).
//
// Paper shape to reproduce: larger codebooks mean shorter posting lists, so
// SP and client CPU fall for every scheme; the Baseline still pops nearly
// everything while the filtered schemes pop a decreasing fraction.

#include "bench/inv_bench_util.h"

using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig10_inv_codebook");
  PrintInvHeader(
      "Figure 10 — inverted index vs codebook size (20k images, 200 features, k=10)",
      "codebook");
  for (size_t codebook : {1024, 2048, 4096, 8192}) {
    InvFixture fx(20000, codebook);
    for (InvScheme scheme :
         {InvScheme::kBaseline, InvScheme::kInvSearch, InvScheme::kOptimized}) {
      PrintInvRow(scheme, codebook, RunInvQueries(fx, scheme, 200, 10, 3));
    }
  }
  return FinishBench(0);
}
