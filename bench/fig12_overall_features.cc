// Figure 12 — overall authenticated retrieval as the number of query
// feature vectors grows (dataset 10k, codebook 4096, 64-d, k = 10).
//
// Series: Baseline, ImageProof, Optimized(BoVW), Optimized(Both).
// Paper shape to reproduce: all costs grow with the feature count;
// ImageProof beats Baseline on SP CPU and VO size; Optimized(BoVW) trades
// client CPU for a smaller VO; Optimized(Both) recovers client CPU via
// frequency grouping.

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig12_overall_features");
  DeploymentSpec spec;
  spec.num_images = 10000;
  spec.num_clusters = 4096;
  spec.dims = 64;

  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"ImageProof", core::Config::ImageProof()},
      {"Opt(BoVW)", core::Config::OptimizedBovw()},
      {"Opt(Both)", core::Config::OptimizedBoth()},
  };

  std::printf("Figure 12 — overall vs #features (10k images, 4096 clusters, k=10)\n");
  std::printf("%-12s %10s | %10s %12s %10s\n", "scheme", "features", "sp_ms",
              "client_ms", "vo_KB");
  std::printf("-----------------------------------------------------------\n");
  BenchReport::Global().SetSeries("fig12", "features");
  for (const Scheme& s : schemes) {
    Deployment d(s.config, spec);
    for (size_t nf : {50, 100, 200}) {
      Measurement m = RunQueries(d, nf, 10, 3);
      BenchReport::Global().AddRow(s.name, static_cast<double>(nf), m);
      std::printf("%-12s %10zu | %10.2f %12.2f %10.1f%s\n", s.name, nf,
                  m.SpMs(), m.ClientMs(), m.VoKb(),
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
