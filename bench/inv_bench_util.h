// Shared helpers for the inverted-index-step figures (9, 10, 11): these
// exercise the index ADSs directly (no MRKD-tree), comparing
//   Baseline   — plain Merkle inverted index, loose Eq. (10) bounds ([15])
//   InvSearch  — Merkle inverted index with cuckoo filters
//   Optimized  — frequency-grouped Merkle inverted index with filters
// and reporting SP CPU, client CPU, and % of postings popped.

#ifndef IMAGEPROOF_BENCH_INV_BENCH_UTIL_H_
#define IMAGEPROOF_BENCH_INV_BENCH_UTIL_H_

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "freqgroup/fg_search.h"
#include "freqgroup/fg_verify.h"
#include "invindex/search.h"
#include "invindex/verify.h"
#include "workload/synthetic.h"

namespace imageproof::bench {

enum class InvScheme { kBaseline, kInvSearch, kOptimized };

inline const char* Name(InvScheme s) {
  switch (s) {
    case InvScheme::kBaseline:
      return "Baseline[15]";
    case InvScheme::kInvSearch:
      return "InvSearch";
    default:
      return "Optimized";
  }
}

struct InvFixture {
  workload::CorpusParams params;
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  std::unique_ptr<invindex::MerkleInvertedIndex> plain;     // Baseline
  std::unique_ptr<invindex::MerkleInvertedIndex> filtered;  // InvSearch
  std::unique_ptr<freqgroup::FgInvertedIndex> grouped;      // Optimized

  InvFixture(size_t num_images, size_t num_clusters, uint64_t seed = 7) {
    params.num_images = num_images;
    params.num_clusters = num_clusters;
    params.seed = seed;
    corpus = workload::GenerateCorpus(params);
    std::vector<bovw::BovwVector> vecs;
    vecs.reserve(corpus.size());
    for (auto& [id, v] : corpus) vecs.push_back(v);
    auto weights = bovw::ClusterWeights::FromCorpus(num_clusters, vecs);
    plain = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(num_clusters, corpus, weights,
                                             /*with_filters=*/false));
    filtered = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(num_clusters, corpus, weights,
                                             /*with_filters=*/true));
    grouped = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(num_clusters, corpus, weights,
                                          /*with_filters=*/true));
  }
};

struct InvMeasurement {
  double sp_ms = 0, client_ms = 0, popped_pct = 0, vo_kb = 0;
  bool verified = true;
};

// Runs `num_queries` top-k searches + verifications with `num_features`
// query feature vectors each, averaged.
inline InvMeasurement RunInvQueries(const InvFixture& fx, InvScheme scheme,
                                    size_t num_features, size_t k,
                                    int num_queries, uint64_t seed = 500) {
  InvMeasurement m;
  invindex::InvSearchParams params;
  params.k = k;
  for (int q = 0; q < num_queries; ++q) {
    // Queries are derived from a random database image (the paper samples
    // its query images from the dataset), with 20% background words.
    const auto& source =
        fx.corpus[(seed + q) * 2654435761u % fx.corpus.size()].second;
    bovw::BovwVector query = workload::QueryFromImage(
        fx.params, source, num_features, /*noise_fraction=*/0.2, seed + q);
    Stopwatch sp_timer;
    Bytes vo;
    std::vector<bovw::ScoredImage> topk;
    invindex::InvSearchStats stats;
    if (scheme == InvScheme::kOptimized) {
      auto r = freqgroup::FgSearch(*fx.grouped, query, params);
      vo = std::move(r.vo);
      topk = std::move(r.topk);
      stats = r.stats;
    } else {
      const auto& index =
          scheme == InvScheme::kBaseline ? *fx.plain : *fx.filtered;
      auto r = invindex::InvSearch(index, query, params);
      vo = std::move(r.vo);
      topk = std::move(r.topk);
      stats = r.stats;
    }
    m.sp_ms += sp_timer.ElapsedMillis();
    m.popped_pct += 100.0 * stats.PoppedFraction();
    m.vo_kb += vo.size() / 1024.0;

    std::vector<bovw::ImageId> claimed;
    for (const auto& si : topk) claimed.push_back(si.id);
    Stopwatch client_timer;
    invindex::InvVerifyResult verified;
    Status s = scheme == InvScheme::kOptimized
                   ? freqgroup::FgVerifyVo(vo, query, claimed, k, true, &verified)
                   : invindex::VerifyInvVo(vo, query, claimed, k,
                                           scheme != InvScheme::kBaseline,
                                           &verified);
    m.client_ms += client_timer.ElapsedMillis();
    if (!s.ok()) {
      std::fprintf(stderr, "bench: %s verify FAILED: %s\n", Name(scheme),
                   s.message().c_str());
      m.verified = false;
    }
  }
  m.sp_ms /= num_queries;
  m.client_ms /= num_queries;
  m.popped_pct /= num_queries;
  m.vo_kb /= num_queries;
  return m;
}

inline void PrintInvHeader(const char* title, const char* x_name) {
  BenchReport::Global().SetSeries(title, x_name);
  std::printf("%s\n", title);
  std::printf("%-14s %10s | %10s %12s %10s %10s\n", "scheme", x_name, "sp_ms",
              "client_ms", "popped%", "vo_KB");
  std::printf("--------------------------------------------------------------"
              "--------\n");
}

inline void PrintInvRow(InvScheme scheme, size_t x, const InvMeasurement& m) {
  // Feed the --json report through the Measurement shape the overall
  // figures use; these benches only exercise the inverted-index step.
  Measurement row;
  row.sp_inv_ms = m.sp_ms;
  row.client_inv_ms = m.client_ms;
  row.inv_vo_kb = m.vo_kb;
  row.popped_fraction = m.popped_pct / 100.0;
  row.verified = m.verified;
  BenchReport::Global().AddRow(Name(scheme), static_cast<double>(x), row);
  std::printf("%-14s %10zu | %10.2f %12.2f %9.1f%% %10.1f%s\n", Name(scheme),
              x, m.sp_ms, m.client_ms, m.popped_pct, m.vo_kb,
              m.verified ? "" : "  [VERIFY FAILED]");
}

}  // namespace imageproof::bench

#endif  // IMAGEPROOF_BENCH_INV_BENCH_UTIL_H_
