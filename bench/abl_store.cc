// Ablation: cold-start latency and peak memory of the mmap package store
// (storage/package_store.h) versus full serializer deserialization
// (storage/serializer.h), at 10x-100x the image count of the unit-test
// corpora.
//
// Each measurement runs in a freshly forked+exec'd child so "cold start"
// and "peak RSS" (VmHWM from /proc/self/status) are per-scenario process
// facts, not residue of whatever ran before in the same address space. The
// child loads the deployment from disk with one backend, serves and
// verifies one query, and reports ready/first-query wall time plus its
// high-water mark on stdout.
//
// What the numbers must show (checked at the largest scale in full mode):
//   * store cold start >= 10x faster than the serializer — the store opens
//     by digest-checking the mapped metadata sections and never touches
//     image payload pages, while the serializer parses and copies the
//     whole corpus and rebuilds every posting chain digest;
//   * store peak RSS below the corpus payload size — payloads stay in
//     evictable page cache and only fault in for the top-k actually
//     served, while the serializer's copy puts the entire corpus on the
//     process heap.
//
// Usage: abl_store [--smoke] [--json <path>]   (the internal --worker mode
// is exec'd by the binary itself; not for direct use)

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "storage/package_store.h"
#include "storage/serializer.h"

namespace imageproof::bench {
namespace {

struct Scale {
  size_t num_images;
  size_t blob_bytes;
};

std::string PkgPath(const std::string& dir) { return dir + "/package.bin"; }
std::string StorePath(const std::string& dir) { return dir + "/package.ipk"; }
std::string ParamsPath(const std::string& dir) { return dir + "/params.bin"; }

// Peak resident set of this process, from /proc/self/status (kB).
size_t VmHwmKb() {
  FILE* f = std::fopen("/proc/self/status", "rb");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

// --- worker modes (run in a fresh process per measurement) --------------

int WorkerBuild(const std::string& dir, size_t num_images, size_t blob_bytes) {
  (void)system(("mkdir -p " + dir).c_str());
  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = num_images;
  cp.num_clusters = 1024;
  cp.seed = 7;
  auto corpus = workload::GenerateCorpus(cp);
  size_t corpus_bytes = 0;
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) {
    blobs[id] = workload::GenerateImageBlob(id, blob_bytes);
    corpus_bytes += blob_bytes;
  }
  workload::CodebookParams cbp;
  cbp.num_clusters = 1024;
  cbp.dims = 32;
  cbp.seed = 8;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs), 9);
  if (!storage::SaveSpPackage(PkgPath(dir), *owner.package).ok() ||
      !storage::PackageStore::Write(StorePath(dir), *owner.package).ok() ||
      !storage::SavePublicParams(ParamsPath(dir), owner.public_params).ok()) {
    std::fprintf(stderr, "abl_store: build write failed\n");
    return 1;
  }
  std::printf("WORKER corpus_bytes=%zu\n", corpus_bytes);
  return 0;
}

// Loads with one backend, serves + verifies one query, reports timings and
// the process high-water mark.
int WorkerLoad(const std::string& dir, const std::string& backend) {
  auto params = storage::LoadPublicParams(ParamsPath(dir));
  if (!params.ok()) {
    std::fprintf(stderr, "abl_store: %s\n", params.status().message().c_str());
    return 1;
  }
  Stopwatch ready;
  std::unique_ptr<core::SpPackage> pkg;
  if (backend == "serializer") {
    auto loaded = storage::LoadSpPackage(PkgPath(dir));
    if (!loaded.ok()) {
      std::fprintf(stderr, "abl_store: %s\n",
                   loaded.status().message().c_str());
      return 1;
    }
    pkg = std::move(*loaded);
  } else {
    storage::OpenOptions opts;
    opts.params = &*params;
    auto loaded = storage::PackageStore::Open(StorePath(dir), opts);
    if (!loaded.ok()) {
      std::fprintf(stderr, "abl_store: %s\n",
                   loaded.status().message().c_str());
      return 1;
    }
    pkg = std::move(*loaded);
  }
  const double ready_ms = ready.ElapsedMillis();

  Stopwatch first;
  core::ServiceProvider sp(pkg.get());
  core::Client client(*params);
  auto features = workload::FeaturesFromBovw(pkg->codebook,
                                             pkg->corpus[3].second, 20, 0.25,
                                             0.2, 17);
  core::QueryResponse resp = sp.Query(features, 5);
  auto verified = client.Verify(features, 5, resp.vo);
  if (!verified.ok()) {
    std::fprintf(stderr, "abl_store: query did not verify: %s\n",
                 verified.status().message().c_str());
    return 1;
  }
  std::printf("WORKER ready_ms=%.3f first_query_ms=%.3f vmhwm_kb=%zu\n",
              ready_ms, first.ElapsedMillis(), VmHwmKb());
  return 0;
}

// --- parent: fork/exec one worker and parse its WORKER line -------------

struct WorkerResult {
  double ready_ms = 0;
  double first_query_ms = 0;
  size_t vmhwm_kb = 0;
  size_t corpus_bytes = 0;
  bool ok = false;
};

WorkerResult RunWorker(const char* self, std::vector<std::string> args) {
  WorkerResult res;
  int fds[2];
  if (pipe(fds) != 0) return res;
  pid_t pid = fork();
  if (pid < 0) return res;
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], 1);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(self));
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(self, argv.data());
    std::fprintf(stderr, "abl_store: execv failed\n");
    _exit(127);
  }
  ::close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fds[0]);
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "abl_store: worker failed: %s\n", out.c_str());
    return res;
  }
  size_t at = out.find("WORKER ");
  if (at == std::string::npos) return res;
  std::string line = out.substr(at);
  (void)std::sscanf(line.c_str(),
                    "WORKER ready_ms=%lf first_query_ms=%lf vmhwm_kb=%zu",
                    &res.ready_ms, &res.first_query_ms, &res.vmhwm_kb);
  (void)std::sscanf(line.c_str(), "WORKER corpus_bytes=%zu",
                    &res.corpus_bytes);
  res.ok = true;
  return res;
}

int Main(int argc, char** argv) {
  // Worker dispatch happens before BenchReport flag parsing: these argv
  // shapes are produced only by RunWorker.
  if (argc >= 3 && std::strcmp(argv[1], "--worker") == 0) {
    std::string mode = argv[2];
    if (mode == "build" && argc == 6) {
      return WorkerBuild(argv[3], std::strtoul(argv[4], nullptr, 10),
                         std::strtoul(argv[5], nullptr, 10));
    }
    if (mode == "load" && argc == 5) return WorkerLoad(argv[3], argv[4]);
    std::fprintf(stderr, "abl_store: bad worker invocation\n");
    return 2;
  }

  InitBench(argc, argv, "abl_store");
  const bool smoke = SmokeMode();
  // Full mode: 10x to 100x the 100-image unit-test corpora, 128 KiB
  // payloads (a small stored image; 1.2 GiB of corpus at the top end).
  // Smoke: one small scale so CI exercises every code path in seconds.
  std::vector<Scale> scales = smoke
                                  ? std::vector<Scale>{{200, 4096}}
                                  : std::vector<Scale>{{1000, 131072},
                                                       {4000, 131072},
                                                       {10000, 131072}};

  std::printf("====================================================================\n");
  std::printf("abl_store — cold start + peak RSS: mmap store vs serializer\n");
  std::printf("%8s %12s | %13s %13s %9s | %12s %12s %11s\n", "images",
              "corpus_MB", "serial_ms", "store_ms", "speedup", "serial_MB",
              "store_MB", "rss<corpus");
  std::printf("--------------------------------------------------------------------\n");

  bool criteria_ok = true;
  for (size_t i = 0; i < scales.size(); ++i) {
    const Scale& s = scales[i];
    std::string dir = "/tmp/imageproof_abl_store_" + std::to_string(s.num_images);
    auto built = RunWorker(argv[0], {"--worker", "build", dir,
                                     std::to_string(s.num_images),
                                     std::to_string(s.blob_bytes)});
    if (!built.ok) return FinishBench(1);
    auto serial = RunWorker(argv[0], {"--worker", "load", dir, "serializer"});
    auto store = RunWorker(argv[0], {"--worker", "load", dir, "store"});
    if (!serial.ok || !store.ok) return FinishBench(1);

    const double speedup =
        store.ready_ms > 0 ? serial.ready_ms / store.ready_ms : 0;
    const bool rss_below =
        store.vmhwm_kb * 1024.0 < static_cast<double>(built.corpus_bytes);
    std::printf("%8zu %12.1f | %13.1f %13.1f %8.1fx | %12.1f %12.1f %11s\n",
                s.num_images, built.corpus_bytes / (1024.0 * 1024.0),
                serial.ready_ms, store.ready_ms, speedup,
                serial.vmhwm_kb / 1024.0, store.vmhwm_kb / 1024.0,
                rss_below ? "yes" : "NO");

    const std::string prefix = "images_" + std::to_string(s.num_images) + ".";
    auto& report = BenchReport::Global();
    report.AddValue(prefix + "corpus_bytes", (double)built.corpus_bytes);
    report.AddValue(prefix + "serializer_ready_ms", serial.ready_ms);
    report.AddValue(prefix + "store_ready_ms", store.ready_ms);
    report.AddValue(prefix + "serializer_first_query_ms",
                    serial.first_query_ms);
    report.AddValue(prefix + "store_first_query_ms", store.first_query_ms);
    report.AddValue(prefix + "serializer_vmhwm_kb", (double)serial.vmhwm_kb);
    report.AddValue(prefix + "store_vmhwm_kb", (double)store.vmhwm_kb);
    report.AddValue(prefix + "cold_start_speedup", speedup);
    // Scale-independent copies at the largest scale of this run, so a smoke
    // report and the committed full-run baseline share keys and
    // scripts/bench_delta.py has something to compare (the smoke "largest"
    // is of course a much smaller corpus — the delta line labels the mode).
    if (i + 1 == scales.size()) {
      report.AddValue("largest.cold_start_speedup", speedup);
      report.AddValue("largest.serializer_ready_ms", serial.ready_ms);
      report.AddValue("largest.store_ready_ms", store.ready_ms);
      report.AddValue("largest.store_vmhwm_kb", (double)store.vmhwm_kb);
    }

    // The tentpole's acceptance bar, checked at the largest full scale.
    // Smoke scales are too small for the RSS claim (the process baseline
    // alone exceeds a 800 KiB corpus), so there the run just exercises the
    // machinery.
    if (!smoke && i + 1 == scales.size()) {
      if (speedup < 10.0) {
        std::fprintf(stderr,
                     "abl_store: FAIL cold-start speedup %.1fx < 10x\n",
                     speedup);
        criteria_ok = false;
      }
      if (!rss_below) {
        std::fprintf(stderr, "abl_store: FAIL store peak RSS %zu kB >= "
                             "corpus %zu bytes\n",
                     store.vmhwm_kb, built.corpus_bytes);
        criteria_ok = false;
      }
    }
    (void)system(("rm -rf " + dir).c_str());
  }
  if (!smoke) {
    std::printf("%s: cold-start speedup >= 10x and store RSS below corpus "
                "at the largest scale\n",
                criteria_ok ? "PASS" : "FAIL");
  }
  return FinishBench(criteria_ok ? 0 : 1);
}

}  // namespace
}  // namespace imageproof::bench

int main(int argc, char** argv) { return imageproof::bench::Main(argc, argv); }
