// Micro-benchmarks for the cuckoo filter: insert/lookup/delete throughput
// and the MaxCount (Algorithm 2) scan vs. the incremental tracker.

#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include <vector>

#include "common/random.h"
#include "cuckoo/cuckoo_filter.h"

namespace {

using namespace imageproof;
using namespace imageproof::cuckoo;

void BM_Insert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CuckooParams params = CuckooParams::ForMaxItems(n);
  for (auto _ : state) {
    CuckooFilter filter(params);
    for (uint64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(filter.Insert(i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000);

void BM_Lookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CuckooParams params = CuckooParams::ForMaxItems(n);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < n; ++i) filter.Insert(i);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(probe++ % (2 * n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lookup)->Arg(1000)->Arg(10000);

void BM_DeleteReinsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CuckooParams params = CuckooParams::ForMaxItems(n);
  CuckooFilter filter(params);
  for (uint64_t i = 0; i < n; ++i) filter.Insert(i);
  uint64_t item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Delete(item % n));
    benchmark::DoNotOptimize(filter.Insert(item % n));
    ++item;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteReinsert)->Arg(1000)->Arg(10000);

// Full MaxCount scan over many filters (what a naive per-check
// implementation would pay).
void BM_MaxCountScan(benchmark::State& state) {
  const int num_filters = static_cast<int>(state.range(0));
  CuckooParams params = CuckooParams::ForMaxItems(500);
  std::vector<CuckooFilter> filters(num_filters, CuckooFilter(params));
  Rng rng(5);
  for (auto& f : filters) {
    for (int i = 0; i < 300; ++i) f.Insert(rng.NextBounded(100000));
  }
  std::vector<const CuckooFilter*> ptrs;
  for (const auto& f : filters) ptrs.push_back(&f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxCountGamma(ptrs));
  }
}
BENCHMARK(BM_MaxCountScan)->Arg(16)->Arg(64)->Arg(256);

// Incremental tracker: construction + a stream of deletions (what the
// bounds engine actually pays).
void BM_MaxCountTrackerDeletes(benchmark::State& state) {
  const int num_filters = static_cast<int>(state.range(0));
  CuckooParams params = CuckooParams::ForMaxItems(500);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<CuckooFilter> filters(num_filters, CuckooFilter(params));
    Rng rng(7);
    for (auto& f : filters) {
      for (int i = 0; i < 300; ++i) f.Insert(i * 13 + 1);
    }
    std::vector<const CuckooFilter*> ptrs;
    for (const auto& f : filters) ptrs.push_back(&f);
    MaxCountTracker tracker(ptrs);
    state.ResumeTiming();
    for (int f = 0; f < num_filters; ++f) {
      for (int i = 0; i < 300; ++i) {
        uint32_t bucket;
        if (filters[f].Delete(i * 13 + 1, &bucket)) {
          tracker.OnDelete(bucket, filters[f].Fingerprint(i * 13 + 1));
        }
      }
    }
    benchmark::DoNotOptimize(tracker.Gamma());
  }
  state.SetItemsProcessed(state.iterations() * num_filters * 300);
}
BENCHMARK(BM_MaxCountTrackerDeletes)->Arg(16)->Arg(64);

}  // namespace

IMAGEPROOF_MICRO_BENCH_MAIN("micro_cuckoo");
