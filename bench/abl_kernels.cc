// Ablation — the SIMD retrieval-kernel layer (common/kernels.h).
//
// Sections, each on identical inputs with outputs cross-checked (the point
// of the layer is that the portable and AVX2 paths produce bit-identical
// numbers, so only the schedule changes):
//
//   batch128    one query vs N rows of 128-d squared-L2: the naive
//               per-dimension scalar loop (SquaredL2ScalarRef, the pre-PR
//               ann::SquaredL2) vs the portable canonical-order kernel vs
//               the active (AVX2 when available) batch kernel. On AVX2
//               hardware the active/scalar speedup is asserted >= 3x.
//   pruned      nearest-neighbor scan over N rows with a shrinking best
//               bound: exact kernel vs partial-distance early termination,
//               same argmin required.
//   dot/norm    128-d inner product and squared norm, scalar vs active.
//   end-to-end  fig12-style authenticated queries (ImageProof config),
//               measuring the full SP pipeline on the adopted kernels, and
//               a warm reusable QueryScratch vs scratch-free comparison.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/kernels.h"
#include "common/random.h"
#include "common/stopwatch.h"

using namespace imageproof;
using namespace imageproof::bench;

namespace {

bool g_ok = true;

void Check(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "abl_kernels: CHECK FAILED: %s\n", what);
    g_ok = false;
  }
}

// Contiguous row-major random points in [0, 10)^dims, 32-byte aligned like
// ann::PointSet storage.
kern::AlignedVector<float> RandomRows(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  kern::AlignedVector<float> rows(n * dims);
  for (float& v : rows) {
    v = static_cast<float>(rng.NextU64() % 10000) / 1000.0f;
  }
  return rows;
}

// Best-of-reps wall time for `fn`, in milliseconds. Single-machine CI boxes
// are noisy; the minimum over a few repetitions is the stable statistic.
template <typename Fn>
double BestMs(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch t;
    fn();
    double ms = t.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_kernels");
  BenchReport& report = BenchReport::Global();
  const bool smoke = SmokeMode();

  std::printf("Ablation — SIMD retrieval kernels (dispatch: %s)\n",
              kern::Avx2Active() ? "AVX2" : "portable");
  report.AddValue("avx2_compiled", kern::Avx2Compiled() ? 1 : 0);
  report.AddValue("avx2_active", kern::Avx2Active() ? 1 : 0);
  std::printf("%-28s %14s %14s %9s\n", "section", "baseline", "kernel",
              "speedup");
  std::printf("-------------------------------------------------------------------\n");

  // --- batch128: scalar loop vs portable vs active batch kernel ------------
  {
    // n kept cache-resident (1 MB of rows): the adopted call sites scan
    // codebook leaf ranges that live in cache, and the criterion is kernel
    // throughput, not memory bandwidth.
    const size_t dims = 128;
    const size_t n = smoke ? 1024 : 2048;
    const int iters = smoke ? 20 : 400;
    const int reps = 5;
    auto rows = RandomRows(n, dims, 42);
    auto query = RandomRows(1, dims, 43);
    std::vector<double> scalar_out(n), portable_out(n), active_out(n);

    const double scalar_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        for (size_t i = 0; i < n; ++i) {
          scalar_out[i] = kern::internal::SquaredL2ScalarRef(
              query.data(), rows.data() + i * dims, dims);
        }
      }
    });
    const kern::internal::KernelImpls& portable = kern::internal::Portable();
    const double portable_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        portable.squared_l2_batch(query.data(), rows.data(), dims, n, dims,
                                  portable_out.data());
      }
    });
    const double active_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        kern::SquaredL2Batch(query.data(), rows.data(), dims, n, dims,
                             active_out.data());
      }
    });
    Check(std::memcmp(portable_out.data(), active_out.data(),
                      n * sizeof(double)) == 0,
          "batch128: active kernel bit-identical to portable");
    const double dists = static_cast<double>(n) * iters;
    const double speedup = scalar_ms / active_ms;
    std::printf("%-28s %10.1f Md/s %10.1f Md/s %8.2fx\n",
                "batch squared-L2 (128-d)", dists / scalar_ms / 1000.0,
                dists / active_ms / 1000.0, speedup);
    std::printf("%-28s %10.1f Md/s %12s %8.2fx\n", "  portable canonical",
                dists / portable_ms / 1000.0, "", scalar_ms / portable_ms);
    report.AddValue("batch128_scalar_mdps", dists / scalar_ms / 1000.0);
    report.AddValue("batch128_portable_mdps", dists / portable_ms / 1000.0);
    report.AddValue("batch128_active_mdps", dists / active_ms / 1000.0);
    report.AddValue("batch128_speedup", speedup);
    if (kern::Avx2Active()) {
      Check(speedup >= 3.0, "batch128: >= 3x over scalar baseline on AVX2");
    }
  }

  // --- pruned: exact scan vs partial-distance early termination ------------
  {
    const size_t dims = 128;
    const size_t n = smoke ? 1024 : 2048;
    const int iters = smoke ? 20 : 200;
    const int reps = 5;
    auto rows = RandomRows(n, dims, 44);
    // The query is a noisy copy of one row — the AKM leaf-scan regime,
    // where the best-so-far bound goes tight early and most rows prune
    // after the first 32-dim partial check.
    auto query = RandomRows(1, dims, 45);
    {
      Rng rng(46);
      const float* near = rows.data() + (n / 16) * dims;
      for (size_t d = 0; d < dims; ++d) {
        query[d] = near[d] + static_cast<float>(rng.NextU64() % 100) / 400.0f;
      }
    }

    size_t exact_best = 0, pruned_best = 0;
    const double exact_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        double best = kern::SquaredL2(query.data(), rows.data(), dims);
        exact_best = 0;
        for (size_t i = 1; i < n; ++i) {
          double d =
              kern::SquaredL2(query.data(), rows.data() + i * dims, dims);
          if (d < best) {
            best = d;
            exact_best = i;
          }
        }
      }
    });
    const double pruned_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        double best = kern::SquaredL2(query.data(), rows.data(), dims);
        pruned_best = 0;
        for (size_t i = 1; i < n; ++i) {
          double d = kern::SquaredL2Pruned(query.data(),
                                           rows.data() + i * dims, dims, best);
          if (d < best) {
            best = d;
            pruned_best = i;
          }
        }
      }
    });
    Check(exact_best == pruned_best, "pruned: same argmin as exact scan");
    std::printf("%-28s %11.2f ms %13.2f ms %8.2fx\n",
                "pruned nearest scan", exact_ms, pruned_ms,
                exact_ms / pruned_ms);
    report.AddValue("pruned_exact_ms", exact_ms);
    report.AddValue("pruned_ms", pruned_ms);
    report.AddValue("pruned_speedup", exact_ms / pruned_ms);
  }

  // --- dot/norm: scalar loops vs active kernels ----------------------------
  {
    const size_t dims = 128;
    const size_t n = smoke ? 1024 : 2048;
    const int iters = smoke ? 40 : 400;
    const int reps = 5;
    auto rows = RandomRows(n, dims, 46);
    auto query = RandomRows(1, dims, 47);
    std::vector<double> scalar_out(n), kernel_out(n);

    const double dot_scalar_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        for (size_t i = 0; i < n; ++i) {
          const float* r = rows.data() + i * dims;
          double acc = 0;
          for (size_t d = 0; d < dims; ++d) {
            acc += static_cast<double>(query[d]) * static_cast<double>(r[d]);
          }
          scalar_out[i] = acc;
        }
      }
    });
    const double dot_kernel_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        for (size_t i = 0; i < n; ++i) {
          kernel_out[i] = kern::Dot(query.data(), rows.data() + i * dims, dims);
        }
      }
    });
    // Scalar sequential and canonical-order sums differ in rounding, so
    // compare values, not bits.
    for (size_t i = 0; i < n; ++i) {
      double rel = std::abs(scalar_out[i] - kernel_out[i]) /
                   std::max(1.0, std::abs(scalar_out[i]));
      Check(rel < 1e-12, "dot: kernel matches scalar within rounding");
      if (rel >= 1e-12) break;
    }
    std::printf("%-28s %11.2f ms %13.2f ms %8.2fx\n", "dot (128-d)",
                dot_scalar_ms, dot_kernel_ms, dot_scalar_ms / dot_kernel_ms);
    report.AddValue("dot_scalar_ms", dot_scalar_ms);
    report.AddValue("dot_kernel_ms", dot_kernel_ms);
    report.AddValue("dot_speedup", dot_scalar_ms / dot_kernel_ms);

    const double norm_kernel_ms = BestMs(reps, [&] {
      for (int it = 0; it < iters; ++it) {
        for (size_t i = 0; i < n; ++i) {
          kernel_out[i] = kern::SquaredNorm(rows.data() + i * dims, dims);
        }
      }
    });
    for (size_t i = 0; i < n; ++i) {
      const float* r = rows.data() + i * dims;
      double acc = 0;
      for (size_t dd = 0; dd < dims; ++dd) {
        acc += static_cast<double>(r[dd]) * static_cast<double>(r[dd]);
      }
      double rel = std::abs(acc - kernel_out[i]) / std::max(1.0, std::abs(acc));
      Check(rel < 1e-12, "norm: kernel matches scalar within rounding");
      if (rel >= 1e-12) break;
    }
    std::printf("%-28s %13s %13.2f ms\n", "squared norm (128-d)", "",
                norm_kernel_ms);
    report.AddValue("norm_kernel_ms", norm_kernel_ms);
  }

  // --- end-to-end: fig12-style queries on the adopted kernels --------------
  {
    DeploymentSpec spec;
    spec.num_images = smoke ? 2000 : 10000;
    spec.num_clusters = smoke ? 1024 : 4096;
    spec.dims = 64;
    Deployment d(core::Config::ImageProof(), spec);

    PrintFigureHeader("abl_kernels_e2e",
                      "authenticated queries on the SIMD kernel hot path",
                      "features");
    for (size_t nf : smoke ? std::vector<size_t>{50}
                           : std::vector<size_t>{50, 100, 200}) {
      Measurement m = RunQueries(d, nf, 10, smoke ? 2 : 3);
      Check(m.verified, "end-to-end: client verification passes");
      PrintRow("ImageProof", static_cast<double>(nf), m);
    }

    // Warm reusable scratch vs scratch-free on the same query: the engine's
    // steady-state serving path vs a cold caller. Output must be identical.
    const size_t nf = smoke ? 50 : 100;
    auto features = workload::FeaturesFromBovw(
        d.owner.package->codebook, d.owner.package->corpus[0].second, nf, 0.25,
        0.2, 99);
    const int qreps = smoke ? 3 : 8;
    core::QueryScratch scratch;
    core::QueryResponse warm_resp, cold_resp;
    (void)d.sp->Query(features, 10, {}, {}, &warm_resp, &scratch);  // warm-up
    const double scratch_ms = BestMs(qreps, [&] {
      core::QueryResponse r;
      (void)d.sp->Query(features, 10, {}, {}, &r, &scratch);
      warm_resp = std::move(r);
    });
    const double cold_ms = BestMs(qreps, [&] {
      core::QueryResponse r;
      (void)d.sp->Query(features, 10, {}, {}, &r, nullptr);
      cold_resp = std::move(r);
    });
    Check(warm_resp.vo.reveal_section == cold_resp.vo.reveal_section &&
              warm_resp.vo.inv_vo == cold_resp.vo.inv_vo &&
              warm_resp.topk.size() == cold_resp.topk.size(),
          "end-to-end: scratch and scratch-free responses identical");
    std::printf("%-28s %11.2f ms %13.2f ms %8.2fx\n",
                "query (no scratch / warm)", cold_ms, scratch_ms,
                cold_ms / scratch_ms);
    report.AddValue("e2e_query_cold_ms", cold_ms);
    report.AddValue("e2e_query_warm_scratch_ms", scratch_ms);
    report.AddValue("e2e_scratch_speedup", cold_ms / scratch_ms);
  }

  return FinishBench(g_ok ? 0 : 1);
}
