// Figure 6 — BoVW-encoding performance (SIFT, 128-d descriptors) as the
// number of feature vectors in a query grows.
//
// Series: Baseline (MRKDSearch without node sharing), MRKDSearch (the
// ImageProof scheme), Optimized (Optimization A partial-dimension
// candidates). Columns are the BoVW step only: SP CPU, client CPU, VO size.
//
// Paper shape to reproduce: both proposed schemes beat Baseline and the
// gap widens with more feature vectors; MRKDSearch has the lowest CPU,
// Optimized the smallest VO (CPU/communication trade-off).

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main() {
  DeploymentSpec spec;
  spec.num_images = 1500;  // small corpus; this figure measures BoVW only
  spec.num_clusters = 8192;
  spec.dims = 128;

  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"MRKDSearch", core::Config::ImageProof()},
      {"Optimized", core::Config::OptimizedBovw()},
  };

  std::printf("Figure 6 — BoVW encoding, SIFT (128-d), codebook %zu\n",
              spec.num_clusters);
  std::printf("%-12s %10s | %12s %14s %12s\n", "scheme", "features",
              "sp_bovw_ms", "client_bovw_ms", "bovw_vo_KB");
  std::printf("--------------------------------------------------------------"
              "---\n");
  for (const Scheme& s : schemes) {
    Deployment d(s.config, spec);
    for (size_t nf : {50, 100, 200, 400}) {
      Measurement m = RunQueries(d, nf, 10, 3);
      std::printf("%-12s %10zu | %12.2f %14.2f %12.1f%s\n", s.name, nf,
                  m.sp_bovw_ms, m.client_bovw_ms, m.bovw_vo_kb,
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return 0;
}
