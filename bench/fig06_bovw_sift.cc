// Figure 6 — BoVW-encoding performance (SIFT, 128-d descriptors) as the
// number of feature vectors in a query grows.
//
// Series: Baseline (MRKDSearch without node sharing), MRKDSearch (the
// ImageProof scheme), Optimized (Optimization A partial-dimension
// candidates). Columns are the BoVW step only: SP CPU, client CPU, VO size.
//
// Paper shape to reproduce: both proposed schemes beat Baseline and the
// gap widens with more feature vectors; MRKDSearch has the lowest CPU,
// Optimized the smallest VO (CPU/communication trade-off).

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig06_bovw_sift");
  DeploymentSpec spec;
  spec.num_images = 1500;  // small corpus; this figure measures BoVW only
  spec.num_clusters = 8192;
  spec.dims = 128;
  std::vector<size_t> sweep = {50, 100, 200, 400};
  int queries_per_point = 3;
  if (SmokeMode()) {  // CI smoke: same shape, minutes -> seconds
    spec.num_images = 300;
    spec.num_clusters = 1024;
    spec.dims = 32;
    sweep = {20, 50};
    queries_per_point = 1;
  }

  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"MRKDSearch", core::Config::ImageProof()},
      {"Optimized", core::Config::OptimizedBovw()},
  };

  std::printf("Figure 6 — BoVW encoding, SIFT (128-d), codebook %zu\n",
              spec.num_clusters);
  std::printf("%-12s %10s | %12s %14s %12s\n", "scheme", "features",
              "sp_bovw_ms", "client_bovw_ms", "bovw_vo_KB");
  std::printf("--------------------------------------------------------------"
              "---\n");
  BenchReport::Global().SetSeries("fig06", "features");
  for (const Scheme& s : schemes) {
    Deployment d(s.config, spec);
    for (size_t nf : sweep) {
      Measurement m = RunQueries(d, nf, 10, queries_per_point);
      BenchReport::Global().AddRow(s.name, static_cast<double>(nf), m);
      std::printf("%-12s %10zu | %12.2f %14.2f %12.1f%s\n", s.name, nf,
                  m.sp_bovw_ms, m.client_bovw_ms, m.bovw_vo_kb,
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
