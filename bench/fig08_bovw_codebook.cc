// Figure 8 — BoVW-encoding performance as the codebook size grows (64-d
// descriptors, 200 feature vectors per query), plus the shared-node ratio.
//
// Paper shape to reproduce: query and verification costs are nearly flat in
// the codebook size (tree height grows logarithmically); the VO grows only
// slightly; the shared-node ratio is stable across codebook sizes.

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig08_bovw_codebook");
  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"MRKDSearch", core::Config::ImageProof()},
      {"Optimized", core::Config::OptimizedBovw()},
  };

  std::printf("Figure 8 — BoVW encoding vs codebook size (64-d, 200 features)\n");
  std::printf("%-12s %10s | %12s %14s %12s %10s\n", "scheme", "codebook",
              "sp_bovw_ms", "client_bovw_ms", "bovw_vo_KB", "share");
  std::printf("--------------------------------------------------------------"
              "--------------\n");
  BenchReport::Global().SetSeries("fig08", "codebook");
  for (const Scheme& s : schemes) {
    for (size_t codebook : {2048, 4096, 8192, 16384}) {
      DeploymentSpec spec;
      spec.num_images = 1500;
      spec.num_clusters = codebook;
      spec.dims = 64;
      Deployment d(s.config, spec);
      Measurement m = RunQueries(d, 200, 10, 3);
      BenchReport::Global().AddRow(s.name, static_cast<double>(codebook), m);
      std::printf("%-12s %10zu | %12.2f %14.2f %12.1f %10.2f%s\n", s.name,
                  codebook, m.sp_bovw_ms, m.client_bovw_ms, m.bovw_vo_kb,
                  m.share_ratio, m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
