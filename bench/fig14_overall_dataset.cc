// Figure 14 — overall authenticated retrieval as the dataset size grows
// (codebook 4096, 100 query features, 64-d, k = 10).
//
// Paper shape to reproduce: ImageProof's SP CPU and VO size stay far below
// Baseline's at every dataset size; Optimized(Both) has the best client CPU
// and VO size, and its advantage grows with the dataset (more images per
// frequency group).

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig14_overall_dataset");
  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"ImageProof", core::Config::ImageProof()},
      {"Opt(BoVW)", core::Config::OptimizedBovw()},
      {"Opt(Both)", core::Config::OptimizedBoth()},
  };

  std::printf("Figure 14 — overall vs dataset size (4096 clusters, 100 features, k=10)\n");
  std::printf("%-12s %10s | %10s %12s %10s\n", "scheme", "images", "sp_ms",
              "client_ms", "vo_KB");
  std::printf("-----------------------------------------------------------\n");
  for (const Scheme& s : schemes) {
    for (size_t images : {2500, 5000, 10000, 20000}) {
      DeploymentSpec spec;
      spec.num_images = images;
      spec.num_clusters = 4096;
      spec.dims = 64;
      Deployment d(s.config, spec);
      Measurement m = RunQueries(d, 100, 10, 3);
      BenchReport::Global().AddRow(s.name, static_cast<double>(images), m);
      std::printf("%-12s %10zu | %10.2f %12.2f %10.1f%s\n", s.name, images,
                  m.SpMs(), m.ClientMs(), m.VoKb(),
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
