// Figure 9 — inverted-index search performance as the number of query
// feature vectors grows (dataset 20k, codebook 4096, k = 10).
//
// Paper shape to reproduce: the Baseline's loose bounds force it to pop
// nearly all postings of the relevant lists, so its SP/client CPU dwarfs
// InvSearch and Optimized, which terminate after a small popped fraction.

#include "bench/inv_bench_util.h"

using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig09_inv_features");
  InvFixture fx(/*num_images=*/20000, /*num_clusters=*/4096);
  PrintInvHeader(
      "Figure 9 — inverted index vs #features (20k images, 4096 clusters, k=10)",
      "features");
  for (InvScheme scheme :
       {InvScheme::kBaseline, InvScheme::kInvSearch, InvScheme::kOptimized}) {
    for (size_t nf : {50, 100, 200, 400}) {
      PrintInvRow(scheme, nf, RunInvQueries(fx, scheme, nf, 10, 3));
    }
  }
  return FinishBench(0);
}
