// Shared helpers for the figure-reproduction benchmarks.
//
// Every fig*.cc binary prints the series of one figure from Section VII of
// the paper as an aligned table: scheme x sweep-value -> SP CPU, client
// CPU, VO size, plus figure-specific extras (% popped postings, shared-node
// ratio). Scales are reduced versus the paper's MirFlickr1M setup (see
// EXPERIMENTS.md); the comparisons between schemes are the reproduction
// target.

#ifndef IMAGEPROOF_BENCH_BENCH_UTIL_H_
#define IMAGEPROOF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "workload/synthetic.h"

namespace imageproof::bench {

struct DeploymentSpec {
  size_t num_images = 10000;
  size_t num_clusters = 4096;
  size_t dims = 64;
  size_t min_distinct = 10;
  size_t max_distinct = 40;
  uint64_t seed = 1;
};

struct Deployment {
  core::OwnerOutput owner;
  std::unique_ptr<core::ServiceProvider> sp;
  std::unique_ptr<core::Client> client;

  Deployment(core::Config config, const DeploymentSpec& spec) {
    config.rsa_bits = 512;
    config.sign_images = false;  // constant per-image cost, off the figures
    workload::CorpusParams cp;
    cp.num_images = spec.num_images;
    cp.num_clusters = spec.num_clusters;
    cp.min_distinct = spec.min_distinct;
    cp.max_distinct = spec.max_distinct;
    cp.seed = spec.seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id, 32);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = spec.num_clusters;
    cbp.dims = spec.dims;
    cbp.seed = spec.seed + 1;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs),
                                  spec.seed + 2);
    sp = std::make_unique<core::ServiceProvider>(owner.package.get());
    client = std::make_unique<core::Client>(owner.public_params);
  }
};

// ---------------------------------------------------------------------------
// Machine-readable bench output. Every fig*/abl_* binary accepts
//
//   --json <path>   write a BENCH_<name>.json-style report: each printed
//                   table row as a structured record, any named scalars,
//                   and the full process metrics registry (obs/registry.h)
//   --smoke         reduced scales for CI smoke runs (binaries opt in via
//                   SmokeMode(); unused by benches with no smoke variant)
//
// The human-readable tables are unchanged: PrintFigureHeader/PrintRow feed
// the report as a side effect, so instrumented binaries only add an Init()
// call at the top of main and route their exit through Finish().
// ---------------------------------------------------------------------------

// Averaged measurements over several queries.
struct Measurement {
  double sp_bovw_ms = 0, sp_inv_ms = 0;
  double client_bovw_ms = 0, client_inv_ms = 0;
  double bovw_vo_kb = 0, inv_vo_kb = 0;
  double popped_fraction = 0;
  double share_ratio = 0;
  bool verified = true;

  double SpMs() const { return sp_bovw_ms + sp_inv_ms; }
  double ClientMs() const { return client_bovw_ms + client_inv_ms; }
  double VoKb() const { return bovw_vo_kb + inv_vo_kb; }
};

inline Measurement RunQueries(Deployment& d, size_t num_features, size_t k,
                              int num_queries, uint64_t seed = 1000) {
  Measurement m;
  // Queries model a photo of something in the database: descriptors are
  // emitted near the codebook words of a random corpus image (plus 20%
  // background words) with small quantization noise (sigma 0.25 vs cluster
  // spread 10, as real quantizable descriptors have — larger noise blows
  // up the range-search candidate sets unrealistically).
  for (int q = 0; q < num_queries; ++q) {
    const auto& corpus = d.owner.package->corpus;
    const auto& source = corpus[(seed + q) * 2654435761u % corpus.size()].second;
    auto features =
        workload::FeaturesFromBovw(d.owner.package->codebook, source,
                                   num_features, 0.25, 0.2, seed + q);
    core::QueryResponse resp = d.sp->Query(features, k);
    auto verified = d.client->Verify(features, k, resp.vo);
    if (!verified.ok()) {
      std::fprintf(stderr, "bench: verification FAILED: %s\n",
                   verified.status().message().c_str());
      m.verified = false;
    }
    m.sp_bovw_ms += resp.stats.sp_bovw_ms;
    m.sp_inv_ms += resp.stats.sp_inv_ms;
    if (verified.ok()) {
      m.client_bovw_ms += verified->client_bovw_ms;
      m.client_inv_ms += verified->client_inv_ms;
    }
    m.bovw_vo_kb += resp.stats.bovw_vo_bytes / 1024.0;
    m.inv_vo_kb += resp.stats.inv_vo_bytes / 1024.0;
    m.popped_fraction += resp.stats.inv.PoppedFraction();
    m.share_ratio += resp.stats.mrkd.ShareRatio();
  }
  double inv_n = 1.0 / num_queries;
  m.sp_bovw_ms *= inv_n;
  m.sp_inv_ms *= inv_n;
  m.client_bovw_ms *= inv_n;
  m.client_inv_ms *= inv_n;
  m.bovw_vo_kb *= inv_n;
  m.inv_vo_kb *= inv_n;
  m.popped_fraction *= inv_n;
  m.share_ratio *= inv_n;
  return m;
}

class BenchReport {
 public:
  static BenchReport& Global() {
    static BenchReport r;
    return r;
  }

  // Call first thing in main(). Unknown flags abort with usage — a typoed
  // flag silently measuring the wrong thing is worse than an exit.
  void Init(int argc, char** argv, const char* bench_name) {
    name_ = bench_name;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke_ = true;
      } else {
        std::fprintf(stderr, "usage: %s [--json <path>] [--smoke]\n", argv[0]);
        std::exit(2);
      }
    }
  }

  bool smoke() const { return smoke_; }

  void SetSeries(const char* figure, const char* x_name) {
    figure_ = figure;
    x_name_ = x_name;
  }

  void AddRow(const std::string& scheme, double x, const Measurement& m) {
    rows_.push_back(Row{figure_, x_name_, scheme, x, m});
  }

  // Named scalar for benches whose output is not Measurement-shaped
  // (abl_engine's qps/update_ms, ...).
  void AddValue(const std::string& key, double v) {
    values_.emplace_back(key, v);
  }

  // Pre-rendered JSON subdocument, emitted verbatim under `key`
  // (abl_engine attaches core::QueryEngine::MetricsSnapshot() this way).
  void AddJson(const std::string& key, std::string json) {
    raw_json_.emplace_back(key, std::move(json));
  }

  // Writes the JSON report if --json was given; returns `code` (or 1 if
  // the write failed) so mains can `return ...Finish(code);`.
  int Finish(int code) {
    if (json_path_.empty()) return code;
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("smoke").Bool(smoke_);
    w.Key("exit_code").I64(code);
    w.Key("rows").BeginArray();
    for (const Row& r : rows_) {
      w.BeginObject();
      w.Key("figure").String(r.figure);
      w.Key("scheme").String(r.scheme);
      w.Key("x_name").String(r.x_name);
      w.Key("x").Double(r.x);
      w.Key("sp_bovw_ms").Double(r.m.sp_bovw_ms);
      w.Key("sp_inv_ms").Double(r.m.sp_inv_ms);
      w.Key("client_bovw_ms").Double(r.m.client_bovw_ms);
      w.Key("client_inv_ms").Double(r.m.client_inv_ms);
      w.Key("bovw_vo_kb").Double(r.m.bovw_vo_kb);
      w.Key("inv_vo_kb").Double(r.m.inv_vo_kb);
      w.Key("popped_fraction").Double(r.m.popped_fraction);
      w.Key("share_ratio").Double(r.m.share_ratio);
      w.Key("verified").Bool(r.m.verified);
      w.EndObject();
    }
    w.EndArray();
    w.Key("values").BeginObject();
    for (const auto& [key, v] : values_) w.Key(key).Double(v);
    w.EndObject();
    for (const auto& [key, j] : raw_json_) w.Key(key).Raw(j);
    w.Key("metrics").Raw(obs::Registry::Global().ToJson());
    w.EndObject();
    std::string out = w.Take();
    FILE* f = std::fopen(json_path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path_.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "bench: wrote %s\n", json_path_.c_str());
    return code;
  }

 private:
  struct Row {
    std::string figure, x_name, scheme;
    double x;
    Measurement m;
  };

  std::string name_, json_path_, figure_, x_name_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, std::string>> raw_json_;
  bool smoke_ = false;
};

// Shorthands so bench mains read naturally.
inline void InitBench(int argc, char** argv, const char* name) {
  BenchReport::Global().Init(argc, argv, name);
}
inline bool SmokeMode() { return BenchReport::Global().smoke(); }
inline int FinishBench(int code) { return BenchReport::Global().Finish(code); }

inline void PrintFigureHeader(const char* figure, const char* description,
                              const char* x_name) {
  BenchReport::Global().SetSeries(figure, x_name);
  std::printf("=================================================================="
              "=============\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("%-16s %8s | %10s %12s %10s %9s %7s\n", "scheme", x_name,
              "sp_ms", "client_ms", "vo_KB", "popped%", "share");
  std::printf("------------------------------------------------------------------"
              "-------------\n");
}

inline void PrintRow(const std::string& scheme, double x,
                     const Measurement& m) {
  BenchReport::Global().AddRow(scheme, x, m);
  std::printf("%-16s %8.0f | %10.2f %12.2f %10.1f %8.1f%% %7.2f%s\n",
              scheme.c_str(), x, m.SpMs(), m.ClientMs(), m.VoKb(),
              m.popped_fraction * 100.0, m.share_ratio,
              m.verified ? "" : "   [VERIFY FAILED]");
}

}  // namespace imageproof::bench

#endif  // IMAGEPROOF_BENCH_BENCH_UTIL_H_
