// Shared helpers for the figure-reproduction benchmarks.
//
// Every fig*.cc binary prints the series of one figure from Section VII of
// the paper as an aligned table: scheme x sweep-value -> SP CPU, client
// CPU, VO size, plus figure-specific extras (% popped postings, shared-node
// ratio). Scales are reduced versus the paper's MirFlickr1M setup (see
// EXPERIMENTS.md); the comparisons between schemes are the reproduction
// target.

#ifndef IMAGEPROOF_BENCH_BENCH_UTIL_H_
#define IMAGEPROOF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "core/client.h"
#include "core/owner.h"
#include "core/server.h"
#include "workload/synthetic.h"

namespace imageproof::bench {

struct DeploymentSpec {
  size_t num_images = 10000;
  size_t num_clusters = 4096;
  size_t dims = 64;
  size_t min_distinct = 10;
  size_t max_distinct = 40;
  uint64_t seed = 1;
};

struct Deployment {
  core::OwnerOutput owner;
  std::unique_ptr<core::ServiceProvider> sp;
  std::unique_ptr<core::Client> client;

  Deployment(core::Config config, const DeploymentSpec& spec) {
    config.rsa_bits = 512;
    config.sign_images = false;  // constant per-image cost, off the figures
    workload::CorpusParams cp;
    cp.num_images = spec.num_images;
    cp.num_clusters = spec.num_clusters;
    cp.min_distinct = spec.min_distinct;
    cp.max_distinct = spec.max_distinct;
    cp.seed = spec.seed;
    auto corpus = workload::GenerateCorpus(cp);
    std::unordered_map<bovw::ImageId, Bytes> blobs;
    for (const auto& [id, v] : corpus) {
      blobs[id] = workload::GenerateImageBlob(id, 32);
    }
    workload::CodebookParams cbp;
    cbp.num_clusters = spec.num_clusters;
    cbp.dims = spec.dims;
    cbp.seed = spec.seed + 1;
    owner = core::BuildDeployment(config, workload::GenerateCodebook(cbp),
                                  std::move(corpus), std::move(blobs),
                                  spec.seed + 2);
    sp = std::make_unique<core::ServiceProvider>(owner.package.get());
    client = std::make_unique<core::Client>(owner.public_params);
  }
};

// Averaged measurements over several queries.
struct Measurement {
  double sp_bovw_ms = 0, sp_inv_ms = 0;
  double client_bovw_ms = 0, client_inv_ms = 0;
  double bovw_vo_kb = 0, inv_vo_kb = 0;
  double popped_fraction = 0;
  double share_ratio = 0;
  bool verified = true;

  double SpMs() const { return sp_bovw_ms + sp_inv_ms; }
  double ClientMs() const { return client_bovw_ms + client_inv_ms; }
  double VoKb() const { return bovw_vo_kb + inv_vo_kb; }
};

inline Measurement RunQueries(Deployment& d, size_t num_features, size_t k,
                              int num_queries, uint64_t seed = 1000) {
  Measurement m;
  // Queries model a photo of something in the database: descriptors are
  // emitted near the codebook words of a random corpus image (plus 20%
  // background words) with small quantization noise (sigma 0.25 vs cluster
  // spread 10, as real quantizable descriptors have — larger noise blows
  // up the range-search candidate sets unrealistically).
  for (int q = 0; q < num_queries; ++q) {
    const auto& corpus = d.owner.package->corpus;
    const auto& source = corpus[(seed + q) * 2654435761u % corpus.size()].second;
    auto features =
        workload::FeaturesFromBovw(d.owner.package->codebook, source,
                                   num_features, 0.25, 0.2, seed + q);
    core::QueryResponse resp = d.sp->Query(features, k);
    auto verified = d.client->Verify(features, k, resp.vo);
    if (!verified.ok()) {
      std::fprintf(stderr, "bench: verification FAILED: %s\n",
                   verified.status().message().c_str());
      m.verified = false;
    }
    m.sp_bovw_ms += resp.stats.sp_bovw_ms;
    m.sp_inv_ms += resp.stats.sp_inv_ms;
    if (verified.ok()) {
      m.client_bovw_ms += verified->client_bovw_ms;
      m.client_inv_ms += verified->client_inv_ms;
    }
    m.bovw_vo_kb += resp.stats.bovw_vo_bytes / 1024.0;
    m.inv_vo_kb += resp.stats.inv_vo_bytes / 1024.0;
    m.popped_fraction += resp.stats.inv.PoppedFraction();
    m.share_ratio += resp.stats.mrkd.ShareRatio();
  }
  double inv_n = 1.0 / num_queries;
  m.sp_bovw_ms *= inv_n;
  m.sp_inv_ms *= inv_n;
  m.client_bovw_ms *= inv_n;
  m.client_inv_ms *= inv_n;
  m.bovw_vo_kb *= inv_n;
  m.inv_vo_kb *= inv_n;
  m.popped_fraction *= inv_n;
  m.share_ratio *= inv_n;
  return m;
}

inline void PrintFigureHeader(const char* figure, const char* description,
                              const char* x_name) {
  std::printf("=================================================================="
              "=============\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("%-16s %8s | %10s %12s %10s %9s %7s\n", "scheme", x_name,
              "sp_ms", "client_ms", "vo_KB", "popped%", "share");
  std::printf("------------------------------------------------------------------"
              "-------------\n");
}

inline void PrintRow(const std::string& scheme, double x,
                     const Measurement& m) {
  std::printf("%-16s %8.0f | %10.2f %12.2f %10.1f %8.1f%% %7.2f%s\n",
              scheme.c_str(), x, m.SpMs(), m.ClientMs(), m.VoKb(),
              m.popped_fraction * 100.0, m.share_ratio,
              m.verified ? "" : "   [VERIFY FAILED]");
}

}  // namespace imageproof::bench

#endif  // IMAGEPROOF_BENCH_BENCH_UTIL_H_
