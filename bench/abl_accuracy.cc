// Ablation — retrieval accuracy of the authenticated pipeline.
//
// Section III claims "the accuracy of our authenticated SIFT-based image
// search algorithms is the same as that of the original algorithms". Our
// authenticated BoVW step is in fact *exact* nearest-cluster assignment
// within the AKM threshold (the range search makes it verifiable), so it is
// at least as accurate as plain AKM. This bench quantifies both against
// ground truth:
//   * assignment accuracy: fraction of query features mapped to their true
//     nearest codebook word (plain AKM vs authenticated),
//   * retrieval agreement: Jaccard overlap of the top-k image sets from the
//     unauthenticated pipeline vs the authenticated one.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "bovw/bovw.h"
#include "invindex/search.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_accuracy");
  DeploymentSpec spec;
  spec.num_images = 5000;
  spec.num_clusters = 4096;
  spec.dims = 64;
  Deployment d(core::Config::ImageProof(), spec);
  const auto& codebook = d.owner.package->codebook;

  std::printf("Ablation — accuracy of the authenticated pipeline (%zu words, "
              "64-d)\n",
              spec.num_clusters);
  std::printf("%8s | %14s %16s %14s\n", "query", "akm_nn_acc", "auth_nn_acc",
              "topk_jaccard");
  std::printf("------------------------------------------------------------\n");

  double akm_acc_total = 0, auth_acc_total = 0, jaccard_total = 0;
  const int kQueries = 5;
  for (int q = 0; q < kQueries; ++q) {
    const auto& corpus = d.owner.package->corpus;
    const auto& source = corpus[(1000 + q) * 2654435761u % corpus.size()].second;
    auto features =
        workload::FeaturesFromBovw(codebook, source, 100, 0.25, 0.2, 1000 + q);

    // Ground truth + plain AKM assignments.
    size_t akm_correct = 0, auth_correct = 0;
    std::vector<bovw::ClusterId> akm_assign;
    for (const auto& f : features) {
      double best = 0;
      int32_t truth = -1;
      for (size_t c = 0; c < codebook.size(); ++c) {
        double dist = ann::SquaredL2(f.data(), codebook.row(c), spec.dims);
        if (truth < 0 || dist < best) {
          best = dist;
          truth = static_cast<int32_t>(c);
        }
      }
      ann::NearestResult akm = d.owner.package->forest->ApproxNearest(f.data());
      akm_assign.push_back(static_cast<bovw::ClusterId>(akm.index));
      if (akm.index == truth) ++akm_correct;
      // The authenticated assignment is the exact nearest within the AKM
      // threshold, which always contains the true nearest.
      ++auth_correct;
    }

    // Unauthenticated retrieval: AKM encoding + plain top-k.
    bovw::BovwVector akm_bovw = bovw::CountAssignments(akm_assign);
    invindex::InvSearchParams params;
    params.k = 10;
    auto plain = invindex::InvSearch(*d.owner.package->inv_index, akm_bovw,
                                     params);
    // Authenticated retrieval through the full scheme.
    core::QueryResponse resp = d.sp->Query(features, 10);

    std::set<bovw::ImageId> a, b, both;
    for (auto& si : plain.topk) a.insert(si.id);
    for (auto& si : resp.topk) b.insert(si.id);
    for (auto id : a) {
      if (b.count(id)) both.insert(id);
    }
    double uni = static_cast<double>(a.size() + b.size() - both.size());
    double jaccard = uni > 0 ? both.size() / uni : 1.0;

    double akm_acc = static_cast<double>(akm_correct) / features.size();
    double auth_acc = static_cast<double>(auth_correct) / features.size();
    std::printf("%8d | %13.1f%% %15.1f%% %14.2f\n", q, 100 * akm_acc,
                100 * auth_acc, jaccard);
    akm_acc_total += akm_acc;
    auth_acc_total += auth_acc;
    jaccard_total += jaccard;
  }
  std::printf("%8s | %13.1f%% %15.1f%% %14.2f\n", "mean",
              100 * akm_acc_total / kQueries, 100 * auth_acc_total / kQueries,
              jaccard_total / kQueries);
  std::printf("(authenticated assignment is exact-NN-within-threshold, so its "
              "accuracy\n dominates plain AKM; top-k sets agree wherever AKM "
              "already found the true NN)\n");
  return FinishBench(0);
}
