// Ablation — cuckoo filter vs counting Bloom filter as the deletable
// set-membership structure (the design choice Section II-B motivates:
// cuckoo filters give better lookups and less space at FPR < 3%).
//
// Both structures are sized for the same item count, then measured on
// serialized size (what a VO would carry), false-positive rate after the
// verifier-style delete-half workload, and lookup/delete throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "cuckoo/counting_bloom.h"
#include "cuckoo/cuckoo_filter.h"

using namespace imageproof;
using namespace imageproof::cuckoo;

template <typename Filter>
void Measure(const char* name, Filter& filter, size_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    if (!filter.Insert(i)) {
      std::printf("%-16s insert failed at %llu\n", name,
                  static_cast<unsigned long long>(i));
      return;
    }
  }
  // Verifier-style workload: delete half the members (popped images).
  for (uint64_t i = 0; i < n; i += 2) filter.Delete(i);

  // FPR against items never inserted.
  const int probes = 200000;
  int fp = 0;
  for (int i = 0; i < probes; ++i) {
    if (filter.Contains(1000000 + i)) ++fp;
  }

  // Lookup throughput.
  Stopwatch lookup_timer;
  uint64_t sink = 0;
  for (int r = 0; r < 10; ++r) {
    for (uint64_t i = 0; i < n; ++i) sink += filter.Contains(i);
  }
  double lookup_ns = lookup_timer.ElapsedMillis() * 1e6 / (10.0 * n);

  // Delete+reinsert throughput.
  Stopwatch mut_timer;
  for (uint64_t i = 1; i < n; i += 2) {
    filter.Delete(i);
    filter.Insert(i);
  }
  double mut_ns = mut_timer.ElapsedMillis() * 1e6 / n;

  std::printf("%-16s %10zu %12.3f%% %12.1f %12.1f%s\n", name,
              filter.Serialize().size(), 100.0 * fp / probes, lookup_ns,
              mut_ns, sink == 0 ? " (!)" : "");
}

int main(int argc, char** argv) {
  bench::InitBench(argc, argv, "abl_membership");
  std::printf("Ablation — deletable set-membership structures (per list of n "
              "items, half deleted)\n");
  std::printf("%-16s %10s %13s %12s %12s\n", "structure", "bytes", "FPR",
              "lookup_ns", "del+ins_ns");
  std::printf("----------------------------------------------------------------"
              "---\n");
  for (size_t n : {500, 2000, 8000}) {
    std::printf("n = %zu\n", n);
    CuckooFilter cuckoo8(CuckooParams::ForMaxItems(n, 8));
    Measure("cuckoo 8-bit", cuckoo8, n);
    CuckooFilter cuckoo12(CuckooParams::ForMaxItems(n, 12));
    Measure("cuckoo 12-bit", cuckoo12, n);
    CountingBloomFilter bloom(BloomParams::ForMaxItems(n));
    Measure("counting bloom", bloom, n);
  }
  std::printf("(expected: cuckoo smaller at comparable FPR, faster lookups — "
              "the paper's Section II-B rationale)\n");
  return bench::FinishBench(0);
}
