// Micro-benchmarks for the randomized k-d tree substrate: build time,
// forest (AKM) search latency, exact range search, and MRKD digest
// decoration cost.

#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "ann/rkd_forest.h"
#include "crypto/sha3.h"
#include "mrkd/mrkd_tree.h"
#include "workload/synthetic.h"

namespace {

using namespace imageproof;

ann::PointSet Codebook(size_t n, size_t dims) {
  workload::CodebookParams p;
  p.num_clusters = n;
  p.dims = dims;
  return workload::GenerateCodebook(p);
}

void BM_TreeBuild(benchmark::State& state) {
  ann::PointSet points = Codebook(state.range(0), 64);
  for (auto _ : state) {
    ann::RkdTree tree(points, 2, 42);
    benchmark::DoNotOptimize(tree.nodes().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(1024)->Arg(8192);

void BM_ForestApproxNearest(benchmark::State& state) {
  ann::PointSet points = Codebook(state.range(0), 64);
  ann::RkdForest forest(points, ann::ForestParams{});
  auto queries = workload::GenerateQueryFeatures(points, 256, 0.25, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.ApproxNearest(queries[i++ % 256].data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestApproxNearest)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_RangeSearch(benchmark::State& state) {
  ann::PointSet points = Codebook(8192, 64);
  ann::RkdTree tree(points, 2, 42);
  ann::RkdForest forest(points, ann::ForestParams{});
  auto queries = workload::GenerateQueryFeatures(points, 64, 0.25, 9);
  std::vector<double> radius;
  for (auto& q : queries) radius.push_back(forest.ApproxNearest(q.data()).dist_sq);
  size_t i = 0;
  for (auto _ : state) {
    size_t qi = i++ % queries.size();
    benchmark::DoNotOptimize(tree.RangeSearch(queries[qi].data(), radius[qi]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeSearch);

void BM_MrkdDecoration(benchmark::State& state) {
  ann::PointSet points = Codebook(state.range(0), 64);
  ann::RkdTree tree(points, 2, 42);
  std::vector<crypto::Digest> list_digests(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    Bytes b{static_cast<uint8_t>(i)};
    list_digests[i] = crypto::Sha3(b);
  }
  for (auto _ : state) {
    mrkd::MrkdTree mt(&tree, mrkd::RevealMode::kFullVector, list_digests);
    benchmark::DoNotOptimize(mt.root_digest());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_MrkdDecoration)->Arg(1024)->Arg(8192);

}  // namespace

IMAGEPROOF_MICRO_BENCH_MAIN("micro_kdtree");
