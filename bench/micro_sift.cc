// Micro-benchmarks for the image/SIFT substrate: synthesis, Gaussian
// pyramid filtering, and full feature extraction at both descriptor sizes.

#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "image/synth.h"
#include "sift/extractor.h"
#include "sift/gaussian.h"

namespace {

using namespace imageproof;

void BM_SynthesizeImage(benchmark::State& state) {
  uint64_t seed = 0;
  int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::SynthesizeImage(seed++, side, side));
  }
}
BENCHMARK(BM_SynthesizeImage)->Arg(64)->Arg(128)->Arg(256);

void BM_GaussianBlur(benchmark::State& state) {
  image::Image img = image::SynthesizeImage(1, 128, 128);
  image::FloatImage f = image::FloatImage::From(img);
  double sigma = state.range(0) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sift::GaussianBlur(f, sigma));
  }
}
BENCHMARK(BM_GaussianBlur)->Arg(16)->Arg(32)->Arg(64);  // sigma = 1.6, 3.2, 6.4

void BM_ExtractSift128(benchmark::State& state) {
  image::Image img = image::SynthesizeImage(7, 128, 128);
  sift::SiftExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(img));
  }
}
BENCHMARK(BM_ExtractSift128);

void BM_ExtractSurf64(benchmark::State& state) {
  image::Image img = image::SynthesizeImage(7, 128, 128);
  sift::SiftParams params;
  params.orientation_bins = 4;  // 64-d
  sift::SiftExtractor extractor(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(img));
  }
}
BENCHMARK(BM_ExtractSurf64);

void BM_Rotate(benchmark::State& state) {
  image::Image img = image::SynthesizeImage(9, 128, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::Rotate(img, 0.4));
  }
}
BENCHMARK(BM_Rotate);

}  // namespace

IMAGEPROOF_MICRO_BENCH_MAIN("micro_sift");
