// Figure 11 — inverted-index search performance as k grows (dataset 20k,
// codebook 4096, 200 query features).
//
// Paper shape to reproduce: the popped-posting fraction of InvSearch and
// Optimized rises with k (more postings needed to cover the result set),
// while the Baseline is saturated near 100% regardless; Optimized matches
// InvSearch on SP CPU but wins on client CPU / VO via grouping.

#include "bench/inv_bench_util.h"

using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig11_inv_k");
  InvFixture fx(20000, 4096);
  PrintInvHeader(
      "Figure 11 — inverted index vs k (20k images, 4096 clusters, 200 features)",
      "k");
  for (InvScheme scheme :
       {InvScheme::kBaseline, InvScheme::kInvSearch, InvScheme::kOptimized}) {
    for (size_t k : {1, 5, 10, 20, 50}) {
      PrintInvRow(scheme, k, RunInvQueries(fx, scheme, 200, k, 3));
    }
  }
  return FinishBench(0);
}
