// Ablation/extension bench — network serving layer (src/net).
//
// Closed-loop multi-connection load generator against a live NetServer on
// loopback: each connection runs its own NetClient issuing queries
// back-to-back (a new query the moment the previous verified response —
// or explicit rejection — arrives). Sweeps the connection count and
// reports, per point:
//
//   qps        verified queries per second (wall clock)
//   p50/p99    client-observed latency, request sent -> response VERIFIED
//              (so the number includes framing, TCP, engine queueing, VO
//              serialization, and the full Client::Verify replay)
//   shed%      fraction of queries answered kOverloaded
//   B/query    response frame bytes per successful query
//
// The overload point then drives offered concurrency at >= 2x the engine's
// serving capacity (workers + queue slots) and must show a nonzero shed
// rate with p99 of the *served* queries staying bounded — the explicit-
// rejection contract, measured through the full network path.
//
// --smoke shrinks the deployment and query counts for CI; --json <path>
// writes the BenchReport with every point as named values.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "net/client.h"
#include "net/server.h"

using namespace imageproof;
using namespace imageproof::bench;

namespace {

struct LoadPoint {
  size_t connections = 0;
  size_t verified = 0;
  size_t shed = 0;
  size_t errors = 0;
  double wall_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double bytes_per_query = 0;

  double Qps() const {
    return wall_ms > 0 ? verified / (wall_ms / 1000.0) : 0;
  }
  double ShedRate() const {
    size_t total = verified + shed + errors;
    return total > 0 ? static_cast<double>(shed) / total : 0;
  }
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

// Runs `connections` closed-loop clients, each issuing `queries_per_conn`
// queries, and aggregates client-observed outcomes.
LoadPoint RunLoad(uint16_t port, const core::PublicParams& params,
                  const std::vector<std::vector<std::vector<float>>>& queries,
                  size_t connections, size_t queries_per_conn, size_t k) {
  LoadPoint point;
  point.connections = connections;
  std::atomic<size_t> verified{0}, shed{0}, errors{0}, resp_bytes{0};
  std::vector<std::vector<double>> latencies(connections);

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::NetClient::Connect("127.0.0.1", port, params);
      if (!client.ok()) {
        errors.fetch_add(queries_per_conn);
        return;
      }
      for (size_t q = 0; q < queries_per_conn; ++q) {
        const auto& features = queries[(c * queries_per_conn + q) %
                                       queries.size()];
        Stopwatch sw;
        auto result = client->Query(features, k, /*deadline_ms=*/30000);
        double ms = sw.ElapsedMillis();
        if (result.ok()) {
          verified.fetch_add(1);
          resp_bytes.fetch_add(result->response_frame_bytes);
          latencies[c].push_back(ms);
        } else if (result.status().code() == StatusCode::kOverloaded) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  point.wall_ms = wall.ElapsedMillis();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  point.p50_ms = Percentile(all, 0.50);
  point.p99_ms = Percentile(all, 0.99);
  point.verified = verified.load();
  point.shed = shed.load();
  point.errors = errors.load();
  point.bytes_per_query =
      point.verified > 0
          ? static_cast<double>(resp_bytes.load()) / point.verified
          : 0;
  return point;
}

void PrintPoint(const char* label, const LoadPoint& p) {
  std::printf("%-10s %6zu | %8.1f %8.2f %8.2f %7.1f%% %10.0f %6zu %6zu\n",
              label, p.connections, p.Qps(), p.p50_ms, p.p99_ms,
              p.ShedRate() * 100.0, p.bytes_per_query, p.verified, p.shed);
  auto& report = BenchReport::Global();
  std::string prefix = std::string(label) + ".c" +
                       std::to_string(p.connections) + ".";
  report.AddValue(prefix + "qps", p.Qps());
  report.AddValue(prefix + "p50_ms", p.p50_ms);
  report.AddValue(prefix + "p99_ms", p.p99_ms);
  report.AddValue(prefix + "shed_rate", p.ShedRate());
  report.AddValue(prefix + "bytes_per_query", p.bytes_per_query);
  report.AddValue(prefix + "verified", static_cast<double>(p.verified));
  report.AddValue(prefix + "errors", static_cast<double>(p.errors));
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_net");
  DeploymentSpec spec;
  spec.num_images = SmokeMode() ? 1000 : 10000;
  spec.num_clusters = SmokeMode() ? 1024 : 4096;
  spec.dims = SmokeMode() ? 32 : 64;
  Deployment d(core::Config::ImageProof(), spec);
  core::PublicParams params = d.owner.public_params;
  auto package =
      std::shared_ptr<const core::SpPackage>(std::move(d.owner.package));

  const size_t kFeatures = SmokeMode() ? 20 : 30;
  const size_t kTopK = 10;
  const size_t kQueriesPerConn = SmokeMode() ? 4 : 16;
  std::vector<std::vector<std::vector<float>>> queries;
  for (size_t q = 0; q < 16; ++q) {
    const auto& corpus = package->corpus;
    const auto& source = corpus[(q * 2654435761u) % corpus.size()].second;
    queries.push_back(workload::FeaturesFromBovw(
        package->codebook, source, kFeatures, 0.25, 0.2, 1000 + q));
  }

  std::printf("Extension — network serving (loopback, %zu features, k=%zu, "
              "%zu queries/conn)\n",
              kFeatures, kTopK, kQueriesPerConn);
  std::printf("%-10s %6s | %8s %8s %8s %8s %10s %6s %6s\n", "mode", "conns",
              "qps", "p50_ms", "p99_ms", "shed%", "B/query", "ok", "shed");
  std::printf("--------------------------------------------------------------"
              "-----------------\n");

  int exit_code = 0;

  // Capacity sweep: engine sized to the machine, connections 1 -> 2x
  // workers. Shed rate should stay ~0 (closed loop, capacity-bound).
  {
    core::EngineOptions opts;
    opts.num_workers = SmokeMode() ? 2 : 4;
    opts.queue_capacity = 64;
    core::QueryEngine engine(package, params, opts);
    net::NetServer server(&engine);
    if (!server.Start().ok()) return FinishBench(1);
    for (size_t conns : SmokeMode() ? std::vector<size_t>{1, 4}
                                    : std::vector<size_t>{1, 2, 4, 8}) {
      LoadPoint p = RunLoad(server.port(), params, queries, conns,
                            kQueriesPerConn, kTopK);
      PrintPoint("sweep", p);
      if (p.errors > 0) exit_code = 1;
    }
    server.Stop();
  }

  // Overload: 1 worker, tiny queue, offered concurrency >= 2x capacity
  // (capacity = 1 in flight + queue slots). The engine must shed the
  // excess explicitly — nonzero shed rate, zero errors, and the served
  // queries still verify.
  {
    core::EngineOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 2;
    core::QueryEngine engine(package, params, opts);
    net::NetServer server(&engine);
    if (!server.Start().ok()) return FinishBench(1);
    const size_t capacity = 1 + opts.queue_capacity;
    const size_t conns = 2 * capacity + 2;  // >= 2x serving capacity
    LoadPoint p = RunLoad(server.port(), params, queries, conns,
                          kQueriesPerConn, kTopK);
    PrintPoint("overload", p);
    BenchReport::Global().AddValue("overload.offered_over_capacity",
                                   static_cast<double>(conns) / capacity);
    if (p.errors > 0) exit_code = 1;
    if (p.shed == 0) {
      std::fprintf(stderr, "abl_net: overload run shed nothing — offered "
                           "load did not exceed capacity?\n");
      exit_code = 1;
    }
    server.Stop();
  }

  return FinishBench(exit_code);
}
