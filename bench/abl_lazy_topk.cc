// Ablation/extension — lazy vs eager top-k occurrence popping.
//
// Algorithm 3 line 1 pops *every* occurrence of every top-k image before
// the condition loops start. Phase instrumentation shows those eager pops
// dominate the popped-postings count: a result image with one deep
// low-impact posting drags the whole prefix of that list into the VO. The
// lazy extension (InvSearchParams::lazy_topk_pops) reveals claimed
// occurrences highest-impact-first, only until the claimed set provably
// dominates — the client-side verification is unchanged.

#include <cstdio>

#include "bench/inv_bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_lazy_topk");
  std::printf("Extension — lazy top-k popping (20k images, k=10)\n");
  std::printf("%-8s %10s | %10s %10s | %10s %10s\n", "mode", "features",
              "popped%", "vo_KB", "sp_ms", "client_ms");
  std::printf("----------------------------------------------------------------\n");
  InvFixture fx(20000, 4096);
  for (bool lazy : {false, true}) {
    for (size_t nf : {50, 200}) {
      invindex::InvSearchParams params;
      params.k = 10;
      params.lazy_topk_pops = lazy;
      double popped = 0, kb = 0, sp_ms = 0, client_ms = 0;
      const int kQ = 3;
      for (int q = 0; q < kQ; ++q) {
        const auto& source =
            fx.corpus[(500 + q) * 2654435761u % fx.corpus.size()].second;
        auto query =
            workload::QueryFromImage(fx.params, source, nf, 0.2, 500 + q);
        Stopwatch t1;
        auto r = invindex::InvSearch(*fx.filtered, query, params);
        sp_ms += t1.ElapsedMillis();
        popped += 100.0 * r.stats.PoppedFraction();
        kb += r.vo.size() / 1024.0;
        std::vector<bovw::ImageId> claimed;
        for (auto& si : r.topk) claimed.push_back(si.id);
        Stopwatch t2;
        invindex::InvVerifyResult verified;
        Status s = invindex::VerifyInvVo(r.vo, query, claimed, 10, true,
                                         &verified);
        client_ms += t2.ElapsedMillis();
        if (!s.ok()) {
          std::fprintf(stderr, "verify failed: %s\n", s.message().c_str());
          return FinishBench(1);
        }
      }
      std::printf("%-8s %10zu | %9.1f%% %10.1f | %10.2f %10.2f\n",
                  lazy ? "lazy" : "eager", nf, popped / kQ, kb / kQ,
                  sp_ms / kQ, client_ms / kQ);
    }
  }
  return FinishBench(0);
}
