// Figure 7 — BoVW-encoding performance (SURF stand-in, 64-d descriptors)
// as the number of feature vectors grows, plus the average ratio of shared
// MRKD-tree nodes.
//
// Paper shape to reproduce: same ordering as Fig. 6 at lower absolute cost
// (half the dimensionality); the shared-node ratio sits around 0.4-0.5 and
// decreases slightly with more feature vectors.

#include "bench/bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "fig07_bovw_surf");
  DeploymentSpec spec;
  spec.num_images = 1500;
  spec.num_clusters = 8192;
  spec.dims = 64;

  struct Scheme {
    const char* name;
    core::Config config;
  };
  std::vector<Scheme> schemes = {
      {"Baseline", core::Config::Baseline()},
      {"MRKDSearch", core::Config::ImageProof()},
      {"Optimized", core::Config::OptimizedBovw()},
  };

  std::printf("Figure 7 — BoVW encoding, SURF stand-in (64-d), codebook %zu\n",
              spec.num_clusters);
  std::printf("%-12s %10s | %12s %14s %12s %10s\n", "scheme", "features",
              "sp_bovw_ms", "client_bovw_ms", "bovw_vo_KB", "share");
  std::printf("--------------------------------------------------------------"
              "--------------\n");
  BenchReport::Global().SetSeries("fig07", "features");
  for (const Scheme& s : schemes) {
    Deployment d(s.config, spec);
    for (size_t nf : {50, 100, 200, 400}) {
      Measurement m = RunQueries(d, nf, 10, 3);
      BenchReport::Global().AddRow(s.name, static_cast<double>(nf), m);
      std::printf("%-12s %10zu | %12.2f %14.2f %12.1f %10.2f%s\n", s.name, nf,
                  m.sp_bovw_ms, m.client_bovw_ms, m.bovw_vo_kb, m.share_ratio,
                  m.verified ? "" : "  [VERIFY FAILED]");
    }
  }
  return FinishBench(0);
}
