// Ablation/extension bench — concurrent query-serving engine.
//
// Measures end-to-end serving throughput and latency of core::QueryEngine
// across worker-pool sizes, against the serial ServiceProvider loop as the
// 1-worker baseline, plus the cost of a snapshot-swapped update while the
// pool is busy. Every response is verified against the snapshot it was
// served under, so the numbers are for *authenticated* serving.
//
// --smoke shrinks the deployment and query count for CI; --json <path>
// additionally attaches the final engine MetricsSnapshot() so the report
// carries per-worker queue-wait / latency histograms.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/query_engine.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_engine");
  DeploymentSpec spec;
  spec.num_images = SmokeMode() ? 1000 : 10000;
  spec.num_clusters = SmokeMode() ? 1024 : 4096;
  spec.dims = SmokeMode() ? 32 : 64;
  Deployment d(core::Config::ImageProof(), spec);
  auto package =
      std::shared_ptr<const core::SpPackage>(std::move(d.owner.package));

  const size_t kNumQueries = SmokeMode() ? 8 : 32;
  const size_t kFeatures = SmokeMode() ? 20 : 30;
  const size_t kTopK = 10;
  std::vector<std::vector<std::vector<float>>> queries;
  for (size_t q = 0; q < kNumQueries; ++q) {
    const auto& corpus = package->corpus;
    const auto& source = corpus[(q * 2654435761u) % corpus.size()].second;
    queries.push_back(workload::FeaturesFromBovw(
        package->codebook, source, kFeatures, 0.25, 0.2, 1000 + q));
  }

  std::printf("Extension — concurrent query engine (%zu queries, %zu features, "
              "k=%zu)\n", kNumQueries, kFeatures, kTopK);
  std::printf("%8s %6s | %12s %10s %10s %10s\n", "workers", "intra",
              "total_ms", "qps", "p50_ms", "p99_ms");
  std::printf("---------------------------------------------------------------\n");

  std::string last_metrics_json;
  for (unsigned workers : SmokeMode() ? std::vector<unsigned>{1u, 2u}
                                      : std::vector<unsigned>{1u, 2u, 4u, 8u}) {
    core::EngineOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.intra_query_threads = workers > 1 ? 2 : 1;
    core::QueryEngine engine(package, d.owner.public_params, opts);
    Stopwatch timer;
    auto responses = engine.QueryBatch(queries, kTopK);
    double total_ms = timer.ElapsedMillis();
    int verify_failures = 0;
    for (const auto& r : responses) {
      core::Client client(r.snapshot->params);
      auto features_index = &r - responses.data();
      if (!client.Verify(queries[features_index], kTopK, r.response.vo).ok()) {
        ++verify_failures;
      }
    }
    core::EngineStats stats = engine.Stats();
    double qps = kNumQueries / (total_ms / 1000.0);
    std::printf("%8u %6u | %12.1f %10.1f %10.2f %10.2f%s\n", workers,
                opts.intra_query_threads, total_ms, qps, stats.p50_latency_ms,
                stats.p99_latency_ms,
                verify_failures ? "   [VERIFY FAILED]" : "");
    char key[64];
    std::snprintf(key, sizeof(key), "workers_%u.qps", workers);
    BenchReport::Global().AddValue(key, qps);
    std::snprintf(key, sizeof(key), "workers_%u.p50_ms", workers);
    BenchReport::Global().AddValue(key, stats.p50_latency_ms);
    std::snprintf(key, sizeof(key), "workers_%u.p99_ms", workers);
    BenchReport::Global().AddValue(key, stats.p99_latency_ms);
    std::snprintf(key, sizeof(key), "workers_%u.verify_failures", workers);
    BenchReport::Global().AddValue(key, verify_failures);
    last_metrics_json = engine.MetricsSnapshot();
  }

  // Update cost while serving: one snapshot swap (clone + apply + re-sign)
  // overlapped with a busy pool.
  core::EngineOptions opts;
  opts.num_workers = SmokeMode() ? 2 : 4;
  opts.queue_capacity = 64;
  core::QueryEngine engine(package, d.owner.public_params, opts);
  std::vector<std::future<core::EngineResponse>> in_flight;
  for (const auto& q : queries) in_flight.push_back(engine.Submit(q, kTopK));
  workload::CorpusParams qp;
  qp.num_clusters = spec.num_clusters;
  Stopwatch update_timer;
  auto ins = engine.InsertImage(d.owner.private_key, 9000001,
                                workload::GenerateQueryBovw(qp, 20, 77),
                                workload::GenerateImageBlob(9000001));
  double update_ms = update_timer.ElapsedMillis();
  for (auto& f : in_flight) (void)f.get();
  std::printf("\nsnapshot-swapped InsertImage while pool busy: %.1f ms (%s), "
              "final snapshot v%llu\n", update_ms,
              ins.ok() ? "ok" : ins.status().message().c_str(),
              static_cast<unsigned long long>(engine.Stats().snapshot_version));
  BenchReport::Global().AddValue("update_ms", update_ms);
  BenchReport::Global().AddJson("engine_metrics", engine.MetricsSnapshot());
  if (!last_metrics_json.empty()) {
    BenchReport::Global().AddJson("sweep_last_engine_metrics",
                                  std::move(last_metrics_json));
  }
  return FinishBench(ins.ok() ? 0 : 1);
}
