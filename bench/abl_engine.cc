// Ablation/extension bench — concurrent query-serving engine.
//
// Measures end-to-end serving throughput and latency of core::QueryEngine
// across worker-pool sizes, against the serial ServiceProvider loop as the
// 1-worker baseline, plus the cost of a snapshot-swapped update while the
// pool is busy. Every response is verified against the snapshot it was
// served under, so the numbers are for *authenticated* serving.
//
// --smoke shrinks the deployment and query count for CI; --json <path>
// additionally attaches the final engine MetricsSnapshot() so the report
// carries per-worker queue-wait / latency histograms.
//
// Fault-tolerance modes:
//   --deadline-ms <n>  submit every query with an n-millisecond deadline
//                      (reports how many resolve kDeadlineExceeded)
//   --overload         drive a 1-worker engine at 2x its queue capacity and
//                      report the shed rate and p99 of the served queries

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "core/query_engine.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  // Strip this bench's own flags before InitBench: BenchReport::Init exits
  // on anything it does not recognize.
  int deadline_ms = 0;
  bool overload = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  InitBench(static_cast<int>(passthrough.size()), passthrough.data(),
            "abl_engine");
  DeploymentSpec spec;
  spec.num_images = SmokeMode() ? 1000 : 10000;
  spec.num_clusters = SmokeMode() ? 1024 : 4096;
  spec.dims = SmokeMode() ? 32 : 64;
  Deployment d(core::Config::ImageProof(), spec);
  auto package =
      std::shared_ptr<const core::SpPackage>(std::move(d.owner.package));

  const size_t kNumQueries = SmokeMode() ? 8 : 32;
  const size_t kFeatures = SmokeMode() ? 20 : 30;
  const size_t kTopK = 10;
  std::vector<std::vector<std::vector<float>>> queries;
  for (size_t q = 0; q < kNumQueries; ++q) {
    const auto& corpus = package->corpus;
    const auto& source = corpus[(q * 2654435761u) % corpus.size()].second;
    queries.push_back(workload::FeaturesFromBovw(
        package->codebook, source, kFeatures, 0.25, 0.2, 1000 + q));
  }

  std::printf("Extension — concurrent query engine (%zu queries, %zu features, "
              "k=%zu)\n", kNumQueries, kFeatures, kTopK);
  std::printf("%8s %6s | %12s %10s %10s %10s\n", "workers", "intra",
              "total_ms", "qps", "p50_ms", "p99_ms");
  std::printf("---------------------------------------------------------------\n");

  std::string last_metrics_json;
  for (unsigned workers : SmokeMode() ? std::vector<unsigned>{1u, 2u}
                                      : std::vector<unsigned>{1u, 2u, 4u, 8u}) {
    core::EngineOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.intra_query_threads = workers > 1 ? 2 : 1;
    core::QueryEngine engine(package, d.owner.public_params, opts);
    core::SubmitOptions submit_opts;
    submit_opts.deadline = std::chrono::milliseconds(deadline_ms);
    Stopwatch timer;
    auto responses = engine.QueryBatch(queries, kTopK, submit_opts);
    double total_ms = timer.ElapsedMillis();
    int verify_failures = 0;
    int expired = 0;
    for (const auto& r : responses) {
      if (!r.ok()) {  // only possible with --deadline-ms
        ++expired;
        continue;
      }
      core::Client client(r.snapshot->params);
      auto features_index = &r - responses.data();
      if (!client.Verify(queries[features_index], kTopK, r.response.vo).ok()) {
        ++verify_failures;
      }
    }
    core::EngineStats stats = engine.Stats();
    double qps = kNumQueries / (total_ms / 1000.0);
    std::printf("%8u %6u | %12.1f %10.1f %10.2f %10.2f%s\n", workers,
                opts.intra_query_threads, total_ms, qps, stats.p50_latency_ms,
                stats.p99_latency_ms,
                verify_failures ? "   [VERIFY FAILED]" : "");
    char key[64];
    std::snprintf(key, sizeof(key), "workers_%u.qps", workers);
    BenchReport::Global().AddValue(key, qps);
    std::snprintf(key, sizeof(key), "workers_%u.p50_ms", workers);
    BenchReport::Global().AddValue(key, stats.p50_latency_ms);
    std::snprintf(key, sizeof(key), "workers_%u.p99_ms", workers);
    BenchReport::Global().AddValue(key, stats.p99_latency_ms);
    std::snprintf(key, sizeof(key), "workers_%u.verify_failures", workers);
    BenchReport::Global().AddValue(key, verify_failures);
    if (deadline_ms > 0) {
      std::printf("         deadline %d ms: %d of %zu expired\n", deadline_ms,
                  expired, kNumQueries);
      std::snprintf(key, sizeof(key), "workers_%u.deadline_expired", workers);
      BenchReport::Global().AddValue(key, expired);
    }
    last_metrics_json = engine.MetricsSnapshot();
  }

  if (overload) {
    // Offered load at 2x queue capacity against a single worker: the engine
    // must shed the excess as immediate kOverloaded responses, and the
    // queries it does accept must still serve and verify. Shed rate and the
    // served-side p99 are the headline numbers.
    core::EngineOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = SmokeMode() ? 4 : 16;
    core::QueryEngine engine(package, d.owner.public_params, opts);
    const size_t offered = 2 * opts.queue_capacity + 1;
    std::vector<std::future<core::EngineResponse>> futures;
    for (size_t i = 0; i < offered; ++i) {
      futures.push_back(engine.Submit(queries[i % queries.size()], kTopK));
    }
    size_t served = 0, shed = 0, verify_failures = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      core::EngineResponse r = futures[i].get();
      if (!r.ok()) {
        ++shed;
        continue;
      }
      ++served;
      core::Client client(r.snapshot->params);
      if (!client.Verify(queries[i % queries.size()], kTopK, r.response.vo)
               .ok()) {
        ++verify_failures;
      }
    }
    core::EngineStats stats = engine.Stats();
    double shed_rate = static_cast<double>(shed) / offered;
    std::printf("\noverload (1 worker, queue %zu, offered %zu): served %zu, "
                "shed %zu (%.0f%%), p99 %.2f ms%s\n",
                opts.queue_capacity, offered, served, shed, 100.0 * shed_rate,
                stats.p99_latency_ms,
                verify_failures ? "   [VERIFY FAILED]" : "");
    BenchReport::Global().AddValue("overload.offered", offered);
    BenchReport::Global().AddValue("overload.served", served);
    BenchReport::Global().AddValue("overload.shed_rate", shed_rate);
    BenchReport::Global().AddValue("overload.p99_ms", stats.p99_latency_ms);
    BenchReport::Global().AddValue("overload.verify_failures",
                                   verify_failures);
  }

  // Update cost while serving: one snapshot swap (clone + apply + re-sign)
  // overlapped with a busy pool.
  core::EngineOptions opts;
  opts.num_workers = SmokeMode() ? 2 : 4;
  opts.queue_capacity = 64;
  core::QueryEngine engine(package, d.owner.public_params, opts);
  std::vector<std::future<core::EngineResponse>> in_flight;
  for (const auto& q : queries) in_flight.push_back(engine.Submit(q, kTopK));
  workload::CorpusParams qp;
  qp.num_clusters = spec.num_clusters;
  Stopwatch update_timer;
  auto ins = engine.InsertImage(d.owner.private_key, 9000001,
                                workload::GenerateQueryBovw(qp, 20, 77),
                                workload::GenerateImageBlob(9000001));
  double update_ms = update_timer.ElapsedMillis();
  for (auto& f : in_flight) (void)f.get();
  std::printf("\nsnapshot-swapped InsertImage while pool busy: %.1f ms (%s), "
              "final snapshot v%llu\n", update_ms,
              ins.ok() ? "ok" : ins.status().message().c_str(),
              static_cast<unsigned long long>(engine.Stats().snapshot_version));
  BenchReport::Global().AddValue("update_ms", update_ms);
  BenchReport::Global().AddJson("engine_metrics", engine.MetricsSnapshot());
  if (!last_metrics_json.empty()) {
    BenchReport::Global().AddJson("sweep_last_engine_metrics",
                                  std::move(last_metrics_json));
  }
  return FinishBench(ins.ok() ? 0 : 1);
}
