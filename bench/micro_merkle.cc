// Micro-benchmarks for the Merkle hash tree: build and subset-proof
// generation/verification at codebook-dimension scales.

#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "common/random.h"
#include "merkle/merkle_tree.h"

namespace {

using namespace imageproof;
using namespace imageproof::merkle;

std::vector<Bytes> Leaves(size_t n) {
  Rng rng(3);
  std::vector<Bytes> out(n);
  for (auto& leaf : out) {
    leaf.resize(32);
    for (auto& b : leaf) b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

void BM_TreeBuild(benchmark::State& state) {
  auto leaves = Leaves(state.range(0));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(16)->Arg(128)->Arg(1024);

void BM_SubsetProve(benchmark::State& state) {
  auto leaves = Leaves(128);
  MerkleTree tree(leaves);
  std::vector<uint32_t> indices = {3, 17, 64, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.ProveSubset(indices));
  }
}
BENCHMARK(BM_SubsetProve);

void BM_SubsetVerify(benchmark::State& state) {
  auto leaves = Leaves(128);
  MerkleTree tree(leaves);
  std::vector<uint32_t> indices = {3, 17, 64, 100};
  std::vector<Bytes> payloads;
  for (uint32_t i : indices) payloads.push_back(leaves[i]);
  auto proof = tree.ProveSubset(indices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleTree::VerifySubset(128, tree.root(), indices, payloads, proof));
  }
}
BENCHMARK(BM_SubsetVerify);

}  // namespace

IMAGEPROOF_MICRO_BENCH_MAIN("micro_merkle");
