// Ablation — what the cuckoo filters buy, and the fingerprint-size
// trade-off.
//
// Compares the loose Eq. (10) bounds against filter-tightened bounds at
// fingerprint sizes 4..16 bits: larger fingerprints mean fewer false
// positives (fewer gratuitously popped postings) but bigger shipped
// filters. The paper fixes 8 bits; this shows why that is a sweet spot.

#include <cstdio>

#include "bench/inv_bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_filter_bounds");
  const size_t kImages = 10000, kClusters = 2048, kK = 10, kFeatures = 200;
  workload::CorpusParams cp;
  cp.num_images = kImages;
  cp.num_clusters = kClusters;
  auto corpus = workload::GenerateCorpus(cp);
  std::vector<bovw::BovwVector> vecs;
  for (auto& [id, v] : corpus) vecs.push_back(v);
  auto weights = bovw::ClusterWeights::FromCorpus(kClusters, vecs);

  std::printf("Ablation — bound tightening (10k images, 2048 clusters, k=10)\n");
  std::printf("%-22s | %10s %12s %10s %10s\n", "variant", "sp_ms", "client_ms",
              "popped%", "vo_KB");
  std::printf("----------------------------------------------------------------------\n");

  auto run = [&](const char* name, const invindex::MerkleInvertedIndex& index) {
    invindex::InvSearchParams params;
    params.k = kK;
    double sp_ms = 0, client_ms = 0, popped = 0, kb = 0;
    const int kQ = 3;
    for (int q = 0; q < kQ; ++q) {
      auto query = workload::GenerateQueryBovw(cp, kFeatures, 800 + q);
      Stopwatch t1;
      auto r = invindex::InvSearch(index, query, params);
      sp_ms += t1.ElapsedMillis();
      popped += 100.0 * r.stats.PoppedFraction();
      kb += r.vo.size() / 1024.0;
      std::vector<bovw::ImageId> claimed;
      for (auto& si : r.topk) claimed.push_back(si.id);
      Stopwatch t2;
      invindex::InvVerifyResult verified;
      Status s = invindex::VerifyInvVo(r.vo, query, claimed, kK,
                                       index.with_filters(), &verified);
      client_ms += t2.ElapsedMillis();
      if (!s.ok()) std::fprintf(stderr, "verify failed: %s\n", s.message().c_str());
    }
    std::printf("%-22s | %10.2f %12.2f %9.1f%% %10.1f\n", name, sp_ms / kQ,
                client_ms / kQ, popped / kQ, kb / kQ);
  };

  auto loose = invindex::MerkleInvertedIndex::Build(kClusters, corpus, weights,
                                                    /*with_filters=*/false);
  run("loose bounds (Eq.10)", loose);
  for (uint32_t bits : {4, 8, 12, 16}) {
    auto index = invindex::MerkleInvertedIndex::Build(
        kClusters, corpus, weights, /*with_filters=*/true, bits);
    char name[64];
    std::snprintf(name, sizeof(name), "cuckoo %2u-bit fp", bits);
    run(name, index);
  }
  return FinishBench(0);
}
