// BenchReport integration for the google-benchmark micro binaries.
//
// The micro_* binaries historically were plain BENCHMARK_MAIN() programs:
// useful interactively, invisible to the JSON report pipeline. MicroBenchMain
// gives them the same contract as the fig*/abl_* binaries —
//
//   micro_foo [--json <path>] [--smoke] [--benchmark_* flags...]
//
// --json / --smoke are consumed here (BenchReport::Init aborts on flags it
// does not know, so the benchmark library's own flags must never reach it);
// everything else is forwarded to benchmark::Initialize. --smoke appends
// --benchmark_min_time=0.01 so CI smoke runs finish in seconds. Each run is
// captured into the report as named scalars:
//
//   <sanitized run name>_ns_per_iter
//   <sanitized run name>_items_per_sec   (when SetItemsProcessed was used)
//
// alongside the normal console table, then FinishBench writes the JSON.

#ifndef IMAGEPROOF_BENCH_MICRO_UTIL_H_
#define IMAGEPROOF_BENCH_MICRO_UTIL_H_

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace imageproof::bench {

// Console output plus BenchReport capture. Aggregate rows (mean/median from
// --benchmark_repetitions) are skipped: the per-iteration rows are the data.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string key = Sanitize(run.benchmark_name());
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      BenchReport::Global().AddValue(
          key + "_ns_per_iter", run.real_accumulated_time / iters * 1e9);
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        BenchReport::Global().AddValue(key + "_items_per_sec",
                                       it->second.value);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  static std::string Sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
    }
    return out;
  }
};

inline int MicroBenchMain(int argc, char** argv, const char* name) {
  // Split argv: BenchReport flags stay here, the rest goes to benchmark.
  std::vector<char*> own = {argv[0]}, fwd = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      own.push_back(argv[i]);
      own.push_back(argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      own.push_back(argv[i]);
    } else {
      fwd.push_back(argv[i]);
    }
  }
  int own_argc = static_cast<int>(own.size());
  BenchReport::Global().Init(own_argc, own.data(), name);
  static char smoke_min_time[] = "--benchmark_min_time=0.01";
  if (SmokeMode()) fwd.push_back(smoke_min_time);

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) {
    return FinishBench(1);
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return FinishBench(0);
}

}  // namespace imageproof::bench

// Drop-in replacement for BENCHMARK_MAIN() in the micro binaries.
#define IMAGEPROOF_MICRO_BENCH_MAIN(name)                         \
  int main(int argc, char** argv) {                               \
    return imageproof::bench::MicroBenchMain(argc, argv, (name)); \
  }

#endif  // IMAGEPROOF_BENCH_MICRO_UTIL_H_
