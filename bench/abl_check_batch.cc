// Ablation — termination-condition re-check batching.
//
// The paper notes that [15] re-checks the termination conditions after
// every popped posting, which is expensive; its Baseline re-checks per
// batch. This bench sweeps the batch size for both bound modes to show the
// SP-CPU / popped-postings trade-off: tiny batches burn CPU on checks,
// huge ones overshoot and pop more than necessary.

#include <cstdio>

#include "bench/inv_bench_util.h"

using namespace imageproof;
using namespace imageproof::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv, "abl_check_batch");
  InvFixture fx(/*num_images=*/10000, /*num_clusters=*/2048);

  std::printf("Ablation — condition re-check batch size (10k images, 2048 "
              "clusters, 200 features, k=10)\n");
  std::printf("%-14s %8s | %10s %10s %10s\n", "scheme", "batch", "sp_ms",
              "popped%", "checks");
  std::printf("--------------------------------------------------------------\n");
  for (bool filters : {false, true}) {
    for (size_t batch : {1, 4, 16, 64, 256}) {
      invindex::InvSearchParams params;
      params.k = 10;
      params.check_batch = batch;
      double sp_ms = 0, popped = 0, checks = 0;
      const int kQ = 3;
      for (int q = 0; q < kQ; ++q) {
        auto query = workload::GenerateQueryBovw(fx.params, 200, 900 + q);
        Stopwatch t;
        auto r = invindex::InvSearch(filters ? *fx.filtered : *fx.plain, query,
                                     params);
        sp_ms += t.ElapsedMillis();
        popped += 100.0 * r.stats.PoppedFraction();
        checks += static_cast<double>(r.stats.condition_checks);
      }
      std::printf("%-14s %8zu | %10.2f %9.1f%% %10.0f\n",
                  filters ? "InvSearch" : "Baseline[15]", batch, sp_ms / kQ,
                  popped / kQ, checks / kQ);
    }
  }
  return FinishBench(0);
}
