// Closed-loop chaos soak for the whole serving stack: a live QueryEngine
// with disk persistence, epoch GC, and background scrubbing, served over
// TCP, driven by retrying clients and an owner update stream — while a
// chaos thread drains and restarts the server on the same port, the fault
// injector resets connections at frame boundaries, and scripted
// storage.scrub.bitflip firings force quarantine + roll-forward cycles.
//
// The run is an invariant harness, not a throughput figure:
//
//   1. Every VO a client accepts came through Client::Verify (NetClient
//      verifies internally); a query that fails with kError or kCorrupted
//      is a soak FAILURE — no failure mode may surface unverifiable bytes.
//   2. Every query eventually succeeds: drain/restart windows and fault
//      resets must be absorbed by the retry taxonomy, so an operation that
//      stays failed after in-harness re-issue is a FAILURE.
//   3. Engine counters are monotonic across drains, restarts, and
//      rollbacks (sampled continuously).
//   4. RSS stays bounded: the end-of-run resident set must not exceed
//      2x the post-warmup value plus slack — restarts and rollbacks must
//      not leak.
//
//   soak [--seconds N] [--smoke] [--json <path>]
//
// --smoke (CI) runs a reduced deployment for ~20s; the default is 300s and
// nightly passes --seconds 600. Exit code 0 = all invariants held.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "core/query_engine.h"
#include "net/retry.h"
#include "net/server.h"
#include "storage/package_store.h"

using namespace imageproof;
using namespace imageproof::bench;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Zipf-ish rank: u^3 concentrates mass on low ranks, which is enough skew
// to keep the epoch-keyed result cache and the proof memo hot.
size_t ZipfRank(uint64_t* state, size_t n) {
  const double u =
      static_cast<double>(SplitMix64(state) >> 11) / 9007199254740992.0;
  return std::min(n - 1, static_cast<size_t>(u * u * u * n));
}

double RssMb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atof(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

struct SoakState {
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> query_reissues{0};  // harness-level re-issues (inv 2)
  std::atomic<uint64_t> updates_applied{0};
  std::atomic<uint64_t> updates_unavailable{0};
  std::atomic<uint64_t> restarts{0};

  void Fail(const char* invariant, const Status& s) {
    std::fprintf(stderr, "soak: INVARIANT VIOLATED (%s): [%s] %s\n",
                 invariant, StatusCodeToString(s.code()),
                 s.message().c_str());
    failed.store(true, std::memory_order_release);
  }
};

}  // namespace

int main(int argc, char** argv) {
  // BenchReport::Init rejects flags it does not know, so strip --seconds
  // before handing the rest through.
  int seconds = 0;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  InitBench(static_cast<int>(passthrough.size()), passthrough.data(), "soak");
  const bool smoke = SmokeMode();
  if (seconds <= 0) seconds = smoke ? 20 : 300;

  std::printf("soak: %ds%s — chaos: drain/restart + net.conn.reset + "
              "storage.scrub.bitflip\n",
              seconds, smoke ? " (smoke)" : "");

  const std::string dir =
      "/tmp/imageproof_soak_" + std::to_string(::getpid());
  (void)system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

  core::Config config = core::Config::ImageProof();
  config.rsa_bits = 512;
  workload::CorpusParams cp;
  cp.num_images = smoke ? 200 : 600;
  cp.num_clusters = 128;
  cp.seed = 42;
  auto corpus = workload::GenerateCorpus(cp);
  std::unordered_map<bovw::ImageId, Bytes> blobs;
  for (const auto& [id, v] : corpus) blobs[id] = workload::GenerateImageBlob(id);
  workload::CodebookParams cbp;
  cbp.num_clusters = 128;
  cbp.dims = 8;
  cbp.seed = 43;
  core::OwnerOutput owner = core::BuildDeployment(
      config, workload::GenerateCodebook(cbp), std::move(corpus),
      std::move(blobs));
  auto package = std::shared_ptr<const core::SpPackage>(std::move(owner.package));

  core::EngineOptions eo;
  eo.num_workers = 4;
  eo.persist_dir = dir;
  eo.retain_epochs = 4;
  eo.scrub_interval = std::chrono::milliseconds(smoke ? 150 : 400);
  core::QueryEngine engine(package, owner.public_params, eo);

  // Publish epoch 1 up front so the scrubber has a CURRENT from second one.
  {
    auto seed_ins =
        engine.InsertImage(owner.private_key, 9'000'000,
                           package->corpus[0].second,
                           workload::GenerateImageBlob(9'000'000));
    if (!seed_ins.ok()) {
      std::fprintf(stderr, "soak: seed insert failed: %s\n",
                   seed_ins.status().message().c_str());
      return FinishBench(1);
    }
  }

  // Chaos faults. Connection resets are probabilistic background noise;
  // scrub bit flips are scripted digest-computation indices so the run gets
  // a bounded number of quarantine + roll-forward cycles instead of a
  // rollback storm.
  auto& fi = fault::FaultInjector::Global();
  fi.ArmProbability("net.conn.reset", 0.01, 0xC0FFEE);
  {
    std::vector<uint64_t> flips;
    for (int i = 0; i < (smoke ? 2 : 6); ++i) {
      flips.push_back(static_cast<uint64_t>(60 + 450 * i));
    }
    fi.ArmHits("storage.scrub.bitflip", std::move(flips));
  }

  std::mutex server_mu;
  std::unique_ptr<net::NetServer> server;
  auto start_server = [&](uint16_t port) -> Status {
    auto s = std::make_unique<net::NetServer>(
        &engine, net::ServerOptions{"127.0.0.1", port, 64});
    s->EnableUpdates(&owner.private_key);
    Status st = s->Start();
    if (st.ok()) {
      std::lock_guard<std::mutex> lock(server_mu);
      server = std::move(s);
    }
    return st;
  };
  if (Status st = start_server(0); !st.ok()) {
    std::fprintf(stderr, "soak: server start failed: %s\n",
                 st.message().c_str());
    return FinishBench(1);
  }
  const uint16_t port = server->port();
  std::printf("soak: serving on 127.0.0.1:%u, persist dir %s\n", port,
              dir.c_str());

  SoakState state;
  const auto deadline = Clock::now() + std::chrono::seconds(seconds);
  std::atomic<bool> stop{false};

  // --- query clients -----------------------------------------------------
  const int kClients = 4;
  std::vector<net::RetryingClient> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    net::RetryPolicy policy;
    policy.max_attempts = 10;
    policy.base_backoff = std::chrono::milliseconds(5);
    policy.max_backoff = std::chrono::milliseconds(250);
    policy.seed = 0xABCD'0000ULL + static_cast<uint64_t>(c);
    clients.emplace_back("127.0.0.1", port, owner.public_params, policy);
  }
  std::vector<std::thread> query_threads;
  for (int c = 0; c < kClients; ++c) {
    query_threads.emplace_back([&, c] {
      uint64_t rng = 0xFEED'0000ULL + static_cast<uint64_t>(c);
      while (!stop.load(std::memory_order_acquire) && Clock::now() < deadline) {
        const size_t rank = ZipfRank(&rng, package->corpus.size());
        auto features = workload::FeaturesFromBovw(
            package->codebook, package->corpus[rank].second, 8, 0.25, 0.2,
            SplitMix64(&rng));
        // Invariant 2: the operation must EVENTUALLY succeed. The client
        // already retries; if it exhausts its attempts during a long drain
        // window the harness re-issues, and only a non-retryable failure
        // (taxonomy says: verification/corruption) fails the soak.
        for (;;) {
          auto r = clients[c].Query(features, 5, /*deadline_ms=*/30000);
          if (r.ok()) {
            state.queries_ok.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (!net::IsRetryableStatus(r.status())) {
            state.Fail("every served VO verifies", r.status());
            return;
          }
          if (Clock::now() >= deadline) return;
          state.query_reissues.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  // --- owner update stream ----------------------------------------------
  std::thread update_thread([&] {
    net::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.base_backoff = std::chrono::milliseconds(10);
    policy.max_backoff = std::chrono::milliseconds(250);
    net::RetryingClient updater("127.0.0.1", port, owner.public_params,
                                policy);
    uint64_t rng = 0x5EED;
    uint64_t next_id = 10'000'000;
    std::vector<uint64_t> live;  // acked inserts eligible for deletion
    while (!stop.load(std::memory_order_acquire) && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 150 : 300));
      const bool do_delete = !live.empty() && (SplitMix64(&rng) & 3) == 0;
      Result<net::UpdateAck> ack = Status::Error("unset");
      if (do_delete) {
        const size_t pick = SplitMix64(&rng) % live.size();
        ack = updater.Delete(live[pick]);
        if (ack.ok()) live.erase(live.begin() + static_cast<long>(pick));
      } else {
        const uint64_t id = next_id++;
        const auto& src =
            package->corpus[SplitMix64(&rng) % package->corpus.size()].second;
        ack = updater.Insert(id, src, workload::GenerateImageBlob(id));
        if (ack.ok()) live.push_back(id);
      }
      if (ack.ok()) {
        state.updates_applied.fetch_add(1, std::memory_order_relaxed);
      } else if (ack.status().code() == StatusCode::kCorrupted) {
        state.Fail("update stream never sees corruption", ack.status());
        return;
      } else {
        // kUnavailable mid-drain ("unknown whether applied") and kError
        // after a roll-forward un-applied an acked update are both legal
        // outcomes of chaos; the stream carries on with fresh ids.
        state.updates_unavailable.fetch_add(1, std::memory_order_relaxed);
        if (ack.status().code() != StatusCode::kUnavailable) live.clear();
      }
    }
  });

  // --- monotonic-metrics sampler (invariant 3) ---------------------------
  std::thread monotonic_thread([&] {
    core::EngineStats prev = engine.Stats();
    while (!stop.load(std::memory_order_acquire) && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      core::EngineStats now = engine.Stats();
      const bool ok = now.queries_served >= prev.queries_served &&
                      now.updates_applied >= prev.updates_applied &&
                      now.scrub_passes >= prev.scrub_passes &&
                      now.epoch_rollbacks >= prev.epoch_rollbacks &&
                      now.epochs_gced >= prev.epochs_gced &&
                      now.snapshot_version >= prev.snapshot_version;
      if (!ok) {
        state.Fail("engine counters monotonic",
                   Status::Error("a counter or the snapshot version moved "
                                 "backwards across a restart or rollback"));
        return;
      }
      prev = now;
    }
  });

  // --- chaos: drain + restart on the same port ---------------------------
  std::thread chaos_thread([&] {
    uint64_t rng = 0xDEAD;
    while (!stop.load(std::memory_order_acquire)) {
      const auto nap =
          std::chrono::milliseconds(smoke ? 2500 : 4000 + (SplitMix64(&rng) % 3000));
      const auto wake = Clock::now() + nap;
      while (Clock::now() < wake) {
        if (stop.load(std::memory_order_acquire) || Clock::now() >= deadline) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::unique_ptr<net::NetServer> old;
      {
        std::lock_guard<std::mutex> lock(server_mu);
        old = std::move(server);
      }
      if (!old) return;
      old->Drain(std::chrono::seconds(10));
      old.reset();
      if (Status st = start_server(port); !st.ok()) {
        state.Fail("server restarts on the same port", st);
        return;
      }
      state.restarts.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Warmup RSS reference once traffic is flowing.
  std::this_thread::sleep_for(std::chrono::seconds(std::min(5, seconds / 4)));
  const double rss_warm = RssMb();

  for (auto& t : query_threads) t.join();
  update_thread.join();
  monotonic_thread.join();
  stop.store(true, std::memory_order_release);
  chaos_thread.join();
  const double rss_end = RssMb();
  {
    std::lock_guard<std::mutex> lock(server_mu);
    if (server) server->Stop();
  }
  core::EngineStats es = engine.Stats();
  auto cur = storage::PackageStore::CurrentEpoch(dir);
  engine.Shutdown();
  fi.DisarmAll();

  // Invariant 4: bounded memory. Generous bound — the point is catching a
  // leak per restart/rollback cycle, not sizing the heap.
  if (rss_end > rss_warm * 2.0 + 256.0) {
    state.Fail("RSS bounded",
               Status::Error("RSS grew from " + std::to_string(rss_warm) +
                             " MB to " + std::to_string(rss_end) + " MB"));
  }
  // The chaos schedule must actually have exercised the machinery.
  if (state.restarts.load() == 0) {
    state.Fail("chaos ran", Status::Error("no drain/restart cycle happened"));
  }
  if (es.scrub_passes == 0) {
    state.Fail("chaos ran", Status::Error("scrubber never ran"));
  }

  uint64_t retries = 0, reconnects = 0, exhausted = 0;
  for (const auto& c : clients) {
    retries += c.stats().retries;
    reconnects += c.stats().reconnects;
    exhausted += c.stats().exhausted;
  }

  const bool failed = state.failed.load(std::memory_order_acquire);
  std::printf(
      "soak: %s\n"
      "  queries ok            %llu (retries %llu, reconnects %llu, "
      "exhausted->reissued %llu)\n"
      "  updates applied       %llu (chaos-swallowed %llu)\n"
      "  drain/restart cycles  %llu\n"
      "  scrub passes          %llu (corruptions %llu, quarantined %llu, "
      "rollbacks %llu)\n"
      "  epochs gced           %llu, final epoch %llu, RSS %.1f -> %.1f MB\n",
      failed ? "FAILED" : "all invariants held",
      static_cast<unsigned long long>(state.queries_ok.load()),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(reconnects),
      static_cast<unsigned long long>(exhausted),
      static_cast<unsigned long long>(state.updates_applied.load()),
      static_cast<unsigned long long>(state.updates_unavailable.load()),
      static_cast<unsigned long long>(state.restarts.load()),
      static_cast<unsigned long long>(es.scrub_passes),
      static_cast<unsigned long long>(es.scrub_corruptions),
      static_cast<unsigned long long>(es.epochs_quarantined),
      static_cast<unsigned long long>(es.epoch_rollbacks),
      static_cast<unsigned long long>(es.epochs_gced),
      static_cast<unsigned long long>(cur.ok() ? *cur : 0), rss_warm,
      rss_end);

  auto& report = BenchReport::Global();
  report.AddValue("soak.seconds", seconds);
  report.AddValue("soak.queries_ok",
                  static_cast<double>(state.queries_ok.load()));
  report.AddValue("soak.qps",
                  static_cast<double>(state.queries_ok.load()) / seconds);
  report.AddValue("soak.retries", static_cast<double>(retries));
  report.AddValue("soak.reconnects", static_cast<double>(reconnects));
  report.AddValue("soak.reissues",
                  static_cast<double>(state.query_reissues.load()));
  report.AddValue("soak.updates_applied",
                  static_cast<double>(state.updates_applied.load()));
  report.AddValue("soak.restarts", static_cast<double>(state.restarts.load()));
  report.AddValue("soak.scrub_passes", static_cast<double>(es.scrub_passes));
  report.AddValue("soak.scrub_corruptions",
                  static_cast<double>(es.scrub_corruptions));
  report.AddValue("soak.rollbacks", static_cast<double>(es.epoch_rollbacks));
  report.AddValue("soak.epochs_gced", static_cast<double>(es.epochs_gced));
  report.AddValue("soak.rss_warm_mb", rss_warm);
  report.AddValue("soak.rss_end_mb", rss_end);
  report.AddJson("engine", engine.MetricsSnapshot());

  (void)system(("rm -rf " + dir).c_str());
  return FinishBench(failed ? 1 : 0);
}
