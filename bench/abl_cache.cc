// Ablation/extension bench — epoch-keyed result cache + group-varint VO
// compression under Zipfian closed-loop traffic (ROADMAP item 4).
//
// Real image-retrieval traffic is heavily skewed: a small set of popular
// queries dominates. This bench drives a closed loop of repeated queries
// drawn from a Zipfian popularity distribution over a fixed pool
// (workload::ZipfQueryMix) against two otherwise-identical engines — result
// cache off vs on — and reports the p50/p99 latency, throughput, and hit
// rate. A separate section serves every pool entry cold with and without
// group-varint VO compression and reports bytes/query, i.e. what a miss
// costs on the wire with the compressed framing negotiated.
//
// Determinism is asserted in-bench, not assumed: for every pool entry the
// cold ServiceProvider bytes, the engine's miss bytes (memo'd proofs), and
// the engine's hit bytes (cached response) must be byte-identical, and all
// of them — plus the compressed variant — must pass Client::Verify.
//
//   --zipf-s <s>   skew of the query popularity distribution (default 1.0;
//                  0 = uniform over the pool)
//
// Non-smoke runs enforce the ROADMAP item 4 acceptance thresholds (>=5x
// p50 speedup at >=80% hit rate, >=25% bytes/query reduction on misses)
// and exit nonzero if unmet.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/query_engine.h"

using namespace imageproof;
using namespace imageproof::bench;

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct LoopResult {
  double wall_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  size_t errors = 0;
};

// Closed-loop load: `threads` clients, each drawing pool indices from its
// own deterministic Rng stream and waiting for each response before the
// next submit. Both engines see the exact same draw sequences.
LoopResult RunLoop(core::QueryEngine& engine, const workload::ZipfQueryMix& mix,
                   unsigned threads, size_t queries_per_thread, size_t k,
                   uint64_t seed_base) {
  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> errors(threads, 0);
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed_base + t);
      latencies[t].reserve(queries_per_thread);
      for (size_t q = 0; q < queries_per_thread; ++q) {
        size_t idx = mix.Draw(rng);
        Stopwatch timer;
        auto fut = engine.Submit(mix.query(idx), k);
        core::EngineResponse r = fut.get();
        latencies[t].push_back(timer.ElapsedMillis());
        if (!r.ok()) ++errors[t];
      }
    });
  }
  for (auto& c : clients) c.join();
  LoopResult out;
  out.wall_ms = wall.ElapsedMillis();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  out.qps = all.empty() ? 0.0
                        : static_cast<double>(all.size()) /
                              (out.wall_ms / 1000.0);
  for (size_t e : errors) out.errors += e;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip this bench's own flags before InitBench: BenchReport::Init exits
  // on anything it does not recognize.
  double zipf_s = 1.0;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zipf-s") == 0 && i + 1 < argc) {
      zipf_s = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  InitBench(static_cast<int>(passthrough.size()), passthrough.data(),
            "abl_cache");

  // Small codebook, many images per visual word: the inverted-index-
  // dominated regime (long posting lists) that large-scale deployments
  // sit in and that the group-varint compressor targets. The tree/reveal
  // sections are digest- and coordinate-dominated (high-entropy, not
  // varint-shaped), so their share of the VO is what bounds the total
  // compression win.
  DeploymentSpec spec;
  spec.num_images = SmokeMode() ? 2000 : 20000;
  spec.num_clusters = SmokeMode() ? 256 : 512;
  spec.dims = SmokeMode() ? 32 : 64;
  // OptimizedBoth = dim-Merkle reveal + frequency groups: the configuration
  // whose VO both the proof memo and the group-varint compressor target.
  Deployment d(core::Config::OptimizedBoth(), spec);
  auto package =
      std::shared_ptr<const core::SpPackage>(std::move(d.owner.package));

  const size_t kPool = SmokeMode() ? 16 : 64;
  const size_t kFeatures = 8;
  const size_t kTopK = SmokeMode() ? 16 : 32;
  const unsigned kThreads = 4;
  const size_t kQueriesPerThread = SmokeMode() ? 40 : 200;

  workload::QueryMixParams mix_params;
  mix_params.pool_size = kPool;
  mix_params.num_features = kFeatures;
  mix_params.zipf_s = zipf_s;
  mix_params.seed = 42;
  workload::ZipfQueryMix mix(package->codebook, package->corpus, mix_params);

  std::printf("Extension — Zipfian result cache + VO compression "
              "(pool=%zu, s=%.2f, %u clients x %zu queries, k=%zu)\n",
              kPool, zipf_s, kThreads, kQueriesPerThread, kTopK);

  core::EngineOptions base_opts;
  base_opts.num_workers = kThreads;
  base_opts.queue_capacity = 128;

  // --- Byte-identity + verification: cold SP vs engine miss (memo'd) vs
  // engine hit (cached) must serialize identically; all variants verify. ---
  size_t identity_failures = 0;
  size_t verify_failures = 0;
  {
    core::EngineOptions opts = base_opts;
    opts.cache_capacity = kPool * 2;
    core::QueryEngine engine(package, d.owner.public_params, opts);
    core::ServiceProvider sp(package.get());
    core::SubmitOptions compressed;
    compressed.compress_vo = true;
    for (size_t i = 0; i < mix.pool_size(); ++i) {
      const auto& features = mix.query(i);
      core::QueryResponse cold = sp.Query(features, kTopK);
      Bytes cold_bytes = cold.vo.Serialize();

      core::EngineResponse miss = engine.Submit(features, kTopK).get();
      core::EngineResponse hit = engine.Submit(features, kTopK).get();
      Bytes miss_bytes = miss.response.vo.Serialize();
      Bytes hit_bytes = hit.response.vo.Serialize();
      if (miss_bytes != cold_bytes || hit_bytes != cold_bytes) {
        ++identity_failures;
      }
      core::EngineResponse comp = engine.Submit(features, kTopK, compressed)
                                      .get();
      for (const core::QueryResponse* resp :
           {&cold, &miss.response, &hit.response, &comp.response}) {
        if (!d.client->Verify(features, kTopK, resp->vo).ok()) {
          ++verify_failures;
        }
      }
    }
    core::EngineStats s = engine.Stats();
    if (s.cache_hits == 0) ++identity_failures;  // hits must actually be hits
    std::printf("  identity: %zu pool entries, %zu mismatches, "
                "%zu verify failures\n",
                mix.pool_size(), identity_failures, verify_failures);
  }

  // --- Closed-loop latency, cache off vs on, identical draw sequences. ---
  core::EngineOptions off_opts = base_opts;  // cache_capacity = 0
  LoopResult off;
  {
    core::QueryEngine engine(package, d.owner.public_params, off_opts);
    off = RunLoop(engine, mix, kThreads, kQueriesPerThread, kTopK, 7000);
  }
  core::EngineOptions on_opts = base_opts;
  on_opts.cache_capacity = kPool * 2;
  LoopResult on;
  double hit_rate = 0.0;
  double memo_share = 0.0;
  std::string engine_metrics;
  {
    core::QueryEngine engine(package, d.owner.public_params, on_opts);
    on = RunLoop(engine, mix, kThreads, kQueriesPerThread, kTopK, 7000);
    core::EngineStats s = engine.Stats();
    uint64_t lookups = s.cache_hits + s.cache_misses;
    hit_rate = lookups == 0 ? 0.0
                            : static_cast<double>(s.cache_hits) /
                                  static_cast<double>(lookups);
    uint64_t memo_total = s.memo_hits + s.memo_builds;
    memo_share = memo_total == 0 ? 0.0
                                 : static_cast<double>(s.memo_hits) /
                                       static_cast<double>(memo_total);
    engine_metrics = engine.MetricsSnapshot();
  }
  double speedup = on.p50_ms > 0 ? off.p50_ms / on.p50_ms : 0.0;

  std::printf("%10s | %10s %10s %10s %8s\n", "cache", "qps", "p50_ms",
              "p99_ms", "errors");
  std::printf("-----------------------------------------------------\n");
  std::printf("%10s | %10.1f %10.3f %10.3f %8zu\n", "off", off.qps, off.p50_ms,
              off.p99_ms, off.errors);
  std::printf("%10s | %10.1f %10.3f %10.3f %8zu\n", "on", on.qps, on.p50_ms,
              on.p99_ms, on.errors);
  std::printf("  p50 speedup %.1fx, hit rate %.1f%%, memo share %.1f%%\n",
              speedup, hit_rate * 100.0, memo_share * 100.0);

  // --- Bytes/query on misses: every pool entry served cold, raw framing vs
  // group-varint compressed framing. ---
  size_t raw_bytes = 0;
  size_t compressed_bytes = 0;
  {
    core::QueryEngine engine(package, d.owner.public_params, off_opts);
    core::SubmitOptions compressed;
    compressed.compress_vo = true;
    for (size_t i = 0; i < mix.pool_size(); ++i) {
      raw_bytes += engine.Submit(mix.query(i), kTopK)
                       .get()
                       .response.vo.Serialize()
                       .size();
      compressed_bytes += engine.Submit(mix.query(i), kTopK, compressed)
                              .get()
                              .response.vo.Serialize()
                              .size();
    }
  }
  double raw_per_query =
      static_cast<double>(raw_bytes) / static_cast<double>(mix.pool_size());
  double compressed_per_query = static_cast<double>(compressed_bytes) /
                                static_cast<double>(mix.pool_size());
  double reduction =
      raw_bytes == 0 ? 0.0
                     : 1.0 - static_cast<double>(compressed_bytes) /
                                 static_cast<double>(raw_bytes);
  std::printf("  VO bytes/query: raw %.0f, compressed %.0f (%.1f%% smaller)\n",
              raw_per_query, compressed_per_query, reduction * 100.0);

  BenchReport::Global().AddValue("cache.zipf_s", zipf_s);
  BenchReport::Global().AddValue("cache.pool_size",
                                 static_cast<double>(kPool));
  BenchReport::Global().AddValue("cache.off.qps", off.qps);
  BenchReport::Global().AddValue("cache.off.p50_ms", off.p50_ms);
  BenchReport::Global().AddValue("cache.off.p99_ms", off.p99_ms);
  BenchReport::Global().AddValue("cache.on.qps", on.qps);
  BenchReport::Global().AddValue("cache.on.p50_ms", on.p50_ms);
  BenchReport::Global().AddValue("cache.on.p99_ms", on.p99_ms);
  BenchReport::Global().AddValue("cache.p50_speedup", speedup);
  BenchReport::Global().AddValue("cache.hit_rate", hit_rate);
  BenchReport::Global().AddValue("cache.memo_share_rate", memo_share);
  BenchReport::Global().AddValue("cache.bytes_per_query_raw", raw_per_query);
  BenchReport::Global().AddValue("cache.bytes_per_query_compressed",
                                 compressed_per_query);
  BenchReport::Global().AddValue("cache.bytes_reduction", reduction);
  BenchReport::Global().AddValue("cache.identity_failures",
                                 static_cast<double>(identity_failures));
  BenchReport::Global().AddValue("cache.verify_failures",
                                 static_cast<double>(verify_failures));
  BenchReport::Global().AddJson("engine_metrics", engine_metrics);

  int code = 0;
  if (identity_failures != 0 || verify_failures != 0 ||
      off.errors + on.errors != 0) {
    std::fprintf(stderr, "abl_cache: determinism/verification FAILED\n");
    code = 1;
  }
  if (!SmokeMode()) {
    // ROADMAP item 4 acceptance thresholds, enforced at full scale only
    // (smoke scales are too small for stable ratios).
    if (speedup < 5.0 || hit_rate < 0.80) {
      std::fprintf(stderr,
                   "abl_cache: cache thresholds unmet (speedup %.1fx, "
                   "hit rate %.1f%%)\n",
                   speedup, hit_rate * 100.0);
      code = 1;
    }
    if (reduction < 0.25) {
      std::fprintf(stderr,
                   "abl_cache: compression threshold unmet (%.1f%%)\n",
                   reduction * 100.0);
      code = 1;
    }
  }
  return FinishBench(code);
}
