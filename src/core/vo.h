// The end-to-end verification object returned with every top-k query
// (Algorithm 5 line 7), and the public parameters clients hold.

#ifndef IMAGEPROOF_CORE_VO_H_
#define IMAGEPROOF_CORE_VO_H_

#include <vector>

#include "bovw/bovw.h"
#include "common/bytes.h"
#include "common/status.h"
#include "core/config.h"
#include "crypto/rsa.h"

namespace imageproof::core {

using bovw::ImageId;

// One retrieved image with its authenticity material.
struct ResultImage {
  ImageId id = 0;
  Bytes data;       // raw image bytes (what the owner signed)
  Bytes signature;  // sig_I = sign(h(I | h(img_I)))  (Eq. 15)
};

// VO for a whole query: the BoVW-step proof ({VO_C,i}, the shared candidate
// reveals, the per-feature thresholds) plus the inverted-index proof and
// the per-result signatures.
struct QueryVO {
  std::vector<double> thresholds_sq;  // squared threshold per feature vector
  Bytes reveal_section;               // shared candidate reveals (union C_i)
  std::vector<Bytes> tree_vos;        // one token stream per MRKD-tree
  Bytes inv_vo;                       // InvSearch / FgSearch VO
  std::vector<ResultImage> results;   // top-k images + signatures

  size_t TotalBytes() const;
  // Size excluding the raw image payloads (the paper's VO-size metric).
  size_t ProofBytes() const;

  Bytes Serialize() const;
  static Status Deserialize(const Bytes& data, QueryVO* out);
};

// Published by the owner; everything a client needs to verify queries.
struct PublicParams {
  Config config;
  crypto::RsaPublicKey public_key;
  Bytes root_signature;  // over h(root_1 | ... | root_{n_t})
  size_t dims = 0;       // descriptor dimensionality
  size_t num_clusters = 0;
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_VO_H_
