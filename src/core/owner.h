// Image owner: ADS generation (Section V-A).
//
// Given the codebook, the encoded corpus, and the raw image payloads, the
// owner
//   1. signs every image:  sig_I = sign(sk, h(I | h(img_I)))      (Eq. 15)
//   2. builds the (frequency-grouped) Merkle inverted index,
//   3. builds n_t randomized k-d trees over the codebook and decorates them
//      into MRKD-trees whose leaves embed the inverted-list digests,
//   4. signs h(root_1 | ... | root_{n_t}) — the digest of ImageProof.
// The output splits into the SP package (everything the service provider
// hosts) and the public parameters clients use for verification.

#ifndef IMAGEPROOF_CORE_OWNER_H_
#define IMAGEPROOF_CORE_OWNER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ann/rkd_forest.h"
#include "core/config.h"
#include "core/vo.h"
#include "freqgroup/fg_index.h"
#include "invindex/merkle_inv_index.h"
#include "mrkd/mrkd_tree.h"

namespace imageproof::core {

// Everything outsourced to the SP. Movable, not copyable (the MRKD-trees
// borrow the forest's trees).
struct SpPackage {
  Config config;
  ann::PointSet codebook;
  std::vector<std::pair<ImageId, bovw::BovwVector>> corpus;
  std::unordered_map<ImageId, Bytes> image_data;
  std::unordered_map<ImageId, Bytes> image_signatures;

  std::unique_ptr<ann::RkdForest> forest;
  std::vector<std::unique_ptr<mrkd::MrkdTree>> mrkd_trees;
  // Exactly one of the two indexes is populated, per config.freq_grouped.
  std::unique_ptr<invindex::MerkleInvertedIndex> inv_index;
  std::unique_ptr<freqgroup::FgInvertedIndex> fg_index;
  std::vector<crypto::Digest> list_digests;

  // h(root_1 | ... | root_{n_t}).
  crypto::Digest RootDigest() const;

  // Rough memory footprint of the ADS components (digests + filters), for
  // reporting.
  size_t AdsBytes() const;
};

struct OwnerOutput {
  // Heap-allocated and never moved: the forest and MRKD-trees hold pointers
  // into the package's codebook and list-digest members.
  std::unique_ptr<SpPackage> package;
  PublicParams public_params;
  // Retained by the owner (never shipped to the SP) so the deployment can
  // be updated incrementally and re-signed; see core/update.h.
  crypto::RsaPrivateKey private_key;
};

// Builds the whole deployment. `corpus` pairs image ids with their BoVW
// vectors (pre-encoded; see workload/ or the sift+ann pipeline), and
// `image_data` maps each id to its raw payload.
OwnerOutput BuildDeployment(
    const Config& config, ann::PointSet codebook,
    std::vector<std::pair<ImageId, bovw::BovwVector>> corpus,
    std::unordered_map<ImageId, Bytes> image_data, uint64_t key_seed = 0x5E5);

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_OWNER_H_
