// Image owner: ADS generation (Section V-A).
//
// Given the codebook, the encoded corpus, and the raw image payloads, the
// owner
//   1. signs every image:  sig_I = sign(sk, h(I | h(img_I)))      (Eq. 15)
//   2. builds the (frequency-grouped) Merkle inverted index,
//   3. builds n_t randomized k-d trees over the codebook and decorates them
//      into MRKD-trees whose leaves embed the inverted-list digests,
//   4. signs h(root_1 | ... | root_{n_t}) — the digest of ImageProof.
// The output splits into the SP package (everything the service provider
// hosts) and the public parameters clients use for verification.

#ifndef IMAGEPROOF_CORE_OWNER_H_
#define IMAGEPROOF_CORE_OWNER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ann/rkd_forest.h"
#include "core/config.h"
#include "core/vo.h"
#include "freqgroup/fg_index.h"
#include "invindex/merkle_inv_index.h"
#include "mrkd/mrkd_tree.h"

namespace imageproof::core {

// Read-only provider of image payloads for a package whose blobs live
// outside the in-memory maps — the mmap'd package store
// (storage/package_store.h) serves result images straight from the file so
// a deployment larger than RAM never materializes its corpus.
// Implementations must be safe for concurrent Get calls over an immutable
// package and must integrity-check every record before handing it out: a
// tampered or bit-rotted payload surfaces as kCorrupted, never as silently
// wrong bytes inside a VO.
class ImagePayloadSource {
 public:
  virtual ~ImagePayloadSource() = default;

  virtual size_t Count() const = 0;

  // Looks up `id`, copying its payload and signature out of the store.
  // *found = false (with an OK status) when the id is absent; kCorrupted
  // when the stored record fails its integrity check.
  virtual Status Get(ImageId id, bool* found, Bytes* data,
                     Bytes* signature) const = 0;

  // Visits every record in ascending id order. Stops at the first non-OK
  // callback result or integrity failure and returns it.
  virtual Status ForEach(
      const std::function<Status(ImageId, BytesView data, BytesView sig)>& fn)
      const = 0;
};

// Everything outsourced to the SP. Movable, not copyable (the MRKD-trees
// borrow the forest's trees).
struct SpPackage {
  Config config;
  ann::PointSet codebook;
  std::vector<std::pair<ImageId, bovw::BovwVector>> corpus;
  std::unordered_map<ImageId, Bytes> image_data;
  std::unordered_map<ImageId, Bytes> image_signatures;

  std::unique_ptr<ann::RkdForest> forest;
  std::vector<std::unique_ptr<mrkd::MrkdTree>> mrkd_trees;
  // Exactly one of the two indexes is populated, per config.freq_grouped.
  std::unique_ptr<invindex::MerkleInvertedIndex> inv_index;
  std::unique_ptr<freqgroup::FgInvertedIndex> fg_index;
  std::vector<crypto::Digest> list_digests;

  // Set for a disk-backed package: image payloads come from here and the
  // two maps above stay empty. `backing` pins whatever owns the source
  // (the file mapping) for the package's lifetime — snapshots hand
  // shared_ptr<const SpPackage> around, so lifetime must travel with the
  // package itself.
  const ImagePayloadSource* image_source = nullptr;
  std::shared_ptr<const void> backing;

  bool disk_backed() const { return image_source != nullptr; }

  // Uniform payload access over both representations. GetImage leaves
  // *found = false for unknown ids and returns kCorrupted when a
  // disk-backed record fails its integrity check.
  size_t NumImages() const;
  Status GetImage(ImageId id, bool* found, Bytes* data, Bytes* signature) const;
  Status ForEachImage(
      const std::function<Status(ImageId, BytesView data, BytesView sig)>& fn)
      const;
  // Order-insensitive payload + signature equality (the engine's
  // clone-vs-base update validation). Any integrity failure reads as "not
  // equal".
  bool ImagesEqual(const SpPackage& other) const;

  // h(root_1 | ... | root_{n_t}).
  crypto::Digest RootDigest() const;

  // Rough memory footprint of the ADS components (digests + filters), for
  // reporting.
  size_t AdsBytes() const;
};

struct OwnerOutput {
  // Heap-allocated and never moved: the forest and MRKD-trees hold pointers
  // into the package's codebook and list-digest members.
  std::unique_ptr<SpPackage> package;
  PublicParams public_params;
  // Retained by the owner (never shipped to the SP) so the deployment can
  // be updated incrementally and re-signed; see core/update.h.
  crypto::RsaPrivateKey private_key;
};

// Optional injections for builds that must agree with other builds. The
// shard planner (shard/planner.h) builds N deployments over disjoint corpus
// slices but needs them mutually comparable: idf weights frozen from the
// FULL corpus (so per-image scores are byte-identical to an unsharded
// build) and one shared owner keypair (so every shard's roots and image
// signatures verify under a single public key). Null members fall back to
// the default behavior (weights from the build's own corpus, fresh keys
// from key_seed).
struct BuildOverrides {
  const bovw::ClusterWeights* weights = nullptr;
  const crypto::RsaKeyPair* keys = nullptr;
};

// Builds the whole deployment. `corpus` pairs image ids with their BoVW
// vectors (pre-encoded; see workload/ or the sift+ann pipeline), and
// `image_data` maps each id to its raw payload.
OwnerOutput BuildDeployment(
    const Config& config, ann::PointSet codebook,
    std::vector<std::pair<ImageId, bovw::BovwVector>> corpus,
    std::unordered_map<ImageId, Bytes> image_data, uint64_t key_seed = 0x5E5,
    const BuildOverrides& overrides = {});

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_OWNER_H_
