// Concurrent query-serving engine with snapshot isolation and explicit
// fault tolerance.
//
// The paper's SP is a single verifier-facing endpoint, but the workload it
// targets — large-scale image retrieval — is many clients hitting one
// authenticated index at once, with the owner occasionally pushing
// incremental updates (core/update.h). QueryEngine turns the serial
// ServiceProvider::Query path into a serving layer:
//
//   * Inter-query parallelism: a fixed-size worker pool (common/
//     thread_pool.h) with a bounded submission queue. Submit() returns a
//     future; QueryBatch() is the blocking convenience.
//   * Intra-query parallelism: each worker runs Query with
//     QueryParallelism{intra_query_threads}, splitting the per-feature AKM
//     loop, the per-tree MRKD searches, and the exact-nearest scan across
//     ParallelFor workers. Single-query latency drops without changing a
//     single VO byte (see below).
//   * Load shedding instead of unbounded blocking: under the default
//     OverloadPolicy::kShed, a Submit() against a full queue resolves
//     immediately with Status kOverloaded (counted in `engine.shed`);
//     kBlock restores the PR-1 backpressure behavior. Per-query deadlines
//     (SubmitOptions::deadline) are enforced at worker pickup and between
//     query stages (core::QueryControl), resolving as kDeadlineExceeded.
//     A stopped engine (Shutdown()) resolves every later Submit() as
//     kUnavailable. The engine degrades to *explicit errors*; it never
//     blocks a caller indefinitely and never crashes on overload.
//   * Snapshot isolation for updates: the engine serves from an immutable
//     `shared_ptr<const Snapshot>` (package + the PublicParams whose root
//     signature covers it). InsertImage/DeleteImage clone the current
//     package (a serializer round-trip, which re-derives and thereby
//     integrity-checks every digest), apply the update to the clone,
//     re-sign, and atomically swap the pointer. In-flight queries keep
//     verifying against the root they started under; their responses carry
//     that snapshot so clients check the matching signature. Writers are
//     serialized; readers never block writers or each other.
//   * Update validation + rollback: before publishing, the engine checks
//     (1) the clone's root digest equals the served snapshot's (a storage
//     bit flip that survives parsing cannot sneak into a fresh signature)
//     and (2) the freshly signed root signature actually verifies over the
//     cloned package's new root. Any corruption (kCorrupted) is retried
//     with exponential backoff up to EngineOptions::update_max_attempts;
//     logical failures (duplicate id, ...) are returned immediately. On
//     every failure path the old snapshot stays published — queries racing
//     a faulty update always verify against a consistently signed root.
//     Fault-injection tests (tests/fault_test.cc + common/fault.h) drive
//     storage bit flips, truncations, clone/sign failures, and latency
//     through these paths.
//
// Determinism invariant: for a fixed snapshot, the engine's response —
// VO bytes and top-k — is byte-identical to the serial
// ServiceProvider::Query at ANY worker count and ANY intra-query thread
// count. Every parallel loop writes disjoint per-index slots and merges in
// index order; there are no cross-thread floating-point reductions. The
// golden determinism tests (tests/golden_test.cc) lock this in. Shedding
// never alters accepted queries' bytes: a shed/expired query returns no VO
// at all.

#ifndef IMAGEPROOF_CORE_QUERY_ENGINE_H_
#define IMAGEPROOF_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/query_cache.h"
#include "core/server.h"
#include "core/update.h"
#include "obs/metrics.h"

namespace imageproof::storage {
class EpochJanitor;
}  // namespace imageproof::storage

namespace imageproof::core {

// What Submit() does when the bounded queue is full: shed (resolve the
// future immediately with kOverloaded) or block until space frees up.
enum class OverloadPolicy { kShed, kBlock };

struct EngineOptions {
  unsigned num_workers = 4;          // pool size (inter-query parallelism)
  size_t queue_capacity = 128;       // bounded submission queue, 0 = unbounded
  unsigned intra_query_threads = 1;  // ParallelFor width inside one query
  OverloadPolicy overload_policy = OverloadPolicy::kShed;
  // Update fault tolerance: total attempts per InsertImage/DeleteImage when
  // the failure is kCorrupted (transient storage/signing faults), and the
  // first retry's backoff (doubled per subsequent attempt).
  int update_max_attempts = 3;
  std::chrono::milliseconds update_retry_backoff{1};
  // Non-empty = disk-backed epochs: every applied update is written to
  // persist_dir as pkg-<version>.ipk (crash-safe temp + fsync + rename),
  // reopened from the mapping with its fresh root signature verified, and
  // only then published — both to dir/CURRENT and as the served snapshot,
  // which from then on serves image payloads from the mapped file. A fault
  // at any step leaves CURRENT on the old epoch and the old snapshot
  // serving (kCorrupted, retryable).
  std::string persist_dir;
  // Version of the initial snapshot — the epoch it was opened from, so a
  // restarted engine keeps numbering epochs monotonically.
  uint64_t initial_version = 0;
  // Result-cache capacity in entries (core/query_cache.h). 0 (the default)
  // disables caching entirely; a positive capacity turns on the
  // epoch-keyed LRU consulted before ServiceProvider::Query. Hits are
  // byte-identical to cold serves, so this is purely a latency/CPU knob.
  size_t cache_capacity = 0;
  // Epoch housekeeping (storage/epoch_janitor.h), meaningful only with a
  // persist_dir. retain_epochs > 0 keeps the newest N pkg-*.ipk files and
  // GCs the rest (never the one CURRENT names). A nonzero scrub_interval
  // runs a background scrubber at that cadence, re-walking the current
  // epoch's full digest chain (including the lazily-faulted image blobs);
  // a detected divergence quarantines the epoch and rolls the engine back
  // to the newest verifiable prior epoch via RollbackFromCorruptEpoch().
  // Both run on one engine-owned janitor thread.
  size_t retain_epochs = 0;
  std::chrono::milliseconds scrub_interval{0};
  size_t scrub_bytes_per_sec = 0;  // scrub pacing; 0 = unthrottled
};

// Per-submission options. A zero deadline means none.
struct SubmitOptions {
  std::chrono::milliseconds deadline{0};
  // Serve the inverted-index/frequency-group VO section group-varint
  // compressed (invindex/vo_compress.h). Set by the net server only for
  // clients that negotiated compression in the query frame; the client
  // decompresses before digest verification, so authentication is
  // unchanged.
  bool compress_vo = false;
  // Settle the inverted-index/frequency-group search until every claimed
  // top-k score is provably exact (ServeOptions::settle_exact_topk). Set by
  // the shard coordinator: the authenticated merge of per-shard results is
  // only sound when each shard's scores are exact, not lower bounds.
  bool settle_exact_topk = false;
};

// One immutable published state of the deployment. `params.root_signature`
// signs exactly `package->RootDigest()`; both are replaced together on
// update, never mutated.
struct Snapshot {
  std::shared_ptr<const SpPackage> package;
  PublicParams params;
  uint64_t version = 0;  // 0 = the snapshot the engine was constructed with
  // Lazily-filled memo of derived MRKD proof bytes (core/proof_memo.h),
  // shared by every query served under this snapshot. Owned by the
  // snapshot, so memoized bytes die with the package state they were
  // derived from — the atomic swap IS the invalidation.
  std::shared_ptr<const ProofMemo> memo;
};

// A query response plus the snapshot it was served under, plus the serving
// outcome. `status` is OK for served queries; kOverloaded /
// kDeadlineExceeded / kUnavailable responses carry no VO (and a shed or
// unavailable response also no snapshot). Verification must use
// `snapshot->params` — a response served before an update is only valid
// against the root signature of its own snapshot.
struct EngineResponse {
  Status status;
  QueryResponse response;
  std::shared_ptr<const Snapshot> snapshot;

  bool ok() const { return status.ok(); }
};

// Point-in-time engine counters (Stats()). Latency percentiles come from a
// fixed log-scale histogram (obs::Histogram) and are upper-bound bucket
// estimates. In an IMAGEPROOF_NO_METRICS build, snapshot_version,
// queue_depth, and stopped remain live (they are engine state, not
// metrics) while every other field reads zero.
struct EngineStats {
  uint64_t queries_served = 0;
  uint64_t queries_shed = 0;        // kOverloaded at admission
  uint64_t deadline_exceeded = 0;   // expired in queue or between stages
  uint64_t rejected_unavailable = 0;  // submitted against a stopped engine
  uint64_t updates_applied = 0;
  uint64_t update_failures = 0;
  uint64_t update_retries = 0;      // transient-fault attempts that repeated
  uint64_t in_flight = 0;      // queries currently executing
  uint64_t queue_depth = 0;    // submitted, not yet picked up by a worker
  uint64_t snapshot_version = 0;
  bool stopped = false;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  // Result cache (all zero when EngineOptions::cache_capacity == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  // Proof memo of the CURRENT snapshot (prior epochs' memos die with their
  // snapshots). hits/(hits+builds) is the share of leaf/dim-tree proof
  // serializations answered from memoized bytes.
  uint64_t memo_hits = 0;
  uint64_t memo_builds = 0;
  // Cumulative inv/fg VO section bytes served with and without group-varint
  // compression, for bytes-on-the-wire accounting.
  uint64_t vo_bytes_compressed = 0;
  uint64_t vo_bytes_raw = 0;
  // Epoch janitor (all zero without persist_dir + retain/scrub options).
  uint64_t epochs_gced = 0;          // old epoch files deleted
  uint64_t scrub_passes = 0;         // digest-chain re-walks completed
  uint64_t scrub_corruptions = 0;    // divergences detected on disk
  uint64_t epochs_quarantined = 0;   // .quarantined markers written
  uint64_t epoch_rollbacks = 0;      // successful last-good republishes
};

class QueryEngine {
 public:
  // Takes shared ownership of the package. `params` must be the public
  // parameters published for exactly this package state.
  QueryEngine(std::shared_ptr<const SpPackage> package, PublicParams params,
              EngineOptions options = {});
  ~QueryEngine();  // equivalent to Shutdown(): drains all submitted queries

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Enqueues one query. Under OverloadPolicy::kShed this never blocks: the
  // returned future is immediately ready with kOverloaded when the queue is
  // full, or kUnavailable after Shutdown(). With a deadline set, the future
  // resolves with kDeadlineExceeded if the deadline passes before a worker
  // picks the query up or between query stages.
  std::future<EngineResponse> Submit(std::vector<std::vector<float>> features,
                                     size_t k, SubmitOptions submit_options);
  std::future<EngineResponse> Submit(std::vector<std::vector<float>> features,
                                     size_t k) {
    return Submit(std::move(features), k, SubmitOptions{});
  }

  // Callback-based admission for event-loop callers (the src/net poll
  // server): never blocks, regardless of the engine's overload policy — an
  // event loop exists precisely to avoid parking a thread, so a full queue
  // always resolves as an immediate kOverloaded. `done` runs on the worker
  // thread that served the query, or inline on the calling thread when the
  // admission decision is immediate (shed / unavailable). It is invoked
  // exactly once, must not throw, and must not re-enter the engine's
  // submit paths from a worker (the thread-pool self-deadlock rule).
  void SubmitAsync(std::vector<std::vector<float>> features, size_t k,
                   SubmitOptions submit_options,
                   std::function<void(EngineResponse)> done);

  // Submits every query, then blocks until all are served. Results are in
  // input order. Since the caller waits for every result anyway, a full
  // queue applies backpressure (blocks the submitter) rather than shedding,
  // regardless of the engine's overload policy; per-query deadlines still
  // apply, so entries may carry kDeadlineExceeded.
  std::vector<EngineResponse> QueryBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      SubmitOptions submit_options = {});

  // Owner-side updates. Each clones the current package, applies the
  // update, re-signs, validates the signed root against the clone, and
  // publishes a new snapshot; concurrent queries are unaffected (they
  // finish on the snapshot they started with). On failure nothing is
  // published and the old snapshot keeps serving; kCorrupted failures are
  // retried with exponential backoff (see EngineOptions). Writers are
  // serialized with each other.
  Result<UpdateStats> InsertImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id, bovw::BovwVector bovw,
                                  Bytes image_data);
  Result<UpdateStats> DeleteImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id);

  // Self-healing path, invoked by the epoch janitor (or an operator) when
  // the on-disk bytes of `corrupt_epoch` no longer match their digests.
  // Scans remembered prior epochs newest-first, opens the first one that
  // still fully verifies, and re-publishes its content as a NEW epoch
  // (version corrupt_epoch + 1) through the ordinary write → reopen-verify
  // → CURRENT-flip → snapshot-swap path: versions stay monotonic, the
  // result cache stays consistent (new version, so no stale hits), and a
  // restart serves the republished good state. The same content signs the
  // same root, so the prior epoch's signature carries over unchanged — and
  // served VOs are byte-identical to that epoch's cold serves. Returns
  // kError when the report is stale (a newer epoch is already serving) or
  // no prior epoch verifies; serializes with updates via the writer lock.
  Status RollbackFromCorruptEpoch(uint64_t corrupt_epoch);

  // Stops admission and drains: already-accepted queries finish (their
  // futures are satisfied), then the workers join. Every Submit() at or
  // after this point resolves immediately with kUnavailable; updates
  // return kUnavailable as well. Idempotent and safe to call concurrently
  // with Submit() from any thread.
  void Shutdown();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // The snapshot new queries will be served under.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;

  EngineStats Stats() const;

  // Full observability dump as stable JSON: the engine's own metrics
  // (serving/queue-wait/update latency histograms, shed and deadline
  // counters, per-worker query counts, in-flight gauge, snapshot version)
  // plus the process-wide registry (sp.* stage timers, client.* verify
  // metrics) under "process". Safe to call concurrently with serving;
  // values are relaxed-atomic reads. Under IMAGEPROOF_NO_METRICS the
  // histograms/counters read zero and "process" is {}.
  std::string MetricsSnapshot() const;

  const EngineOptions& options() const { return options_; }

 private:
  using Clock = QueryControl::Clock;

  // Executes one query on a worker thread against `snap`. `enqueued` is
  // the Submit() timestamp, for the queue-wait histogram; `deadline` is
  // the absolute per-query deadline (time_point{} = none). Consults the
  // result cache (if enabled) before running the pipeline.
  EngineResponse Serve(const std::shared_ptr<const Snapshot>& snap,
                       const std::vector<std::vector<float>>& features,
                       size_t k, bool compress_vo, bool settle_exact_topk,
                       obs::TimePoint enqueued, Clock::time_point deadline);

  // Clone-apply-validate-swap core of both update entry points, with the
  // transient-fault retry loop. `apply` receives the cloned package and the
  // params copy to update in place.
  template <typename Apply>
  Result<UpdateStats> ApplyUpdate(Apply&& apply);

  // One clone-apply-validate attempt; publishes on success.
  template <typename Apply>
  Result<UpdateStats> TryApplyUpdate(
      const std::shared_ptr<const Snapshot>& base, Apply&& apply);

  // An immediately-ready response for shed/expired/unavailable outcomes.
  static std::future<EngineResponse> ReadyResponse(Status status);

  // Submit with an explicit overload policy (QueryBatch always blocks).
  std::future<EngineResponse> SubmitWithPolicy(
      std::vector<std::vector<float>> features, size_t k,
      SubmitOptions submit_options, OverloadPolicy policy);

  EngineOptions options_;
  unsigned num_workers_;            // options_.num_workers, 0 resolved to 1
  mutable std::mutex snapshot_mu_;  // guards snapshot_ swaps/reads
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex update_mu_;  // serializes writers (clone → apply → swap)
  std::atomic<bool> stopped_{false};
  // Params for recent on-disk epochs, recorded at construction and on
  // every persisted publish (guarded by snapshot_mu_). Needed for
  // rollback: .ipk files deliberately store no root signature (params
  // travel out of band), so a prior epoch can only be re-verified with
  // the params it was published under. Bounded to the newest
  // kEpochParamsRetained entries.
  static constexpr size_t kEpochParamsRetained = 64;
  std::map<uint64_t, PublicParams> epoch_params_;

  // Engine-scoped metrics (obs/metrics.h; no-ops when compiled out).
  obs::Counter queries_served_;
  obs::Counter queries_shed_;
  obs::Counter deadline_exceeded_;
  obs::Counter rejected_unavailable_;
  obs::Counter updates_applied_;
  obs::Counter update_failures_;
  obs::Counter update_retries_;
  obs::Gauge in_flight_;
  obs::Histogram latency_us_;     // Serve() wall time
  obs::Histogram queue_wait_us_;  // Submit() -> worker pickup
  obs::Histogram update_us_;      // clone + apply + re-sign + swap
  obs::Counter vo_bytes_compressed_;  // inv/fg VO bytes, compressed serves
  obs::Counter vo_bytes_raw_;         // inv/fg VO bytes, uncompressed serves
  obs::Counter epoch_rollbacks_;      // successful RollbackFromCorruptEpoch
  std::unique_ptr<obs::Counter[]> per_worker_queries_;  // [num_workers_]
  // One reusable search scratch per pool worker (indexed by
  // ThreadPool::CurrentWorkerIndex()), so steady-state serving reuses warm
  // buffers: after each worker's first query, the search stages of
  // ServiceProvider::Query allocate nothing. Workers never share a scratch,
  // and output is byte-identical with or without one.
  std::unique_ptr<QueryScratch[]> worker_scratch_;  // [num_workers_]
  // Epoch-keyed result cache; null iff cache_capacity == 0. Shared across
  // snapshots (version lives in the key), so an update needs no flush.
  std::unique_ptr<QueryCache> cache_;
  // Engine-owned GC + scrubber thread; null unless persist_dir plus
  // retain_epochs/scrub_interval are set. Stopped first in Shutdown().
  std::unique_ptr<storage::EpochJanitor> janitor_;

  ThreadPool pool_;  // last member: destroyed (drained) first
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_QUERY_ENGINE_H_
