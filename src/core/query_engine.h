// Concurrent query-serving engine with snapshot isolation.
//
// The paper's SP is a single verifier-facing endpoint, but the workload it
// targets — large-scale image retrieval — is many clients hitting one
// authenticated index at once, with the owner occasionally pushing
// incremental updates (core/update.h). QueryEngine turns the serial
// ServiceProvider::Query path into a serving layer:
//
//   * Inter-query parallelism: a fixed-size worker pool (common/
//     thread_pool.h) with a bounded submission queue. Submit() returns a
//     future; QueryBatch() is the blocking convenience. When the queue is
//     full, Submit() blocks — backpressure instead of unbounded backlog.
//   * Intra-query parallelism: each worker runs Query with
//     QueryParallelism{intra_query_threads}, splitting the per-feature AKM
//     loop, the per-tree MRKD searches, and the exact-nearest scan across
//     ParallelFor workers. Single-query latency drops without changing a
//     single VO byte (see below).
//   * Snapshot isolation for updates: the engine serves from an immutable
//     `shared_ptr<const Snapshot>` (package + the PublicParams whose root
//     signature covers it). InsertImage/DeleteImage clone the current
//     package (a serializer round-trip, which re-derives and thereby
//     integrity-checks every digest), apply the update to the clone,
//     re-sign, and atomically swap the pointer. In-flight queries keep
//     verifying against the root they started under; their responses carry
//     that snapshot so clients check the matching signature. Writers are
//     serialized; readers never block writers or each other.
//
// Determinism invariant: for a fixed snapshot, the engine's response —
// VO bytes and top-k — is byte-identical to the serial
// ServiceProvider::Query at ANY worker count and ANY intra-query thread
// count. Every parallel loop writes disjoint per-index slots and merges in
// index order; there are no cross-thread floating-point reductions. The
// golden determinism tests (tests/golden_test.cc) lock this in.

#ifndef IMAGEPROOF_CORE_QUERY_ENGINE_H_
#define IMAGEPROOF_CORE_QUERY_ENGINE_H_

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/server.h"
#include "core/update.h"
#include "obs/metrics.h"

namespace imageproof::core {

struct EngineOptions {
  unsigned num_workers = 4;          // pool size (inter-query parallelism)
  size_t queue_capacity = 128;       // bounded submission queue, 0 = unbounded
  unsigned intra_query_threads = 1;  // ParallelFor width inside one query
};

// One immutable published state of the deployment. `params.root_signature`
// signs exactly `package->RootDigest()`; both are replaced together on
// update, never mutated.
struct Snapshot {
  std::shared_ptr<const SpPackage> package;
  PublicParams params;
  uint64_t version = 0;  // 0 = the snapshot the engine was constructed with
};

// A query response plus the snapshot it was served under. Verification must
// use `snapshot->params` — a response served before an update is only valid
// against the root signature of its own snapshot.
struct EngineResponse {
  QueryResponse response;
  std::shared_ptr<const Snapshot> snapshot;
};

// Point-in-time engine counters (Stats()). Latency percentiles come from a
// fixed log-scale histogram (obs::Histogram) and are upper-bound bucket
// estimates. In an IMAGEPROOF_NO_METRICS build, snapshot_version and
// queue_depth remain live (they are engine state, not metrics) while every
// other field reads zero.
struct EngineStats {
  uint64_t queries_served = 0;
  uint64_t updates_applied = 0;
  uint64_t update_failures = 0;
  uint64_t in_flight = 0;      // queries currently executing
  uint64_t queue_depth = 0;    // submitted, not yet picked up by a worker
  uint64_t snapshot_version = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

class QueryEngine {
 public:
  // Takes shared ownership of the package. `params` must be the public
  // parameters published for exactly this package state.
  QueryEngine(std::shared_ptr<const SpPackage> package, PublicParams params,
              EngineOptions options = {});
  ~QueryEngine() = default;  // pool drains all submitted queries

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Enqueues one query; blocks only when the submission queue is full.
  std::future<EngineResponse> Submit(std::vector<std::vector<float>> features,
                                     size_t k);

  // Submits every query, then blocks until all are served. Results are in
  // input order.
  std::vector<EngineResponse> QueryBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k);

  // Owner-side updates. Each clones the current package, applies the
  // update, re-signs, and publishes a new snapshot; concurrent queries are
  // unaffected (they finish on the snapshot they started with). On failure
  // nothing is published. Writers are serialized with each other.
  Result<UpdateStats> InsertImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id, bovw::BovwVector bovw,
                                  Bytes image_data);
  Result<UpdateStats> DeleteImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id);

  // The snapshot new queries will be served under.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;

  EngineStats Stats() const;

  // Full observability dump as stable JSON: the engine's own metrics
  // (serving/queue-wait/update latency histograms, per-worker query
  // counts, in-flight gauge, snapshot version) plus the process-wide
  // registry (sp.* stage timers, client.* verify metrics) under "process".
  // Safe to call concurrently with serving; values are relaxed-atomic
  // reads. Under IMAGEPROOF_NO_METRICS the histograms/counters read zero
  // and "process" is {}.
  std::string MetricsSnapshot() const;

  const EngineOptions& options() const { return options_; }

 private:
  // Executes one query on a worker thread against `snap`. `enqueued` is
  // the Submit() timestamp, for the queue-wait histogram.
  EngineResponse Serve(const std::shared_ptr<const Snapshot>& snap,
                       const std::vector<std::vector<float>>& features,
                       size_t k, obs::TimePoint enqueued);

  // Clone-apply-swap core of both update entry points. `apply` receives the
  // cloned package and the params copy to update in place.
  template <typename Apply>
  Result<UpdateStats> ApplyUpdate(Apply&& apply);

  EngineOptions options_;
  unsigned num_workers_;            // options_.num_workers, 0 resolved to 1
  mutable std::mutex snapshot_mu_;  // guards snapshot_ swaps/reads
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex update_mu_;  // serializes writers (clone → apply → swap)

  // Engine-scoped metrics (obs/metrics.h; no-ops when compiled out).
  obs::Counter queries_served_;
  obs::Counter updates_applied_;
  obs::Counter update_failures_;
  obs::Gauge in_flight_;
  obs::Histogram latency_us_;     // Serve() wall time
  obs::Histogram queue_wait_us_;  // Submit() -> worker pickup
  obs::Histogram update_us_;      // clone + apply + re-sign + swap
  std::unique_ptr<obs::Counter[]> per_worker_queries_;  // [num_workers_]

  ThreadPool pool_;  // last member: destroyed (drained) first
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_QUERY_ENGINE_H_
