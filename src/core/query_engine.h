// Concurrent query-serving engine with snapshot isolation.
//
// The paper's SP is a single verifier-facing endpoint, but the workload it
// targets — large-scale image retrieval — is many clients hitting one
// authenticated index at once, with the owner occasionally pushing
// incremental updates (core/update.h). QueryEngine turns the serial
// ServiceProvider::Query path into a serving layer:
//
//   * Inter-query parallelism: a fixed-size worker pool (common/
//     thread_pool.h) with a bounded submission queue. Submit() returns a
//     future; QueryBatch() is the blocking convenience. When the queue is
//     full, Submit() blocks — backpressure instead of unbounded backlog.
//   * Intra-query parallelism: each worker runs Query with
//     QueryParallelism{intra_query_threads}, splitting the per-feature AKM
//     loop, the per-tree MRKD searches, and the exact-nearest scan across
//     ParallelFor workers. Single-query latency drops without changing a
//     single VO byte (see below).
//   * Snapshot isolation for updates: the engine serves from an immutable
//     `shared_ptr<const Snapshot>` (package + the PublicParams whose root
//     signature covers it). InsertImage/DeleteImage clone the current
//     package (a serializer round-trip, which re-derives and thereby
//     integrity-checks every digest), apply the update to the clone,
//     re-sign, and atomically swap the pointer. In-flight queries keep
//     verifying against the root they started under; their responses carry
//     that snapshot so clients check the matching signature. Writers are
//     serialized; readers never block writers or each other.
//
// Determinism invariant: for a fixed snapshot, the engine's response —
// VO bytes and top-k — is byte-identical to the serial
// ServiceProvider::Query at ANY worker count and ANY intra-query thread
// count. Every parallel loop writes disjoint per-index slots and merges in
// index order; there are no cross-thread floating-point reductions. The
// golden determinism tests (tests/golden_test.cc) lock this in.

#ifndef IMAGEPROOF_CORE_QUERY_ENGINE_H_
#define IMAGEPROOF_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <array>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/server.h"
#include "core/update.h"

namespace imageproof::core {

struct EngineOptions {
  unsigned num_workers = 4;          // pool size (inter-query parallelism)
  size_t queue_capacity = 128;       // bounded submission queue, 0 = unbounded
  unsigned intra_query_threads = 1;  // ParallelFor width inside one query
};

// One immutable published state of the deployment. `params.root_signature`
// signs exactly `package->RootDigest()`; both are replaced together on
// update, never mutated.
struct Snapshot {
  std::shared_ptr<const SpPackage> package;
  PublicParams params;
  uint64_t version = 0;  // 0 = the snapshot the engine was constructed with
};

// A query response plus the snapshot it was served under. Verification must
// use `snapshot->params` — a response served before an update is only valid
// against the root signature of its own snapshot.
struct EngineResponse {
  QueryResponse response;
  std::shared_ptr<const Snapshot> snapshot;
};

// Point-in-time engine counters (Stats()). Latency percentiles come from a
// fixed log-scale histogram and are upper-bound bucket estimates.
struct EngineStats {
  uint64_t queries_served = 0;
  uint64_t updates_applied = 0;
  uint64_t update_failures = 0;
  uint64_t in_flight = 0;      // queries currently executing
  uint64_t queue_depth = 0;    // submitted, not yet picked up by a worker
  uint64_t snapshot_version = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

class QueryEngine {
 public:
  // Takes shared ownership of the package. `params` must be the public
  // parameters published for exactly this package state.
  QueryEngine(std::shared_ptr<const SpPackage> package, PublicParams params,
              EngineOptions options = {});
  ~QueryEngine() = default;  // pool drains all submitted queries

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Enqueues one query; blocks only when the submission queue is full.
  std::future<EngineResponse> Submit(std::vector<std::vector<float>> features,
                                     size_t k);

  // Submits every query, then blocks until all are served. Results are in
  // input order.
  std::vector<EngineResponse> QueryBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k);

  // Owner-side updates. Each clones the current package, applies the
  // update, re-signs, and publishes a new snapshot; concurrent queries are
  // unaffected (they finish on the snapshot they started with). On failure
  // nothing is published. Writers are serialized with each other.
  Result<UpdateStats> InsertImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id, bovw::BovwVector bovw,
                                  Bytes image_data);
  Result<UpdateStats> DeleteImage(const crypto::RsaPrivateKey& owner_key,
                                  ImageId id);

  // The snapshot new queries will be served under.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;

  EngineStats Stats() const;

  const EngineOptions& options() const { return options_; }

 private:
  // Executes one query on a worker thread against `snap`.
  EngineResponse Serve(const std::shared_ptr<const Snapshot>& snap,
                       const std::vector<std::vector<float>>& features,
                       size_t k);

  // Clone-apply-swap core of both update entry points. `apply` receives the
  // cloned package and the params copy to update in place.
  template <typename Apply>
  Result<UpdateStats> ApplyUpdate(Apply&& apply);

  void RecordLatencyMs(double ms);

  EngineOptions options_;
  mutable std::mutex snapshot_mu_;  // guards snapshot_ swaps/reads
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex update_mu_;  // serializes writers (clone → apply → swap)

  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> update_failures_{0};
  std::atomic<uint64_t> in_flight_{0};

  // Log-scale latency histogram: bucket b covers [2^(b/4), 2^((b+1)/4)) us.
  static constexpr size_t kLatencyBuckets = 96;
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_buckets_{};

  ThreadPool pool_;  // last member: destroyed (drained) first
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_QUERY_ENGINE_H_
