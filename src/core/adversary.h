// Tampering harness modeling the malicious SP of the threat model
// (Section III): each function mutates an honest query response the way a
// cheating server would, so tests and the tamper_detection example can
// confirm the client rejects every attack class from the security analysis
// (Theorem 1).

#ifndef IMAGEPROOF_CORE_ADVERSARY_H_
#define IMAGEPROOF_CORE_ADVERSARY_H_

#include "core/server.h"

namespace imageproof::core {

// Case 3 of Theorem 1: return fake image data for a result.
QueryResponse TamperImageData(QueryResponse honest);

// Case 3 variant: valid-looking but wrong signature.
QueryResponse TamperSignature(QueryResponse honest);

// Case 2: swap a top-k result id for a different (lower-ranked) image.
QueryResponse TamperSwapResult(QueryResponse honest, bovw::ImageId substitute);

// Case 2 variant: silently drop the best result.
QueryResponse TamperDropResult(QueryResponse honest);

// Case 2 variant: flip bits inside the inverted-index VO (e.g., inflate an
// impact value).
QueryResponse TamperInvVo(QueryResponse honest, size_t byte_index);

// Case 1: forge the BoVW encoding by corrupting a candidate reveal.
QueryResponse TamperRevealSection(QueryResponse honest, size_t byte_index);

// Case 1 variant: corrupt an MRKD tree VO (hide a subtree / fake a digest).
QueryResponse TamperTreeVo(QueryResponse honest, size_t tree, size_t byte_index);

// Case 1 variant: enlarge a threshold to smuggle extra candidates.
QueryResponse TamperThreshold(QueryResponse honest, size_t query_index,
                              double new_threshold_sq);

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_ADVERSARY_H_
