#include "core/server.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/proof_memo.h"
#include "freqgroup/fg_search.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace imageproof::core {

namespace {

// Per-stage serving metrics (process-wide; see obs/registry.h for the
// resolve-once pattern). Stage names follow the paper's cost model: the
// BoVW step splits into the AKM threshold descent, the authenticated MRKD
// range search, and assignment + candidate-reveal assembly; the
// inverted-index step and the result-payload attachment complete the VO.
struct SpMetrics {
  obs::Counter& queries;
  obs::Counter& features;
  obs::Histogram& akm_threshold_us;
  obs::Histogram& mrkd_search_us;
  obs::Histogram& assign_reveal_us;
  obs::Histogram& inv_search_us;
  obs::Histogram& vo_assemble_us;
  obs::Histogram& bovw_vo_bytes;
  obs::Histogram& inv_vo_bytes;

  static SpMetrics& Get() {
    static SpMetrics m = [] {
      obs::Registry& r = obs::Registry::Global();
      return SpMetrics{r.GetCounter("sp.queries"),
                       r.GetCounter("sp.features"),
                       r.GetHistogram("sp.stage.akm_threshold_us"),
                       r.GetHistogram("sp.stage.mrkd_search_us"),
                       r.GetHistogram("sp.stage.assign_reveal_us"),
                       r.GetHistogram("sp.stage.inv_search_us"),
                       r.GetHistogram("sp.stage.vo_assemble_us"),
                       r.GetHistogram("sp.vo.bovw_bytes"),
                       r.GetHistogram("sp.vo.inv_bytes")};
    }();
    return m;
  }
};

}  // namespace

QueryResponse ServiceProvider::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    const QueryParallelism& par) const {
  QueryResponse resp;
  // A default QueryControl never expires, so this cannot fail.
  (void)Query(features, k, par, QueryControl(), &resp);
  return resp;
}

Status ServiceProvider::Query(const std::vector<std::vector<float>>& features,
                              size_t k, const QueryParallelism& par,
                              const QueryControl& control, QueryResponse* out,
                              QueryScratch* scratch) const {
  return Query(features, k, par, control, ServeOptions(), out, scratch);
}

Status ServiceProvider::Query(const std::vector<std::vector<float>>& features,
                              size_t k, const QueryParallelism& par,
                              const QueryControl& control,
                              const ServeOptions& serve, QueryResponse* out,
                              QueryScratch* scratch) const {
  QueryResponse& resp = *out;
  const Config& config = pkg_->config;
  const ann::PointSet& codebook = pkg_->codebook;
  const size_t dims = codebook.dims();
  const size_t nq = features.size();
  // Every parallel loop below writes disjoint per-index slots and is merged
  // in index order, so the response is byte-identical at any thread count.
  const unsigned threads = par.threads == 0 ? 1 : par.threads;

  // A feature vector with the wrong dimensionality would read out of
  // bounds in the distance kernels; reject it up front.
  for (size_t i = 0; i < nq; ++i) {
    if (features[i].size() != dims) {
      return Status::Error("sp: query feature " + std::to_string(i) + " has " +
                           std::to_string(features[i].size()) +
                           " dims, codebook has " + std::to_string(dims));
    }
  }

  Stopwatch bovw_timer;
  SpMetrics& met = SpMetrics::Get();
  met.queries.Add();
  met.features.Add(nq);

  if (control.Expired()) {
    return Status::DeadlineExceeded("sp: deadline expired before query start");
  }

  // Step 1: AKM search for thresholds. Chunked so each worker lane reuses
  // one scratch queue across its features; the chunk size is a function of
  // (nq, threads) alone and the kernel results do not depend on the
  // scratch, so output stays byte-identical at any thread count.
  obs::ScopedTimer akm_timer(met.akm_threshold_us);
  std::vector<const float*> queries(nq);
  for (size_t i = 0; i < nq; ++i) queries[i] = features[i].data();
  std::vector<double> thresholds_sq(nq, 0.0);
  const size_t num_trees = pkg_->mrkd_trees.size();
  if (scratch != nullptr) scratch->EnsureLanes(threads, num_trees);
  if (nq > 0) {
    const size_t chunk = (nq + threads - 1) / threads;
    ParallelChunks(
        nq, chunk,
        [&](size_t begin, size_t end) {
          kern::SearchScratch* lane =
              scratch ? &scratch->akm_lanes[begin / chunk] : nullptr;
          for (size_t i = begin; i < end; ++i) {
            ann::NearestResult r = pkg_->forest->ApproxNearest(queries[i], lane);
            thresholds_sq[i] = r.dist_sq;
          }
        },
        threads);
  }
  resp.vo.thresholds_sq = thresholds_sq;
  akm_timer.Stop();

  if (control.Expired()) {
    return Status::DeadlineExceeded("sp: deadline expired after AKM stage");
  }

  // Step 2: MRKDSearch over every tree, in parallel across trees; outputs
  // are merged in tree order afterwards.
  obs::ScopedTimer mrkd_timer(met.mrkd_search_us);
  std::vector<mrkd::TreeSearchOutput> tree_outputs(num_trees);
  ParallelFor(
      num_trees,
      [&](size_t t) {
        const mrkd::MrkdTree& tree = *pkg_->mrkd_trees[t];
        // Scratch is indexed by tree, not by worker, so the lane is
        // exclusive at any thread count.
        mrkd::MrkdSearchScratch* lane =
            scratch ? &scratch->tree_lanes[t] : nullptr;
        const mrkd::LeafProofMemo* leaf_memo =
            serve.memo ? serve.memo->tree_leaves(t) : nullptr;
        tree_outputs[t] =
            config.share_nodes
                ? mrkd::MrkdSearchShared(tree, queries, thresholds_sq, lane,
                                         leaf_memo)
                : mrkd::MrkdSearchUnshared(tree, queries, thresholds_sq, lane,
                                           leaf_memo);
      },
      threads, /*grain=*/1);
  std::vector<std::set<mrkd::ClusterId>> candidates(nq);
  for (mrkd::TreeSearchOutput& out : tree_outputs) {
    for (size_t i = 0; i < nq; ++i) {
      candidates[i].insert(out.candidates[i].begin(), out.candidates[i].end());
    }
    resp.stats.mrkd.traversed_nodes += out.stats.traversed_nodes;
    resp.stats.mrkd.shared_nodes += out.stats.shared_nodes;
    resp.stats.mrkd.pruned_subtrees += out.stats.pruned_subtrees;
    resp.vo.tree_vos.push_back(std::move(out.vo));
  }

  mrkd_timer.Stop();

  if (control.Expired()) {
    return Status::DeadlineExceeded("sp: deadline expired after MRKD stage");
  }

  // Step 3: assignments = exact nearest among candidates, then the shared
  // candidate-reveal section.
  obs::ScopedTimer assign_timer(met.assign_reveal_us);
  std::vector<mrkd::ClusterId> assignment(nq);
  std::vector<double> assigned_dist(nq, 0.0);
  ParallelFor(
      nq,
      [&](size_t i) {
        double best = -1;
        mrkd::ClusterId best_c = 0;
        bool first = true;
        for (mrkd::ClusterId c : candidates[i]) {
          double d = ann::SquaredL2(queries[i], codebook.row(c), dims);
          if (first || d < best || (d == best && c < best_c)) {
            best = d;
            best_c = c;
            first = false;
          }
        }
        assignment[i] = best_c;
        assigned_dist[i] = best;
      },
      threads, /*grain=*/1);

  // Which queries must each candidate be excluded for, and which clusters
  // must be revealed fully (someone's assigned cluster).
  std::map<mrkd::ClusterId, std::vector<size_t>> exclusion_queries;
  std::set<mrkd::ClusterId> full_clusters;
  for (size_t i = 0; i < nq; ++i) {
    full_clusters.insert(assignment[i]);
    for (mrkd::ClusterId c : candidates[i]) {
      if (c != assignment[i]) exclusion_queries[c].push_back(i);
    }
  }
  std::set<mrkd::ClusterId> all_candidates;
  for (size_t i = 0; i < nq; ++i) {
    all_candidates.insert(candidates[i].begin(), candidates[i].end());
  }

  std::vector<mrkd::ClusterReveal> reveals;
  reveals.reserve(all_candidates.size());
  for (mrkd::ClusterId c : all_candidates) {
    bool full = full_clusters.contains(c);
    std::vector<const float*> qs;
    std::vector<double> bounds;
    if (!full) {
      for (size_t qi : exclusion_queries[c]) {
        qs.push_back(queries[qi]);
        bounds.push_back(assigned_dist[qi]);
      }
    }
    reveals.push_back(mrkd::BuildReveal(config.reveal_mode, c, codebook.row(c),
                                        dims, full, qs, bounds,
                                        serve.memo ? serve.memo->dim_trees()
                                                   : nullptr));
  }
  ByteWriter reveal_writer;
  mrkd::SerializeReveals(reveals, reveal_writer);
  resp.vo.reveal_section = reveal_writer.Take();

  // Step 4: BoVW encoding.
  std::vector<bovw::ClusterId> assigned_ids(assignment.begin(), assignment.end());
  bovw::BovwVector query_bovw = bovw::CountAssignments(assigned_ids);
  assign_timer.Stop();
  resp.stats.sp_bovw_ms = bovw_timer.ElapsedMillis();
  resp.stats.bovw_vo_bytes =
      resp.vo.reveal_section.size() + nq * sizeof(double);
  for (const Bytes& t : resp.vo.tree_vos) resp.stats.bovw_vo_bytes += t.size();
  met.bovw_vo_bytes.Record(resp.stats.bovw_vo_bytes);

  if (control.Expired()) {
    return Status::DeadlineExceeded("sp: deadline expired after BoVW stage");
  }

  // Step 5: inverted-index search.
  Stopwatch inv_timer;
  obs::ScopedTimer inv_stage_timer(met.inv_search_us);
  invindex::InvSearchParams params;
  params.k = k;
  params.check_batch = config.check_batch;
  params.compress_vo = serve.compress_vo;
  params.settle_exact_topk = serve.settle_exact_topk;
  kern::SearchScratch* inv_scratch = scratch ? &scratch->inv : nullptr;
  if (config.freq_grouped) {
    freqgroup::FgSearchResult r = freqgroup::FgSearch(
        *pkg_->fg_index, query_bovw, params, inv_scratch);
    resp.topk = std::move(r.topk);
    resp.vo.inv_vo = std::move(r.vo);
    resp.stats.inv = r.stats;
  } else {
    invindex::InvSearchResult r =
        invindex::InvSearch(*pkg_->inv_index, query_bovw, params, inv_scratch);
    resp.topk = std::move(r.topk);
    resp.vo.inv_vo = std::move(r.vo);
    resp.stats.inv = r.stats;
  }
  inv_stage_timer.Stop();
  resp.stats.sp_inv_ms = inv_timer.ElapsedMillis();
  resp.stats.inv_vo_bytes = resp.vo.inv_vo.size();
  met.inv_vo_bytes.Record(resp.stats.inv_vo_bytes);

  if (control.Expired()) {
    return Status::DeadlineExceeded("sp: deadline expired after inv stage");
  }

  // Step 6: result payloads + signatures, through the uniform accessor so a
  // disk-backed package (storage/package_store.h) serves blobs straight from
  // the mapping. A stored payload that fails its lazy integrity check turns
  // the whole query into kCorrupted — a tampered file never fills a VO.
  obs::ScopedTimer vo_timer(met.vo_assemble_us);
  for (const auto& si : resp.topk) {
    ResultImage ri;
    ri.id = si.id;
    bool found = false;
    if (Status s = pkg_->GetImage(si.id, &found, &ri.data, &ri.signature);
        !s.ok()) {
      return s;
    }
    resp.vo.results.push_back(std::move(ri));
  }
  return Status::Ok();
}

}  // namespace imageproof::core
