#include "core/query_cache.h"

#include <cstring>

#include "crypto/sha3.h"

namespace imageproof::core {

namespace {

// Fixed shard count: enough to keep the per-shard mutexes out of each
// other's way at the engine's worker counts, small enough that the
// per-shard LRU bound stays a useful fraction of the total capacity.
constexpr size_t kShards = 8;

}  // namespace

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) return;
  shard_capacity_ = (capacity_ + kShards - 1) / kShards;
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

crypto::Digest QueryCache::Key(
    uint64_t version, bool compress_vo, size_t k,
    const std::vector<std::vector<float>>& features, bool settle_exact_topk) {
  crypto::Sha3_256 h;
  // Length-prefixed framing so no two distinct (version, flags, k, features)
  // tuples can collide by concatenation ambiguity.
  uint8_t header[8 + 1 + 8 + 8];
  uint64_t v = version;
  std::memcpy(header, &v, 8);
  header[8] = static_cast<uint8_t>((compress_vo ? 1 : 0) |
                                   (settle_exact_topk ? 2 : 0));
  uint64_t kk = k;
  std::memcpy(header + 9, &kk, 8);
  uint64_t nq = features.size();
  std::memcpy(header + 17, &nq, 8);
  h.Update(header, sizeof(header));
  for (const std::vector<float>& f : features) {
    uint64_t dims = f.size();
    uint8_t len[8];
    std::memcpy(len, &dims, 8);
    h.Update(len, 8);
    h.Update(reinterpret_cast<const uint8_t*>(f.data()), f.size() * 4);
  }
  return h.Finalize();
}

QueryCache::Shard& QueryCache::ShardFor(const crypto::Digest& key) {
  // DigestHasher reads the leading digest bytes — uniformly distributed, so
  // a modulo spreads keys evenly.
  return *shards_[crypto::DigestHasher{}(key) % kShards];
}

std::shared_ptr<const QueryResponse> QueryCache::Lookup(
    const crypto::Digest& key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.Add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.Add();
  return it->second->response;
}

void QueryCache::Insert(const crypto::Digest& key,
                        std::shared_ptr<const QueryResponse> response) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A racing cold serve of the same key already inserted a byte-identical
    // response; just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(response)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.Add();
  }
}

QueryCacheStats QueryCache::Stats() const {
  QueryCacheStats s;
  s.hits = hits_.Value();
  s.misses = misses_.Value();
  s.evictions = evictions_.Value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
  }
  return s;
}

}  // namespace imageproof::core
