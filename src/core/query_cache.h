// Epoch-keyed query/VO result cache for Zipfian (hot-repeat) traffic.
//
// Serving real image-retrieval traffic, a small set of popular queries
// accounts for most requests. For a fixed snapshot the serving pipeline is
// fully deterministic — same features, same k, same compression flag, same
// package ⇒ byte-identical VO — so repeating the pipeline for a repeated
// query is pure waste. The cache stores the complete QueryResponse keyed by
//
//   SHA3-256( snapshot version ‖ compress flag ‖ k ‖ feature bytes )
//
// The snapshot version in the key is the entire invalidation story: the
// engine's atomic snapshot swap (TryApplyUpdate) bumps the version, so every
// entry cached under the old epoch simply stops being addressable — a hit
// can never serve a pre-swap VO for a post-swap query. Stale entries age out
// of the LRU like any other cold key; no flush, no epochs-in-flight
// bookkeeping, no reader/writer coordination beyond the shard mutex.
//
// Hits return a shared_ptr to the immutable cached response; the caller
// copies it into its own EngineResponse. Because the pipeline is
// deterministic, a hit is byte-identical to a cold serve of the same query
// (asserted by tests/query_cache_test.cc and in-bench by bench/abl_cache).
//
// Concurrency: the key space is split across a fixed set of shards, each a
// mutex-protected LRU (intrusive list + hash map). Lookups and inserts on
// different shards never contend; the critical section is a few pointer
// moves. Counters are obs metrics (compiled to no-ops under
// IMAGEPROOF_NO_METRICS; cache behavior — hits, eviction order, stored
// bytes — is identical either way).

#ifndef IMAGEPROOF_CORE_QUERY_CACHE_H_
#define IMAGEPROOF_CORE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/server.h"
#include "crypto/digest.h"
#include "obs/metrics.h"

namespace imageproof::core {

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;  // live entries right now (across all shards)
};

class QueryCache {
 public:
  // `capacity` bounds the total number of cached responses across shards;
  // 0 disables the cache (Lookup always misses without counting, Insert is
  // a no-op), which is the engine default so existing serving behavior is
  // unchanged unless a deployment opts in.
  explicit QueryCache(size_t capacity);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }

  // Canonical cache key. Everything that influences a response byte is
  // hashed: the snapshot version (epoch), the VO-compression flag, the
  // settle-exact flag (settle serves pop more postings, so their VOs must
  // never alias the plain-serve entries), k, and the exact feature bit
  // patterns (floats hashed as raw bytes — queries that differ in any ULP
  // are distinct queries).
  static crypto::Digest Key(uint64_t version, bool compress_vo, size_t k,
                            const std::vector<std::vector<float>>& features,
                            bool settle_exact_topk = false);

  // Returns the cached response and refreshes its LRU position, or null on
  // miss.
  std::shared_ptr<const QueryResponse> Lookup(const crypto::Digest& key);

  // Inserts (or refreshes) `response` under `key`, evicting
  // least-recently-used entries to stay within capacity. Racing inserts for
  // the same key are benign: the pipeline is deterministic, so both values
  // are byte-identical and either may win.
  void Insert(const crypto::Digest& key,
              std::shared_ptr<const QueryResponse> response);

  QueryCacheStats Stats() const;

 private:
  struct Entry {
    crypto::Digest key;
    std::shared_ptr<const QueryResponse> response;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<crypto::Digest, std::list<Entry>::iterator,
                       crypto::DigestHasher>
        index;
  };

  Shard& ShardFor(const crypto::Digest& key);

  const size_t capacity_;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_QUERY_CACHE_H_
