// Client: result verification (Section V-C).
//
// Given its own feature vectors, the SP's claimed top-k and the VO, the
// client checks, in order:
//   1. the candidate-reveal section (cluster commitments, Merkle subset
//      proofs under Optimization A);
//   2. every MRKD-tree VO by exact replay — reconstructing each root — and
//      the owner's signature over h(root_1 | ... | root_{n_t});
//   3. the BoVW encoding: each feature's assigned cluster is the provable
//      nearest among the authenticated candidates, within its threshold;
//   4. the inverted-index VO: list digests (cross-checked against the ones
//      the MRKD leaves authenticate), posting chains, termination
//      conditions, and that the claimed results are the top-k;
//   5. each result image's Eq. (15) signature.
// Any failure yields a Status naming the violated check.

#ifndef IMAGEPROOF_CORE_CLIENT_H_
#define IMAGEPROOF_CORE_CLIENT_H_

#include <vector>

#include "core/server.h"
#include "core/vo.h"

namespace imageproof::core {

struct VerifiedResults {
  // Result ids with verified lower-bound similarity scores, best first.
  std::vector<bovw::ScoredImage> topk;
  // Verified raw image payloads, aligned with `topk`.
  std::vector<Bytes> images;
  // The ADS root digest h(root_1 | ... | root_{n_t}) the VO replayed to —
  // the owner's signature in PublicParams verified over exactly this value.
  // The sharded composite verifier pins each shard's response to the root
  // digest recorded in the signed shard manifest through this field.
  crypto::Digest root_digest = crypto::Digest::Zero();
  // True when every verified score is provably exact rather than a lower
  // bound (InvVerifyResult::topk_exact) — the precondition for merging
  // results across shards.
  bool topk_scores_exact = false;
  double client_bovw_ms = 0;  // time in steps 1-3
  double client_inv_ms = 0;   // time in steps 4-5
};

class Client {
 public:
  explicit Client(PublicParams params) : params_(std::move(params)) {}

  // Verifies a query response end to end. `features` are the client's own
  // query vectors (the same ones sent to the SP); `k` the requested k.
  Result<VerifiedResults> Verify(const std::vector<std::vector<float>>& features,
                                 size_t k, const QueryVO& vo) const;

  const PublicParams& params() const { return params_; }

 private:
  // The verification pipeline itself. Verify() wraps it with the
  // observability layer: outcome counters, per-ADS stage timers, and the
  // VO-size-by-component histograms (obs/registry.h, "client.*" names).
  Result<VerifiedResults> VerifyImpl(
      const std::vector<std::vector<float>>& features, size_t k,
      const QueryVO& vo) const;

  PublicParams params_;
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_CLIENT_H_
