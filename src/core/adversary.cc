#include "core/adversary.h"

namespace imageproof::core {

QueryResponse TamperImageData(QueryResponse honest) {
  if (!honest.vo.results.empty()) {
    if (honest.vo.results[0].data.empty()) {
      honest.vo.results[0].data.push_back(0x42);
    } else {
      honest.vo.results[0].data[0] ^= 0xFF;
    }
  }
  return honest;
}

QueryResponse TamperSignature(QueryResponse honest) {
  if (!honest.vo.results.empty() && !honest.vo.results[0].signature.empty()) {
    honest.vo.results[0].signature.back() ^= 0x01;
  }
  return honest;
}

QueryResponse TamperSwapResult(QueryResponse honest, bovw::ImageId substitute) {
  if (!honest.vo.results.empty()) {
    honest.vo.results[0].id = substitute;
    honest.topk[0].id = substitute;
  }
  return honest;
}

QueryResponse TamperDropResult(QueryResponse honest) {
  if (!honest.vo.results.empty()) {
    honest.vo.results.erase(honest.vo.results.begin());
    honest.topk.erase(honest.topk.begin());
  }
  return honest;
}

QueryResponse TamperInvVo(QueryResponse honest, size_t byte_index) {
  if (!honest.vo.inv_vo.empty()) {
    honest.vo.inv_vo[byte_index % honest.vo.inv_vo.size()] ^= 0x5A;
  }
  return honest;
}

QueryResponse TamperRevealSection(QueryResponse honest, size_t byte_index) {
  if (!honest.vo.reveal_section.empty()) {
    honest.vo.reveal_section[byte_index % honest.vo.reveal_section.size()] ^=
        0x5A;
  }
  return honest;
}

QueryResponse TamperTreeVo(QueryResponse honest, size_t tree,
                           size_t byte_index) {
  if (!honest.vo.tree_vos.empty()) {
    Bytes& vo = honest.vo.tree_vos[tree % honest.vo.tree_vos.size()];
    if (!vo.empty()) vo[byte_index % vo.size()] ^= 0x5A;
  }
  return honest;
}

QueryResponse TamperThreshold(QueryResponse honest, size_t query_index,
                              double new_threshold_sq) {
  if (!honest.vo.thresholds_sq.empty()) {
    honest.vo.thresholds_sq[query_index % honest.vo.thresholds_sq.size()] =
        new_threshold_sq;
  }
  return honest;
}

}  // namespace imageproof::core
