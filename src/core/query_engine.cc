#include "core/query_engine.h"

#include <algorithm>

#include "obs/registry.h"
#include "storage/serializer.h"

namespace imageproof::core {

QueryEngine::QueryEngine(std::shared_ptr<const SpPackage> package,
                         PublicParams params, EngineOptions options)
    : options_(options),
      num_workers_(options.num_workers == 0 ? 1 : options.num_workers),
      per_worker_queries_(new obs::Counter[num_workers_]),
      pool_(num_workers_, options.queue_capacity) {
  auto snap = std::make_shared<Snapshot>();
  snap->package = std::move(package);
  snap->params = std::move(params);
  snap->version = 0;
  snapshot_ = std::move(snap);
}

std::shared_ptr<const Snapshot> QueryEngine::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

EngineResponse QueryEngine::Serve(
    const std::shared_ptr<const Snapshot>& snap,
    const std::vector<std::vector<float>>& features, size_t k,
    obs::TimePoint enqueued) {
  queue_wait_us_.Record(obs::ElapsedUs(enqueued));
  in_flight_.Add();
  int worker = ThreadPool::CurrentWorkerIndex();
  if (worker >= 0 && static_cast<unsigned>(worker) < num_workers_) {
    per_worker_queries_[worker].Add();
  }
  obs::ScopedTimer latency_timer(latency_us_);
  ServiceProvider sp(snap->package.get());
  QueryParallelism par;
  par.threads = options_.intra_query_threads;
  EngineResponse out;
  out.response = sp.Query(features, k, par);
  out.snapshot = snap;
  latency_timer.Stop();
  queries_served_.Add();
  in_flight_.Sub();
  return out;
}

std::future<EngineResponse> QueryEngine::Submit(
    std::vector<std::vector<float>> features, size_t k) {
  // The snapshot is pinned at submission time, not at execution time: a
  // query admitted before an update is answered from the state the caller
  // observed, even if it sits in the queue across the swap.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  obs::TimePoint enqueued = obs::Now();
  return pool_.Submit([this, snap = std::move(snap),
                       features = std::move(features), k, enqueued] {
    return Serve(snap, features, k, enqueued);
  });
}

std::vector<EngineResponse> QueryEngine::QueryBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k) {
  std::vector<std::future<EngineResponse>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(Submit(q, k));
  std::vector<EngineResponse> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

template <typename Apply>
Result<UpdateStats> QueryEngine::ApplyUpdate(Apply&& apply) {
  std::lock_guard<std::mutex> writer_lock(update_mu_);
  obs::ScopedTimer update_timer(update_us_);
  std::shared_ptr<const Snapshot> base = CurrentSnapshot();

  // Deep-clone via the canonical serializer: the load path re-derives every
  // digest from raw data, so a corrupted in-memory package fails here
  // instead of being silently republished under a fresh signature.
  Result<std::unique_ptr<SpPackage>> clone =
      storage::DeserializeSpPackage(storage::SerializeSpPackage(*base->package));
  if (!clone.ok()) {
    update_failures_.Add();
    return Result<UpdateStats>::Error("engine update: clone failed: " +
                                      clone.status().message());
  }
  auto next = std::make_shared<Snapshot>();
  next->params = base->params;
  Result<UpdateStats> result = apply(clone->get(), &next->params);
  if (!result.ok()) {
    update_failures_.Add();
    return result;  // nothing published; readers keep the old snapshot
  }
  next->package = std::shared_ptr<const SpPackage>(std::move(*clone));
  next->version = base->version + 1;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  updates_applied_.Add();
  return result;
}

Result<UpdateStats> QueryEngine::InsertImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id, bovw::BovwVector bovw,
    Bytes image_data) {
  return ApplyUpdate([&](SpPackage* pkg, PublicParams* params) {
    return core::InsertImage(pkg, owner_key, params, id, std::move(bovw),
                             std::move(image_data));
  });
}

Result<UpdateStats> QueryEngine::DeleteImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id) {
  return ApplyUpdate([&](SpPackage* pkg, PublicParams* params) {
    return core::DeleteImage(pkg, owner_key, params, id);
  });
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries_served = queries_served_.Value();
  s.updates_applied = updates_applied_.Value();
  s.update_failures = update_failures_.Value();
  s.in_flight = static_cast<uint64_t>(std::max<int64_t>(in_flight_.Value(), 0));
  s.queue_depth = pool_.QueueDepth();
  s.snapshot_version = CurrentSnapshot()->version;
  obs::HistogramSnapshot lat = latency_us_.Snapshot();
  if (lat.count > 0) {
    s.p50_latency_ms = lat.p50 / 1000.0;
    s.p99_latency_ms = lat.p99 / 1000.0;
  }
  return s;
}

std::string QueryEngine::MetricsSnapshot() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("metrics_enabled").Bool(obs::kMetricsEnabled);
  w.Key("engine").BeginObject();
  w.Key("num_workers").U64(num_workers_);
  w.Key("intra_query_threads").U64(options_.intra_query_threads);
  w.Key("snapshot_version").U64(CurrentSnapshot()->version);
  w.Key("queue_depth").U64(pool_.QueueDepth());
  w.Key("in_flight").I64(in_flight_.Value());
  w.Key("queries_served").U64(queries_served_.Value());
  w.Key("updates_applied").U64(updates_applied_.Value());
  w.Key("update_failures").U64(update_failures_.Value());
  w.Key("per_worker_queries").BeginArray();
  for (unsigned i = 0; i < num_workers_; ++i) {
    w.U64(per_worker_queries_[i].Value());
  }
  w.EndArray();
  w.Key("latency_us");
  obs::AppendHistogramJson(w, latency_us_);
  w.Key("queue_wait_us");
  obs::AppendHistogramJson(w, queue_wait_us_);
  w.Key("update_us");
  obs::AppendHistogramJson(w, update_us_);
  w.EndObject();
  w.Key("process");
  obs::Registry::Global().AppendJson(w);
  w.EndObject();
  return w.Take();
}

}  // namespace imageproof::core
