#include "core/query_engine.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "storage/serializer.h"

namespace imageproof::core {

QueryEngine::QueryEngine(std::shared_ptr<const SpPackage> package,
                         PublicParams params, EngineOptions options)
    : options_(options),
      pool_(options.num_workers == 0 ? 1 : options.num_workers,
            options.queue_capacity) {
  auto snap = std::make_shared<Snapshot>();
  snap->package = std::move(package);
  snap->params = std::move(params);
  snap->version = 0;
  snapshot_ = std::move(snap);
}

std::shared_ptr<const Snapshot> QueryEngine::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

EngineResponse QueryEngine::Serve(
    const std::shared_ptr<const Snapshot>& snap,
    const std::vector<std::vector<float>>& features, size_t k) {
  ++in_flight_;
  Stopwatch timer;
  ServiceProvider sp(snap->package.get());
  QueryParallelism par;
  par.threads = options_.intra_query_threads;
  EngineResponse out;
  out.response = sp.Query(features, k, par);
  out.snapshot = snap;
  RecordLatencyMs(timer.ElapsedMillis());
  ++queries_served_;
  --in_flight_;
  return out;
}

std::future<EngineResponse> QueryEngine::Submit(
    std::vector<std::vector<float>> features, size_t k) {
  // The snapshot is pinned at submission time, not at execution time: a
  // query admitted before an update is answered from the state the caller
  // observed, even if it sits in the queue across the swap.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  return pool_.Submit(
      [this, snap = std::move(snap), features = std::move(features), k] {
        return Serve(snap, features, k);
      });
}

std::vector<EngineResponse> QueryEngine::QueryBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k) {
  std::vector<std::future<EngineResponse>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(Submit(q, k));
  std::vector<EngineResponse> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

template <typename Apply>
Result<UpdateStats> QueryEngine::ApplyUpdate(Apply&& apply) {
  std::lock_guard<std::mutex> writer_lock(update_mu_);
  std::shared_ptr<const Snapshot> base = CurrentSnapshot();

  // Deep-clone via the canonical serializer: the load path re-derives every
  // digest from raw data, so a corrupted in-memory package fails here
  // instead of being silently republished under a fresh signature.
  Result<std::unique_ptr<SpPackage>> clone =
      storage::DeserializeSpPackage(storage::SerializeSpPackage(*base->package));
  if (!clone.ok()) {
    ++update_failures_;
    return Result<UpdateStats>::Error("engine update: clone failed: " +
                                      clone.status().message());
  }
  auto next = std::make_shared<Snapshot>();
  next->params = base->params;
  Result<UpdateStats> result = apply(clone->get(), &next->params);
  if (!result.ok()) {
    ++update_failures_;
    return result;  // nothing published; readers keep the old snapshot
  }
  next->package = std::shared_ptr<const SpPackage>(std::move(*clone));
  next->version = base->version + 1;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  ++updates_applied_;
  return result;
}

Result<UpdateStats> QueryEngine::InsertImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id, bovw::BovwVector bovw,
    Bytes image_data) {
  return ApplyUpdate([&](SpPackage* pkg, PublicParams* params) {
    return core::InsertImage(pkg, owner_key, params, id, std::move(bovw),
                             std::move(image_data));
  });
}

Result<UpdateStats> QueryEngine::DeleteImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id) {
  return ApplyUpdate([&](SpPackage* pkg, PublicParams* params) {
    return core::DeleteImage(pkg, owner_key, params, id);
  });
}

void QueryEngine::RecordLatencyMs(double ms) {
  double us = std::max(ms * 1000.0, 1.0);
  // Bucket b covers [2^(b/4), 2^((b+1)/4)) microseconds.
  double b = std::floor(std::log2(us) * 4.0);
  size_t bucket = static_cast<size_t>(std::max(b, 0.0));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  ++latency_buckets_[bucket];
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries_served = queries_served_.load();
  s.updates_applied = updates_applied_.load();
  s.update_failures = update_failures_.load();
  s.in_flight = in_flight_.load();
  s.queue_depth = pool_.QueueDepth();
  s.snapshot_version = CurrentSnapshot()->version;

  std::array<uint64_t, kLatencyBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    counts[i] = latency_buckets_[i].load();
    total += counts[i];
  }
  if (total == 0) return s;
  auto percentile = [&](double p) {
    uint64_t rank = static_cast<uint64_t>(std::ceil(p * total));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) {
        // Upper edge of bucket i, converted back to ms.
        return std::pow(2.0, (i + 1) / 4.0) / 1000.0;
      }
    }
    return std::pow(2.0, kLatencyBuckets / 4.0) / 1000.0;
  };
  s.p50_latency_ms = percentile(0.50);
  s.p99_latency_ms = percentile(0.99);
  return s;
}

}  // namespace imageproof::core
