#include "core/query_engine.h"

#include <algorithm>
#include <thread>

#include <cstdio>

#include "common/fault.h"
#include "core/proof_memo.h"
#include "crypto/rsa.h"
#include "obs/registry.h"
#include "storage/epoch_janitor.h"
#include "storage/package_store.h"
#include "storage/serializer.h"

namespace imageproof::core {

QueryEngine::QueryEngine(std::shared_ptr<const SpPackage> package,
                         PublicParams params, EngineOptions options)
    : options_(options),
      num_workers_(options.num_workers == 0 ? 1 : options.num_workers),
      per_worker_queries_(new obs::Counter[num_workers_]),
      worker_scratch_(new QueryScratch[num_workers_]),
      cache_(options.cache_capacity > 0
                 ? std::make_unique<QueryCache>(options.cache_capacity)
                 : nullptr),
      pool_(num_workers_, options.queue_capacity) {
  auto snap = std::make_shared<Snapshot>();
  snap->package = std::move(package);
  snap->params = std::move(params);
  snap->version = options.initial_version;
  snap->memo = std::make_shared<const ProofMemo>(*snap->package);
  snapshot_ = std::move(snap);
  if (!options_.persist_dir.empty()) {
    epoch_params_[snapshot_->version] = snapshot_->params;
    if (options_.retain_epochs > 0 || options_.scrub_interval.count() > 0) {
      storage::JanitorOptions jo;
      jo.dir = options_.persist_dir;
      jo.retain_epochs = options_.retain_epochs;
      jo.scrub = options_.scrub_interval.count() > 0;
      // GC-only configurations still need a thread cadence.
      jo.scrub_interval = jo.scrub ? options_.scrub_interval
                                   : std::chrono::milliseconds(1000);
      jo.scrub_bytes_per_sec = options_.scrub_bytes_per_sec;
      janitor_ = std::make_unique<storage::EpochJanitor>(
          std::move(jo),
          [this](uint64_t epoch) { return RollbackFromCorruptEpoch(epoch); });
      janitor_->Start();
    }
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::Shutdown() {
  stopped_.store(true, std::memory_order_release);
  // Join the janitor before the pool: its rollback callback re-enters the
  // engine, and after stopped_ is set that callback exits early.
  if (janitor_) janitor_->Stop();
  pool_.Shutdown();  // drains accepted queries, joins workers; idempotent
}

std::shared_ptr<const Snapshot> QueryEngine::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::future<EngineResponse> QueryEngine::ReadyResponse(Status status) {
  std::promise<EngineResponse> p;
  EngineResponse r;
  r.status = std::move(status);
  p.set_value(std::move(r));
  return p.get_future();
}

EngineResponse QueryEngine::Serve(
    const std::shared_ptr<const Snapshot>& snap,
    const std::vector<std::vector<float>>& features, size_t k,
    bool compress_vo, bool settle_exact_topk, obs::TimePoint enqueued,
    Clock::time_point deadline) {
  queue_wait_us_.Record(obs::ElapsedUs(enqueued));
  EngineResponse out;
  out.snapshot = snap;
  const bool has_deadline = deadline != Clock::time_point{};
  // A query whose deadline expired while it waited in the queue is dropped
  // before any pipeline work: the client already gave up on it, so serving
  // it would burn capacity the still-live queries need.
  if (has_deadline && Clock::now() > deadline) {
    deadline_exceeded_.Add();
    out.status = Status::DeadlineExceeded("engine: deadline expired in queue");
    return out;
  }
  fault::InjectLatency("engine.query.latency");
  in_flight_.Add();
  int worker = ThreadPool::CurrentWorkerIndex();
  QueryScratch* scratch = nullptr;
  if (worker >= 0 && static_cast<unsigned>(worker) < num_workers_) {
    per_worker_queries_[worker].Add();
    // The worker's warm scratch: exclusively ours for the whole call (one
    // query runs per worker at a time; inline fallback runs get none).
    scratch = &worker_scratch_[worker];
  }
  obs::ScopedTimer latency_timer(latency_us_);

  // Result cache: the key pins the snapshot version, so a hit is always
  // from this query's own epoch — an entry cached before an update can
  // never answer a query admitted after the swap. Hits are byte-identical
  // to a cold serve (deterministic pipeline), so nothing downstream can
  // tell the difference except the clock.
  crypto::Digest cache_key;
  const bool use_cache = cache_ != nullptr;
  if (use_cache) {
    cache_key = QueryCache::Key(snap->version, compress_vo, k, features,
                                settle_exact_topk);
    if (std::shared_ptr<const QueryResponse> hit = cache_->Lookup(cache_key)) {
      out.response = *hit;
      out.status = Status::Ok();
      latency_timer.Stop();
      in_flight_.Sub();
      queries_served_.Add();
      return out;
    }
  }

  ServiceProvider sp(snap->package.get());
  QueryParallelism par;
  par.threads = options_.intra_query_threads;
  QueryControl control =
      has_deadline ? QueryControl(deadline) : QueryControl();
  ServeOptions serve;
  serve.compress_vo = compress_vo;
  serve.settle_exact_topk = settle_exact_topk;
  serve.memo = snap->memo.get();
  out.status =
      sp.Query(features, k, par, control, serve, &out.response, scratch);
  latency_timer.Stop();
  in_flight_.Sub();
  if (out.status.ok()) {
    queries_served_.Add();
    (compress_vo ? vo_bytes_compressed_ : vo_bytes_raw_)
        .Add(out.response.vo.inv_vo.size());
    if (use_cache) {
      cache_->Insert(cache_key,
                     std::make_shared<const QueryResponse>(out.response));
    }
  } else {
    // Only deadline expiry can surface here; the partial response must not
    // leak (a half-built VO would fail verification in confusing ways).
    deadline_exceeded_.Add();
    out.response = QueryResponse{};
  }
  return out;
}

std::future<EngineResponse> QueryEngine::Submit(
    std::vector<std::vector<float>> features, size_t k,
    SubmitOptions submit_options) {
  return SubmitWithPolicy(std::move(features), k, submit_options,
                          options_.overload_policy);
}

std::future<EngineResponse> QueryEngine::SubmitWithPolicy(
    std::vector<std::vector<float>> features, size_t k,
    SubmitOptions submit_options, OverloadPolicy policy) {
  if (stopped_.load(std::memory_order_acquire)) {
    rejected_unavailable_.Add();
    return ReadyResponse(Status::Unavailable("engine: stopped"));
  }
  const Clock::time_point deadline =
      submit_options.deadline.count() > 0
          ? Clock::now() + submit_options.deadline
          : Clock::time_point{};
  // The snapshot is pinned at submission time, not at execution time: a
  // query admitted before an update is answered from the state the caller
  // observed, even if it sits in the queue across the swap.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  obs::TimePoint enqueued = obs::Now();
  const bool compress_vo = submit_options.compress_vo;
  const bool settle = submit_options.settle_exact_topk;
  auto task = [this, snap = std::move(snap), features = std::move(features),
               k, compress_vo, settle, enqueued, deadline] {
    return Serve(snap, features, k, compress_vo, settle, enqueued, deadline);
  };
  if (policy == OverloadPolicy::kBlock) {
    // PR-1 backpressure semantics: a full queue blocks the submitter. If
    // the pool shut down between the stopped_ check above and here, the
    // task runs inline — the future is still satisfied, never dropped.
    return pool_.Submit(std::move(task));
  }
  std::future<EngineResponse> fut;
  switch (pool_.TrySubmit(std::move(task), &fut)) {
    case ThreadPool::TrySubmitResult::kAccepted:
      return fut;
    case ThreadPool::TrySubmitResult::kQueueFull:
      queries_shed_.Add();
      return ReadyResponse(
          Status::Overloaded("engine: submission queue full, query shed"));
    case ThreadPool::TrySubmitResult::kShutdown:
      break;
  }
  rejected_unavailable_.Add();
  return ReadyResponse(Status::Unavailable("engine: stopped"));
}

void QueryEngine::SubmitAsync(std::vector<std::vector<float>> features,
                              size_t k, SubmitOptions submit_options,
                              std::function<void(EngineResponse)> done) {
  // The callback lives in a shared_ptr because TrySubmit constructs its
  // task object before the admission check: on a shed the task (and
  // everything it captured) is destroyed unrun, and the rejection path
  // below still needs `done` alive to deliver the kOverloaded response.
  auto shared_done =
      std::make_shared<std::function<void(EngineResponse)>>(std::move(done));
  auto immediate = [&shared_done](Status status) {
    EngineResponse r;
    r.status = std::move(status);
    (*shared_done)(std::move(r));
  };
  if (stopped_.load(std::memory_order_acquire)) {
    rejected_unavailable_.Add();
    immediate(Status::Unavailable("engine: stopped"));
    return;
  }
  const Clock::time_point deadline =
      submit_options.deadline.count() > 0
          ? Clock::now() + submit_options.deadline
          : Clock::time_point{};
  // Same admission-time snapshot pinning as Submit(): the caller gets an
  // answer from the state it observed when the query was accepted.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  obs::TimePoint enqueued = obs::Now();
  const bool compress_vo = submit_options.compress_vo;
  const bool settle = submit_options.settle_exact_topk;
  auto task = [this, snap = std::move(snap), features = std::move(features),
               k, compress_vo, settle, enqueued, deadline, shared_done] {
    (*shared_done)(
        Serve(snap, features, k, compress_vo, settle, enqueued, deadline));
  };
  std::future<void> fut;
  switch (pool_.TrySubmit(std::move(task), &fut)) {
    case ThreadPool::TrySubmitResult::kAccepted:
      return;
    case ThreadPool::TrySubmitResult::kQueueFull:
      queries_shed_.Add();
      immediate(
          Status::Overloaded("engine: submission queue full, query shed"));
      return;
    case ThreadPool::TrySubmitResult::kShutdown:
      break;
  }
  rejected_unavailable_.Add();
  immediate(Status::Unavailable("engine: stopped"));
}

std::vector<EngineResponse> QueryEngine::QueryBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    SubmitOptions submit_options) {
  std::vector<std::future<EngineResponse>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) {
    // The batch caller waits for every result anyway, so a full queue means
    // backpressure (block), not shedding — shedding is for callers that
    // need an immediate admission decision.
    futures.push_back(
        SubmitWithPolicy(q, k, submit_options, OverloadPolicy::kBlock));
  }
  std::vector<EngineResponse> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

template <typename Apply>
Result<UpdateStats> QueryEngine::TryApplyUpdate(
    const std::shared_ptr<const Snapshot>& base, Apply&& apply) {
  if (fault::InjectFault("engine.update.clone")) {
    return Result<UpdateStats>(
        Status::Corrupted("engine update: injected clone fault"));
  }
  fault::InjectLatency("engine.update.latency");

  // Deep-clone via the canonical serializer: the load path re-derives every
  // digest from raw data, so a corrupted in-memory package (or a storage
  // fault on the wire bytes — see fault::InjectByteFaults in the
  // serializer) fails here instead of being silently republished under a
  // fresh signature.
  Result<std::unique_ptr<SpPackage>> clone =
      storage::DeserializeSpPackage(storage::SerializeSpPackage(*base->package));
  if (!clone.ok()) {
    return Result<UpdateStats>(
        Status::WithCode(clone.status().code(), "engine update: clone failed: " +
                                                    clone.status().message()));
  }
  // A bit flip can survive parsing when it lands in content the load path
  // takes at face value. The clone's re-derived root must match the root
  // the served snapshot was signed under, or we would be about to sign
  // corrupted state. The root transitively covers the codebook (cluster
  // commitments), tree shapes, corpus/posting chains, weights, and filter
  // geometry — but NOT the config header, image payloads, or per-image
  // signatures, so those are compared against the base directly. Together
  // the two checks cover every serialized byte of the clone.
  if ((*clone)->RootDigest() != base->package->RootDigest()) {
    return Result<UpdateStats>(Status::Corrupted(
        "engine update: cloned package root diverges from served snapshot"));
  }
  // The corpus comparison additionally catches corruption the digests are
  // blind to only in degenerate data (a frequency on a zero-weight cluster
  // contributes nothing to any impact, so no digest sees it change).
  if ((*clone)->config != base->package->config ||
      (*clone)->corpus != base->package->corpus ||
      !(*clone)->ImagesEqual(*base->package)) {
    return Result<UpdateStats>(Status::Corrupted(
        "engine update: cloned package content diverges outside the root"));
  }

  auto next = std::make_shared<Snapshot>();
  next->params = base->params;
  Result<UpdateStats> result = apply(clone->get(), &next->params);
  if (!result.ok()) {
    return result;  // logical failure (duplicate id, ...): not retryable
  }

  if (fault::InjectFault("engine.update.sign") &&
      !next->params.root_signature.empty()) {
    next->params.root_signature[0] ^= 0x01;  // simulated signing fault
  }
  // The signature the update produced must verify over the clone's new
  // root before anyone is asked to trust it. On mismatch the swap is
  // skipped — rollback is simply not publishing.
  if (!crypto::RsaVerify(next->params.public_key, (*clone)->RootDigest(),
                         next->params.root_signature)) {
    return Result<UpdateStats>(Status::Corrupted(
        "engine update: fresh root signature failed verification"));
  }

  next->package = std::shared_ptr<const SpPackage>(std::move(*clone));
  next->version = base->version + 1;

  // Disk-backed epochs: the clone/verify/swap protocol extended to disk.
  // The new epoch file is written crash-safely, REOPENED from its mapping
  // with every section digest checked and the fresh root signature
  // RsaVerify'd over the mapped bytes, and only then published — first the
  // CURRENT pointer (a restart now serves the new epoch), then the served
  // snapshot, which is the reopened disk-backed package itself, so what we
  // serve is byte-for-byte what we persisted. Any failure leaves CURRENT
  // on the old epoch and the old snapshot serving.
  if (!options_.persist_dir.empty()) {
    Result<std::string> path = storage::PackageStore::WriteEpoch(
        options_.persist_dir, next->version, *next->package);
    if (!path.ok()) {
      return Result<UpdateStats>(Status::WithCode(
          path.status().code(),
          "engine update: epoch write failed: " + path.status().message()));
    }
    storage::OpenOptions open_opts;
    open_opts.params = &next->params;
    Result<std::unique_ptr<SpPackage>> reopened =
        storage::PackageStore::Open(*path, open_opts);
    if (!reopened.ok()) {
      return Result<UpdateStats>(Status::Corrupted(
          "engine update: persisted epoch failed verification: " +
          reopened.status().message()));
    }
    Status flip = storage::PackageStore::SetCurrentEpoch(options_.persist_dir,
                                                         next->version);
    if (!flip.ok()) {
      return Result<UpdateStats>(Status::WithCode(
          flip.code(),
          "engine update: CURRENT flip failed: " + flip.message()));
    }
    next->package = std::shared_ptr<const SpPackage>(std::move(*reopened));
    // If a rollback once quarantined this epoch number, the number has now
    // been rewritten with freshly verified bytes — the marker is stale.
    (void)std::remove(
        storage::EpochJanitor::QuarantineMarkerPath(options_.persist_dir,
                                                    next->version)
            .c_str());
  }

  // A fresh, empty memo for the new epoch: memoized proof bytes never cross
  // a snapshot swap (the old memo dies with the old snapshot's last
  // in-flight query). Built against the final published package — for
  // disk-backed epochs that is the reopened mapping, not the clone.
  next->memo = std::make_shared<const ProofMemo>(*next->package);

  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (!options_.persist_dir.empty()) {
      epoch_params_[next->version] = next->params;
      while (epoch_params_.size() > kEpochParamsRetained) {
        epoch_params_.erase(epoch_params_.begin());
      }
    }
    snapshot_ = std::move(next);
  }
  return result;
}

template <typename Apply>
Result<UpdateStats> QueryEngine::ApplyUpdate(Apply&& apply) {
  std::lock_guard<std::mutex> writer_lock(update_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    rejected_unavailable_.Add();
    return Result<UpdateStats>(Status::Unavailable("engine: stopped"));
  }
  obs::ScopedTimer update_timer(update_us_);
  std::shared_ptr<const Snapshot> base = CurrentSnapshot();

  const int max_attempts = std::max(options_.update_max_attempts, 1);
  std::chrono::milliseconds backoff = options_.update_retry_backoff;
  Result<UpdateStats> result =
      Result<UpdateStats>(Status::Error("engine update: not attempted"));
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result = TryApplyUpdate(base, apply);
    if (result.ok()) {
      updates_applied_.Add();
      return result;
    }
    // Only corruption is transient (storage/signing faults); logical
    // failures would fail identically on every attempt.
    if (result.status().code() != StatusCode::kCorrupted ||
        attempt == max_attempts) {
      break;
    }
    update_retries_.Add();
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
  }
  update_failures_.Add();
  return result;
}

Result<UpdateStats> QueryEngine::InsertImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id, bovw::BovwVector bovw,
    Bytes image_data) {
  // The captures stay intact across retry attempts: core::InsertImage takes
  // its arguments by value, so each call below copies from the captures
  // rather than consuming them.
  return ApplyUpdate([&owner_key, id, bovw = std::move(bovw),
                      image_data = std::move(image_data)](
                         SpPackage* pkg, PublicParams* params) {
    return core::InsertImage(pkg, owner_key, params, id, bovw, image_data);
  });
}

Result<UpdateStats> QueryEngine::DeleteImage(
    const crypto::RsaPrivateKey& owner_key, ImageId id) {
  return ApplyUpdate([&](SpPackage* pkg, PublicParams* params) {
    return core::DeleteImage(pkg, owner_key, params, id);
  });
}

Status QueryEngine::RollbackFromCorruptEpoch(uint64_t corrupt_epoch) {
  std::lock_guard<std::mutex> writer_lock(update_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::Unavailable("engine rollback: stopped");
  }
  if (options_.persist_dir.empty()) {
    return Status::Error("engine rollback: engine has no persist_dir");
  }
  std::shared_ptr<const Snapshot> base = CurrentSnapshot();
  if (base->version != corrupt_epoch) {
    // An update published a newer epoch while the scrubber was reporting;
    // the corruption verdict is about history, and GC will reap it.
    return Status::Error("engine rollback: stale corruption report (epoch " +
                         std::to_string(corrupt_epoch) + ", serving " +
                         std::to_string(base->version) + ")");
  }
  // Candidate prior epochs we still hold params for, newest first.
  std::vector<std::pair<uint64_t, PublicParams>> candidates;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    for (auto it = epoch_params_.rbegin(); it != epoch_params_.rend(); ++it) {
      if (it->first < corrupt_epoch) candidates.emplace_back(*it);
    }
  }
  for (auto& [epoch, params] : candidates) {
    if (storage::EpochJanitor::IsQuarantined(options_.persist_dir, epoch)) {
      continue;  // known-bad; keep walking back
    }
    const std::string path = options_.persist_dir + "/" +
                             storage::PackageStore::EpochFileName(epoch);
    storage::OpenOptions open_opts;
    open_opts.params = &params;
    Result<std::unique_ptr<SpPackage>> pkg =
        storage::PackageStore::Open(path, open_opts);
    if (!pkg.ok()) continue;  // GC'd or rotted too; keep walking back
    // Re-publish the last-good content as a NEW epoch through the same
    // write → reopen-verify → flip → swap discipline as an update, so
    // versions stay monotonic (cache keys and client-visible versions
    // never repeat with different bytes). Identical content has an
    // identical root, so the prior epoch's signature carries over.
    auto next = std::make_shared<Snapshot>();
    next->params = params;
    next->version = corrupt_epoch + 1;
    Result<std::string> wrote = storage::PackageStore::WriteEpoch(
        options_.persist_dir, next->version, **pkg);
    if (!wrote.ok()) {
      return Status::WithCode(wrote.status().code(),
                              "engine rollback: epoch write failed: " +
                                  wrote.status().message());
    }
    storage::OpenOptions reopen_opts;
    reopen_opts.params = &next->params;
    Result<std::unique_ptr<SpPackage>> reopened =
        storage::PackageStore::Open(*wrote, reopen_opts);
    if (!reopened.ok()) {
      return Status::Corrupted(
          "engine rollback: republished epoch failed verification: " +
          reopened.status().message());
    }
    Status flip = storage::PackageStore::SetCurrentEpoch(options_.persist_dir,
                                                         next->version);
    if (!flip.ok()) {
      return Status::WithCode(
          flip.code(), "engine rollback: CURRENT flip failed: " +
                           flip.message());
    }
    (void)std::remove(
        storage::EpochJanitor::QuarantineMarkerPath(options_.persist_dir,
                                                    next->version)
            .c_str());
    next->package = std::shared_ptr<const SpPackage>(std::move(*reopened));
    next->memo = std::make_shared<const ProofMemo>(*next->package);
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      epoch_params_[next->version] = next->params;
      while (epoch_params_.size() > kEpochParamsRetained) {
        epoch_params_.erase(epoch_params_.begin());
      }
      snapshot_ = std::move(next);
    }
    epoch_rollbacks_.Add();
    return Status::Ok();
  }
  return Status::Error(
      "engine rollback: no verifiable prior epoch on disk for epoch " +
      std::to_string(corrupt_epoch));
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries_served = queries_served_.Value();
  s.queries_shed = queries_shed_.Value();
  s.deadline_exceeded = deadline_exceeded_.Value();
  s.rejected_unavailable = rejected_unavailable_.Value();
  s.updates_applied = updates_applied_.Value();
  s.update_failures = update_failures_.Value();
  s.update_retries = update_retries_.Value();
  s.in_flight = static_cast<uint64_t>(std::max<int64_t>(in_flight_.Value(), 0));
  s.queue_depth = pool_.QueueDepth();
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  s.snapshot_version = snap->version;
  s.stopped = stopped();
  if (cache_) {
    QueryCacheStats cs = cache_->Stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
    s.cache_entries = cs.entries;
  }
  if (snap->memo) {
    s.memo_hits = snap->memo->TotalHits();
    s.memo_builds = snap->memo->TotalBuilds();
  }
  s.vo_bytes_compressed = vo_bytes_compressed_.Value();
  s.vo_bytes_raw = vo_bytes_raw_.Value();
  if (janitor_) {
    storage::JanitorStats js = janitor_->stats();
    s.epochs_gced = js.epochs_deleted;
    s.scrub_passes = js.scrub_passes;
    s.scrub_corruptions = js.scrub_corruptions;
    s.epochs_quarantined = js.epochs_quarantined;
  }
  s.epoch_rollbacks = epoch_rollbacks_.Value();
  obs::HistogramSnapshot lat = latency_us_.Snapshot();
  if (lat.count > 0) {
    s.p50_latency_ms = lat.p50 / 1000.0;
    s.p99_latency_ms = lat.p99 / 1000.0;
  }
  return s;
}

std::string QueryEngine::MetricsSnapshot() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("metrics_enabled").Bool(obs::kMetricsEnabled);
  w.Key("engine").BeginObject();
  w.Key("num_workers").U64(num_workers_);
  w.Key("intra_query_threads").U64(options_.intra_query_threads);
  w.Key("snapshot_version").U64(CurrentSnapshot()->version);
  w.Key("queue_depth").U64(pool_.QueueDepth());
  w.Key("in_flight").I64(in_flight_.Value());
  w.Key("stopped").Bool(stopped());
  w.Key("queries_served").U64(queries_served_.Value());
  w.Key("shed").U64(queries_shed_.Value());
  w.Key("deadline_exceeded").U64(deadline_exceeded_.Value());
  w.Key("rejected_unavailable").U64(rejected_unavailable_.Value());
  w.Key("updates_applied").U64(updates_applied_.Value());
  w.Key("update_failures").U64(update_failures_.Value());
  w.Key("update_retries").U64(update_retries_.Value());
  {
    QueryCacheStats cs = cache_ ? cache_->Stats() : QueryCacheStats{};
    w.Key("cache").BeginObject();
    w.Key("enabled").Bool(cache_ != nullptr);
    w.Key("capacity").U64(cache_ ? cache_->capacity() : 0);
    w.Key("hits").U64(cs.hits);
    w.Key("misses").U64(cs.misses);
    w.Key("evictions").U64(cs.evictions);
    w.Key("entries").U64(cs.entries);
    w.EndObject();
    std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
    uint64_t mh = snap->memo ? snap->memo->TotalHits() : 0;
    uint64_t mb = snap->memo ? snap->memo->TotalBuilds() : 0;
    w.Key("proof_memo").BeginObject();
    w.Key("hits").U64(mh);
    w.Key("builds").U64(mb);
    w.Key("share_rate").Double(mh + mb > 0
                                   ? static_cast<double>(mh) / (mh + mb)
                                   : 0.0);
    w.EndObject();
    w.Key("vo_bytes_compressed").U64(vo_bytes_compressed_.Value());
    w.Key("vo_bytes_raw").U64(vo_bytes_raw_.Value());
    storage::JanitorStats js =
        janitor_ ? janitor_->stats() : storage::JanitorStats{};
    w.Key("janitor").BeginObject();
    w.Key("enabled").Bool(janitor_ != nullptr);
    w.Key("gc_passes").U64(js.gc_passes);
    w.Key("epochs_gced").U64(js.epochs_deleted);
    w.Key("scrub_passes").U64(js.scrub_passes);
    w.Key("scrub_bytes").U64(js.scrub_bytes);
    w.Key("scrub_corruptions").U64(js.scrub_corruptions);
    w.Key("epochs_quarantined").U64(js.epochs_quarantined);
    w.Key("rollbacks_requested").U64(js.rollbacks_requested);
    w.Key("rollbacks_failed").U64(js.rollbacks_failed);
    w.Key("epoch_rollbacks").U64(epoch_rollbacks_.Value());
    w.EndObject();
  }
  w.Key("per_worker_queries").BeginArray();
  for (unsigned i = 0; i < num_workers_; ++i) {
    w.U64(per_worker_queries_[i].Value());
  }
  w.EndArray();
  w.Key("latency_us");
  obs::AppendHistogramJson(w, latency_us_);
  w.Key("queue_wait_us");
  obs::AppendHistogramJson(w, queue_wait_us_);
  w.Key("update_us");
  obs::AppendHistogramJson(w, update_us_);
  w.EndObject();
  w.Key("process");
  obs::Registry::Global().AppendJson(w);
  w.EndObject();
  return w.Take();
}

}  // namespace imageproof::core
