// Service provider: authenticated query processing (Algorithm 5).
//
// For a query Q = {q_1..q_nq} and parameter k the SP
//   1. runs the AKM forest search to find each q_i's approximate nearest
//      cluster; its distance becomes the threshold t_i,
//   2. runs MRKDSearch over every MRKD-tree (shared or per-query traversals
//      per config), collecting the per-query candidate sets and VO_C,i,
//   3. assigns each q_i to the (distance, id)-minimal candidate — which,
//      because the range search is exact, is the true nearest cluster —
//      and builds the shared candidate-reveal section (full vectors, or
//      partial dimensions under Optimization A),
//   4. encodes B_Q and runs InvSearch (or FgSearch) for the top-k and
//      VO_inv,
//   5. attaches the result images and their Eq. (15) signatures.

#ifndef IMAGEPROOF_CORE_SERVER_H_
#define IMAGEPROOF_CORE_SERVER_H_

#include <chrono>
#include <vector>

#include "core/owner.h"
#include "invindex/search.h"
#include "mrkd/search.h"

namespace imageproof::core {

struct QueryStats {
  double sp_bovw_ms = 0;      // BoVW step (forest + MRKD search + reveals)
  double sp_inv_ms = 0;       // inverted-index step
  size_t bovw_vo_bytes = 0;   // reveal section + tree VOs + thresholds
  size_t inv_vo_bytes = 0;
  mrkd::MrkdSearchStats mrkd;  // aggregated over trees
  invindex::InvSearchStats inv;
};

struct QueryResponse {
  std::vector<bovw::ScoredImage> topk;
  QueryVO vo;
  QueryStats stats;
};

// Intra-query parallelism knobs. The hot loops of Query — the per-feature
// AKM threshold search (Step 1), the per-tree MRKD searches (Step 2), and
// the per-feature exact-nearest scan (Step 3) — are index-disjoint, so they
// route through ParallelFor and produce bit-identical output at any thread
// count. `threads == 1` (the default) is the plain serial loop.
struct QueryParallelism {
  unsigned threads = 1;
};

// Reusable per-query search scratch for the allocation-heavy stages: the
// AKM best-bin-first queues (one lane per intra-query worker), the per-tree
// MRKD traversal frames, and the inverted-index score accumulator + top-k
// heap. One scratch per concurrent Query caller (the engine keeps one per
// pool worker); buffers only grow, so after the first query on a scratch
// the search machinery of these stages performs zero heap allocation —
// remaining allocations are proportional to the response payload (VO
// bytes, candidate lists, result vectors), which is owned by the caller.
// Output is byte-identical with or without a scratch.
struct QueryScratch {
  std::vector<kern::SearchScratch> akm_lanes;        // stage 1, per worker
  std::vector<mrkd::MrkdSearchScratch> tree_lanes;   // stage 2, per tree
  kern::SearchScratch inv;                           // stage 5 (serial)

  void EnsureLanes(size_t workers, size_t trees) {
    if (akm_lanes.size() < workers) akm_lanes.resize(workers);
    if (tree_lanes.size() < trees) tree_lanes.resize(trees);
  }
};

// Cooperative per-query cancellation. Query() checks Expired() between its
// pipeline stages (never inside a parallel loop), so a deadlined query stops
// within one stage granule and returns kDeadlineExceeded instead of burning
// the rest of its CPU budget. A default-constructed control never expires.
// The checks read the clock but never alter any produced byte: a query that
// finishes in time is bit-identical with or without a deadline.
class QueryControl {
 public:
  using Clock = std::chrono::steady_clock;

  QueryControl() = default;
  explicit QueryControl(Clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  bool Expired() const {
    return has_deadline_ && Clock::now() > deadline_;
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

// Cross-cutting serving knobs threaded down from the engine. Both default
// to off/null, which reproduces the historical serving path byte for byte.
struct ServeOptions {
  // Compress the inverted-index / frequency-group VO section with
  // group-varint coding (InvSearchParams::compress_vo). Changes VO bytes —
  // only enabled for clients that negotiated it (net/wire.h query flag).
  bool compress_vo = false;
  // Keep popping after the termination conditions hold until every claimed
  // top-k score is provably exact (InvSearchParams::settle_exact_topk).
  // Changes VO bytes — required by sharded serving, where the composite
  // merge is only sound over exact per-shard scores.
  bool settle_exact_topk = false;
  // Per-snapshot proof memo (core/proof_memo.h) for sharing derived MRKD
  // proof bytes across concurrent queries. Never changes VO bytes.
  const class ProofMemo* memo = nullptr;
};

class ServiceProvider {
 public:
  // Borrows the package; the owner output must outlive the SP.
  //
  // Thread safety: Query is const over immutable package state and uses
  // only per-call locals, so one ServiceProvider may serve any number of
  // concurrent callers — this is what core/query_engine.h builds on. The
  // package must not be mutated (core/update.h) while queries are in
  // flight; the engine guarantees that with copy-on-write snapshots.
  explicit ServiceProvider(const SpPackage* package) : pkg_(package) {}

  QueryResponse Query(const std::vector<std::vector<float>>& features,
                      size_t k, const QueryParallelism& par = {}) const;

  // Deadline-aware variant: identical output when the control never
  // expires; returns kDeadlineExceeded (and leaves *out unspecified) when
  // the deadline passes between stages. The engine's serving path uses
  // this so in-flight queries honor their submission deadline. `scratch`
  // (optional, single caller per instance) keeps the search stages
  // allocation-free once warm.
  Status Query(const std::vector<std::vector<float>>& features, size_t k,
               const QueryParallelism& par, const QueryControl& control,
               QueryResponse* out, QueryScratch* scratch = nullptr) const;

  // Full-control variant: adds the engine's serving knobs (VO compression,
  // per-snapshot proof memo). The overloads above delegate here with
  // default ServeOptions.
  Status Query(const std::vector<std::vector<float>>& features, size_t k,
               const QueryParallelism& par, const QueryControl& control,
               const ServeOptions& serve, QueryResponse* out,
               QueryScratch* scratch = nullptr) const;

  const SpPackage& package() const { return *pkg_; }

 private:
  const SpPackage* pkg_;
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_SERVER_H_
