// Per-snapshot aggregate of the MRKD proof memos (mrkd/memo.h): one
// coordinate-block Merkle tree memo shared by every reveal, and one leaf
// token memo per MRKD-tree. Owned by core::Snapshot — created empty when a
// snapshot is published (engine construction or TryApplyUpdate's atomic
// swap) and dropped with it, so memoized bytes can never outlive or
// predate the package state they were derived from. See DESIGN.md §13.

#ifndef IMAGEPROOF_CORE_PROOF_MEMO_H_
#define IMAGEPROOF_CORE_PROOF_MEMO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mrkd/memo.h"

namespace imageproof::core {

struct SpPackage;

class ProofMemo {
 public:
  // Sizes the slot arrays from the package's frozen geometry (cluster
  // count, per-tree node counts). No proof bytes are derived up front.
  explicit ProofMemo(const SpPackage& package);

  // Null when the package commits full vectors (kFullVector mode has no
  // per-cluster Merkle trees to share).
  const mrkd::DimTreeMemo* dim_trees() const { return dim_trees_.get(); }
  const mrkd::LeafProofMemo* tree_leaves(size_t tree) const {
    return tree < tree_leaves_.size() ? tree_leaves_[tree].get() : nullptr;
  }

  // Aggregated across all memos: how often a query found proof bytes
  // already derived vs. derived them here.
  uint64_t TotalHits() const;
  uint64_t TotalBuilds() const;

 private:
  std::unique_ptr<mrkd::DimTreeMemo> dim_trees_;
  std::vector<std::unique_ptr<mrkd::LeafProofMemo>> tree_leaves_;
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_PROOF_MEMO_H_
