#include "core/proof_memo.h"

#include "core/owner.h"

namespace imageproof::core {

ProofMemo::ProofMemo(const SpPackage& package) {
  if (package.config.reveal_mode == mrkd::RevealMode::kDimMerkle) {
    dim_trees_ = std::make_unique<mrkd::DimTreeMemo>(package.codebook.size());
  }
  tree_leaves_.reserve(package.mrkd_trees.size());
  for (const auto& tree : package.mrkd_trees) {
    tree_leaves_.push_back(
        std::make_unique<mrkd::LeafProofMemo>(tree->tree().nodes().size()));
  }
}

uint64_t ProofMemo::TotalHits() const {
  uint64_t n = dim_trees_ ? dim_trees_->hits() : 0;
  for (const auto& m : tree_leaves_) n += m->hits();
  return n;
}

uint64_t ProofMemo::TotalBuilds() const {
  uint64_t n = dim_trees_ ? dim_trees_->builds() : 0;
  for (const auto& m : tree_leaves_) n += m->builds();
  return n;
}

}  // namespace imageproof::core
