#include "core/client.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/stopwatch.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"
#include "freqgroup/fg_verify.h"
#include "invindex/verify.h"
#include "mrkd/verify.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace imageproof::core {

namespace {

crypto::Digest ImageDigest(ImageId id, const Bytes& data) {
  return crypto::DigestBuilder()
      .AddU64(id)
      .AddDigest(crypto::Sha3(data))
      .Finalize();
}

// Client-side verification metrics: one timer per ADS check (Section V-C
// step), plus the VO size broken down by component — the paper's VO-size
// figures are exactly these series.
struct ClientMetrics {
  obs::Counter& verifies;
  obs::Counter& verify_failures;
  obs::Histogram& verify_us;
  obs::Histogram& reveal_verify_us;
  obs::Histogram& mrkd_replay_us;
  obs::Histogram& bovw_check_us;
  obs::Histogram& inv_verify_us;
  obs::Histogram& sig_verify_us;
  obs::Histogram& vo_reveal_bytes;
  obs::Histogram& vo_tree_bytes;
  obs::Histogram& vo_inv_bytes;
  obs::Histogram& vo_result_bytes;

  static ClientMetrics& Get() {
    static ClientMetrics m = [] {
      obs::Registry& r = obs::Registry::Global();
      return ClientMetrics{r.GetCounter("client.verifies"),
                           r.GetCounter("client.verify_failures"),
                           r.GetHistogram("client.verify_us"),
                           r.GetHistogram("client.stage.reveal_verify_us"),
                           r.GetHistogram("client.stage.mrkd_replay_us"),
                           r.GetHistogram("client.stage.bovw_check_us"),
                           r.GetHistogram("client.stage.inv_verify_us"),
                           r.GetHistogram("client.stage.sig_verify_us"),
                           r.GetHistogram("client.vo.reveal_bytes"),
                           r.GetHistogram("client.vo.tree_bytes"),
                           r.GetHistogram("client.vo.inv_bytes"),
                           r.GetHistogram("client.vo.result_bytes")};
    }();
    return m;
  }
};

}  // namespace

Result<VerifiedResults> Client::Verify(
    const std::vector<std::vector<float>>& features, size_t k,
    const QueryVO& vo) const {
  ClientMetrics& met = ClientMetrics::Get();
  met.verifies.Add();
  met.vo_reveal_bytes.Record(vo.reveal_section.size());
  uint64_t tree_bytes = 0;
  for (const Bytes& t : vo.tree_vos) tree_bytes += t.size();
  met.vo_tree_bytes.Record(tree_bytes);
  met.vo_inv_bytes.Record(vo.inv_vo.size());
  uint64_t result_bytes = 0;
  for (const ResultImage& ri : vo.results) {
    result_bytes += ri.data.size() + ri.signature.size();
  }
  met.vo_result_bytes.Record(result_bytes);

  obs::ScopedTimer total_timer(met.verify_us);
  Result<VerifiedResults> out = VerifyImpl(features, k, vo);
  if (!out.ok()) met.verify_failures.Add();
  return out;
}

Result<VerifiedResults> Client::VerifyImpl(
    const std::vector<std::vector<float>>& features, size_t k,
    const QueryVO& vo) const {
  VerifiedResults out;
  const Config& config = params_.config;
  const size_t dims = params_.dims;
  const size_t nq = features.size();
  Stopwatch bovw_timer;

  for (const auto& f : features) {
    if (f.size() != dims) {
      return Result<VerifiedResults>::Error("client: feature dims mismatch");
    }
  }
  if (vo.thresholds_sq.size() != nq) {
    return Result<VerifiedResults>::Error("client: threshold count mismatch");
  }
  for (double t : vo.thresholds_sq) {
    if (!(t >= 0) || !std::isfinite(t)) {
      return Result<VerifiedResults>::Error("client: invalid threshold");
    }
  }

  // ---- Step 1: candidate reveals -> commitments + distance evidence ----
  ClientMetrics& met = ClientMetrics::Get();
  obs::ScopedTimer reveal_timer(met.reveal_verify_us);
  std::vector<mrkd::ClusterReveal> reveals;
  {
    ByteReader r(vo.reveal_section);
    Status s = mrkd::DeserializeReveals(r, dims, &reveals);
    if (!s.ok()) return s;
    if (!r.AtEnd()) {
      return Result<VerifiedResults>::Error("client: trailing reveal bytes");
    }
  }
  std::map<mrkd::ClusterId, crypto::Digest> commitments;
  std::map<mrkd::ClusterId, const mrkd::ClusterReveal*> reveal_of;
  for (const mrkd::ClusterReveal& rev : reveals) {
    crypto::Digest commitment;
    Status s = mrkd::VerifyReveal(config.reveal_mode, dims, rev, &commitment);
    if (!s.ok()) return s;
    if (!commitments.emplace(rev.id, commitment).second) {
      return Result<VerifiedResults>::Error("client: duplicate cluster reveal");
    }
    reveal_of[rev.id] = &rev;
  }

  reveal_timer.Stop();

  // ---- Step 2: MRKD replay + root signature ----
  obs::ScopedTimer replay_timer(met.mrkd_replay_us);
  std::vector<const float*> queries(nq);
  for (size_t i = 0; i < nq; ++i) queries[i] = features[i].data();

  if (vo.tree_vos.size() != static_cast<size_t>(config.forest.num_trees)) {
    return Result<VerifiedResults>::Error("client: wrong number of tree VOs");
  }
  std::vector<std::set<mrkd::ClusterId>> candidates(nq);
  std::map<mrkd::ClusterId, crypto::Digest> list_digests;
  crypto::DigestBuilder roots;
  for (const Bytes& tree_vo : vo.tree_vos) {
    ByteReader r(tree_vo);
    mrkd::TreeVerifyOutput tv;
    Status s = mrkd::VerifyTreeVo(r, dims, commitments, queries,
                                  vo.thresholds_sq, config.share_nodes, &tv);
    if (!s.ok()) return s;
    if (!r.AtEnd()) {
      return Result<VerifiedResults>::Error("client: trailing tree VO bytes");
    }
    roots.AddDigest(tv.root);
    for (size_t i = 0; i < nq; ++i) {
      candidates[i].insert(tv.candidates[i].begin(), tv.candidates[i].end());
    }
    for (const auto& [c, d] : tv.list_digests) {
      auto [it, inserted] = list_digests.emplace(c, d);
      if (!inserted && it->second != d) {
        return Result<VerifiedResults>::Error(
            "client: conflicting list digests across trees");
      }
    }
  }
  crypto::RsaVerifier verifier(params_.public_key);
  out.root_digest = roots.Finalize();
  if (!verifier.Verify(out.root_digest, params_.root_signature)) {
    return Result<VerifiedResults>::Error(
        "client: ADS root signature verification failed");
  }

  replay_timer.Stop();

  // ---- Step 3: BoVW encoding ----
  obs::ScopedTimer bovw_check_timer(met.bovw_check_us);
  std::vector<bovw::ClusterId> assignment(nq);
  for (size_t i = 0; i < nq; ++i) {
    if (candidates[i].empty()) {
      return Result<VerifiedResults>::Error(
          "client: no candidate cluster for a feature vector");
    }
    // Nearest among fully revealed candidates.
    bool have_full = false;
    double best = 0;
    mrkd::ClusterId best_c = 0;
    for (mrkd::ClusterId c : candidates[i]) {
      auto it = reveal_of.find(c);
      if (it == reveal_of.end()) {
        return Result<VerifiedResults>::Error(
            "client: candidate missing from reveal section");
      }
      if (!it->second->full) continue;
      double d = ann::SquaredL2(queries[i], it->second->coords.data(), dims);
      if (!have_full || d < best || (d == best && c < best_c)) {
        best = d;
        best_c = c;
        have_full = true;
      }
    }
    if (!have_full) {
      return Result<VerifiedResults>::Error(
          "client: no fully revealed candidate for a feature vector");
    }
    if (best > vo.thresholds_sq[i]) {
      return Result<VerifiedResults>::Error(
          "client: assigned cluster outside the search threshold");
    }
    // Every partially revealed candidate must be provably farther.
    for (mrkd::ClusterId c : candidates[i]) {
      const mrkd::ClusterReveal* rev = reveal_of[c];
      if (rev->full) continue;
      double lb = mrkd::PartialDistanceSq(queries[i], rev->dim_indices,
                                          rev->dim_values);
      if (lb <= best) {
        return Result<VerifiedResults>::Error(
            "client: partial candidate not provably farther than assignment");
      }
    }
    assignment[i] = best_c;
  }
  bovw::BovwVector query_bovw = bovw::CountAssignments(assignment);
  bovw_check_timer.Stop();
  out.client_bovw_ms = bovw_timer.ElapsedMillis();

  // ---- Step 4: inverted-index VO ----
  Stopwatch inv_timer;
  obs::ScopedTimer inv_verify_timer(met.inv_verify_us);
  std::vector<ImageId> claimed;
  claimed.reserve(vo.results.size());
  for (const ResultImage& ri : vo.results) claimed.push_back(ri.id);

  invindex::InvVerifyResult inv;
  Status s = config.freq_grouped
                 ? freqgroup::FgVerifyVo(vo.inv_vo, query_bovw, claimed, k,
                                         config.with_filters, &inv)
                 : invindex::VerifyInvVo(vo.inv_vo, query_bovw, claimed, k,
                                         config.with_filters, &inv);
  if (!s.ok()) return s;

  // Cross-check the reconstructed list digests against the MRKD-anchored
  // ones. Every support cluster is an assigned cluster, hence a candidate,
  // hence present in some revealed leaf.
  for (const auto& [c, digest] : inv.list_digests) {
    auto it = list_digests.find(c);
    if (it == list_digests.end()) {
      return Result<VerifiedResults>::Error(
          "client: support cluster not authenticated by any MRKD leaf");
    }
    if (it->second != digest) {
      return Result<VerifiedResults>::Error(
          "client: inverted-list digest mismatch (tampered posting data)");
    }
  }

  inv_verify_timer.Stop();

  // ---- Step 5: image payload signatures ----
  obs::ScopedTimer sig_timer(met.sig_verify_us);
  for (const ResultImage& ri : vo.results) {
    if (!config.sign_images && ri.signature.empty()) continue;  // bench mode
    if (!verifier.Verify(ImageDigest(ri.id, ri.data), ri.signature)) {
      return Result<VerifiedResults>::Error(
          "client: image signature verification failed");
    }
  }

  sig_timer.Stop();

  out.topk = inv.topk;
  out.topk_scores_exact = inv.topk_exact;
  for (const auto& si : out.topk) {
    for (const ResultImage& ri : vo.results) {
      if (ri.id == si.id) {
        out.images.push_back(ri.data);
        break;
      }
    }
  }
  out.client_inv_ms = inv_timer.ElapsedMillis();
  return out;
}

}  // namespace imageproof::core
