// Scheme configuration and the preset variants evaluated in the paper.

#ifndef IMAGEPROOF_CORE_CONFIG_H_
#define IMAGEPROOF_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "ann/rkd_forest.h"
#include "mrkd/commit.h"

namespace imageproof::core {

// Everything that defines one deployed authentication scheme. The owner,
// SP, and client must agree on a Config (it is part of the public
// parameters): it determines the ADS digests and the VO layout.
struct Config {
  // AKM / MRKD forest (paper defaults: 8 trees, 2 clusters per leaf, stop
  // after 32 leaf checks).
  ann::ForestParams forest;

  // BoVW step.
  bool share_nodes = true;  // false = Baseline (per-query traversals)
  mrkd::RevealMode reveal_mode = mrkd::RevealMode::kFullVector;

  // Inverted-index step.
  bool with_filters = true;      // false = Baseline loose bounds
  bool freq_grouped = false;     // Optimization B index layout
  uint32_t fingerprint_bits = 8;
  uint64_t filter_seed = 0xF117E2;
  size_t check_batch = 16;

  // Signature key size for the owner (tests shrink this for speed).
  int rsa_bits = 1024;

  // Benchmarks may disable per-image signing: ADS construction would
  // otherwise be dominated by one RSA signature per image, a fixed,
  // embarrassingly parallel cost orthogonal to what the figures measure.
  // The client then skips the Eq. (15) check for results shipped with an
  // empty signature. Production deployments keep this true.
  bool sign_images = true;

  // ----- The paper's four evaluated schemes -----

  // MRKDSearch without node sharing + [15]-style loose-bound search.
  static Config Baseline() {
    Config c;
    c.share_nodes = false;
    c.with_filters = false;
    return c;
  }

  // The ImageProof scheme of Section V.
  static Config ImageProof() { return Config{}; }

  // ImageProof + Optimization A (partial-dimension candidates).
  static Config OptimizedBovw() {
    Config c;
    c.reveal_mode = mrkd::RevealMode::kDimMerkle;
    return c;
  }

  // ImageProof + both optimizations (A and the frequency-grouped index B).
  static Config OptimizedBoth() {
    Config c;
    c.reveal_mode = mrkd::RevealMode::kDimMerkle;
    c.freq_grouped = true;
    return c;
  }

  // Member-wise equality: the engine's update path compares a reloaded
  // clone's config against the served snapshot's, because config bytes are
  // the one committed region the signed root digest does not cover.
  bool operator==(const Config&) const = default;

  std::string Name() const {
    if (!share_nodes && !with_filters) return "Baseline";
    if (reveal_mode == mrkd::RevealMode::kDimMerkle && freq_grouped) {
      return "Optimized(Both)";
    }
    if (reveal_mode == mrkd::RevealMode::kDimMerkle) return "Optimized(BoVW)";
    if (freq_grouped) return "Optimized(Inv)";
    return "ImageProof";
  }
};

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_CONFIG_H_
