// Incremental deployment updates (an extension beyond the paper's static
// ADSs, enabled by its own building blocks: cuckoo filters support
// deletion, posting chains re-derive locally, and the MRKD-tree refreshes
// along leaf-to-root paths).
//
// Inserting or deleting one image touches only the lists of its visual
// words: each affected list is re-sorted/re-chained and its filter rebuilt
// under the index-wide geometry; the changed list digests propagate up the
// MRKD-trees in O(n_t log n_C) hashes; finally the owner re-signs the new
// root digest and republishes the signature.
//
// Cluster weights w_c stay frozen at build time — the standard IR practice
// between periodic full rebuilds. Frozen weights are merely the owner's
// chosen (and committed) scoring constants, so soundness and completeness
// of every query against the *current* signed state are unaffected.

#ifndef IMAGEPROOF_CORE_UPDATE_H_
#define IMAGEPROOF_CORE_UPDATE_H_

#include "core/owner.h"

namespace imageproof::core {

struct UpdateStats {
  size_t lists_updated = 0;
  size_t mrkd_nodes_rehashed = 0;
  // SHA3 message digests computed by this update (crypto::HashInvocations()
  // delta) — the benchmark's evidence that the incremental path does
  // prefix/path-local work, not a full ADS rebuild.
  uint64_t hash_invocations = 0;
};

// Adds a new image to a live deployment. Fails (without changes committed
// to the signature) if the id already exists or a posting list outgrows the
// shared cuckoo-filter geometry, in which case a full rebuild is needed.
Result<UpdateStats> InsertImage(SpPackage* package,
                                const crypto::RsaPrivateKey& owner_key,
                                PublicParams* public_params, ImageId id,
                                bovw::BovwVector bovw, Bytes image_data);

// Removes an image from a live deployment.
Result<UpdateStats> DeleteImage(SpPackage* package,
                                const crypto::RsaPrivateKey& owner_key,
                                PublicParams* public_params, ImageId id);

}  // namespace imageproof::core

#endif  // IMAGEPROOF_CORE_UPDATE_H_
