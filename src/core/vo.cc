#include "core/vo.h"

namespace imageproof::core {

size_t QueryVO::TotalBytes() const {
  size_t n = ProofBytes();
  for (const ResultImage& r : results) n += r.data.size();
  return n;
}

size_t QueryVO::ProofBytes() const {
  size_t n = reveal_section.size() + inv_vo.size() +
             thresholds_sq.size() * sizeof(double);
  for (const Bytes& t : tree_vos) n += t.size();
  for (const ResultImage& r : results) n += r.signature.size();
  return n;
}

Bytes QueryVO::Serialize() const {
  ByteWriter w;
  w.PutVarint(thresholds_sq.size());
  for (double t : thresholds_sq) w.PutF64(t);
  w.PutBlob(reveal_section);
  w.PutVarint(tree_vos.size());
  for (const Bytes& t : tree_vos) w.PutBlob(t);
  w.PutBlob(inv_vo);
  w.PutVarint(results.size());
  for (const ResultImage& r : results) {
    w.PutVarint(r.id);
    w.PutBlob(r.data);
    w.PutBlob(r.signature);
  }
  return w.Take();
}

// Every count read below is capped against the bytes actually remaining
// (each element has a known minimum wire size) BEFORE the resize, so an
// adversarial length prefix can never drive an allocation larger than the
// input itself — a truncated, spliced, or bit-flipped VO costs at most one
// linear parse and yields kCorrupted.
Status QueryVO::Deserialize(const Bytes& data, QueryVO* out) {
  ByteReader r(data);
  uint64_t n;
  Status s = r.GetVarint(&n);
  if (!s.ok()) return s;
  if (n > r.remaining() / 8) {
    return Status::Corrupted("vo: threshold count exceeds input size");
  }
  out->thresholds_sq.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!(s = r.GetF64(&out->thresholds_sq[i])).ok()) return s;
  }
  if (!(s = r.GetBlob(&out->reveal_section)).ok()) return s;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > 256) return Status::Corrupted("vo: absurd tree count");
  if (n > r.remaining()) {  // each tree VO is at least a 1-byte length
    return Status::Corrupted("vo: tree count exceeds input size");
  }
  out->tree_vos.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!(s = r.GetBlob(&out->tree_vos[i])).ok()) return s;
  }
  if (!(s = r.GetBlob(&out->inv_vo)).ok()) return s;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / 3) {  // id + two length prefixes minimum
    return Status::Corrupted("vo: result count exceeds input size");
  }
  out->results.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    out->results[i].id = id;
    if (!(s = r.GetBlob(&out->results[i].data)).ok()) return s;
    if (!(s = r.GetBlob(&out->results[i].signature)).ok()) return s;
  }
  if (!r.AtEnd()) return Status::Corrupted("vo: trailing bytes");
  return Status::Ok();
}

}  // namespace imageproof::core
