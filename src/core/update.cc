#include "core/update.h"

#include <algorithm>

#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::core {

namespace {

crypto::Digest ImageDigest(ImageId id, const Bytes& data) {
  return crypto::DigestBuilder()
      .AddU64(id)
      .AddDigest(crypto::Sha3(data))
      .Finalize();
}

// Propagates the changed list digests of `clusters` through every MRKD-tree
// and re-signs the new root.
size_t RefreshAndResign(SpPackage* package,
                        const crypto::RsaPrivateKey& owner_key,
                        PublicParams* public_params,
                        const std::vector<bovw::ClusterId>& clusters) {
  size_t rehashed = 0;
  for (auto& tree : package->mrkd_trees) {
    for (bovw::ClusterId c : clusters) {
      rehashed += tree->RefreshListDigest(c);
    }
  }
  public_params->root_signature =
      crypto::RsaSign(owner_key, package->RootDigest());
  return rehashed;
}

}  // namespace

Result<UpdateStats> InsertImage(SpPackage* package,
                                const crypto::RsaPrivateKey& owner_key,
                                PublicParams* public_params, ImageId id,
                                bovw::BovwVector bovw, Bytes image_data) {
  if (package->disk_backed()) {
    // Disk-backed packages are immutable views of a mapped file; the engine
    // clones them into memory (via the serializer round-trip) before
    // applying updates, so a direct mutation here is a caller bug.
    return Result<UpdateStats>::Error(
        "update: cannot mutate a disk-backed package in place");
  }
  if (package->image_data.contains(id)) {
    return Result<UpdateStats>::Error("update: image id already exists");
  }
  if (bovw.empty()) {
    return Result<UpdateStats>::Error("update: empty BoVW vector");
  }
  const uint64_t hashes_before = crypto::HashInvocations();
  UpdateStats stats;
  double norm = bovw.L2Norm();
  std::vector<bovw::ClusterId> touched;
  for (const auto& [c, f] : bovw.entries) {
    Status s = Status::Ok();
    if (package->config.freq_grouped) {
      if (c >= package->fg_index->num_clusters()) {
        s = Status::Error("update: cluster out of range");
      } else {
        s = package->fg_index->ApplyInsert(c, id, f, norm);
      }
    } else {
      if (c >= package->inv_index->num_clusters()) {
        s = Status::Error("update: cluster out of range");
      } else {
        double weight = package->inv_index->list(c).weight;
        s = package->inv_index->ApplyInsert(
            c, id, bovw::ImpactValue(weight, f, norm));
      }
    }
    if (!s.ok()) {
      // Roll back the lists already updated so the package still matches
      // the published signature.
      for (bovw::ClusterId rc : touched) {
        if (package->config.freq_grouped) {
          (void)package->fg_index->ApplyRemove(rc, id);
        } else {
          (void)package->inv_index->ApplyRemove(rc, id);
        }
        package->list_digests[rc] =
            package->config.freq_grouped
                ? package->fg_index->list(rc).digest
                : package->inv_index->list(rc).digest;
      }
      if (!touched.empty()) {
        RefreshAndResign(package, owner_key, public_params, touched);
      }
      return s;
    }
    package->list_digests[c] = package->config.freq_grouped
                                   ? package->fg_index->list(c).digest
                                   : package->inv_index->list(c).digest;
    touched.push_back(c);
    ++stats.lists_updated;
  }

  package->corpus.emplace_back(id, std::move(bovw));
  if (package->config.sign_images) {
    package->image_signatures[id] =
        crypto::RsaSign(owner_key, ImageDigest(id, image_data));
  }
  package->image_data[id] = std::move(image_data);

  stats.mrkd_nodes_rehashed =
      RefreshAndResign(package, owner_key, public_params, touched);
  stats.hash_invocations = crypto::HashInvocations() - hashes_before;
  return stats;
}

Result<UpdateStats> DeleteImage(SpPackage* package,
                                const crypto::RsaPrivateKey& owner_key,
                                PublicParams* public_params, ImageId id) {
  if (package->disk_backed()) {
    return Result<UpdateStats>::Error(
        "update: cannot mutate a disk-backed package in place");
  }
  auto corpus_it = std::find_if(
      package->corpus.begin(), package->corpus.end(),
      [id](const auto& entry) { return entry.first == id; });
  if (corpus_it == package->corpus.end()) {
    return Result<UpdateStats>::Error("update: unknown image id");
  }
  const uint64_t hashes_before = crypto::HashInvocations();
  UpdateStats stats;
  std::vector<bovw::ClusterId> touched;
  for (const auto& [c, f] : corpus_it->second.entries) {
    Status s = package->config.freq_grouped
                   ? package->fg_index->ApplyRemove(c, id)
                   : package->inv_index->ApplyRemove(c, id);
    if (!s.ok()) return s;  // structurally impossible for consistent data
    package->list_digests[c] = package->config.freq_grouped
                                   ? package->fg_index->list(c).digest
                                   : package->inv_index->list(c).digest;
    touched.push_back(c);
    ++stats.lists_updated;
  }
  package->corpus.erase(corpus_it);
  package->image_data.erase(id);
  package->image_signatures.erase(id);

  stats.mrkd_nodes_rehashed =
      RefreshAndResign(package, owner_key, public_params, touched);
  stats.hash_invocations = crypto::HashInvocations() - hashes_before;
  return stats;
}

}  // namespace imageproof::core
