#include "core/owner.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/random.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::core {

namespace {

crypto::Digest ImageDigest(ImageId id, const Bytes& data) {
  // h(I | h(img_I)) per Eq. (15).
  return crypto::DigestBuilder()
      .AddU64(id)
      .AddDigest(crypto::Sha3(data))
      .Finalize();
}

}  // namespace

crypto::Digest SpPackage::RootDigest() const {
  crypto::DigestBuilder b;
  for (const auto& tree : mrkd_trees) b.AddDigest(tree->root_digest());
  return b.Finalize();
}

size_t SpPackage::NumImages() const {
  return image_source ? image_source->Count() : image_data.size();
}

Status SpPackage::GetImage(ImageId id, bool* found, Bytes* data,
                           Bytes* signature) const {
  *found = false;
  data->clear();
  signature->clear();
  if (image_source) return image_source->Get(id, found, data, signature);
  auto data_it = image_data.find(id);
  if (data_it == image_data.end()) return Status::Ok();
  *found = true;
  *data = data_it->second;
  auto sig_it = image_signatures.find(id);
  if (sig_it != image_signatures.end()) *signature = sig_it->second;
  return Status::Ok();
}

Status SpPackage::ForEachImage(
    const std::function<Status(ImageId, BytesView, BytesView)>& fn) const {
  if (image_source) return image_source->ForEach(fn);
  // Ascending id order even over the unordered map, so every byte stream
  // derived from a package (interchange serialization, the on-disk store)
  // is deterministic for logically identical content.
  std::vector<ImageId> ids;
  ids.reserve(image_data.size());
  for (const auto& [id, data] : image_data) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (ImageId id : ids) {
    const Bytes& data = image_data.at(id);
    auto sig_it = image_signatures.find(id);
    BytesView sig = sig_it == image_signatures.end()
                        ? BytesView{}
                        : BytesView(sig_it->second);
    if (Status s = fn(id, BytesView(data), sig); !s.ok()) return s;
  }
  return Status::Ok();
}

bool SpPackage::ImagesEqual(const SpPackage& other) const {
  if (NumImages() != other.NumImages()) return false;
  Status s = ForEachImage([&other](ImageId id, BytesView data, BytesView sig) {
    bool found = false;
    Bytes other_data, other_sig;
    Status lookup = other.GetImage(id, &found, &other_data, &other_sig);
    if (!lookup.ok() || !found) return Status::Error("mismatch");
    if (other_data.size() != data.size ||
        !std::equal(other_data.begin(), other_data.end(), data.data)) {
      return Status::Error("mismatch");
    }
    if (other_sig.size() != sig.size ||
        !std::equal(other_sig.begin(), other_sig.end(), sig.data)) {
      return Status::Error("mismatch");
    }
    return Status::Ok();
  });
  return s.ok();
}

size_t SpPackage::AdsBytes() const {
  size_t n = 0;
  // MRKD digests: one per node per tree, plus cluster commitments.
  for (const auto& tree : mrkd_trees) {
    n += tree->tree().nodes().size() * crypto::kDigestSize;
  }
  n += codebook.size() * crypto::kDigestSize;
  // Inverted-index digests and filters.
  if (inv_index) {
    for (size_t c = 0; c < inv_index->num_clusters(); ++c) {
      const auto& list = inv_index->list(static_cast<bovw::ClusterId>(c));
      n += list.postings.size() * crypto::kDigestSize;
      if (list.filter.has_value()) n += list.filter->Serialize().size();
    }
  }
  if (fg_index) {
    for (size_t c = 0; c < fg_index->num_clusters(); ++c) {
      const auto& list = fg_index->list(static_cast<bovw::ClusterId>(c));
      n += list.postings.size() * crypto::kDigestSize;
      if (list.filter.has_value()) n += list.filter->Serialize().size();
    }
  }
  // Per-image signatures.
  for (const auto& [id, sig] : image_signatures) n += sig.size();
  return n;
}

OwnerOutput BuildDeployment(
    const Config& config, ann::PointSet codebook,
    std::vector<std::pair<ImageId, bovw::BovwVector>> corpus,
    std::unordered_map<ImageId, Bytes> image_data, uint64_t key_seed,
    const BuildOverrides& overrides) {
  OwnerOutput out;
  out.package = std::make_unique<SpPackage>();
  SpPackage& pkg = *out.package;
  pkg.config = config;
  pkg.codebook = std::move(codebook);
  pkg.corpus = std::move(corpus);
  pkg.image_data = std::move(image_data);

  // Keys and per-image signatures (Eq. 15).
  crypto::RsaKeyPair keys;
  if (overrides.keys) {
    keys = *overrides.keys;
  } else {
    Rng key_rng(key_seed);
    keys = crypto::RsaKeyPair::Generate(config.rsa_bits, key_rng);
  }
  if (config.sign_images) {
    // One RSA signature per image; embarrassingly parallel.
    std::vector<const std::pair<const ImageId, Bytes>*> entries;
    entries.reserve(pkg.image_data.size());
    for (const auto& entry : pkg.image_data) entries.push_back(&entry);
    std::vector<Bytes> signatures(entries.size());
    ParallelFor(entries.size(), [&](size_t i) {
      signatures[i] = crypto::RsaSign(
          keys.private_key, ImageDigest(entries[i]->first, entries[i]->second));
    });
    for (size_t i = 0; i < entries.size(); ++i) {
      pkg.image_signatures[entries[i]->first] = std::move(signatures[i]);
    }
  }

  // Weights + inverted index (plain or frequency-grouped).
  size_t num_clusters = pkg.codebook.size();
  std::vector<bovw::BovwVector> vecs;
  vecs.reserve(pkg.corpus.size());
  for (const auto& [id, v] : pkg.corpus) vecs.push_back(v);
  bovw::ClusterWeights weights =
      overrides.weights ? *overrides.weights
                        : bovw::ClusterWeights::FromCorpus(num_clusters, vecs);

  if (config.freq_grouped) {
    pkg.fg_index = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(num_clusters, pkg.corpus, weights,
                                          config.with_filters,
                                          config.fingerprint_bits,
                                          config.filter_seed));
    pkg.list_digests = pkg.fg_index->ListDigests();
  } else {
    pkg.inv_index = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(num_clusters, pkg.corpus, weights,
                                             config.with_filters,
                                             config.fingerprint_bits,
                                             config.filter_seed));
    pkg.list_digests = pkg.inv_index->ListDigests();
  }

  // Randomized k-d forest and the MRKD decorations.
  pkg.forest = std::make_unique<ann::RkdForest>(pkg.codebook, config.forest);
  for (const auto& tree : pkg.forest->trees()) {
    pkg.mrkd_trees.push_back(std::make_unique<mrkd::MrkdTree>(
        tree.get(), config.reveal_mode, pkg.list_digests));
  }

  // Public parameters: signed ADS digest.
  out.public_params.config = config;
  out.public_params.public_key = keys.public_key;
  out.public_params.root_signature =
      crypto::RsaSign(keys.private_key, pkg.RootDigest());
  out.public_params.dims = pkg.codebook.dims();
  out.public_params.num_clusters = num_clusters;
  out.private_key = keys.private_key;
  return out;
}

}  // namespace imageproof::core
