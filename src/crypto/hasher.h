// DigestBuilder: the canonical way every ADS in this library computes
// h(field_1 | field_2 | ... | field_n).
//
// Fields are streamed straight into the SHA3-256 sponge using the same
// canonical encodings as common/bytes.h (little-endian integers, IEEE-754
// bit patterns for floats), so a digest is a pure function of the logical
// field values and both SP and client reproduce it bit-for-bit.

#ifndef IMAGEPROOF_CRYPTO_HASHER_H_
#define IMAGEPROOF_CRYPTO_HASHER_H_

#include <cstring>
#include <string>

#include "common/bytes.h"
#include "crypto/digest.h"
#include "crypto/sha3.h"

namespace imageproof::crypto {

class DigestBuilder {
 public:
  DigestBuilder() = default;

  DigestBuilder& AddU8(uint8_t v) {
    sponge_.Update(&v, 1);
    return *this;
  }

  DigestBuilder& AddU32(uint32_t v) {
    uint8_t b[4];
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    // The canonical encoding is little-endian, which on LE targets is the
    // in-memory representation; a single memcpy replaces the shift loop.
    std::memcpy(b, &v, sizeof(b));
#else
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
#endif
    sponge_.Update(b, 4);
    return *this;
  }

  DigestBuilder& AddU64(uint64_t v) {
    uint8_t b[8];
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    std::memcpy(b, &v, sizeof(b));
#else
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
#endif
    sponge_.Update(b, 8);
    return *this;
  }

  DigestBuilder& AddF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return AddU64(bits);
  }

  DigestBuilder& AddF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return AddU32(bits);
  }

  DigestBuilder& AddDigest(const Digest& d) {
    sponge_.Update(d.bytes.data(), d.bytes.size());
    return *this;
  }

  DigestBuilder& AddBytes(const uint8_t* data, size_t n) {
    sponge_.Update(data, n);
    return *this;
  }

  DigestBuilder& AddBytes(const Bytes& b) { return AddBytes(b.data(), b.size()); }

  DigestBuilder& AddString(const std::string& s) {
    return AddBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  Digest Finalize() { return sponge_.Finalize(); }

 private:
  Sha3_256 sponge_;
};

// h(left | right) — the classic Merkle internal-node combiner.
inline Digest HashPair(const Digest& left, const Digest& right) {
  return DigestBuilder().AddDigest(left).AddDigest(right).Finalize();
}

// ---------------------------------------------------------------------------
// Batch digest API. Same digests as the serial sponge, computed up to four
// messages at a time on the lane-interleaved Keccak (Sha3x4). Inputs of any
// lengths mix freely; a lane that drains early is refilled from the pending
// messages. Use these for the independent-hash inner loops of ADS
// construction (Merkle levels, leaf payloads, commitments); for dependent
// chains, drive Sha3x4 directly.
// ---------------------------------------------------------------------------

// out[i] = Sha3(in[i]) for i in [0, n).
void HashBatch(const BytesView* in, Digest* out, size_t n);

// out[i] = HashPair(left[i], right[i]) for i in [0, n).
void HashPairBatch(const Digest* left, const Digest* right, Digest* out,
                   size_t n);

// out[i] = h(domain_prefix | left[i] | right[i]) — the domain-separated
// internal-node form used by merkle::MerkleTree.
void HashPairBatch(uint8_t domain_prefix, const Digest* left,
                   const Digest* right, Digest* out, size_t n);

// Fast non-cryptographic 64-bit mix used for cuckoo-filter bucket selection
// (not for any authenticated digest).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_HASHER_H_
