// AVX2 instantiation of the interleaved 4-sponge Keccak permutation: each of
// the 25 Keccak lanes is one __m256i holding that lane for all four sponges,
// so theta/rho/pi/chi run on four states per instruction.
//
// This translation unit is the only one compiled with -mavx2 (see
// src/crypto/CMakeLists.txt); callers reach it through the runtime
// __builtin_cpu_supports("avx2") dispatch in sha3.cc, so the rest of the
// library stays runnable on any x86-64.

#if defined(IMAGEPROOF_SHA3_AVX2)

#include <immintrin.h>

#include "crypto/keccak_impl.h"

namespace imageproof::crypto::internal {

namespace {

struct V256 {
  __m256i v;
};

inline V256 operator^(V256 a, V256 b) {
  return {_mm256_xor_si256(a.v, b.v)};
}
inline V256 RotlL(V256 a, int k) {
  return {_mm256_or_si256(_mm256_slli_epi64(a.v, k),
                          _mm256_srli_epi64(a.v, 64 - k))};
}
// ~a & b, which is exactly what VPANDN computes.
inline V256 AndNotL(V256 a, V256 b) {
  return {_mm256_andnot_si256(a.v, b.v)};
}
inline V256 XorRc(V256 a, uint64_t rc) {
  return {_mm256_xor_si256(a.v, _mm256_set1_epi64x(static_cast<int64_t>(rc)))};
}

}  // namespace

void KeccakF4Avx2(uint64_t state[25][4]) {
  V256 a[25];
  for (int i = 0; i < 25; ++i) {
    a[i].v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[i]));
  }
  KeccakPermute(a);
  for (int i = 0; i < 25; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[i]), a[i].v);
  }
}

}  // namespace imageproof::crypto::internal

#endif  // IMAGEPROOF_SHA3_AVX2
