#include "crypto/sha3.h"

#include <cstring>

namespace imageproof::crypto {

namespace {

constexpr int kRounds = 24;

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808AULL,
    0x8000000080008000ULL, 0x000000000000808BULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008AULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000AULL,
    0x000000008000808BULL, 0x800000000000008BULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800AULL, 0x800000008000000AULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

// Rotation offsets for the rho step, indexed by lane (x + 5y).
constexpr int kRotations[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

inline uint64_t Rotl64(uint64_t x, int k) {
  if (k == 0) return x;
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Sha3_256::KeccakF(uint64_t a[25]) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      uint64_t d = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }

    // Rho and pi combined: b[y, 2x+3y] = rot(a[x, y]).
    uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        int src = x + 5 * y;
        int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = Rotl64(a[src], kRotations[src]);
      }
    }

    // Chi.
    for (int y = 0; y < 25; y += 5) {
      for (int x = 0; x < 5; ++x) {
        a[y + x] = b[y + x] ^ (~b[y + (x + 1) % 5] & b[y + (x + 2) % 5]);
      }
    }

    // Iota.
    a[0] ^= kRoundConstants[round];
  }
}

void Sha3_256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  std::memset(buffer_, 0, sizeof(buffer_));
  buffered_ = 0;
}

void Sha3_256::Absorb(const uint8_t* block) {
  for (size_t i = 0; i < kRate / 8; ++i) {
    uint64_t lane = 0;
    for (int j = 0; j < 8; ++j) {
      lane |= static_cast<uint64_t>(block[8 * i + j]) << (8 * j);
    }
    state_[i] ^= lane;
  }
  KeccakF(state_);
}

void Sha3_256::Update(const uint8_t* data, size_t n) {
  while (n > 0) {
    size_t take = kRate - buffered_;
    if (take > n) take = n;
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    n -= take;
    if (buffered_ == kRate) {
      Absorb(buffer_);
      buffered_ = 0;
    }
  }
}

Digest Sha3_256::Finalize() {
  // Pad with the SHA-3 domain separator 0x06 ... 0x80.
  std::memset(buffer_ + buffered_, 0, kRate - buffered_);
  buffer_[buffered_] = 0x06;
  buffer_[kRate - 1] |= 0x80;
  Absorb(buffer_);

  Digest out;
  for (size_t i = 0; i < kDigestSize; ++i) {
    out.bytes[i] = static_cast<uint8_t>(state_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

Digest Sha3(const uint8_t* data, size_t n) {
  Sha3_256 h;
  h.Update(data, n);
  return h.Finalize();
}

}  // namespace imageproof::crypto
