#include "crypto/sha3.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/keccak_impl.h"

namespace imageproof::crypto {

namespace {

using internal::KeccakPermute;
using internal::LoadLe64;
using internal::StoreLe64;
using internal::U64x2;

std::atomic<uint64_t> g_hash_invocations{0};

inline void CountHash() {
  g_hash_invocations.fetch_add(1, std::memory_order_relaxed);
}

#if defined(IMAGEPROOF_SHA3_AVX2)
bool UseAvx2() {
  // IMAGEPROOF_NO_AVX2 forces the portable path so tests and benches can
  // A/B the two implementations on the same machine.
  static const bool use = __builtin_cpu_supports("avx2") &&
                          std::getenv("IMAGEPROOF_NO_AVX2") == nullptr;
  return use;
}
#endif

// Interleaved 4-sponge permutation with runtime dispatch. The portable
// fallback runs the generic round body on pairs of states (U64x2), which
// keeps two independent dependency chains in flight per instruction stream.
void KeccakF4(uint64_t state[25][Sha3x4::kLanes]) {
#if defined(IMAGEPROOF_SHA3_AVX2)
  if (UseAvx2()) {
    internal::KeccakF4Avx2(state);
    return;
  }
#endif
  U64x2 pair[25];
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 25; ++i) {
      pair[i] = {state[i][2 * half], state[i][2 * half + 1]};
    }
    KeccakPermute(pair);
    for (int i = 0; i < 25; ++i) {
      state[i][2 * half] = pair[i].v0;
      state[i][2 * half + 1] = pair[i].v1;
    }
  }
}

}  // namespace

uint64_t HashInvocations() {
  return g_hash_invocations.load(std::memory_order_relaxed);
}

void Sha3_256::KeccakF(uint64_t a[25]) { KeccakPermute(a); }

void Sha3_256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  std::memset(buffer_, 0, sizeof(buffer_));
  buffered_ = 0;
}

void Sha3_256::Absorb(const uint8_t* block) {
  for (size_t i = 0; i < kRate / 8; ++i) {
    state_[i] ^= LoadLe64(block + 8 * i);
  }
  KeccakF(state_);
}

void Sha3_256::Update(const uint8_t* data, size_t n) {
  // Fast path: absorb full blocks straight from the input once the carry
  // buffer is empty, instead of staging every byte through it.
  if (buffered_ > 0) {
    size_t take = kRate - buffered_;
    if (take > n) take = n;
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    n -= take;
    if (buffered_ == kRate) {
      Absorb(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= kRate) {
    Absorb(data);
    data += kRate;
    n -= kRate;
  }
  if (n > 0) {
    std::memcpy(buffer_, data, n);
    buffered_ = n;
  }
}

Digest Sha3_256::Finalize() {
  // Pad with the SHA-3 domain separator 0x06 ... 0x80.
  std::memset(buffer_ + buffered_, 0, kRate - buffered_);
  buffer_[buffered_] = 0x06;
  buffer_[kRate - 1] |= 0x80;
  Absorb(buffer_);

  Digest out;
  for (size_t i = 0; i < kDigestSize / 8; ++i) {
    StoreLe64(out.bytes.data() + 8 * i, state_[i]);
  }
  CountHash();
  return out;
}

Digest Sha3(const uint8_t* data, size_t n) {
  Sha3_256 h;
  h.Update(data, n);
  return h.Finalize();
}

// ---------------------------------------------------------------------------
// Sha3x4
// ---------------------------------------------------------------------------

Sha3x4::Sha3x4() {
  std::memset(state_, 0, sizeof(state_));
  for (int j = 0; j < kLanes; ++j) {
    data_[j] = nullptr;
    len_[j] = off_[j] = 0;
    phase_[j] = kIdle;
  }
}

bool Sha3x4::AnyAbsorbing() const {
  for (int j = 0; j < kLanes; ++j) {
    if (phase_[j] == kAbsorbing) return true;
  }
  return false;
}

void Sha3x4::Start(int lane, const uint8_t* data, size_t n) {
  for (int i = 0; i < 25; ++i) state_[i][lane] = 0;
  data_[lane] = data;
  len_[lane] = n;
  off_[lane] = 0;
  phase_[lane] = kAbsorbing;
}

void Sha3x4::Step() {
  for (int j = 0; j < kLanes; ++j) {
    if (phase_[j] != kAbsorbing) continue;
    const size_t remaining = len_[j] - off_[j];
    if (remaining >= kRate) {
      const uint8_t* block = data_[j] + off_[j];
      for (size_t i = 0; i < kRate / 8; ++i) {
        state_[i][j] ^= LoadLe64(block + 8 * i);
      }
      off_[j] += kRate;
      // An exact-multiple message still owes the all-padding block; the
      // next Step absorbs it, matching the serial Finalize exactly.
    } else {
      uint8_t last[kRate];
      std::memset(last, 0, sizeof(last));
      if (remaining > 0) std::memcpy(last, data_[j] + off_[j], remaining);
      last[remaining] = 0x06;
      last[kRate - 1] |= 0x80;
      for (size_t i = 0; i < kRate / 8; ++i) {
        state_[i][j] ^= LoadLe64(last + 8 * i);
      }
      phase_[j] = kFinalBlock;
    }
  }
  KeccakF4(state_);
  for (int j = 0; j < kLanes; ++j) {
    if (phase_[j] == kFinalBlock) phase_[j] = kDone;
  }
}

Digest Sha3x4::Take(int lane) {
  Digest out;
  for (size_t i = 0; i < kDigestSize / 8; ++i) {
    StoreLe64(out.bytes.data() + 8 * i, state_[i][lane]);
  }
  data_[lane] = nullptr;
  len_[lane] = off_[lane] = 0;
  phase_[lane] = kIdle;
  CountHash();
  return out;
}

}  // namespace imageproof::crypto
