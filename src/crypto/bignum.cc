#include "crypto/bignum.h"

#include <algorithm>
#include <cstring>

namespace imageproof::crypto {

namespace {

// Small primes for fast trial-division filtering during prime generation.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269,
    271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353,
};

}  // namespace

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromBytes(const uint8_t* data, size_t n) {
  BigInt out;
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    // data[0] is the most significant byte.
    size_t byte_index = n - 1 - i;  // position from the LSB
    out.limbs_[byte_index / 4] |= static_cast<uint32_t>(data[i])
                                  << (8 * (byte_index % 4));
  }
  out.Trim();
  return out;
}

Bytes BigInt::ToBytes(size_t n) const {
  size_t min_len = (static_cast<size_t>(BitLength()) + 7) / 8;
  if (n == 0) n = std::max<size_t>(min_len, 1);
  Bytes out(n, 0);
  for (size_t i = 0; i < n; ++i) {
    size_t byte_index = i;  // from LSB
    size_t limb = byte_index / 4;
    if (limb >= limbs_.size()) break;
    out[n - 1 - i] = static_cast<uint8_t>(limbs_[limb] >> (8 * (byte_index % 4)));
  }
  return out;
}

BigInt BigInt::FromHex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      continue;  // permit separators in test literals
    }
    out = ShiftLeft(out, 4);
    out = Add(out, BigInt(nibble));
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kHex = "0123456789abcdef";
  std::string s;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      s.push_back(kHex[(limbs_[i] >> shift) & 0xF]);
    }
  }
  size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

BigInt BigInt::RandomWithBits(int bits, Rng& rng) {
  BigInt out;
  int limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (int i = 0; i < limbs; ++i) {
    out.limbs_[i] = static_cast<uint32_t>(rng.NextU64());
  }
  int top_bit = (bits - 1) % 32;
  out.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
  out.limbs_.back() |= (1u << top_bit);
  out.Trim();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  int bits = bound.BitLength();
  while (true) {
    BigInt candidate;
    int limbs = (bits + 31) / 32;
    candidate.limbs_.resize(limbs);
    for (int i = 0; i < limbs; ++i) {
      candidate.limbs_[i] = static_cast<uint32_t>(rng.NextU64());
    }
    int top_bit = (bits - 1) % 32;
    candidate.limbs_.back() &=
        (top_bit == 31) ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
    candidate.Trim();
    if (Compare(candidate, bound) < 0) return candidate;
  }
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  int bits = 32 * static_cast<int>(limbs_.size() - 1);
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(int i) const {
  size_t limb = static_cast<size_t>(i) / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::LowU64() const {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(const BigInt& a, int bits) {
  if (a.IsZero() || bits == 0) return bits == 0 ? a : BigInt();
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(const BigInt& a, int bits) {
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  if (static_cast<size_t>(limb_shift) >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  // Single-limb divisor fast path.
  if (b.limbs_.size() == 1) {
    uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(rem);
    return;
  }

  if (Compare(a, b) < 0) {
    if (quotient) *quotient = BigInt();
    if (remainder) *remainder = a;
    return;
  }

  // Knuth Algorithm D with 32-bit limbs. Normalize so the divisor's top limb
  // has its high bit set.
  int shift = 0;
  uint32_t top = b.limbs_.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  BigInt u = ShiftLeft(a, shift);
  BigInt v = ShiftLeft(b, shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m + n + 1 limbs

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  uint64_t v_top = v.limbs_[n - 1];
  uint64_t v_second = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v_top;
    uint64_t rhat = numerator % v_top;
    while (qhat >= (1ULL << 32) ||
           qhat * v_second > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= (1ULL << 32)) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t sub = static_cast<int64_t>(u.limbs_[i + j]) -
                    static_cast<int64_t>(p & 0xFFFFFFFFu) - borrow;
      if (sub < 0) {
        sub += (1LL << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(sub);
    }
    int64_t sub = static_cast<int64_t>(u.limbs_[j + n]) -
                  static_cast<int64_t>(carry) - borrow;
    bool negative = sub < 0;
    u.limbs_[j + n] = static_cast<uint32_t>(sub);

    if (negative) {
      // qhat was one too large; add v back.
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum =
            static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      u.limbs_[j + n] += static_cast<uint32_t>(carry2);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    u.limbs_.resize(n);
    u.Trim();
    *remainder = ShiftRight(u, shift);
  }
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result(1);
  BigInt b = Mod(base, m);
  int bits = exp.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = Mod(Mul(result, result), m);
    if (exp.Bit(i)) result = Mod(Mul(result, b), m);
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the coefficient of `a`, with signs handled
  // via a parallel bool because BigInt is unsigned.
  BigInt r0 = m, r1 = Mod(a, m);
  BigInt t0, t1(1);
  bool neg0 = false, neg1 = false;
  while (!r1.IsZero()) {
    BigInt q, r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 (signed).
    BigInt qt = Mul(q, t1);
    BigInt t2;
    bool neg2;
    if (neg0 == neg1) {
      if (Compare(t0, qt) >= 0) {
        t2 = Sub(t0, qt);
        neg2 = neg0;
      } else {
        t2 = Sub(qt, t0);
        neg2 = !neg0;
      }
    } else {
      t2 = Add(t0, qt);
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (Compare(r0, BigInt(1)) != 0) return BigInt();  // not invertible
  if (neg0) return Sub(m, Mod(t0, m));
  return Mod(t0, m);
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng& rng) {
  if (n.BitLength() <= 1) return false;
  if (!n.IsOdd()) return n.LowU64() == 2;
  for (uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (Compare(n, bp) == 0) return true;
    BigInt r = Mod(n, bp);
    if (r.IsZero()) return false;
  }

  // n - 1 = d * 2^s with d odd.
  BigInt n_minus_1 = Sub(n, BigInt(1));
  BigInt d = n_minus_1;
  int s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    BigInt a = Add(BigInt(2), RandomBelow(Sub(n, BigInt(3)), rng));
    BigInt x = ModExp(a, d, n);
    if (Compare(x, BigInt(1)) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool witness = true;
    for (int i = 0; i < s - 1; ++i) {
      x = Mod(Mul(x, x), n);
      if (Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(int bits, Rng& rng) {
  while (true) {
    BigInt candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) candidate = Add(candidate, BigInt(1));
    // March forward over odd numbers from the random starting point.
    for (int step = 0; step < 1000; ++step) {
      if (IsProbablePrime(candidate, 24, rng)) return candidate;
      candidate = Add(candidate, BigInt(2));
      if (candidate.BitLength() != bits) break;  // overflowed the width
    }
  }
}

}  // namespace imageproof::crypto
