// Shared Keccak-f[1600] round function, generic over the lane type.
//
// The same 24-round body serves three instantiations:
//   * uint64_t      — the scalar permutation behind Sha3_256
//   * U64x2         — two interleaved states; plain integer code the
//                     compiler schedules as 2-way ILP (portable Sha3x4 path)
//   * V256 (AVX2)   — four interleaved states, one __m256i per Keccak lane
//                     (sha3_avx2.cc, compiled with -mavx2 and runtime-gated)
//
// All variants compute bit-identical states: vectorization only changes
// which independent sponges share an instruction, never the arithmetic.
//
// Internal header: include only from crypto/*.cc.

#ifndef IMAGEPROOF_CRYPTO_KECCAK_IMPL_H_
#define IMAGEPROOF_CRYPTO_KECCAK_IMPL_H_

#include <cstdint>

namespace imageproof::crypto::internal {

inline constexpr int kKeccakRounds = 24;

inline constexpr uint64_t kKeccakRoundConstants[kKeccakRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808AULL,
    0x8000000080008000ULL, 0x000000000000808BULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008AULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000AULL,
    0x000000008000808BULL, 0x800000000000008BULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800AULL, 0x800000008000000AULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

// Rho rotation amounts and pi destination indices along the single 24-step
// permutation cycle starting at lane 1; walking the cycle with one carried
// temp performs rho+pi in place, with no b[25] copy.
inline constexpr int kKeccakRotc[kKeccakRounds] = {
    1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
    27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44,
};
inline constexpr int kKeccakPiln[kKeccakRounds] = {
    10, 7,  11, 17, 18, 3, 5,  16, 8,  21, 24, 4,
    15, 23, 19, 13, 12, 2, 20, 14, 22, 9,  6,  1,
};

// Scalar lane ops.
inline uint64_t RotlL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
inline uint64_t AndNotL(uint64_t a, uint64_t b) { return ~a & b; }
inline uint64_t XorRc(uint64_t a, uint64_t rc) { return a ^ rc; }

// Two interleaved lanes; every op is elementwise, so the two permutations
// proceed in lockstep and the compiler interleaves their dependency chains.
struct U64x2 {
  uint64_t v0, v1;
};
inline U64x2 operator^(U64x2 a, U64x2 b) { return {a.v0 ^ b.v0, a.v1 ^ b.v1}; }
inline U64x2 RotlL(U64x2 a, int k) { return {RotlL(a.v0, k), RotlL(a.v1, k)}; }
inline U64x2 AndNotL(U64x2 a, U64x2 b) {
  return {~a.v0 & b.v0, ~a.v1 & b.v1};
}
inline U64x2 XorRc(U64x2 a, uint64_t rc) { return {a.v0 ^ rc, a.v1 ^ rc}; }

// The full permutation. Theta and chi are unrolled; rho+pi runs in place.
template <typename L>
inline void KeccakPermute(L a[25]) {
  for (int round = 0; round < kKeccakRounds; ++round) {
    // Theta.
    L c0 = a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20];
    L c1 = a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21];
    L c2 = a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22];
    L c3 = a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23];
    L c4 = a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24];
    L d0 = c4 ^ RotlL(c1, 1);
    L d1 = c0 ^ RotlL(c2, 1);
    L d2 = c1 ^ RotlL(c3, 1);
    L d3 = c2 ^ RotlL(c4, 1);
    L d4 = c3 ^ RotlL(c0, 1);
    a[0] = a[0] ^ d0;
    a[5] = a[5] ^ d0;
    a[10] = a[10] ^ d0;
    a[15] = a[15] ^ d0;
    a[20] = a[20] ^ d0;
    a[1] = a[1] ^ d1;
    a[6] = a[6] ^ d1;
    a[11] = a[11] ^ d1;
    a[16] = a[16] ^ d1;
    a[21] = a[21] ^ d1;
    a[2] = a[2] ^ d2;
    a[7] = a[7] ^ d2;
    a[12] = a[12] ^ d2;
    a[17] = a[17] ^ d2;
    a[22] = a[22] ^ d2;
    a[3] = a[3] ^ d3;
    a[8] = a[8] ^ d3;
    a[13] = a[13] ^ d3;
    a[18] = a[18] ^ d3;
    a[23] = a[23] ^ d3;
    a[4] = a[4] ^ d4;
    a[9] = a[9] ^ d4;
    a[14] = a[14] ^ d4;
    a[19] = a[19] ^ d4;
    a[24] = a[24] ^ d4;

    // Rho and pi, in place along the permutation cycle.
    L t = a[1];
    for (int i = 0; i < kKeccakRounds; ++i) {
      const int j = kKeccakPiln[i];
      L tmp = a[j];
      a[j] = RotlL(t, kKeccakRotc[i]);
      t = tmp;
    }

    // Chi, row by row with five temporaries.
    for (int y = 0; y < 25; y += 5) {
      L b0 = a[y], b1 = a[y + 1], b2 = a[y + 2], b3 = a[y + 3], b4 = a[y + 4];
      a[y] = b0 ^ AndNotL(b1, b2);
      a[y + 1] = b1 ^ AndNotL(b2, b3);
      a[y + 2] = b2 ^ AndNotL(b3, b4);
      a[y + 3] = b3 ^ AndNotL(b4, b0);
      a[y + 4] = b4 ^ AndNotL(b0, b1);
    }

    // Iota.
    a[0] = XorRc(a[0], kKeccakRoundConstants[round]);
  }
}

// Little-endian lane load/store shared by the absorb/squeeze paths.
inline uint64_t LoadLe64(const uint8_t* p) {
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
  uint64_t v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
#else
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
#endif
}

inline void StoreLe64(uint8_t* p, uint64_t v) {
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
  __builtin_memcpy(p, &v, sizeof(v));
#else
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
#endif
}

#if defined(IMAGEPROOF_SHA3_AVX2)
// Defined in sha3_avx2.cc (compiled with -mavx2); callable only after a
// runtime AVX2 check.
void KeccakF4Avx2(uint64_t state[25][4]);
#endif

}  // namespace imageproof::crypto::internal

#endif  // IMAGEPROOF_CRYPTO_KECCAK_IMPL_H_
