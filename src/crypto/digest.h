// 32-byte digest value type shared by every authenticated data structure.

#ifndef IMAGEPROOF_CRYPTO_DIGEST_H_
#define IMAGEPROOF_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"

namespace imageproof::crypto {

inline constexpr size_t kDigestSize = 32;

// Fixed-size hash output. Value semantics; comparable; hashable as map key.
struct Digest {
  std::array<uint8_t, kDigestSize> bytes{};

  bool operator==(const Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Digest& other) const { return !(*this == other); }
  bool operator<(const Digest& other) const { return bytes < other.bytes; }

  // All-zero digest; used as the chain terminator for the last posting in a
  // Merkle inverted list (Definition 4 needs h_{pos_{n+1}}).
  static Digest Zero() { return Digest{}; }

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  std::string ToHex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out;
    out.reserve(2 * kDigestSize);
    for (uint8_t b : bytes) {
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    }
    return out;
  }
};

inline void PutDigest(ByteWriter& w, const Digest& d) {
  w.PutBytes(d.bytes.data(), d.bytes.size());
}

inline Status GetDigest(ByteReader& r, Digest* out) {
  Bytes b;
  Status s = r.GetBytes(kDigestSize, &b);
  if (!s.ok()) return s;
  std::memcpy(out->bytes.data(), b.data(), kDigestSize);
  return Status::Ok();
}

struct DigestHasher {
  size_t operator()(const Digest& d) const {
    uint64_t v;
    std::memcpy(&v, d.bytes.data(), sizeof(v));
    return static_cast<size_t>(v);
  }
};

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_DIGEST_H_
