// Arbitrary-precision unsigned integers, from scratch, sized for RSA.
//
// Representation: little-endian vector of 32-bit limbs with no trailing zero
// limbs (zero is the empty vector). 32-bit limbs keep Knuth Algorithm D
// division simple with 64-bit intermediates. Performance is adequate for
// signing/verifying at 1024-2048 bits, which is all ImageProof needs.

#ifndef IMAGEPROOF_CRYPTO_BIGNUM_H_
#define IMAGEPROOF_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"

namespace imageproof::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  // Big-endian byte import/export (the usual cryptographic convention).
  static BigInt FromBytes(const uint8_t* data, size_t n);
  static BigInt FromBytes(const Bytes& b) { return FromBytes(b.data(), b.size()); }
  // Exports exactly `n` big-endian bytes (value must fit), or minimal length
  // when n == 0.
  Bytes ToBytes(size_t n = 0) const;

  static BigInt FromHex(const std::string& hex);
  std::string ToHex() const;

  // Uniformly random value with exactly `bits` bits (top bit set).
  static BigInt RandomWithBits(int bits, Rng& rng);
  // Uniformly random value in [0, bound).
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  int BitLength() const;
  bool Bit(int i) const;
  uint64_t LowU64() const;

  // Comparison: -1, 0, +1.
  static int Compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return Compare(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(*this, o) >= 0; }

  static BigInt Add(const BigInt& a, const BigInt& b);
  // Requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  // Knuth Algorithm D. b must be nonzero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);
  static BigInt Mod(const BigInt& a, const BigInt& m);

  static BigInt ShiftLeft(const BigInt& a, int bits);
  static BigInt ShiftRight(const BigInt& a, int bits);

  // (base^exp) mod m, square-and-multiply. m must be nonzero.
  static BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);
  // Modular inverse via extended Euclid; returns zero if gcd(a, m) != 1.
  static BigInt ModInverse(const BigInt& a, const BigInt& m);
  static BigInt Gcd(BigInt a, BigInt b);

  // Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng& rng);
  // Generates a random prime with exactly `bits` bits.
  static BigInt GeneratePrime(int bits, Rng& rng);

 private:
  void Trim();

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_BIGNUM_H_
