// SHA3-256 (FIPS 202) implemented from scratch on Keccak-f[1600].
//
// This is the cryptographic hash the ImageProof paper selects for all ADS
// digests. The implementation is validated against the NIST example vectors
// in tests/crypto_test.cc.

#ifndef IMAGEPROOF_CRYPTO_SHA3_H_
#define IMAGEPROOF_CRYPTO_SHA3_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace imageproof::crypto {

// Incremental SHA3-256 hasher (rate 1088 bits / 136 bytes, capacity 512).
class Sha3_256 {
 public:
  Sha3_256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  // Finalizes and returns the digest. The hasher must be Reset() before
  // further use.
  Digest Finalize();

 private:
  void Absorb(const uint8_t* block);  // absorbs one rate-sized block
  static void KeccakF(uint64_t state[25]);

  static constexpr size_t kRate = 136;  // bytes
  uint64_t state_[25];
  uint8_t buffer_[kRate];
  size_t buffered_;
};

// One-shot convenience.
Digest Sha3(const uint8_t* data, size_t n);
inline Digest Sha3(const Bytes& b) { return Sha3(b.data(), b.size()); }

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_SHA3_H_
