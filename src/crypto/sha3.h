// SHA3-256 (FIPS 202) implemented from scratch on Keccak-f[1600].
//
// This is the cryptographic hash the ImageProof paper selects for all ADS
// digests. Two execution paths share one permutation:
//   * Sha3_256 — the incremental single-message sponge (optimized scalar
//     Keccak: in-place rho/pi, unrolled theta/chi).
//   * Sha3x4   — four lane-interleaved sponges advanced in lockstep, the
//     engine behind the batch digest API in crypto/hasher.h. On x86-64 with
//     AVX2 each Keccak lane is one 4x64-bit vector; elsewhere a portable
//     2-way-interleaved scalar path provides the ILP win.
// Both are validated against NIST vectors (tests/sha3_kat_test.cc) and are
// byte-identical: batching never changes a digest.

#ifndef IMAGEPROOF_CRYPTO_SHA3_H_
#define IMAGEPROOF_CRYPTO_SHA3_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace imageproof::crypto {

// Incremental SHA3-256 hasher (rate 1088 bits / 136 bytes, capacity 512).
class Sha3_256 {
 public:
  Sha3_256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  // Finalizes and returns the digest. The hasher must be Reset() before
  // further use.
  Digest Finalize();

 private:
  void Absorb(const uint8_t* block);  // absorbs one rate-sized block
  static void KeccakF(uint64_t state[25]);

  static constexpr size_t kRate = 136;  // bytes
  uint64_t state_[25];
  uint8_t buffer_[kRate];
  size_t buffered_;
};

// One-shot convenience.
Digest Sha3(const uint8_t* data, size_t n);
inline Digest Sha3(const Bytes& b) { return Sha3(b.data(), b.size()); }

// Process-wide count of SHA3 message digests computed (one per Finalize or
// per message completed by a batch path; Keccak permutations are not counted
// individually). Relaxed atomic: cheap next to a hash, safe to read from any
// thread, and monotone — benches and tests assert on deltas, e.g. that an
// incremental Merkle update costs O(log n) hashes.
uint64_t HashInvocations();

// Four independent SHA3-256 sponges advanced in lockstep, one Keccak
// permutation round absorbing one rate-block per active lane. Lanes are
// fully independent: messages may differ in length (a lane that finishes
// early is refilled by the caller while the others keep absorbing), and each
// digest equals the serial Sha3 of that lane's message exactly.
//
// Lifecycle per lane: idle --Start()--> absorbing --(final block Step'd)-->
// done --Take()--> idle. Step() advances every absorbing lane by one block.
// The message bytes passed to Start are borrowed and must stay valid until
// Take. Higher-level helpers (HashBatch/HashPairBatch in crypto/hasher.h)
// wrap the scheduling; use Sha3x4 directly for digest chains where message
// i+1 of a lane depends on the digest of message i.
class Sha3x4 {
 public:
  static constexpr int kLanes = 4;
  static constexpr size_t kRate = 136;  // bytes, same sponge as Sha3_256

  Sha3x4();

  bool idle(int lane) const { return phase_[lane] == kIdle; }
  bool done(int lane) const { return phase_[lane] == kDone; }
  // True while any lane still has blocks to absorb; when it turns false
  // every started message has reached `done`.
  bool AnyAbsorbing() const;

  // Begins hashing `n` bytes at `data` on an idle lane.
  void Start(int lane, const uint8_t* data, size_t n);
  void Start(int lane, const Bytes& b) { Start(lane, b.data(), b.size()); }

  // Absorbs the next block of every absorbing lane and runs the interleaved
  // permutation. Lanes whose padded final block was absorbed become `done`.
  void Step();

  // Returns the digest of a `done` lane and frees it for the next message.
  Digest Take(int lane);

 private:
  enum Phase : uint8_t { kIdle, kAbsorbing, kFinalBlock, kDone };

  alignas(32) uint64_t state_[25][kLanes];
  const uint8_t* data_[kLanes];
  size_t len_[kLanes];
  size_t off_[kLanes];
  Phase phase_[kLanes];
};

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_SHA3_H_
