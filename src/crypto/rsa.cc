#include "crypto/rsa.h"

#include <cstring>

namespace imageproof::crypto {

namespace {

// PKCS#1-v1.5-style deterministic padding of a 32-byte digest into a
// modulus-sized block: 0x00 0x01 FF..FF 0x00 | marker | digest.
// The marker stands in for the DER AlgorithmIdentifier of SHA3-256.
constexpr uint8_t kSha3Marker[4] = {0x53, 0x33, 0x32, 0x36};  // "S326"

Bytes EncodeDigestBlock(const Digest& digest, size_t block_len) {
  Bytes em(block_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  size_t payload = sizeof(kSha3Marker) + kDigestSize;
  em[block_len - payload - 1] = 0x00;
  std::memcpy(em.data() + block_len - payload, kSha3Marker, sizeof(kSha3Marker));
  std::memcpy(em.data() + block_len - kDigestSize, digest.bytes.data(),
              kDigestSize);
  return em;
}

}  // namespace

RsaKeyPair RsaKeyPair::Generate(int modulus_bits, Rng& rng) {
  const BigInt e(65537);
  while (true) {
    BigInt p = BigInt::GeneratePrime(modulus_bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    BigInt n = BigInt::Mul(p, q);
    BigInt phi = BigInt::Mul(BigInt::Sub(p, BigInt(1)), BigInt::Sub(q, BigInt(1)));
    BigInt d = BigInt::ModInverse(e, phi);
    if (d.IsZero()) continue;  // gcd(e, phi) != 1; retry with new primes
    RsaKeyPair kp;
    kp.public_key = RsaPublicKey{n, e};
    kp.private_key = RsaPrivateKey{n, d};
    return kp;
  }
}

Bytes RsaSign(const RsaPrivateKey& key, const Digest& digest) {
  size_t k = (static_cast<size_t>(key.n.BitLength()) + 7) / 8;
  Bytes em = EncodeDigestBlock(digest, k);
  BigInt m = BigInt::FromBytes(em);
  BigInt s = BigInt::ModExp(m, key.d, key.n);
  return s.ToBytes(k);
}

bool RsaVerify(const RsaPublicKey& key, const Digest& digest, const Bytes& sig) {
  size_t k = key.ModulusBytes();
  if (sig.size() != k) return false;
  BigInt s = BigInt::FromBytes(sig);
  if (s >= key.n) return false;
  BigInt m = BigInt::ModExp(s, key.e, key.n);
  Bytes em = m.ToBytes(k);
  Bytes expected = EncodeDigestBlock(digest, k);
  return em == expected;
}

}  // namespace imageproof::crypto
