// RSA signatures over the from-scratch bignum layer.
//
// The image owner signs (a) each image digest per Eq. (15) and (b) the root
// digest of the ImageProof ADS. Any EUF-CMA signature scheme works; we use
// textbook-keygen RSA with a PKCS#1-v1.5-style deterministic encoding of a
// SHA3-256 digest. Key sizes are caller-chosen (tests use 512-bit keys for
// speed; benchmarks use 1024).

#ifndef IMAGEPROOF_CRYPTO_RSA_H_
#define IMAGEPROOF_CRYPTO_RSA_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/bignum.h"
#include "crypto/digest.h"

namespace imageproof::crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent
  // Length of the modulus (and of every signature) in bytes.
  size_t ModulusBytes() const { return (static_cast<size_t>(n.BitLength()) + 7) / 8; }
};

struct RsaPrivateKey {
  BigInt n;
  BigInt d;  // private exponent
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;

  // Generates a fresh key pair with an n of `modulus_bits` bits (e = 65537).
  static RsaKeyPair Generate(int modulus_bits, Rng& rng);
};

// Signs a 32-byte digest. The signature is ModulusBytes() long.
Bytes RsaSign(const RsaPrivateKey& key, const Digest& digest);

// Verifies a signature over a 32-byte digest.
bool RsaVerify(const RsaPublicKey& key, const Digest& digest, const Bytes& sig);

// Abstract signing interfaces so the core scheme is signature-agnostic.
class Signer {
 public:
  virtual ~Signer() = default;
  virtual Bytes Sign(const Digest& digest) const = 0;
};

class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool Verify(const Digest& digest, const Bytes& signature) const = 0;
};

class RsaSigner : public Signer {
 public:
  explicit RsaSigner(RsaPrivateKey key) : key_(std::move(key)) {}
  Bytes Sign(const Digest& digest) const override { return RsaSign(key_, digest); }

 private:
  RsaPrivateKey key_;
};

class RsaVerifier : public Verifier {
 public:
  explicit RsaVerifier(RsaPublicKey key) : key_(std::move(key)) {}
  bool Verify(const Digest& digest, const Bytes& signature) const override {
    return RsaVerify(key_, digest, signature);
  }

 private:
  RsaPublicKey key_;
};

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_RSA_H_
