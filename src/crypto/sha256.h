// SHA-256 (FIPS 180-4) implemented from scratch.
//
// Used as an alternative hash backend (the library is hash-agnostic through
// crypto/hasher.h) and inside the RSA PKCS#1-style signature encoding.

#ifndef IMAGEPROOF_CRYPTO_SHA256_H_
#define IMAGEPROOF_CRYPTO_SHA256_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace imageproof::crypto {

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  Digest Finalize();

 private:
  void Compress(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffered_;
  uint64_t total_len_;
};

Digest Sha2(const uint8_t* data, size_t n);
inline Digest Sha2(const Bytes& b) { return Sha2(b.data(), b.size()); }

}  // namespace imageproof::crypto

#endif  // IMAGEPROOF_CRYPTO_SHA256_H_
