#include "crypto/hasher.h"

#include <cstring>

namespace imageproof::crypto {

namespace {

// Largest message that always fits one sponge block after padding; pair
// hashes (prefix + two digests = 65 bytes) are far below it.
constexpr size_t kMaxSingleBlock = Sha3x4::kRate - 1;

// Shared scheduling for prefixed/unprefixed pair batches: messages are
// fixed-size single-block, so every Step completes everything it started.
void PairBatch(const uint8_t* prefix, const Digest* left, const Digest* right,
               Digest* out, size_t n) {
  const size_t prefix_len = prefix != nullptr ? 1 : 0;
  const size_t msg_len = prefix_len + 2 * kDigestSize;
  static_assert(1 + 2 * kDigestSize <= kMaxSingleBlock);
  if (n < 2) {
    for (size_t i = 0; i < n; ++i) {
      DigestBuilder b;
      if (prefix != nullptr) b.AddU8(*prefix);
      out[i] = b.AddDigest(left[i]).AddDigest(right[i]).Finalize();
    }
    return;
  }
  Sha3x4 eng;
  uint8_t buf[Sha3x4::kLanes][1 + 2 * kDigestSize];
  size_t i = 0;
  while (i < n) {
    const int lanes = static_cast<int>(n - i < 4 ? n - i : 4);
    for (int j = 0; j < lanes; ++j) {
      uint8_t* m = buf[j];
      if (prefix != nullptr) m[0] = *prefix;
      std::memcpy(m + prefix_len, left[i + j].bytes.data(), kDigestSize);
      std::memcpy(m + prefix_len + kDigestSize, right[i + j].bytes.data(),
                  kDigestSize);
      eng.Start(j, m, msg_len);
    }
    eng.Step();
    for (int j = 0; j < lanes; ++j) out[i + j] = eng.Take(j);
    i += lanes;
  }
}

}  // namespace

void HashBatch(const BytesView* in, Digest* out, size_t n) {
  if (n == 0) return;
  if (n == 1) {
    out[0] = Sha3(in[0].data, in[0].size);
    return;
  }
  Sha3x4 eng;
  size_t msg_of[Sha3x4::kLanes] = {0, 0, 0, 0};
  size_t next = 0;
  size_t pending = n;
  for (int j = 0; j < Sha3x4::kLanes && next < n; ++j) {
    msg_of[j] = next;
    eng.Start(j, in[next].data, in[next].size);
    ++next;
  }
  while (pending > 0) {
    eng.Step();
    for (int j = 0; j < Sha3x4::kLanes; ++j) {
      if (!eng.done(j)) continue;
      out[msg_of[j]] = eng.Take(j);
      --pending;
      if (next < n) {
        msg_of[j] = next;
        eng.Start(j, in[next].data, in[next].size);
        ++next;
      }
    }
  }
}

void HashPairBatch(const Digest* left, const Digest* right, Digest* out,
                   size_t n) {
  PairBatch(nullptr, left, right, out, n);
}

void HashPairBatch(uint8_t domain_prefix, const Digest* left,
                   const Digest* right, Digest* out, size_t n) {
  PairBatch(&domain_prefix, left, right, out, n);
}

}  // namespace imageproof::crypto
