#include "freqgroup/fg_index.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "crypto/hasher.h"
#include "invindex/merkle_inv_index.h"

namespace imageproof::freqgroup {

Digest FgPostingDigest(const FgPosting& posting, const Digest& next) {
  crypto::DigestBuilder b;
  b.AddU32(posting.freq);
  for (const FgMember& m : posting.members) {
    b.AddU64(m.id);
    b.AddF64(m.norm);
  }
  b.AddDigest(next);
  return b.Finalize();
}

size_t FgList::TotalImages() const {
  size_t n = 0;
  for (const auto& p : postings) n += p.members.size();
  return n;
}

FgInvertedIndex FgInvertedIndex::Build(
    size_t num_clusters,
    const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
    const bovw::ClusterWeights& weights, bool with_filters,
    uint32_t fingerprint_bits, uint64_t filter_seed) {
  FgInvertedIndex index;
  index.with_filters_ = with_filters;
  index.lists_.resize(num_clusters);

  // cluster -> freq -> members.
  std::vector<std::map<uint32_t, std::vector<FgMember>>> raw(num_clusters);
  size_t max_len = 1;
  std::vector<size_t> lengths(num_clusters, 0);
  for (const auto& [id, vec] : corpus) {
    double norm = vec.L2Norm();
    for (const auto& [c, f] : vec.entries) {
      if (c >= num_clusters) continue;
      raw[c][f].push_back(FgMember{id, norm});
      ++lengths[c];
    }
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    max_len = std::max(max_len, lengths[c]);
  }
  index.filter_params_ =
      cuckoo::CuckooParams::ForMaxItems(max_len, fingerprint_bits, filter_seed);
  const cuckoo::CuckooParams& filter_params = index.filter_params_;

  // Per-list builds are independent; parallelize with identical results.
  ParallelFor(num_clusters, [&](size_t c) {
    FgList& list = index.lists_[c];
    list.cluster = static_cast<ClusterId>(c);
    list.weight = weights.WeightOf(static_cast<ClusterId>(c));

    for (auto& [freq, members] : raw[c]) {
      FgPosting posting;
      posting.freq = freq;
      std::sort(members.begin(), members.end(),
                [](const FgMember& a, const FgMember& b) {
                  if (a.norm != b.norm) return a.norm < b.norm;
                  return a.id < b.id;
                });
      posting.members = std::move(members);
      list.postings.push_back(std::move(posting));
    }
    // Order groups by descending impact (freq ascending on ties for
    // determinism).
    std::sort(list.postings.begin(), list.postings.end(),
              [&list](const FgPosting& a, const FgPosting& b) {
                double ia = a.GroupImpact(list.weight);
                double ib = b.GroupImpact(list.weight);
                if (ia != ib) return ia > ib;
                return a.freq < b.freq;
              });

    if (with_filters) {
      cuckoo::CuckooFilter filter(filter_params);
      for (const FgPosting& p : list.postings) {
        for (const FgMember& m : p.members) {
          bool ok = filter.Insert(m.id);
          (void)ok;
        }
      }
      list.theta_digest = filter.StateDigest();
      list.filter = std::move(filter);
    } else {
      list.theta_digest = Digest::Zero();
    }

    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = FgPostingDigest(list.postings[i], next);
      list.postings[i].digest = next;
    }
    list.digest = invindex::ListDigest(list.weight, list.theta_digest,
                                       list.FirstPostingDigest());
  });
  return index;
}

Status FgInvertedIndex::RechainList(FgList* list) {
  // Restore group ordering (impact desc, freq asc on ties).
  std::sort(list->postings.begin(), list->postings.end(),
            [list](const FgPosting& a, const FgPosting& b) {
              double ia = a.GroupImpact(list->weight);
              double ib = b.GroupImpact(list->weight);
              if (ia != ib) return ia > ib;
              return a.freq < b.freq;
            });
  if (with_filters_) {
    cuckoo::CuckooFilter filter(filter_params_);
    for (const FgPosting& p : list->postings) {
      for (const FgMember& m : p.members) {
        if (!filter.Insert(m.id)) {
          return Status::Error(
              "fg: list outgrew the shared filter geometry; full rebuild "
              "required");
        }
      }
    }
    list->theta_digest = filter.StateDigest();
    list->filter = std::move(filter);
  }
  Digest next = Digest::Zero();
  for (size_t i = list->postings.size(); i-- > 0;) {
    next = FgPostingDigest(list->postings[i], next);
    list->postings[i].digest = next;
  }
  list->digest = invindex::ListDigest(list->weight, list->theta_digest,
                                      list->FirstPostingDigest());
  return Status::Ok();
}

Status FgInvertedIndex::ApplyInsert(ClusterId c, ImageId id, uint32_t freq,
                                    double norm) {
  if (c >= lists_.size()) return Status::Error("fg: cluster out of range");
  if (freq == 0 || !(norm > 0)) return Status::Error("fg: bad posting values");
  FgList& list = lists_[c];
  for (const FgPosting& p : list.postings) {
    for (const FgMember& m : p.members) {
      if (m.id == id) return Status::Error("fg: image already in list");
    }
  }
  FgMember member{id, norm};
  auto group = std::find_if(list.postings.begin(), list.postings.end(),
                            [freq](const FgPosting& p) { return p.freq == freq; });
  if (group == list.postings.end()) {
    FgPosting posting;
    posting.freq = freq;
    posting.members.push_back(member);
    list.postings.push_back(std::move(posting));
  } else {
    auto pos = std::lower_bound(group->members.begin(), group->members.end(),
                                member, [](const FgMember& a, const FgMember& b) {
                                  if (a.norm != b.norm) return a.norm < b.norm;
                                  return a.id < b.id;
                                });
    group->members.insert(pos, member);
  }
  return RechainList(&list);
}

Status FgInvertedIndex::ApplyRemove(ClusterId c, ImageId id) {
  if (c >= lists_.size()) return Status::Error("fg: cluster out of range");
  FgList& list = lists_[c];
  for (auto group = list.postings.begin(); group != list.postings.end();
       ++group) {
    auto pos = std::find_if(group->members.begin(), group->members.end(),
                            [id](const FgMember& m) { return m.id == id; });
    if (pos == group->members.end()) continue;
    group->members.erase(pos);
    if (group->members.empty()) list.postings.erase(group);
    return RechainList(&list);
  }
  return Status::Error("fg: image not in list");
}

std::vector<Digest> FgInvertedIndex::ListDigests() const {
  std::vector<Digest> out(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) out[i] = lists_[i].digest;
  return out;
}

size_t FgInvertedIndex::TotalGroups() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.postings.size();
  return n;
}

size_t FgInvertedIndex::TotalImageEntries() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.TotalImages();
  return n;
}

}  // namespace imageproof::freqgroup
