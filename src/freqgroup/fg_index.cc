#include "freqgroup/fg_index.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"
#include "invindex/merkle_inv_index.h"

namespace imageproof::freqgroup {

namespace {

// Group preimage bytes — the same canonical encodings FgPostingDigest
// streams through DigestBuilder (freq | members (id, norm)... | next).
void AppendGroupMsg(ByteWriter& w, const FgPosting& posting,
                    const Digest& next) {
  w.PutU32(posting.freq);
  for (const FgMember& m : posting.members) {
    w.PutU64(m.id);
    w.PutF64(m.norm);
  }
  crypto::PutDigest(w, next);
}

// Interleaves the backward group-digest chains of a range of lists across
// the four Keccak lanes. Unlike the fixed-size posting messages of the
// plain index, group messages vary in length (4 + 12|members| + 32 bytes),
// so a lane may take several Steps per message; each lane still walks its
// own list strictly in chain order, and a drained lane picks up the next
// list.
void ChainFgLists(FgList** lists, size_t n) {
  struct Lane {
    FgList* list = nullptr;
    size_t i = 0;  // groups remaining (current group is i - 1)
    Digest next = Digest::Zero();
    Bytes buf;
  };
  crypto::Sha3x4 eng;
  Lane lanes[crypto::Sha3x4::kLanes];
  size_t next_list = 0;
  int active = 0;

  auto start_msg = [&](int j) {
    Lane& lane = lanes[j];
    ByteWriter w;
    AppendGroupMsg(w, lane.list->postings[lane.i - 1], lane.next);
    lane.buf = w.Take();
    eng.Start(j, lane.buf.data(), lane.buf.size());
  };
  auto feed = [&](int j) -> bool {
    while (next_list < n) {
      FgList* l = lists[next_list++];
      if (l->postings.empty()) continue;
      lanes[j].list = l;
      lanes[j].i = l->postings.size();
      lanes[j].next = Digest::Zero();
      start_msg(j);
      return true;
    }
    return false;
  };

  for (int j = 0; j < crypto::Sha3x4::kLanes; ++j) {
    if (feed(j)) ++active;
  }
  while (active > 0) {
    eng.Step();
    for (int j = 0; j < crypto::Sha3x4::kLanes; ++j) {
      if (!eng.done(j)) continue;
      Lane& lane = lanes[j];
      lane.next = eng.Take(j);
      lane.list->postings[lane.i - 1].digest = lane.next;
      if (--lane.i > 0) {
        start_msg(j);
      } else if (!feed(j)) {
        --active;
      }
    }
  }
}

}  // namespace

Digest FgPostingDigest(const FgPosting& posting, const Digest& next) {
  crypto::DigestBuilder b;
  b.AddU32(posting.freq);
  for (const FgMember& m : posting.members) {
    b.AddU64(m.id);
    b.AddF64(m.norm);
  }
  b.AddDigest(next);
  return b.Finalize();
}

size_t FgList::TotalImages() const {
  size_t n = 0;
  for (const auto& p : postings) n += p.members.size();
  return n;
}

FgInvertedIndex FgInvertedIndex::Build(
    size_t num_clusters,
    const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
    const bovw::ClusterWeights& weights, bool with_filters,
    uint32_t fingerprint_bits, uint64_t filter_seed,
    std::optional<cuckoo::CuckooParams> geometry) {
  FgInvertedIndex index;
  index.with_filters_ = with_filters;
  index.lists_.resize(num_clusters);

  // cluster -> freq -> members.
  std::vector<std::map<uint32_t, std::vector<FgMember>>> raw(num_clusters);
  size_t max_len = 1;
  std::vector<size_t> lengths(num_clusters, 0);
  for (const auto& [id, vec] : corpus) {
    double norm = vec.L2Norm();
    for (const auto& [c, f] : vec.entries) {
      if (c >= num_clusters) continue;
      raw[c][f].push_back(FgMember{id, norm});
      ++lengths[c];
    }
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    max_len = std::max(max_len, lengths[c]);
  }
  index.filter_params_ =
      geometry.has_value()
          ? *geometry
          : cuckoo::CuckooParams::ForMaxItems(max_len, fingerprint_bits,
                                              filter_seed);
  const cuckoo::CuckooParams& filter_params = index.filter_params_;

  // Per-list builds are independent; parallelize with identical results.
  // Chunked so each worker interleaves its lists' group chains across the
  // four Keccak lanes.
  ParallelChunks(num_clusters, /*chunk=*/16, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      FgList& list = index.lists_[c];
      list.cluster = static_cast<ClusterId>(c);
      list.weight = weights.WeightOf(static_cast<ClusterId>(c));

      for (auto& [freq, members] : raw[c]) {
        FgPosting posting;
        posting.freq = freq;
        std::sort(members.begin(), members.end(),
                  [](const FgMember& a, const FgMember& b) {
                    if (a.norm != b.norm) return a.norm < b.norm;
                    return a.id < b.id;
                  });
        posting.members = std::move(members);
        list.postings.push_back(std::move(posting));
      }
      // Order groups by descending impact (freq ascending on ties for
      // determinism).
      std::sort(list.postings.begin(), list.postings.end(),
                [&list](const FgPosting& a, const FgPosting& b) {
                  double ia = a.GroupImpact(list.weight);
                  double ib = b.GroupImpact(list.weight);
                  if (ia != ib) return ia > ib;
                  return a.freq < b.freq;
                });

      if (with_filters) {
        cuckoo::CuckooFilter filter(filter_params);
        for (const FgPosting& p : list.postings) {
          for (const FgMember& m : p.members) {
            bool ok = filter.Insert(m.id);
            (void)ok;
          }
        }
        list.theta_digest = filter.StateDigest();
        list.filter = std::move(filter);
      } else {
        list.theta_digest = Digest::Zero();
      }
    }

    std::vector<FgList*> ptrs;
    ptrs.reserve(end - begin);
    for (size_t c = begin; c < end; ++c) ptrs.push_back(&index.lists_[c]);
    ChainFgLists(ptrs.data(), ptrs.size());
    for (size_t c = begin; c < end; ++c) {
      FgList& list = index.lists_[c];
      list.digest = invindex::ListDigest(list.weight, list.theta_digest,
                                         list.FirstPostingDigest());
    }
  });
  return index;
}

Result<FgInvertedIndex> FgInvertedIndex::Restore(
    const cuckoo::CuckooParams& geometry, bool with_filters,
    std::vector<FgList> lists) {
  FgInvertedIndex index;
  index.with_filters_ = with_filters;
  index.filter_params_ = geometry;
  for (size_t c = 0; c < lists.size(); ++c) {
    FgList& list = lists[c];
    if (list.cluster != static_cast<ClusterId>(c)) {
      return Status::Corrupted("fg restore: cluster id out of place");
    }
    for (size_t g = 0; g < list.postings.size(); ++g) {
      const FgPosting& p = list.postings[g];
      // Groups must be nonempty (an empty group is dissolved on update) and
      // member-ordered (norm asc, id asc) — the order the digest preimage
      // and the VO's d-gap recovery both assume.
      if (p.members.empty()) {
        return Status::Corrupted("fg restore: empty group");
      }
      for (size_t i = 1; i < p.members.size(); ++i) {
        const FgMember& a = p.members[i - 1];
        const FgMember& b = p.members[i];
        if (!(a.norm < b.norm || (a.norm == b.norm && a.id < b.id))) {
          return Status::Corrupted("fg restore: group members out of order");
        }
      }
      if (g > 0) {
        const FgPosting& prev = list.postings[g - 1];
        double ip = prev.GroupImpact(list.weight);
        double ig = p.GroupImpact(list.weight);
        if (!(ip > ig || (ip == ig && prev.freq < p.freq))) {
          return Status::Corrupted("fg restore: groups out of order");
        }
      }
    }
    if (with_filters) {
      if (!list.filter.has_value() || list.filter->params() != geometry) {
        return Status::Corrupted(
            "fg restore: filter missing or geometry diverges");
      }
      list.theta_digest = list.filter->StateDigest();
    } else {
      if (list.filter.has_value()) {
        return Status::Corrupted("fg restore: unexpected filter");
      }
      list.theta_digest = Digest::Zero();
    }
    list.digest = invindex::ListDigest(list.weight, list.theta_digest,
                                       list.FirstPostingDigest());
  }
  index.lists_ = std::move(lists);
  return index;
}

Status FgInvertedIndex::VerifyChains() const {
  for (const FgList& list : lists_) {
    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = FgPostingDigest(list.postings[i], next);
      if (next != list.postings[i].digest) {
        return Status::Corrupted("fg: stored group chain digest diverges");
      }
    }
  }
  return Status::Ok();
}

Status FgInvertedIndex::RepairList(FgList* list,
                                   const std::vector<uint32_t>& old_freqs,
                                   uint32_t touched_freq) {
  // Restore group ordering (impact desc, freq asc on ties).
  std::sort(list->postings.begin(), list->postings.end(),
            [list](const FgPosting& a, const FgPosting& b) {
              double ia = a.GroupImpact(list->weight);
              double ib = b.GroupImpact(list->weight);
              if (ia != ib) return ia > ib;
              return a.freq < b.freq;
            });
  if (with_filters_) {
    // Filter state depends on insertion order over the whole list, so it is
    // always rebuilt in full (theta_digest must match a from-scratch build).
    cuckoo::CuckooFilter filter(filter_params_);
    for (const FgPosting& p : list->postings) {
      for (const FgMember& m : p.members) {
        if (!filter.Insert(m.id)) {
          return Status::Error(
              "fg: list outgrew the shared filter geometry; full rebuild "
              "required");
        }
      }
    }
    list->theta_digest = filter.StateDigest();
    list->filter = std::move(filter);
  }
  // Longest common suffix of the old and new group orders that excludes the
  // touched group (groups are keyed by freq within a list): a group digest
  // depends only on its chain suffix, and those suffixes are unchanged, so
  // the stored digests there are still valid. Anchor at the first valid
  // index and recompute only the prefix.
  size_t k = list->postings.size();
  size_t j = old_freqs.size();
  while (k > 0 && j > 0 && list->postings[k - 1].freq == old_freqs[j - 1] &&
         list->postings[k - 1].freq != touched_freq) {
    --k;
    --j;
  }
  Digest next = k < list->postings.size() ? list->postings[k].digest
                                          : Digest::Zero();
  for (size_t i = k; i-- > 0;) {
    next = FgPostingDigest(list->postings[i], next);
    list->postings[i].digest = next;
  }
  list->digest = invindex::ListDigest(list->weight, list->theta_digest,
                                      list->FirstPostingDigest());
  return Status::Ok();
}

Status FgInvertedIndex::ApplyInsert(ClusterId c, ImageId id, uint32_t freq,
                                    double norm) {
  if (c >= lists_.size()) return Status::Error("fg: cluster out of range");
  if (freq == 0 || !(norm > 0)) return Status::Error("fg: bad posting values");
  FgList& list = lists_[c];
  for (const FgPosting& p : list.postings) {
    for (const FgMember& m : p.members) {
      if (m.id == id) return Status::Error("fg: image already in list");
    }
  }
  std::vector<uint32_t> old_freqs;
  old_freqs.reserve(list.postings.size());
  for (const FgPosting& p : list.postings) old_freqs.push_back(p.freq);
  FgMember member{id, norm};
  auto group = std::find_if(list.postings.begin(), list.postings.end(),
                            [freq](const FgPosting& p) { return p.freq == freq; });
  if (group == list.postings.end()) {
    FgPosting posting;
    posting.freq = freq;
    posting.members.push_back(member);
    list.postings.push_back(std::move(posting));
  } else {
    auto pos = std::lower_bound(group->members.begin(), group->members.end(),
                                member, [](const FgMember& a, const FgMember& b) {
                                  if (a.norm != b.norm) return a.norm < b.norm;
                                  return a.id < b.id;
                                });
    group->members.insert(pos, member);
  }
  return RepairList(&list, old_freqs, freq);
}

Status FgInvertedIndex::ApplyRemove(ClusterId c, ImageId id) {
  if (c >= lists_.size()) return Status::Error("fg: cluster out of range");
  FgList& list = lists_[c];
  for (auto group = list.postings.begin(); group != list.postings.end();
       ++group) {
    auto pos = std::find_if(group->members.begin(), group->members.end(),
                            [id](const FgMember& m) { return m.id == id; });
    if (pos == group->members.end()) continue;
    std::vector<uint32_t> old_freqs;
    old_freqs.reserve(list.postings.size());
    for (const FgPosting& p : list.postings) old_freqs.push_back(p.freq);
    const uint32_t touched_freq = group->freq;
    group->members.erase(pos);
    if (group->members.empty()) list.postings.erase(group);
    return RepairList(&list, old_freqs, touched_freq);
  }
  return Status::Error("fg: image not in list");
}

std::vector<Digest> FgInvertedIndex::ListDigests() const {
  std::vector<Digest> out(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) out[i] = lists_[i].digest;
  return out;
}

size_t FgInvertedIndex::TotalGroups() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.postings.size();
  return n;
}

size_t FgInvertedIndex::TotalImageEntries() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.TotalImages();
  return n;
}

}  // namespace imageproof::freqgroup
