// Frequency-grouped Merkle inverted index with cuckoo filters
// (Section VI-B, Optimization B).
//
// Images with the same frequency count f in a cluster's list are grouped
// into one posting. Within a group, members are ordered by ascending BoVW
// L2 norm (id ascending on ties), so the first member carries the group's
// largest impact w*f/l — which is the group's impact used for list
// ordering and for the remaining-impact caps during PostingSearch. Group
// digests chain backwards like plain postings:
//   h_pos = h(f | I_1 | l_1 | ... | I_n | l_n | h_next)      (Definition 6)
//   h_Gamma = h(w | h(Theta) | h_pos_1)                       (Definition 7)
// Because member order is recoverable from the member data itself (sort by
// (l, id)), the VO may transmit members id-sorted with d-gap varints — the
// paper's compression — without losing digest verifiability.

#ifndef IMAGEPROOF_FREQGROUP_FG_INDEX_H_
#define IMAGEPROOF_FREQGROUP_FG_INDEX_H_

#include <optional>
#include <vector>

#include "bovw/bovw.h"
#include "crypto/digest.h"
#include "cuckoo/cuckoo_filter.h"

namespace imageproof::freqgroup {

using bovw::ClusterId;
using bovw::ImageId;
using crypto::Digest;

struct FgMember {
  ImageId id = 0;
  double norm = 0.0;  // ||B_I||

  bool operator==(const FgMember&) const = default;
};

struct FgPosting {
  uint32_t freq = 0;
  std::vector<FgMember> members;  // (norm asc, id asc)
  Digest digest;

  // Impact of member i given the cluster weight.
  double MemberImpact(double weight, size_t i) const {
    return bovw::ImpactValue(weight, freq, members[i].norm);
  }
  // The group's (maximal) impact = impact of the first member.
  double GroupImpact(double weight) const { return MemberImpact(weight, 0); }
};

// h(f | I_1 | l_1 | ... | h_next), per Definition 6.
Digest FgPostingDigest(const FgPosting& posting, const Digest& next);

struct FgList {
  ClusterId cluster = 0;
  double weight = 0.0;
  std::vector<FgPosting> postings;  // group impact descending
  std::optional<cuckoo::CuckooFilter> filter;
  Digest theta_digest;
  Digest digest;  // h_Gamma

  bool empty() const { return postings.empty(); }
  Digest FirstPostingDigest() const {
    return postings.empty() ? Digest::Zero() : postings.front().digest;
  }
  size_t TotalImages() const;
};

class FgInvertedIndex {
 public:
  // `geometry` pins the shared CuckooParams instead of re-deriving them
  // from the longest list — required when reloading a package whose lists
  // changed through incremental updates (the geometry is committed state).
  static FgInvertedIndex Build(
      size_t num_clusters,
      const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
      const bovw::ClusterWeights& weights, bool with_filters,
      uint32_t fingerprint_bits = 8, uint64_t filter_seed = 0xF117E2,
      std::optional<cuckoo::CuckooParams> geometry = std::nullopt);

  // Reattaches a persisted index without rewalking the group chains (the
  // mmap package store's cold-start path): validates group/member ordering
  // and the shared filter geometry, recomputes h(Theta) from the stored
  // filter state and h_Gamma per Definition 7, and keeps the stored group
  // digests — bound to the signature through h_pos_1 and re-derived by
  // clients per query. See MerkleInvertedIndex::Restore.
  static Result<FgInvertedIndex> Restore(const cuckoo::CuckooParams& geometry,
                                         bool with_filters,
                                         std::vector<FgList> lists);

  // Recomputes every group-chain digest and compares it with the stored
  // value (package-store deep verify). kCorrupted on the first mismatch.
  Status VerifyChains() const;

  bool with_filters() const { return with_filters_; }
  size_t num_clusters() const { return lists_.size(); }
  const FgList& list(ClusterId c) const { return lists_[c]; }
  const cuckoo::CuckooParams& filter_params() const { return filter_params_; }
  std::vector<Digest> ListDigests() const;
  size_t TotalGroups() const;
  size_t TotalImageEntries() const;

  // Incremental owner-side updates (core/update.h); weights stay frozen.
  // Inserting adds the image to its frequency group (creating the group if
  // needed); removing may dissolve a group. Digest chains and the filter
  // are rebuilt for the affected list only.
  Status ApplyInsert(ClusterId c, ImageId id, uint32_t freq, double norm);
  Status ApplyRemove(ClusterId c, ImageId id);

 private:
  // Re-sorts groups, rebuilds the filter, and recomputes only the chain
  // prefix invalidated by an edit to the group keyed `touched_freq`: the
  // longest common unmodified suffix of `old_freqs` (the pre-edit group
  // order) and the new order keeps its digests.
  Status RepairList(FgList* list, const std::vector<uint32_t>& old_freqs,
                    uint32_t touched_freq);

  bool with_filters_ = true;
  cuckoo::CuckooParams filter_params_;
  std::vector<FgList> lists_;
};

}  // namespace imageproof::freqgroup

#endif  // IMAGEPROOF_FREQGROUP_FG_INDEX_H_
