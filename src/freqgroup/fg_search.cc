#include "freqgroup/fg_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

#include "common/varint_kernels.h"
#include "invindex/bounds.h"
#include "invindex/vo_compress.h"

namespace imageproof::freqgroup {

using invindex::BoundsEngine;
using invindex::BoundsList;

namespace {

struct SearchList {
  const FgList* list = nullptr;
  double q_impact = 0.0;
  size_t next_pop = 0;  // groups [0, next_pop) popped
};

BoundsEngine CanonicalEngine(const std::vector<SearchList>& lists,
                             bool use_filters) {
  std::vector<BoundsList> bl;
  bl.reserve(lists.size());
  for (const SearchList& sl : lists) {
    BoundsList b;
    b.cluster = sl.list->cluster;
    b.q_impact = sl.q_impact;
    bool exhausted = sl.next_pop >= sl.list->postings.size();
    if (use_filters && !exhausted) b.filter = sl.list->filter;
    bl.push_back(std::move(b));
  }
  BoundsEngine engine(std::move(bl), use_filters);
  for (size_t li = 0; li < lists.size(); ++li) {
    const SearchList& sl = lists[li];
    for (size_t g = 0; g < sl.next_pop; ++g) {
      const FgPosting& p = sl.list->postings[g];
      double cap = p.GroupImpact(sl.list->weight);
      for (size_t m = 0; m < p.members.size(); ++m) {
        Status s = engine.AddPopped(li, p.members[m].id,
                                    p.MemberImpact(sl.list->weight, m), cap);
        (void)s;
      }
    }
    if (sl.next_pop >= sl.list->postings.size()) engine.MarkExhausted(li);
  }
  return engine;
}

bool ConditionsHold(const BoundsEngine& engine,
                    const std::vector<ImageId>& topk_ids) {
  double skl = 0;
  if (!invindex::VerifyClaimedTopK(engine, topk_ids, &skl)) return false;
  if (skl < engine.PiUpper()) return false;
  std::unordered_set<ImageId> topk_set(topk_ids.begin(), topk_ids.end());
  for (const auto& [id, score] : engine.Scores()) {
    if (topk_set.contains(id)) continue;
    if (engine.SUpper(id) > skl) return false;
  }
  return true;
}

}  // namespace

FgSearchResult FgSearch(const FgInvertedIndex& index,
                        const bovw::BovwVector& query_bovw,
                        const invindex::InvSearchParams& params,
                        kern::SearchScratch* scratch) {
  FgSearchResult result;
  kern::SearchScratch local_scratch;
  kern::SearchScratch& scr = scratch ? *scratch : local_scratch;
  const bool use_filters = index.with_filters();
  const double norm = query_bovw.L2Norm();

  std::vector<SearchList> relevant;
  for (const auto& [c, f] : query_bovw.entries) {
    if (c >= index.num_clusters()) continue;
    const FgList& list = index.list(c);
    double q_impact = bovw::ImpactValue(list.weight, f, norm);
    if (q_impact > 0 && !list.empty()) {
      relevant.push_back(SearchList{&list, q_impact, 0});
    }
  }
  result.stats.relevant_lists = relevant.size();
  for (const SearchList& sl : relevant) {
    result.stats.relevant_postings += sl.list->TotalImages();
  }

  // Exact top-k: reusable flat accumulator + bounded size-k heap under
  // (score desc, id asc) — same selection as the full sort it replaces
  // (see invindex/search.cc).
  kern::ScoreAccumulator& exact = scr.scores;
  exact.Clear();
  for (const SearchList& sl : relevant) {
    for (const FgPosting& p : sl.list->postings) {
      for (size_t m = 0; m < p.members.size(); ++m) {
        exact.Add(p.members[m].id,
                  sl.q_impact * p.MemberImpact(sl.list->weight, m));
      }
    }
  }
  scr.score_heap.clear();
  for (size_t i = 0; i < exact.size(); ++i) {
    kern::TopKPush(scr.score_heap, params.k, {exact.value(i), exact.key(i)});
  }
  kern::TopKFinish(scr.score_heap);
  size_t k = scr.score_heap.size();
  result.topk.resize(k);
  for (size_t i = 0; i < k; ++i) {
    result.topk[i] = {scr.score_heap[i].id, scr.score_heap[i].score};
  }
  std::vector<ImageId> topk_ids;
  for (const auto& si : result.topk) topk_ids.push_back(si.id);
  std::unordered_set<ImageId> topk_set(topk_ids.begin(), topk_ids.end());

  // k == 0 asks for nothing; emit a pop-free VO (see invindex/search.cc).
  const bool trivial = k == 0;

  // Pop through the deepest group containing a top-k image, at least one
  // group per list — applied up front so the engine is fed once, in
  // canonical order (see invindex/search.cc).
  for (size_t li = 0; !trivial && li < relevant.size(); ++li) {
    const auto& postings = relevant[li].list->postings;
    size_t deepest = 0;
    for (size_t g = 0; g < postings.size(); ++g) {
      for (const FgMember& m : postings[g].members) {
        if (topk_set.contains(m.id)) deepest = g;
      }
    }
    relevant[li].next_pop = deepest + 1;
    for (size_t g = 0; g < relevant[li].next_pop; ++g) {
      result.stats.popped_postings += postings[g].members.size();
    }
  }
  BoundsEngine engine = CanonicalEngine(relevant, use_filters);

  auto pop_group = [&](size_t li) -> bool {
    SearchList& sl = relevant[li];
    if (sl.next_pop >= sl.list->postings.size()) return false;
    const FgPosting& p = sl.list->postings[sl.next_pop++];
    double cap = p.GroupImpact(sl.list->weight);
    for (size_t m = 0; m < p.members.size(); ++m) {
      Status s = engine.AddPopped(li, p.members[m].id,
                                  p.MemberImpact(sl.list->weight, m), cap);
      (void)s;
      ++result.stats.popped_postings;
    }
    if (sl.next_pop >= sl.list->postings.size()) engine.MarkExhausted(li);
    return true;
  };

  // See invindex/search.cc: min over the (fully popped) claimed top-k is
  // the exact s_k^L, at O(k) per check.
  auto sk_lower = [&]() {
    double skl = std::numeric_limits<double>::infinity();
    for (ImageId id : topk_ids) skl = std::min(skl, engine.ScoreOf(id));
    return topk_ids.empty() ? 0.0 : skl;
  };

  // Condition 1.
  while (!trivial) {
    ++result.stats.condition_checks;
    if (sk_lower() >= engine.PiUpper()) break;
    size_t best = relevant.size();
    double best_val = -1;
    for (size_t li = 0; li < relevant.size(); ++li) {
      if (engine.Exhausted(li)) continue;
      double v = relevant[li].q_impact * engine.Cap(li);
      if (v > best_val) {
        best_val = v;
        best = li;
      }
    }
    if (best == relevant.size()) break;
    pop_group(best);
  }

  // Condition 2 loop (also re-run by the settle pass below).
  auto run_condition2 = [&]() {
    while (!trivial) {
      ++result.stats.condition_checks;
      double skl = sk_lower();
      ImageId violator = 0;
      bool found = false;
      for (const auto& [id, score] : engine.Scores()) {
        if (topk_set.contains(id)) continue;
        if (engine.SUpper(id) > skl) {
          violator = id;
          found = true;
          break;
        }
      }
      if (!found) break;
      auto possible = engine.PossibleLists(violator);
      bool progressed = false;
      double skl_now = skl;
      for (size_t li : possible) {
        size_t popped_here = 0;
        while (!engine.Exhausted(li) && !engine.PoppedIn(li, violator)) {
          if (!pop_group(li)) break;
          ++popped_here;
          if (popped_here % params.check_batch == 0 &&
              engine.SUpper(violator) <= skl_now) {
            break;
          }
        }
        if (popped_here > 0) progressed = true;
        if (engine.SUpper(violator) <= skl_now) break;
      }
      if (!progressed) break;
    }
  };
  run_condition2();

  // Settle pass (settle_exact_topk): pop groups until no unpopped suffix
  // can still contain a claimed image — same monotonicity argument as
  // invindex/search.cc. Condition 2 is re-settled inline on the new state.
  while (params.settle_exact_topk && !trivial) {
    size_t pop_li = relevant.size();
    for (ImageId id : topk_ids) {
      std::vector<size_t> possible = engine.PossibleLists(id);
      if (!possible.empty()) {
        pop_li = possible.front();
        break;
      }
    }
    if (pop_li == relevant.size()) break;  // every claimed score is exact
    if (pop_group(pop_li)) ++result.stats.popped_settle;
    run_condition2();
  }

  // Final canonical re-check (same rationale as invindex/search.cc).
  while (!trivial) {
    BoundsEngine canonical = CanonicalEngine(relevant, use_filters);
    ++result.stats.condition_checks;
    if (ConditionsHold(canonical, topk_ids)) break;
    size_t best = relevant.size();
    double best_val = -1;
    for (size_t li = 0; li < relevant.size(); ++li) {
      if (engine.Exhausted(li)) continue;
      double v = relevant[li].q_impact * engine.Cap(li);
      if (v > best_val) {
        best_val = v;
        best = li;
      }
    }
    if (best == relevant.size()) break;
    pop_group(best);
  }

  // ----- VO serialization -----
  ByteWriter w;
  const bool compress = params.compress_vo;
  w.PutU8(static_cast<uint8_t>((use_filters ? 1 : 0) |
                               (compress ? invindex::kVoFlagCompressed : 0)));
  std::map<size_t, size_t> relevant_by_cluster;
  for (size_t li = 0; li < relevant.size(); ++li) {
    relevant_by_cluster[relevant[li].list->cluster] = li;
  }
  // Reused across groups in compressed mode (no per-group allocation once
  // warm).
  std::vector<FgMember> by_id;
  std::vector<uint32_t> gap_u32, norm_u32;
  w.PutVarint(query_bovw.entries.size());
  for (const auto& [c, f] : query_bovw.entries) {
    const FgList& list = index.list(c);
    w.PutVarint(c);
    w.PutF64(list.weight);
    auto it = relevant_by_cluster.find(c);
    size_t popped =
        it == relevant_by_cluster.end() ? 0 : relevant[it->second].next_pop;
    w.PutVarint(popped);
    for (size_t g = 0; g < popped; ++g) {
      const FgPosting& p = list.postings[g];
      w.PutVarint(p.freq);
      w.PutVarint(p.members.size());
      // Transmit members id-ascending with d-gaps; norms ride along. The
      // verifier re-sorts by (norm, id) to rebuild the digest order.
      by_id = p.members;
      std::sort(by_id.begin(), by_id.end(),
                [](const FgMember& a, const FgMember& b) { return a.id < b.id; });
      if (!compress) {
        ImageId prev = 0;
        for (size_t m = 0; m < by_id.size(); ++m) {
          w.PutVarint(m == 0 ? by_id[m].id : by_id[m].id - prev);
          prev = by_id[m].id;
          w.PutF64(by_id[m].norm);
        }
      } else {
        // Split streams: a group-varint block of id d-gaps (first value
        // absolute), then a block of u32 squared norms. Either stream
        // falls back per group — LEB128 gaps / raw f64 norms — when a
        // value does not fit, so any index the legacy encoding can ship,
        // this one can too.
        gap_u32.clear();
        norm_u32.clear();
        bool gv_ids = true, gv_norms = true;
        ImageId prev = 0;
        for (size_t m = 0; m < by_id.size(); ++m) {
          ImageId gap = m == 0 ? by_id[m].id : by_id[m].id - prev;
          prev = by_id[m].id;
          if (gap > 0xFFFFFFFFull) gv_ids = false;
          gap_u32.push_back(static_cast<uint32_t>(gap));
          uint32_t msq = 0;
          if (!invindex::SquaredNormU32(by_id[m].norm, &msq)) gv_norms = false;
          norm_u32.push_back(msq);
        }
        w.PutU8(static_cast<uint8_t>((gv_ids ? invindex::kGvIds : 0) |
                                     (gv_norms ? invindex::kGvNormsSq : 0)));
        if (gv_ids) {
          kern::GroupVarintEncode(gap_u32.data(), gap_u32.size(), w);
        } else {
          prev = 0;
          for (size_t m = 0; m < by_id.size(); ++m) {
            w.PutVarint(m == 0 ? by_id[m].id : by_id[m].id - prev);
            prev = by_id[m].id;
          }
        }
        if (gv_norms) {
          kern::GroupVarintEncode(norm_u32.data(), norm_u32.size(), w);
        } else {
          for (const FgMember& m : by_id) w.PutF64(m.norm);
        }
      }
    }
    bool has_remaining = popped < list.postings.size();
    bool relevant_list = it != relevant_by_cluster.end();
    bool filter_included = use_filters && relevant_list && has_remaining;
    uint8_t flags = (has_remaining ? 1 : 0) | (filter_included ? 2 : 0);
    w.PutU8(flags);
    if (has_remaining) crypto::PutDigest(w, list.postings[popped].digest);
    if (use_filters) {
      if (filter_included) {
        w.PutBlob(list.filter->Serialize());
      } else {
        crypto::PutDigest(w, list.theta_digest);
      }
    }
  }
  result.vo = w.Take();
  return result;
}

}  // namespace imageproof::freqgroup
