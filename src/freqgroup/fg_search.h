// SP-side authenticated top-k search over the frequency-grouped Merkle
// inverted index (Optimization B). Same termination conditions as
// invindex/search.h, evaluated at group granularity: popping a group
// reveals all of its member images at once and lowers the list's remaining
// cap to the group's impact.
//
// VO layout:
//   u8   flags: bit0 use_filters, bit1 compressed (vo_compress.h)
//   varint num_lists                      -- the query's BoVW support
//   per list (cluster ascending):
//     varint cluster_id; f64 weight
//     varint num_popped_groups
//     per group: varint freq; varint num_members;
//       uncompressed: members id-ascending as (varint d-gap id, f64 norm)
//       compressed:   u8 group_flags (bit0 ids group-varint, bit1 norms as
//                     u32 squared values); then the id-gap stream, then the
//                     norm stream — group-varint blocks or the per-value
//                     fallbacks (LEB128 gaps / raw f64 norms)
//     u8 flags (bit0 has_remaining, bit1 filter_included)
//     [has_remaining]   digest of first unpopped group
//     [filter_included] blob: original cuckoo filter
//     [use_filters && !filter_included] digest h(Theta)

#ifndef IMAGEPROOF_FREQGROUP_FG_SEARCH_H_
#define IMAGEPROOF_FREQGROUP_FG_SEARCH_H_

#include "common/bytes.h"
#include "freqgroup/fg_index.h"
#include "invindex/search.h"

namespace imageproof::freqgroup {

struct FgSearchResult {
  std::vector<bovw::ScoredImage> topk;
  Bytes vo;
  invindex::InvSearchStats stats;  // popped counts are *image entries*
};

// `scratch` (optional) supplies the reusable score accumulator and top-k
// heap (see invindex::InvSearch); output is identical either way.
FgSearchResult FgSearch(const FgInvertedIndex& index,
                        const bovw::BovwVector& query_bovw,
                        const invindex::InvSearchParams& params,
                        kern::SearchScratch* scratch = nullptr);

}  // namespace imageproof::freqgroup

#endif  // IMAGEPROOF_FREQGROUP_FG_SEARCH_H_
