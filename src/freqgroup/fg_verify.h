// Client-side verification of an FgSearch VO — the frequency-grouped
// counterpart of invindex/verify.h. Reconstructs group digests from the
// d-gap-compressed member reveals (re-sorted into the canonical (norm, id)
// digest order), replays pops through the shared bounds engine, and checks
// the same termination conditions.

#ifndef IMAGEPROOF_FREQGROUP_FG_VERIFY_H_
#define IMAGEPROOF_FREQGROUP_FG_VERIFY_H_

#include "common/bytes.h"
#include "common/status.h"
#include "invindex/verify.h"

namespace imageproof::freqgroup {

// Result type is shared with the plain index (same caller contract).
using invindex::InvVerifyResult;
using bovw::ImageId;

Status FgVerifyVo(const Bytes& vo, const bovw::BovwVector& query_bovw,
                  const std::vector<ImageId>& claimed_topk, size_t requested_k,
                  bool expect_filters, InvVerifyResult* out);

}  // namespace imageproof::freqgroup

#endif  // IMAGEPROOF_FREQGROUP_FG_VERIFY_H_
