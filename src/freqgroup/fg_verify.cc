#include "freqgroup/fg_verify.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/varint_kernels.h"
#include "freqgroup/fg_index.h"
#include "invindex/bounds.h"
#include "invindex/merkle_inv_index.h"
#include "invindex/vo_compress.h"

namespace imageproof::freqgroup {

using invindex::BoundsEngine;
using invindex::BoundsList;

namespace {

struct ParsedFgList {
  ClusterId cluster = 0;
  double weight = 0.0;
  std::vector<FgPosting> popped;  // members already in (norm, id) order
  bool has_remaining = false;
  bool filter_included = false;
  Digest first_remaining = Digest::Zero();
  Bytes filter_bytes;
  Digest theta_digest = Digest::Zero();
};

Status ParseLists(const Bytes& vo, bool expect_filters,
                  std::vector<ParsedFgList>* out) {
  ByteReader r(vo);
  uint8_t vo_flags;
  Status s = r.GetU8(&vo_flags);
  if (!s.ok()) return s;
  if (vo_flags > 3) return Status::Error("fg: non-canonical flag byte");
  const bool compressed = vo_flags & invindex::kVoFlagCompressed;
  const uint8_t use_filters = vo_flags & 1;
  if ((use_filters != 0) != expect_filters) {
    return Status::Error("fg: VO filter mode mismatch");
  }
  uint64_t num_lists;
  if (!(s = r.GetVarint(&num_lists)).ok()) return s;
  if (num_lists > r.remaining() / 10) {
    return Status::Error("fg: list count exceeds input size");
  }
  out->clear();
  out->reserve(num_lists);
  std::vector<uint32_t> gap_buf, norm_buf;  // reused across groups
  for (uint64_t i = 0; i < num_lists; ++i) {
    ParsedFgList pl;
    uint64_t cid;
    if (!(s = r.GetVarint(&cid)).ok()) return s;
    pl.cluster = static_cast<ClusterId>(cid);
    if (!(s = r.GetF64(&pl.weight)).ok()) return s;
    uint64_t num_groups;
    if (!(s = r.GetVarint(&num_groups)).ok()) return s;
    // A group needs at least 11 bytes uncompressed (freq + count + one
    // member), 7 compressed (freq + count + flags + two 2-byte blocks).
    if (num_groups > r.remaining() / (compressed ? 7 : 11)) {
      return Status::Error("fg: group count exceeds input size");
    }
    pl.popped.reserve(num_groups);
    for (uint64_t g = 0; g < num_groups; ++g) {
      FgPosting posting;
      uint64_t freq, num_members;
      if (!(s = r.GetVarint(&freq)).ok()) return s;
      if (freq == 0 || freq > (1u << 30)) return Status::Error("fg: bad freq");
      posting.freq = static_cast<uint32_t>(freq);
      if (!(s = r.GetVarint(&num_members)).ok()) return s;
      // A member needs at least 9 bytes uncompressed (varint id + f64
      // norm), 2 compressed (>=1.25 bytes per group-varint value, twice).
      if (num_members == 0 || num_members > r.remaining() / (compressed ? 2 : 9)) {
        return Status::Error("fg: bad member count");
      }
      posting.members.resize(num_members);
      if (!compressed) {
        ImageId prev = 0;
        for (uint64_t m = 0; m < num_members; ++m) {
          uint64_t gap;
          if (!(s = r.GetVarint(&gap)).ok()) return s;
          ImageId id = (m == 0) ? gap : prev + gap;
          if (m > 0 && gap == 0) {
            return Status::Error("fg: duplicate member id in group");
          }
          prev = id;
          posting.members[m].id = id;
          if (!(s = r.GetF64(&posting.members[m].norm)).ok()) return s;
          if (!(posting.members[m].norm > 0)) {
            return Status::Error("fg: non-positive norm");
          }
        }
      } else {
        uint8_t gflags = 0;
        if (!(s = r.GetU8(&gflags)).ok()) return s;
        if (gflags & ~(invindex::kGvIds | invindex::kGvNormsSq)) {
          return Status::Error("fg: unknown group flags");
        }
        ImageId prev = 0;
        if (gflags & invindex::kGvIds) {
          gap_buf.resize(num_members);
          if (!(s = kern::GroupVarintDecode(r, num_members, gap_buf.data()))
                   .ok()) {
            return s;
          }
          for (uint64_t m = 0; m < num_members; ++m) {
            if (m > 0 && gap_buf[m] == 0) {
              return Status::Error("fg: duplicate member id in group");
            }
            prev = (m == 0) ? gap_buf[m] : prev + gap_buf[m];
            posting.members[m].id = prev;
          }
        } else {
          for (uint64_t m = 0; m < num_members; ++m) {
            uint64_t gap;
            if (!(s = r.GetVarint(&gap)).ok()) return s;
            if (m > 0 && gap == 0) {
              return Status::Error("fg: duplicate member id in group");
            }
            prev = (m == 0) ? gap : prev + gap;
            posting.members[m].id = prev;
          }
        }
        if (gflags & invindex::kGvNormsSq) {
          norm_buf.resize(num_members);
          if (!(s = kern::GroupVarintDecode(r, num_members, norm_buf.data()))
                   .ok()) {
            return s;
          }
          for (uint64_t m = 0; m < num_members; ++m) {
            if (norm_buf[m] == 0) {
              return Status::Error("fg: non-positive norm");
            }
            posting.members[m].norm =
                std::sqrt(static_cast<double>(norm_buf[m]));
          }
        } else {
          for (uint64_t m = 0; m < num_members; ++m) {
            if (!(s = r.GetF64(&posting.members[m].norm)).ok()) return s;
            if (!(posting.members[m].norm > 0)) {
              return Status::Error("fg: non-positive norm");
            }
          }
        }
      }
      // Restore the canonical digest order.
      std::sort(posting.members.begin(), posting.members.end(),
                [](const FgMember& a, const FgMember& b) {
                  if (a.norm != b.norm) return a.norm < b.norm;
                  return a.id < b.id;
                });
      pl.popped.push_back(std::move(posting));
    }
    uint8_t flags = 0;
    if (!(s = r.GetU8(&flags)).ok()) return s;
    if (flags & ~3u) return Status::Error("fg: unknown flags");
    pl.has_remaining = flags & 1;
    pl.filter_included = flags & 2;
    if (pl.filter_included && !expect_filters) {
      return Status::Error("fg: filter shipped in baseline mode");
    }
    if (pl.has_remaining) {
      if (!(s = crypto::GetDigest(r, &pl.first_remaining)).ok()) return s;
    }
    if (expect_filters) {
      if (pl.filter_included) {
        if (!(s = r.GetBlob(&pl.filter_bytes)).ok()) return s;
      } else {
        if (!(s = crypto::GetDigest(r, &pl.theta_digest)).ok()) return s;
      }
    }
    out->push_back(std::move(pl));
  }
  if (!r.AtEnd()) return Status::Error("fg: trailing bytes in VO");
  return Status::Ok();
}

}  // namespace

Status FgVerifyVo(const Bytes& vo, const bovw::BovwVector& query_bovw,
                  const std::vector<ImageId>& claimed_topk, size_t requested_k,
                  bool expect_filters, InvVerifyResult* out) {
  std::vector<ParsedFgList> lists;
  Status s = ParseLists(vo, expect_filters, &lists);
  if (!s.ok()) return s;

  if (lists.size() != query_bovw.entries.size()) {
    return Status::Error("fg: VO does not cover the query's BoVW support");
  }
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].cluster != query_bovw.entries[i].first) {
      return Status::Error("fg: VO cluster set mismatch");
    }
  }

  const double norm = query_bovw.L2Norm();
  std::vector<BoundsList> bounds_lists;
  std::vector<const ParsedFgList*> relevant;

  for (const ParsedFgList& pl : lists) {
    if (pl.weight < 0) return Status::Error("fg: negative weight");
    Digest theta = Digest::Zero();
    std::optional<cuckoo::CuckooFilter> filter;
    if (expect_filters) {
      if (pl.filter_included) {
        auto f = cuckoo::CuckooFilter::Deserialize(pl.filter_bytes);
        if (!f.ok()) return f.status();
        theta = f->StateDigest();
        filter = std::move(*f);
      } else {
        theta = pl.theta_digest;
      }
    }
    Digest chain = pl.has_remaining ? pl.first_remaining : Digest::Zero();
    for (size_t g = pl.popped.size(); g-- > 0;) {
      chain = FgPostingDigest(pl.popped[g], chain);
    }
    out->list_digests[pl.cluster] =
        invindex::ListDigest(pl.weight, theta, chain);
    out->weights[pl.cluster] = pl.weight;
    for (const auto& p : pl.popped) out->popped_postings += p.members.size();

    uint32_t freq = query_bovw.FrequencyOf(pl.cluster);
    double q_impact = bovw::ImpactValue(pl.weight, freq, norm);
    bool is_relevant = q_impact > 0 && (pl.has_remaining || !pl.popped.empty());
    if (!is_relevant) {
      if (q_impact <= 0 && !pl.popped.empty()) {
        return Status::Error("fg: groups popped for irrelevant list");
      }
      if (pl.filter_included) {
        return Status::Error("fg: filter shipped for irrelevant list");
      }
      continue;
    }
    if (requested_k > 0 && pl.popped.empty() && pl.has_remaining) {
      return Status::Error("fg: relevant list with no popped groups");
    }
    if (expect_filters && pl.has_remaining && !pl.filter_included) {
      return Status::Error("fg: missing filter for relevant list");
    }
    BoundsList bl;
    bl.cluster = pl.cluster;
    bl.q_impact = q_impact;
    bl.filter = std::move(filter);
    bounds_lists.push_back(std::move(bl));
    relevant.push_back(&pl);
  }

  BoundsEngine engine(std::move(bounds_lists), expect_filters);
  for (size_t li = 0; li < relevant.size(); ++li) {
    const ParsedFgList& pl = *relevant[li];
    double weight = pl.weight;
    for (const FgPosting& p : pl.popped) {
      double cap = p.GroupImpact(weight);
      for (size_t m = 0; m < p.members.size(); ++m) {
        s = engine.AddPopped(li, p.members[m].id, p.MemberImpact(weight, m),
                             cap);
        if (!s.ok()) return s;
      }
    }
    if (!pl.has_remaining) engine.MarkExhausted(li);
  }

  if (claimed_topk.size() > requested_k) {
    return Status::Error("fg: more results than requested");
  }
  std::unordered_set<ImageId> dedup(claimed_topk.begin(), claimed_topk.end());
  if (dedup.size() != claimed_topk.size()) {
    return Status::Error("fg: duplicate result ids");
  }
  if (requested_k == 0) {
    // Nothing was requested, so nothing needs proving beyond the digests.
    if (!claimed_topk.empty() || out->popped_postings != 0) {
      return Status::Error("fg: nonempty proof for an empty request");
    }
    out->topk.clear();
    out->topk_exact = true;  // vacuously: no claimed scores
    return Status::Ok();
  }
  if (claimed_topk.size() < requested_k) {
    for (size_t li = 0; li < relevant.size(); ++li) {
      if (!engine.Exhausted(li)) {
        return Status::Error("fg: short result set with unpopped groups");
      }
    }
    if (engine.Scores().size() != claimed_topk.size()) {
      return Status::Error("fg: short result set hides popped images");
    }
  }
  double sk_lower = 0;
  if (!invindex::VerifyClaimedTopK(engine, claimed_topk, &sk_lower)) {
    return Status::Error("fg: claimed results are not the top-k popped images");
  }
  if (sk_lower < engine.PiUpper()) {
    return Status::Error("fg: condition 1 fails (unseen images may rank higher)");
  }
  std::unordered_set<ImageId> topk_set(claimed_topk.begin(), claimed_topk.end());
  for (const auto& [id, score] : engine.Scores()) {
    if (topk_set.contains(id)) continue;
    if (engine.SUpper(id) > sk_lower) {
      return Status::Error("fg: condition 2 fails (popped image may rank higher)");
    }
  }

  out->topk_exact = true;
  for (ImageId id : claimed_topk) {
    if (!engine.PossibleLists(id).empty()) {
      out->topk_exact = false;
      break;
    }
  }

  out->topk.clear();
  for (ImageId id : claimed_topk) out->topk.push_back({id, engine.ScoreOf(id)});
  std::sort(out->topk.begin(), out->topk.end(),
            [](const bovw::ScoredImage& a, const bovw::ScoredImage& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  return Status::Ok();
}

}  // namespace imageproof::freqgroup
