#include "mrkd/verify.h"

#include <cmath>

#include "crypto/hasher.h"
#include "mrkd/mrkd_tree.h"
#include "mrkd/search.h"

namespace imageproof::mrkd {

namespace {

struct VerifyContext {
  ByteReader* reader;
  size_t dims;
  const std::map<ClusterId, Digest>* commitments;
  const std::vector<const float*>* queries;
  const std::vector<double>* thresholds_sq;
  std::vector<std::vector<double>> offsets;  // [query][dim]
  TreeVerifyOutput* out;
};

Status ReplayRec(VerifyContext& ctx, const std::vector<uint32_t>& active,
                 const std::vector<double>& mindist, Digest* digest_out) {
  uint8_t kind = 0;
  Status s = ctx.reader->GetU8(&kind);
  if (!s.ok()) return s;

  if (active.empty()) {
    if (kind != kTokenPruned) {
      return Status::Error("mrkd: subtree revealed where no query is active");
    }
    return crypto::GetDigest(*ctx.reader, digest_out);
  }
  if (kind == kTokenPruned) {
    return Status::Error("mrkd: subtree pruned while a query is active");
  }

  if (kind == kTokenLeaf) {
    uint64_t count;
    if (!(s = ctx.reader->GetVarint(&count)).ok()) return s;
    if (count == 0 || count > 4096) {
      return Status::Error("mrkd: implausible leaf size");
    }
    crypto::DigestBuilder b;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t cid;
      if (!(s = ctx.reader->GetVarint(&cid)).ok()) return s;
      ClusterId c = static_cast<ClusterId>(cid);
      auto it = ctx.commitments->find(c);
      if (it == ctx.commitments->end()) {
        return Status::Error("mrkd: leaf cluster missing from reveal section");
      }
      Digest list_digest;
      if (!(s = crypto::GetDigest(*ctx.reader, &list_digest)).ok()) return s;
      b.AddDigest(it->second);
      b.AddDigest(list_digest);
      auto [pos, inserted] = ctx.out->list_digests.emplace(c, list_digest);
      if (!inserted && pos->second != list_digest) {
        return Status::Error("mrkd: conflicting inverted-list digests");
      }
      for (uint32_t q : active) ctx.out->candidates[q].push_back(c);
    }
    *digest_out = b.Finalize();
    return Status::Ok();
  }

  if (kind != kTokenInternal) {
    return Status::Error("mrkd: unknown VO token");
  }
  uint64_t split_dim;
  float split_value;
  if (!(s = ctx.reader->GetVarint(&split_dim)).ok()) return s;
  if (split_dim >= ctx.dims) {
    return Status::Error("mrkd: split dimension out of range");
  }
  if (!(s = ctx.reader->GetF32(&split_value)).ok()) return s;

  const int d = static_cast<int>(split_dim);
  std::vector<uint32_t> left_active, right_active;
  std::vector<double> left_mindist, right_mindist;
  std::vector<std::pair<uint32_t, double>> left_saved, right_saved;
  for (size_t k = 0; k < active.size(); ++k) {
    uint32_t q = active[k];
    double diff = static_cast<double>((*ctx.queries)[q][d]) - split_value;
    bool near_is_left = diff < 0;
    double old_off = ctx.offsets[q][d];
    double far_dist = mindist[k] - old_off * old_off + diff * diff;
    double t = (*ctx.thresholds_sq)[q];
    if (near_is_left) {
      left_active.push_back(q);
      left_mindist.push_back(mindist[k]);
    } else {
      right_active.push_back(q);
      right_mindist.push_back(mindist[k]);
    }
    if (far_dist <= t) {
      if (near_is_left) {
        right_active.push_back(q);
        right_mindist.push_back(far_dist);
        right_saved.emplace_back(q, old_off);
      } else {
        left_active.push_back(q);
        left_mindist.push_back(far_dist);
        left_saved.emplace_back(q, old_off);
      }
    }
  }

  Digest left_digest, right_digest;
  auto descend = [&](const std::vector<uint32_t>& child_active,
                     const std::vector<double>& child_mindist,
                     const std::vector<std::pair<uint32_t, double>>& saved,
                     Digest* dig) -> Status {
    for (const auto& [q, old_off] : saved) {
      double diff = static_cast<double>((*ctx.queries)[q][d]) - split_value;
      ctx.offsets[q][d] = std::abs(diff);
      (void)old_off;
    }
    Status st = ReplayRec(ctx, child_active, child_mindist, dig);
    for (const auto& [q, old_off] : saved) ctx.offsets[q][d] = old_off;
    return st;
  };

  if (!(s = descend(left_active, left_mindist, left_saved, &left_digest)).ok()) {
    return s;
  }
  if (!(s = descend(right_active, right_mindist, right_saved, &right_digest))
           .ok()) {
    return s;
  }

  crypto::DigestBuilder b;
  MrkdTree::HashInternal(b, static_cast<uint32_t>(split_dim), split_value,
                         left_digest, right_digest);
  *digest_out = b.Finalize();
  return Status::Ok();
}

Status ReplayOne(ByteReader& r, size_t dims,
                 const std::map<ClusterId, Digest>& commitments,
                 const std::vector<const float*>& queries,
                 const std::vector<double>& thresholds_sq,
                 const std::vector<uint32_t>& initial_active,
                 TreeVerifyOutput* out, Digest* root) {
  VerifyContext ctx;
  ctx.reader = &r;
  ctx.dims = dims;
  ctx.commitments = &commitments;
  ctx.queries = &queries;
  ctx.thresholds_sq = &thresholds_sq;
  ctx.offsets.assign(queries.size(), std::vector<double>(dims, 0.0));
  ctx.out = out;
  std::vector<double> mindist(initial_active.size(), 0.0);
  return ReplayRec(ctx, initial_active, mindist, root);
}

}  // namespace

Status VerifyTreeVo(ByteReader& r, size_t dims,
                    const std::map<ClusterId, Digest>& commitments,
                    const std::vector<const float*>& queries,
                    const std::vector<double>& thresholds_sq, bool shared,
                    TreeVerifyOutput* out) {
  out->candidates.assign(queries.size(), {});
  if (shared) {
    std::vector<uint32_t> all(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      all[i] = static_cast<uint32_t>(i);
    }
    return ReplayOne(r, dims, commitments, queries, thresholds_sq, all, out,
                     &out->root);
  }
  // Baseline layout: one stream per query; every stream must reconstruct
  // the same root.
  for (uint32_t q = 0; q < queries.size(); ++q) {
    Digest root;
    Status s = ReplayOne(r, dims, commitments, queries, thresholds_sq, {q},
                         out, &root);
    if (!s.ok()) return s;
    if (q == 0) {
      out->root = root;
    } else if (root != out->root) {
      return Status::Error("mrkd: per-query streams reconstruct different roots");
    }
  }
  return Status::Ok();
}

}  // namespace imageproof::mrkd
