#include "mrkd/memo.h"

#include "crypto/hasher.h"
#include "mrkd/mrkd_tree.h"
#include "mrkd/search.h"

namespace imageproof::mrkd {

namespace {

// Build-then-CAS publication: exactly one builder wins the slot, losers
// delete their (identical) copy and adopt the winner. Acquire/release pair
// so the winner's fully constructed object is visible to every adopter.
template <typename T>
const T& Publish(std::atomic<const T*>& slot, T* built) {
  const T* expected = nullptr;
  if (slot.compare_exchange_strong(expected, built,
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    return *built;
  }
  delete built;
  return *expected;
}

}  // namespace

DimTreeMemo::DimTreeMemo(size_t num_clusters) : slots_(num_clusters) {}

DimTreeMemo::~DimTreeMemo() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
}

const merkle::MerkleTree& DimTreeMemo::Get(ClusterId id, const float* coords,
                                           size_t dims) const {
  std::atomic<const merkle::MerkleTree*>& slot = slots_[id];
  if (const merkle::MerkleTree* t = slot.load(std::memory_order_acquire)) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return *t;
  }
  stats_.builds.fetch_add(1, std::memory_order_relaxed);
  return Publish(slot, new merkle::MerkleTree(CoordBlockLeaves(coords, dims)));
}

LeafProofMemo::LeafProofMemo(size_t num_nodes) : slots_(num_nodes) {}

LeafProofMemo::~LeafProofMemo() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
}

const Bytes& LeafProofMemo::Get(const MrkdTree& tree, int node_index) const {
  std::atomic<const Bytes*>& slot = slots_[node_index];
  if (const Bytes* b = slot.load(std::memory_order_acquire)) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return *b;
  }
  stats_.builds.fetch_add(1, std::memory_order_relaxed);
  // Byte-identical to the inline emission in search.cc SearchRec.
  const ann::RkdTree& t = tree.tree();
  const ann::RkdNode& node = t.nodes()[node_index];
  ByteWriter w;
  w.PutU8(kTokenLeaf);
  w.PutVarint(static_cast<uint64_t>(node.end - node.begin));
  for (int32_t i = node.begin; i < node.end; ++i) {
    ClusterId c = static_cast<ClusterId>(t.point_indices()[i]);
    w.PutVarint(c);
    crypto::PutDigest(w, tree.list_digest(c));
  }
  return Publish(slot, new Bytes(w.Take()));
}

}  // namespace imageproof::mrkd
