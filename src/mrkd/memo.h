// Per-snapshot, lock-free proof memos for the MRKD hot path (ROADMAP item
// 4b): concurrent queries that touch the same ADS regions share derived
// proof material instead of re-deriving it per query.
//
//   DimTreeMemo   — the kDimMerkle coordinate-block Merkle tree of each
//                   codebook cluster. BuildReveal previously rebuilt this
//                   tree (NumBlocks(dims) leaf hashes + interior levels)
//                   for every partial reveal of every query; with the memo
//                   the first reveal of a cluster builds it once and every
//                   later reveal — same query or a concurrent one — runs
//                   only the O(revealed * log n) ProveSubset lookups.
//   LeafProofMemo — the serialized kTokenLeaf byte run (varint count, then
//                   per entry varint cluster + 32 B list digest) of each
//                   MRKD leaf node. Distinct queries reaching the same
//                   leaf then memcpy the token bytes instead of re-walking
//                   the entries.
//
// Concurrency model: one memo set is owned by one immutable engine
// snapshot (core::Snapshot) and dropped with it, so entries can never go
// stale — a snapshot's trees and list digests are frozen by construction,
// and the atomic epoch swap that publishes a new snapshot publishes new
// (empty) memos with it. Slots are std::atomic pointers, filled by
// build-then-CAS: racing builders compute identical bytes (the inputs are
// the snapshot's frozen state and the builds are deterministic), exactly
// one publishes, losers delete their copy and adopt the winner. Readers
// are wait-free after the first fill; no locks anywhere.
//
// Determinism: a memo changes *where* bytes come from, never what they
// are. Memo'd and memo-free serving produce byte-identical VOs — locked
// by golden/security tests — so the client and the tamper matrix cannot
// tell the difference.

#ifndef IMAGEPROOF_MRKD_MEMO_H_
#define IMAGEPROOF_MRKD_MEMO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "merkle/merkle_tree.h"
#include "mrkd/commit.h"

namespace imageproof::mrkd {

class MrkdTree;

// Shared counters for one memo (relaxed atomics; feeds the engine's
// cache/memo stats, not any control flow).
struct MemoStats {
  std::atomic<uint64_t> hits{0};    // served from a published slot
  std::atomic<uint64_t> builds{0};  // built here (published or discarded)
};

// Lazily built coordinate-block Merkle trees, one slot per cluster.
class DimTreeMemo {
 public:
  explicit DimTreeMemo(size_t num_clusters);
  ~DimTreeMemo();
  DimTreeMemo(const DimTreeMemo&) = delete;
  DimTreeMemo& operator=(const DimTreeMemo&) = delete;

  // The tree for cluster `id` with the given frozen coordinates. Builds and
  // publishes on first use; wait-free afterwards.
  const merkle::MerkleTree& Get(ClusterId id, const float* coords,
                                size_t dims) const;

  uint64_t hits() const { return stats_.hits.load(std::memory_order_relaxed); }
  uint64_t builds() const {
    return stats_.builds.load(std::memory_order_relaxed);
  }

 private:
  mutable std::vector<std::atomic<const merkle::MerkleTree*>> slots_;
  mutable MemoStats stats_;
};

// Lazily serialized leaf token bytes, one slot per tree node (interior
// slots stay empty; indexing by node keeps lookup O(1) and allocation-free).
class LeafProofMemo {
 public:
  explicit LeafProofMemo(size_t num_nodes);
  ~LeafProofMemo();
  LeafProofMemo(const LeafProofMemo&) = delete;
  LeafProofMemo& operator=(const LeafProofMemo&) = delete;

  // The serialized kTokenLeaf run for leaf `node_index` of `tree`.
  const Bytes& Get(const MrkdTree& tree, int node_index) const;

  uint64_t hits() const { return stats_.hits.load(std::memory_order_relaxed); }
  uint64_t builds() const {
    return stats_.builds.load(std::memory_order_relaxed);
  }

 private:
  mutable std::vector<std::atomic<const Bytes*>> slots_;
  mutable MemoStats stats_;
};

}  // namespace imageproof::mrkd

#endif  // IMAGEPROOF_MRKD_MEMO_H_
