// Client-side verification of an MRKDSearch VO: replays the traversal with
// the client's own activity decisions, reconstructs the root digest, and
// extracts the per-query candidate sets.
//
// The replay enforces strict agreement: a subtree may be pruned in the VO
// iff the client computes an empty active set for it. Anything else —
// missing subtrees, gratuitous reveals, malformed tokens — is rejected, so
// a VO that verifies pins down exactly the candidate sets an honest SP
// would produce.

#ifndef IMAGEPROOF_MRKD_VERIFY_H_
#define IMAGEPROOF_MRKD_VERIFY_H_

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "mrkd/commit.h"

namespace imageproof::mrkd {

struct TreeVerifyOutput {
  Digest root = Digest::Zero();  // reconstructed root digest
  std::vector<std::vector<ClusterId>> candidates;  // per query
  // Inverted-list digests observed in leaf tokens; later cross-checked
  // against the inverted-index VO.
  std::map<ClusterId, Digest> list_digests;
};

// Replays one tree's token stream from `r`.
//   `commitments`   cluster id -> commitment recomputed from the reveal
//                   section (every leaf entry must be present).
//   `queries`/`thresholds_sq` define activity exactly as on the SP.
//   `shared`        false replays one independent stream per query (the
//                   Baseline layout).
Status VerifyTreeVo(ByteReader& r, size_t dims,
                    const std::map<ClusterId, Digest>& commitments,
                    const std::vector<const float*>& queries,
                    const std::vector<double>& thresholds_sq, bool shared,
                    TreeVerifyOutput* out);

}  // namespace imageproof::mrkd

#endif  // IMAGEPROOF_MRKD_VERIFY_H_
