#include "mrkd/search.h"

#include <cmath>

namespace imageproof::mrkd {

namespace {

// Recursion state shared across the traversal. Offsets are maintained
// mutate-and-restore so no per-branch copies are made.
struct SearchContext {
  const MrkdTree* mrkd;
  const std::vector<const float*>* queries;
  const std::vector<double>* thresholds_sq;
  std::vector<std::vector<double>> offsets;  // [query][dim]
  ByteWriter* writer;
  TreeSearchOutput* out;
};

// `active` holds query indices; `mindist` the exact squared min distance of
// each active query to the current node's region.
void SearchRec(SearchContext& ctx, int node_index,
               const std::vector<uint32_t>& active,
               const std::vector<double>& mindist) {
  const ann::RkdTree& tree = ctx.mrkd->tree();
  const ann::RkdNode& node = tree.nodes()[node_index];

  if (active.empty()) {
    ctx.writer->PutU8(kTokenPruned);
    crypto::PutDigest(*ctx.writer, ctx.mrkd->node_digest(node_index));
    ++ctx.out->stats.pruned_subtrees;
    return;
  }
  ++ctx.out->stats.traversed_nodes;
  if (active.size() >= 2) ++ctx.out->stats.shared_nodes;

  if (node.IsLeaf()) {
    ctx.writer->PutU8(kTokenLeaf);
    ctx.writer->PutVarint(static_cast<uint64_t>(node.end - node.begin));
    for (int32_t i = node.begin; i < node.end; ++i) {
      ClusterId c = static_cast<ClusterId>(tree.point_indices()[i]);
      ctx.writer->PutVarint(c);
      crypto::PutDigest(*ctx.writer, ctx.mrkd->list_digest(c));
      for (uint32_t q : active) ctx.out->candidates[q].push_back(c);
    }
    return;
  }

  ctx.writer->PutU8(kTokenInternal);
  ctx.writer->PutVarint(static_cast<uint64_t>(node.split_dim));
  ctx.writer->PutF32(node.split_value);

  const int d = node.split_dim;
  std::vector<uint32_t> left_active, right_active;
  std::vector<double> left_mindist, right_mindist;
  // (query, saved offset) pairs to restore after each child.
  std::vector<std::pair<uint32_t, double>> left_saved, right_saved;

  for (size_t k = 0; k < active.size(); ++k) {
    uint32_t q = active[k];
    double diff = static_cast<double>((*ctx.queries)[q][d]) - node.split_value;
    bool near_is_left = diff < 0;
    double old_off = ctx.offsets[q][d];
    double far_dist = mindist[k] - old_off * old_off + diff * diff;

    double near_dist = mindist[k];
    double t = (*ctx.thresholds_sq)[q];
    // Near child: offset unchanged.
    if (near_is_left) {
      left_active.push_back(q);
      left_mindist.push_back(near_dist);
    } else {
      right_active.push_back(q);
      right_mindist.push_back(near_dist);
    }
    // Far child: offset along d tightens to |diff|.
    if (far_dist <= t) {
      if (near_is_left) {
        right_active.push_back(q);
        right_mindist.push_back(far_dist);
        right_saved.emplace_back(q, old_off);
      } else {
        left_active.push_back(q);
        left_mindist.push_back(far_dist);
        left_saved.emplace_back(q, old_off);
      }
    }
  }

  auto descend = [&](int child, const std::vector<uint32_t>& child_active,
                     const std::vector<double>& child_mindist,
                     const std::vector<std::pair<uint32_t, double>>& saved) {
    for (const auto& [q, old_off] : saved) {
      double diff =
          static_cast<double>((*ctx.queries)[q][d]) - node.split_value;
      ctx.offsets[q][d] = std::abs(diff);
      (void)old_off;
    }
    SearchRec(ctx, child, child_active, child_mindist);
    for (const auto& [q, old_off] : saved) ctx.offsets[q][d] = old_off;
  };

  descend(node.left, left_active, left_mindist, left_saved);
  descend(node.right, right_active, right_mindist, right_saved);
}

TreeSearchOutput RunSearch(const MrkdTree& tree,
                           const std::vector<const float*>& queries,
                           const std::vector<double>& thresholds_sq,
                           const std::vector<uint32_t>& initial_active,
                           TreeSearchOutput* accumulate) {
  TreeSearchOutput local;
  TreeSearchOutput& out = accumulate ? *accumulate : local;
  if (out.candidates.size() != queries.size()) {
    out.candidates.resize(queries.size());
  }

  SearchContext ctx;
  ctx.mrkd = &tree;
  ctx.queries = &queries;
  ctx.thresholds_sq = &thresholds_sq;
  ctx.offsets.assign(queries.size(),
                     std::vector<double>(tree.tree().points().dims(), 0.0));
  ByteWriter writer;
  ctx.writer = &writer;
  ctx.out = &out;

  std::vector<double> mindist(initial_active.size(), 0.0);
  if (!tree.tree().nodes().empty()) {
    SearchRec(ctx, tree.tree().root(), initial_active, mindist);
  }
  Bytes vo = writer.Take();
  out.vo.insert(out.vo.end(), vo.begin(), vo.end());
  return out;
}

}  // namespace

TreeSearchOutput MrkdSearchShared(const MrkdTree& tree,
                                  const std::vector<const float*>& queries,
                                  const std::vector<double>& thresholds_sq) {
  std::vector<uint32_t> all(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) all[i] = static_cast<uint32_t>(i);
  return RunSearch(tree, queries, thresholds_sq, all, nullptr);
}

TreeSearchOutput MrkdSearchUnshared(const MrkdTree& tree,
                                    const std::vector<const float*>& queries,
                                    const std::vector<double>& thresholds_sq) {
  TreeSearchOutput out;
  out.candidates.resize(queries.size());
  for (uint32_t q = 0; q < queries.size(); ++q) {
    RunSearch(tree, queries, thresholds_sq, {q}, &out);
  }
  return out;
}

}  // namespace imageproof::mrkd
