#include "mrkd/search.h"

#include <cmath>

#include "mrkd/memo.h"

namespace imageproof::mrkd {

namespace {

// Recursion state shared across the traversal. Offsets are maintained
// mutate-and-restore so no per-branch copies are made; the per-depth
// partition buffers live in the (possibly caller-provided) scratch, so a
// warm traversal performs no heap allocation.
struct SearchContext {
  const MrkdTree* mrkd;
  const std::vector<const float*>* queries;
  const std::vector<double>* thresholds_sq;
  MrkdSearchScratch* scratch;
  ByteWriter* writer;
  TreeSearchOutput* out;
  const LeafProofMemo* leaf_memo = nullptr;

  MrkdSearchScratch::Frame& FrameAt(size_t depth) {
    while (depth >= scratch->frames.size()) scratch->frames.emplace_back();
    return scratch->frames[depth];
  }
};

// `active` holds query indices; `mindist` the exact squared min distance of
// each active query to the current node's region.
void SearchRec(SearchContext& ctx, int node_index, size_t depth,
               const std::vector<uint32_t>& active,
               const std::vector<double>& mindist) {
  const ann::RkdTree& tree = ctx.mrkd->tree();
  const ann::RkdNode& node = tree.nodes()[node_index];

  if (active.empty()) {
    ctx.writer->PutU8(kTokenPruned);
    crypto::PutDigest(*ctx.writer, ctx.mrkd->node_digest(node_index));
    ++ctx.out->stats.pruned_subtrees;
    return;
  }
  ++ctx.out->stats.traversed_nodes;
  if (active.size() >= 2) ++ctx.out->stats.shared_nodes;

  if (node.IsLeaf()) {
    if (ctx.leaf_memo) {
      // Byte-identical token run, serialized once per (snapshot, node) and
      // shared across every concurrent search (mrkd/memo.h).
      ctx.writer->PutBytes(ctx.leaf_memo->Get(*ctx.mrkd, node_index));
      for (int32_t i = node.begin; i < node.end; ++i) {
        ClusterId c = static_cast<ClusterId>(tree.point_indices()[i]);
        for (uint32_t q : active) ctx.out->candidates[q].push_back(c);
      }
      return;
    }
    ctx.writer->PutU8(kTokenLeaf);
    ctx.writer->PutVarint(static_cast<uint64_t>(node.end - node.begin));
    for (int32_t i = node.begin; i < node.end; ++i) {
      ClusterId c = static_cast<ClusterId>(tree.point_indices()[i]);
      ctx.writer->PutVarint(c);
      crypto::PutDigest(*ctx.writer, ctx.mrkd->list_digest(c));
      for (uint32_t q : active) ctx.out->candidates[q].push_back(c);
    }
    return;
  }

  ctx.writer->PutU8(kTokenInternal);
  ctx.writer->PutVarint(static_cast<uint64_t>(node.split_dim));
  ctx.writer->PutF32(node.split_value);

  const int d = node.split_dim;
  MrkdSearchScratch::Frame& frame = ctx.FrameAt(depth);
  std::vector<uint32_t>& left_active = frame.left_active;
  std::vector<uint32_t>& right_active = frame.right_active;
  std::vector<double>& left_mindist = frame.left_mindist;
  std::vector<double>& right_mindist = frame.right_mindist;
  std::vector<std::pair<uint32_t, double>>& left_saved = frame.left_saved;
  std::vector<std::pair<uint32_t, double>>& right_saved = frame.right_saved;
  left_active.clear();
  right_active.clear();
  left_mindist.clear();
  right_mindist.clear();
  left_saved.clear();
  right_saved.clear();

  for (size_t k = 0; k < active.size(); ++k) {
    uint32_t q = active[k];
    double diff = static_cast<double>((*ctx.queries)[q][d]) - node.split_value;
    bool near_is_left = diff < 0;
    double old_off = ctx.scratch->offsets[q][d];
    double far_dist = mindist[k] - old_off * old_off + diff * diff;

    double near_dist = mindist[k];
    double t = (*ctx.thresholds_sq)[q];
    // Near child: offset unchanged.
    if (near_is_left) {
      left_active.push_back(q);
      left_mindist.push_back(near_dist);
    } else {
      right_active.push_back(q);
      right_mindist.push_back(near_dist);
    }
    // Far child: offset along d tightens to |diff|.
    if (far_dist <= t) {
      if (near_is_left) {
        right_active.push_back(q);
        right_mindist.push_back(far_dist);
        right_saved.emplace_back(q, old_off);
      } else {
        left_active.push_back(q);
        left_mindist.push_back(far_dist);
        left_saved.emplace_back(q, old_off);
      }
    }
  }

  auto descend = [&](int child, const std::vector<uint32_t>& child_active,
                     const std::vector<double>& child_mindist,
                     const std::vector<std::pair<uint32_t, double>>& saved) {
    for (const auto& [q, old_off] : saved) {
      double diff =
          static_cast<double>((*ctx.queries)[q][d]) - node.split_value;
      ctx.scratch->offsets[q][d] = std::abs(diff);
      (void)old_off;
    }
    SearchRec(ctx, child, depth + 1, child_active, child_mindist);
    for (const auto& [q, old_off] : saved) ctx.scratch->offsets[q][d] = old_off;
  };

  descend(node.left, left_active, left_mindist, left_saved);
  descend(node.right, right_active, right_mindist, right_saved);
}

// Grows (never shrinks) the per-query offset vectors and zeroes the live
// prefix, reusing prior capacity.
void PrepareOffsets(MrkdSearchScratch& scratch, size_t num_queries,
                    size_t dims) {
  if (scratch.offsets.size() < num_queries) scratch.offsets.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    scratch.offsets[q].assign(dims, 0.0);
  }
}

TreeSearchOutput RunSearch(const MrkdTree& tree,
                           const std::vector<const float*>& queries,
                           const std::vector<double>& thresholds_sq,
                           const std::vector<uint32_t>& initial_active,
                           MrkdSearchScratch& scratch,
                           TreeSearchOutput* accumulate,
                           const LeafProofMemo* leaf_memo) {
  TreeSearchOutput local;
  TreeSearchOutput& out = accumulate ? *accumulate : local;
  if (out.candidates.size() != queries.size()) {
    out.candidates.resize(queries.size());
  }

  SearchContext ctx;
  ctx.mrkd = &tree;
  ctx.queries = &queries;
  ctx.thresholds_sq = &thresholds_sq;
  ctx.scratch = &scratch;
  ctx.leaf_memo = leaf_memo;
  PrepareOffsets(scratch, queries.size(), tree.tree().points().dims());
  ByteWriter writer;
  ctx.writer = &writer;
  ctx.out = &out;

  scratch.initial_mindist.assign(initial_active.size(), 0.0);
  if (!tree.tree().nodes().empty()) {
    SearchRec(ctx, tree.tree().root(), 0, initial_active,
              scratch.initial_mindist);
  }
  Bytes vo = writer.Take();
  out.vo.insert(out.vo.end(), vo.begin(), vo.end());
  return out;
}

}  // namespace

TreeSearchOutput MrkdSearchShared(const MrkdTree& tree,
                                  const std::vector<const float*>& queries,
                                  const std::vector<double>& thresholds_sq,
                                  MrkdSearchScratch* scratch,
                                  const LeafProofMemo* leaf_memo) {
  MrkdSearchScratch local;
  MrkdSearchScratch& s = scratch ? *scratch : local;
  s.initial_active.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    s.initial_active[i] = static_cast<uint32_t>(i);
  }
  return RunSearch(tree, queries, thresholds_sq, s.initial_active, s, nullptr,
                   leaf_memo);
}

TreeSearchOutput MrkdSearchUnshared(const MrkdTree& tree,
                                    const std::vector<const float*>& queries,
                                    const std::vector<double>& thresholds_sq,
                                    MrkdSearchScratch* scratch,
                                    const LeafProofMemo* leaf_memo) {
  MrkdSearchScratch local;
  MrkdSearchScratch& s = scratch ? *scratch : local;
  TreeSearchOutput out;
  out.candidates.resize(queries.size());
  for (uint32_t q = 0; q < queries.size(); ++q) {
    s.initial_active.assign(1, q);
    RunSearch(tree, queries, thresholds_sq, s.initial_active, s, &out,
              leaf_memo);
  }
  return out;
}

}  // namespace imageproof::mrkd
